//! RowHammer-defense case study (§9, one data point of Fig. 12): configures
//! PARA for a vulnerable chip (NRH = 256) via the security analysis, then
//! compares plain PARA against PARA + HiRA-4 — both composed onto the
//! Baseline policy through the builder's preventive layers.
//!
//! Run with: `cargo run --release --example rowhammer_defense`

use hira::prelude::*;

fn main() {
    let nrh = 256;
    let pth0 = solve_pth(&SecurityParams::paper_defaults(0), nrh);
    let pth4 = solve_pth(&SecurityParams::paper_defaults(4), nrh);
    println!("NRH = {nrh}: p_th = {pth0:.4} (immediate) / {pth4:.4} (with 4*tRC slack)\n");

    // The legacy `mixes(1, 8, 11)[0]` workload, through the handle
    // frontend.
    let base = || {
        SystemBuilder::new()
            .policy(policy::baseline())
            .workload(mix_with_seed(0, 11))
            .insts(25_000, 5_000)
    };
    let mut results = Vec::new();
    for (name, builder) in [
        ("no defense", base()),
        ("PARA", base().preventive_immediate(pth0)),
        ("PARA + HiRA-4", base().preventive_hira(pth4, 4)),
    ] {
        let r = System::new(builder.build().unwrap()).run();
        let ipc_sum: f64 = r.ipc.iter().sum();
        println!("{name:<15} IPC-sum {ipc_sum:>6.3}");
        results.push((name, ipc_sum));
    }
    let para = results[1].1;
    println!(
        "\nHiRA-4 speedup over plain PARA: {:.2}x",
        results[2].1 / para
    );
}
