//! RowHammer-defense case study (§9, one data point of Fig. 12): configures
//! PARA for a vulnerable chip (NRH = 256) via the security analysis, then
//! compares plain PARA against PARA + HiRA-4.
//!
//! Run with: `cargo run --release --example rowhammer_defense`

use hira::core::config::HiraConfig;
use hira::core::security::{solve_pth, SecurityParams};
use hira::sim::config::{PreventiveMode, RefreshScheme, SystemConfig};
use hira::sim::system::System;
use hira::sim::workloads::mixes;

fn main() {
    let nrh = 256;
    let pth0 = solve_pth(&SecurityParams::paper_defaults(0), nrh);
    let pth4 = solve_pth(&SecurityParams::paper_defaults(4), nrh);
    println!("NRH = {nrh}: p_th = {pth0:.4} (immediate) / {pth4:.4} (with 4*tRC slack)\n");

    let mix = &mixes(1, 8, 11)[0];
    let mut results = Vec::new();
    for (name, preventive) in [
        ("no defense", None),
        ("PARA", Some((pth0, PreventiveMode::Immediate))),
        (
            "PARA + HiRA-4",
            Some((pth4, PreventiveMode::Hira(HiraConfig::hira_n(4)))),
        ),
    ] {
        let mut cfg = SystemConfig::table3(8.0, RefreshScheme::Baseline).with_insts(25_000, 5_000);
        if let Some((pth, mode)) = preventive {
            cfg = cfg.with_preventive(pth, mode);
        }
        let r = System::new(cfg, mix).run();
        let ipc_sum: f64 = r.ipc.iter().sum();
        println!("{name:<15} IPC-sum {ipc_sum:>6.3}");
        results.push((name, ipc_sum));
    }
    let para = results[1].1;
    println!(
        "\nHiRA-4 speedup over plain PARA: {:.2}x",
        results[2].1 / para
    );
}
