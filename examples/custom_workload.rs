//! Adding a workload is three steps: implement `Workload`, wrap a factory
//! in a `WorkloadHandle`, register it. This example builds a phase-aware
//! "ramp" workload — streaming during warmup, uniform-random in the
//! measured region (via the ROI hooks) — registers it, simulates it under
//! two refresh policies, and dumps its measured region to the trace format.
//!
//! Run with: `cargo run --release --example custom_workload`

use hira::prelude::*;
use hira::workload::Family;

/// Streams sequentially until the region of interest begins, then switches
/// to uniform-random traffic — the kind of phase change `on_roi_begin`
/// exists for.
#[derive(Debug)]
struct Ramp {
    rng: hira::dram::rng::Stream,
    base: u64,
    cursor: u64,
    in_roi: bool,
    mem_pending: bool,
}

const FOOTPRINT_LINES: u64 = 1 << 20;

impl Workload for Ramp {
    fn name(&self) -> &str {
        "ramp"
    }

    fn next_access(&mut self) -> Op {
        if !self.mem_pending {
            self.mem_pending = true;
            return Op::Compute(30);
        }
        self.mem_pending = false;
        self.cursor = if self.in_roi {
            self.rng.next_below(FOOTPRINT_LINES)
        } else {
            (self.cursor + 1) % FOOTPRINT_LINES
        };
        Op::Load(self.base + self.cursor * 64)
    }

    fn on_roi_begin(&mut self) {
        self.in_roi = true;
    }

    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            family: Family::Generator,
            summary: "streams through warmup, uniform-random in the ROI".into(),
            mem_per_kinst: 1000.0 / 31.0,
            store_frac: 0.0,
            footprint_lines: FOOTPRINT_LINES,
        }
    }
}

fn ramp() -> WorkloadHandle {
    WorkloadHandle::new(
        "ramp",
        Family::Generator,
        "streams through warmup, uniform-random in the ROI",
        |env| {
            Box::new(Ramp {
                rng: hira::dram::rng::Stream::from_words(&[env.seed, 0x52414D50, env.core as u64]),
                base: env.base_addr(),
                cursor: 0,
                in_roi: false,
                mem_pending: false,
            })
        },
    )
}

fn main() {
    // Step 3: registration makes it addressable by name, exactly like the
    // shipped families (sweep axes, --workload=, SystemBuilder).
    let mut registry = WorkloadRegistry::standard();
    registry.register(ramp());
    let handle = registry.lookup("ramp").unwrap();

    println!("running `ramp` (phase-aware custom workload) under two policies:\n");
    for policy in [policy::noref(), policy::baseline()] {
        let cfg = SystemBuilder::new()
            .chip_gbit(32.0)
            .policy(policy.clone())
            .workload(handle.clone())
            .insts(20_000, 4_000)
            .build()
            .unwrap();
        let r = System::new(cfg).run();
        let ipc_sum: f64 = r.ipc.iter().sum();
        println!(
            "  {:<10} IPC-sum {ipc_sum:>6.3}  row-hit {:>5.1}%  avg-read-latency {:>6.1} cyc",
            policy.name(),
            r.row_hit_rate() * 100.0,
            r.avg_read_latency()
        );
    }

    // Any frontend can be dumped to the replayable trace format.
    let env = WorkloadEnv {
        core: 0,
        cores: 1,
        seed: 7,
    };
    let mut instance = handle.build(&env);
    let trace = Trace::capture(instance.as_mut(), 8);
    println!("\nfirst records of `ramp` dumped to the trace format:");
    print!("{}", trace.to_text());
}
