//! Quickstart: the HiRA operation end to end.
//!
//! Builds a behavioural DDR4 module, performs one HiRA operation on an
//! isolated row pair, verifies no data was corrupted, and prints the
//! headline latency arithmetic.
//!
//! Run with: `cargo run --release --example quickstart`

use hira::core::hira_op::HiraOperation;
use hira::prelude::*;

fn main() {
    // A 4 Gb SK Hynix-style module (the HiRA-capable parts of §4).
    let mut module = DramModule::new(ModuleSpec::sk_hynix_4gb(0xD1));
    let bank = BankId(0);
    let ones = vec![0xAAu8; module.geometry().row_bytes];
    let zeros = vec![0x55u8; module.geometry().row_bytes];

    // Not every row pair works (that is the point of §4.2's coverage
    // experiment), so probe candidates exactly as Algorithm 1 does:
    // initialize with inverse patterns, run HiRA, read back, compare.
    let mut chosen = None;
    'search: for a in 0..64u32 {
        let row_a = RowId(a);
        let Some(row_b) = module.isolation().find_partner(row_a) else {
            continue;
        };
        module.write_row(bank, row_a, &ones);
        module.write_row(bank, row_b, &zeros);
        module.hira(bank, row_a, row_b, HiraTimings::nominal());
        if module.read_row(bank, row_a) == ones && module.read_row(bank, row_b) == zeros {
            chosen = Some((row_a, row_b));
            break 'search;
        }
    }
    let (row_a, row_b) = chosen.expect("a reliable HiRA pair exists among the first rows");
    println!("RowA = {row_a}, RowB = {row_b}: both rows intact after concurrent");
    println!("activation with t1 = t2 = 3 ns — HiRA works on this pair");

    let t = module.timing();
    let op = HiraOperation::nominal();
    println!("\ntwo-row refresh latency:");
    println!("  conventional: {:>6.2} ns", t.two_row_refresh_ns());
    println!(
        "  HiRA        : {:>6.2} ns  ({:.1} % lower)",
        op.two_row_refresh_ns(t),
        op.refresh_latency_reduction(t) * 100.0
    );
}
