//! Reproduces the §9.1 security analysis numbers standalone: the k-factor
//! examples, the Fig. 11a p_th curve, and the slack sensitivity at NRH=128.
//!
//! Run with: `cargo run --release --example security_analysis`

use hira::core::security::{k_factor, legacy_pth};
use hira::prelude::*;

fn main() {
    let p0 = SecurityParams::paper_defaults(0);
    println!("k factors at legacy p_th (paper: 1.0331 at NRH=1024, 1.3212 at NRH=64):");
    for nrh in [1024u32, 64] {
        let k = k_factor(&p0, nrh, legacy_pth(nrh, 1e-15));
        println!("  NRH {nrh:>5}: k = {k:.4}");
    }
    println!("\np_th for a 1e-15 target (Fig. 11a; paper: 0.068 at 1024 rising to ~0.84 at 64):");
    for nrh in [1024u32, 512, 256, 128, 64] {
        println!("  NRH {nrh:>5}: p_th = {:.4}", solve_pth(&p0, nrh));
    }
    println!("\nslack sensitivity at NRH = 128 (paper: 0.48 / 0.49 / 0.50 / 0.52):");
    for slack in [0u32, 2, 4, 8] {
        let p = SecurityParams::paper_defaults(slack);
        println!(
            "  tRefSlack = {slack} tRC: p_th = {:.4}",
            solve_pth(&p, 128)
        );
    }
}
