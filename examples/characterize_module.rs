//! Runs the paper's §4 characterization on one module: HiRA coverage
//! (Algorithm 1), threshold verification (Algorithm 2), and the
//! HiRA-capability verdict — including a HiRA-inert Micron-style part.
//!
//! Run with: `cargo run --release --example characterize_module`

use hira::characterize::config::CharacterizeConfig;
use hira::characterize::modules::characterize_module;
use hira::prelude::*;

fn main() {
    let cfg = CharacterizeConfig {
        rows_per_region: 32,
        row_a_stride: 2,
        row_b_stride: 2,
        nrh_victims: 12,
        ..CharacterizeConfig::fast()
    };
    for spec in [ModuleSpec::c0(), ModuleSpec::micron_4gb(5)] {
        let label = spec.label.clone();
        let vendor = spec.manufacturer;
        let m = characterize_module(spec, &cfg);
        println!("module {label} ({vendor}):");
        println!(
            "  HiRA coverage : min {:.1}%  avg {:.1}%  max {:.1}%",
            m.coverage.min * 100.0,
            m.coverage.mean * 100.0,
            m.coverage.max * 100.0
        );
        println!(
            "  norm. NRH     : min {:.2}  avg {:.2}  max {:.2}",
            m.norm_nrh.min, m.norm_nrh.mean, m.norm_nrh.max
        );
        println!(
            "  HiRA capable  : {}\n",
            if m.hira_capable {
                "yes"
            } else {
                "no (second ACT ignored)"
            }
        );
    }
}
