//! Periodic-refresh case study (§8, one data point of Fig. 9): simulates an
//! 8-core system on 64 Gb chips under every periodic policy in the standard
//! registry — the paper's three arrangements plus the related-work policies
//! the open API enables (per-bank REFpb, RAIDR retention binning).
//!
//! Run with: `cargo run --release --example refresh_study`
//!
//! All examples run on the event-driven kernel (the default). The dense
//! reference loop is a builder flag away — `.kernel(KernelMode::Dense)`
//! here, `--kernel=dense` on the matrix binaries — and produces
//! bit-identical results, just slower (see the README's "Performance"
//! section and the `perf_kernel` A/B harness).

use hira::prelude::*;

fn main() {
    // A memory-intensive mix — where refresh interference actually shows —
    // assembled as an explicit workload roster (core i runs names[i]).
    let names = [
        "mcf",
        "lbm",
        "milc",
        "libquantum",
        "soplex",
        "omnetpp",
        "gemsfdtd",
        "bwaves",
    ];
    let workload = roster(&names);
    println!("workload mix: {names:?}\n");
    let mut ws = Vec::new();
    for handle in PolicyRegistry::standard().handles() {
        let cfg = SystemBuilder::table3(64.0)
            // The Table 3 part; any registered device slots in here (see
            // examples/device_sweep.rs for the cross-device comparison).
            .device_name("ddr4-2400")
            .policy(handle.clone())
            .workload(workload.clone())
            .insts(40_000, 8_000)
            .build()
            .unwrap();
        let name = handle.name().to_owned();
        let r = System::new(cfg).run();
        let ipc_sum: f64 = r.ipc.iter().sum();
        println!(
            "{name:<12} IPC-sum {ipc_sum:>6.3}  row-hit {:>5.1}%  avg-read-latency {:>6.1} cyc",
            r.row_hit_rate() * 100.0,
            r.avg_read_latency()
        );
        if let Some(mc) = r.mc_stats.first() {
            println!(
                "{:<12} refreshes: {} absorbed by accesses, {} paired, {} singles",
                "", mc.refresh_access, mc.refresh_refresh, mc.singles
            );
        } else if let Some(ps) = r.policy_stats.first() {
            println!(
                "{:<12} refreshes: {} REF, {} REFpb, {} rows ({} skipped by binning)",
                "", ps.rank_refs, ps.bank_refs, ps.rows_refreshed, ps.rows_skipped
            );
        }
        ws.push((name, ipc_sum));
    }
    let base = ws.iter().find(|(n, _)| n == "baseline").unwrap().1;
    println!();
    for (name, v) in &ws {
        println!(
            "{name:<12} throughput vs baseline: {:+.1} %",
            (v / base - 1.0) * 100.0
        );
    }
}
