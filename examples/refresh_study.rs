//! Periodic-refresh case study (§8, one data point of Fig. 9): simulates an
//! 8-core system on 64 Gb chips under Baseline REF vs HiRA-2 vs no refresh.
//!
//! Run with: `cargo run --release --example refresh_study`

use hira::core::config::HiraConfig;
use hira::sim::config::{RefreshScheme, SystemConfig};
use hira::sim::system::System;
use hira::sim::workloads::{benchmark, Mix};

fn main() {
    // A memory-intensive mix — where refresh interference actually shows.
    let names = [
        "mcf",
        "lbm",
        "milc",
        "libquantum",
        "soplex",
        "omnetpp",
        "gemsfdtd",
        "bwaves",
    ];
    let mix = &Mix {
        id: 0,
        benchmarks: names.iter().map(|n| benchmark(n).unwrap()).collect(),
    };
    println!(
        "workload mix: {:?}\n",
        mix.benchmarks.iter().map(|b| b.name).collect::<Vec<_>>()
    );
    let mut ws = Vec::new();
    for (name, scheme) in [
        ("No-Refresh (ideal)", RefreshScheme::NoRefresh),
        ("Baseline REF", RefreshScheme::Baseline),
        ("HiRA-2", RefreshScheme::Hira(HiraConfig::hira_n(2))),
    ] {
        let cfg = SystemConfig::table3(64.0, scheme).with_insts(40_000, 8_000);
        let r = System::new(cfg, mix).run();
        let ipc_sum: f64 = r.ipc.iter().sum();
        println!(
            "{name:<20} IPC-sum {ipc_sum:>6.3}  row-hit {:>5.1}%  avg-read-latency {:>6.1} cyc",
            r.row_hit_rate() * 100.0,
            r.avg_read_latency()
        );
        if let Some(mc) = r.mc_stats.first() {
            println!(
                "{:<20} refreshes: {} absorbed by accesses, {} paired, {} singles",
                "", mc.refresh_access, mc.refresh_refresh, mc.singles
            );
        }
        ws.push((name, ipc_sum));
    }
    let base = ws
        .iter()
        .find(|(n, _)| n.starts_with("Baseline"))
        .unwrap()
        .1;
    for (name, v) in &ws {
        println!(
            "{name:<20} throughput vs Baseline: {:+.1} %",
            (v / base - 1.0) * 100.0
        );
    }
}
