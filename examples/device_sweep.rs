//! Device case study: the same refresh arrangements on different DRAM
//! parts, through the open device axis.
//!
//! Sweeps every HiRA-capable device in the standard registry (plus a
//! pinned high-capacity part via the dynamic `ddr4-2400@<Gb>` form) under
//! the baseline all-bank `REF` and HiRA-4, and prints how much of the
//! ideal (no-refresh) performance each arrangement preserves *on that
//! part* — the refresh-interference cost the paper's §8 studies, now
//! device-parametric. Also demonstrates the typed error a HiRA policy
//! gets on a HiRA-inert part (§12).
//!
//! Run with: `cargo run --release --example device_sweep`

use hira::prelude::*;

fn main() {
    let mut devices: Vec<DeviceHandle> = DeviceRegistry::standard()
        .handles()
        .filter(|d| d.profile().supports_hira)
        .cloned()
        .collect();
    // The dynamic capacity form: a specific 64 Gb part, tRFC pinned.
    devices.push(device::device("ddr4-2400@64"));

    println!(
        "{:<18} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "device", "clock", "geometry", "noref", "baseline", "hira4"
    );
    for dev in &devices {
        let run = |policy_name: &str| {
            let cfg = SystemBuilder::new()
                .device(dev.clone())
                .policy_name(policy_name)
                .workload_name("random")
                .insts(20_000, 4_000)
                .build()
                .unwrap();
            let r = System::new(cfg).run();
            r.ipc.iter().sum::<f64>()
        };
        let ideal = run("noref");
        let p = dev.profile();
        println!(
            "{:<18} {:>7.1} MT {:>9} b/g {:>10.3} {:>9.1}% {:>9.1}%",
            dev.name(),
            p.mem_ghz * 2000.0,
            format!("{}/{}", p.banks, p.bank_groups),
            ideal,
            run("baseline") / ideal * 100.0,
            run("hira4") / ideal * 100.0,
        );
    }

    // Capability flags are enforced, not advisory: a HiRA arrangement on
    // a part whose decoder drops timing-violating commands is a typed
    // build error, caught before any simulation runs.
    let err = SystemBuilder::new()
        .device_name("samsung-ddr4-2400")
        .policy(policy::hira(4))
        .build()
        .unwrap_err();
    println!("\nsamsung-ddr4-2400 + hira4 -> {err}");
    assert!(matches!(err, BuildError::DeviceLacksHira { .. }));
}
