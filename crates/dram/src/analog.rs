//! Per-row analog timing profile.
//!
//! HiRA's reliability envelope (§3 "HiRA Operating Conditions", §4.2's
//! hypotheses for the Fig. 4 shape) is governed by a handful of analog
//! latencies inside the bank. We sample one profile per (module, bank, row)
//! deterministically; it combines
//!
//! * a **design-induced** component that varies systematically with the row's
//!   position in the bank (rows far from the row decoder / I/O are slower,
//!   after Lee et al. \[93\]), and
//! * a **process-variation** component (random per row, after Chang et al.
//!   \[19\]).
//!
//! All values are in nanoseconds from the relevant command edge.

use crate::addr::{BankId, RowId};
use crate::rng::Stream;

/// Distribution knobs for a module's analog behaviour.
///
/// The defaults reproduce the Fig. 4 envelope: at `t1 ∈ {3, 4.5}` essentially
/// every row senses in time and no row has latched, at `t1 = 1.5` almost no
/// row has sensed, and at `t1 = 6` almost every row has latched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalogModel {
    /// Mean / sd of the sense-amplifier enable point after `ACT`.
    pub sa_enable_mean: f64,
    pub sa_enable_sd: f64,
    /// Mean / sd / floor of the activation "latch" point after which a `PRE`
    /// is committed (non-interruptible).
    pub act_latch_mean: f64,
    pub act_latch_sd: f64,
    pub act_latch_min: f64,
    /// Mean / sd of the word-line turn-off delay of an interruptible `PRE`.
    pub wl_off_mean: f64,
    pub wl_off_sd: f64,
    /// Per-pair jitter sd applied to the word-line-off window.
    pub wl_off_pair_jitter: f64,
    /// Mean / sd of the LRB↔bank-I/O disconnect delay required of `t2`.
    pub lrb_disc_mean: f64,
    pub lrb_disc_sd: f64,
    /// Per-pair jitter sd applied to the disconnect window.
    pub lrb_disc_pair_jitter: f64,
    /// Mean / sd of the full-charge-restoration target after sensing.
    pub restore_mean: f64,
    pub restore_sd: f64,
    /// Fraction of full restoration below which the row's data is lost.
    pub restore_margin: f64,
    /// Time after a committed `PRE` until the bitlines are ready for a
    /// reliable activation (the analog reality behind `tRP`).
    pub bitline_ready_mean: f64,
    pub bitline_ready_sd: f64,
}

impl Default for AnalogModel {
    fn default() -> Self {
        AnalogModel {
            sa_enable_mean: 2.2,
            sa_enable_sd: 0.3,
            act_latch_mean: 5.25,
            act_latch_sd: 0.35,
            act_latch_min: 4.7,
            wl_off_mean: 5.3,
            wl_off_sd: 0.3,
            wl_off_pair_jitter: 0.25,
            lrb_disc_mean: 1.45,
            lrb_disc_sd: 0.18,
            lrb_disc_pair_jitter: 0.2,
            restore_mean: 24.0,
            restore_sd: 2.0,
            restore_margin: 0.35,
            bitline_ready_mean: 11.5,
            bitline_ready_sd: 0.8,
        }
    }
}

/// Sampled analog parameters for one row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowAnalog {
    /// Sense amplifiers latch the cell value this long after `ACT`.
    /// A `PRE` arriving earlier destroys the row (HiRA condition 1).
    pub sa_enable: f64,
    /// Activation commits this long after `ACT`; a later `PRE` is a full,
    /// non-interruptible precharge (why `t1 = 6 ns` fails, §4.2 obs. 3).
    pub act_latch: f64,
    /// Base word-line turn-off delay after an interruptible `PRE`; the second
    /// `ACT` must arrive within this window (HiRA condition 2).
    pub wl_off: f64,
    /// Base LRB disconnect delay the `PRE` needs before the second `ACT`
    /// (HiRA condition 3).
    pub lrb_disc: f64,
    /// Time from sensing to full charge restoration.
    pub restore_target: f64,
    /// Bitline precharge completion after a committed `PRE`.
    pub bitline_ready: f64,
}

impl AnalogModel {
    /// Samples the profile of `row` for the module with `seed`.
    ///
    /// The profile is **identical across banks**: §4.4.1 observes that the
    /// row pairs HiRA can activate are the same in all 16 banks, i.e. the
    /// analog envelope is a design-induced property of the die layout, not
    /// of individual bank instances (`bank` is accepted for API symmetry but
    /// does not enter the hash). `row_pos` in \[0,1\] drives the systematic
    /// position component.
    pub fn sample(&self, seed: u64, bank: BankId, row: RowId, rows_per_bank: u32) -> RowAnalog {
        let _ = bank;
        let row_pos = f64::from(row.0) / f64::from(rows_per_bank.max(1));
        // Design-induced skew: rows farther from the center of the bank have
        // slightly slower sensing and faster latching (shorter wiring to I/O).
        let design = (row_pos - 0.5).abs() * 2.0; // 0 at center, 1 at edges
        let mut s = Stream::from_words(&[seed, 0x00A7_A106, u64::from(row.0)]);
        RowAnalog {
            sa_enable: (self.sa_enable_mean + 0.1 * design + self.sa_enable_sd * s.next_normal())
                .max(0.8),
            act_latch: (self.act_latch_mean - 0.15 * design + self.act_latch_sd * s.next_normal())
                .max(self.act_latch_min),
            wl_off: (self.wl_off_mean + self.wl_off_sd * s.next_normal()).max(2.0),
            lrb_disc: (self.lrb_disc_mean + self.lrb_disc_sd * s.next_normal()).max(0.5),
            restore_target: (self.restore_mean + self.restore_sd * s.next_normal()).max(12.0),
            bitline_ready: (self.bitline_ready_mean + self.bitline_ready_sd * s.next_normal())
                .max(6.0),
        }
    }

    /// Per-pair jitter on the word-line-off window between a first row and
    /// the interrupting row. Deterministic in both rows; bank-invariant like
    /// the base profile (§4.4.1).
    pub fn wl_off_jitter(&self, seed: u64, bank: BankId, first: RowId, second: RowId) -> f64 {
        let _ = bank;
        Stream::from_words(&[seed, 0x37D0, u64::from(first.0), u64::from(second.0)])
            .next_gauss(0.0, self.wl_off_pair_jitter)
    }

    /// Per-pair jitter on the LRB disconnect window (bank-invariant).
    pub fn lrb_disc_jitter(&self, seed: u64, bank: BankId, first: RowId, second: RowId) -> f64 {
        let _ = bank;
        Stream::from_words(&[seed, 0x11B0, u64::from(first.0), u64::from(second.0)])
            .next_gauss(0.0, self.lrb_disc_pair_jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AnalogModel {
        AnalogModel::default()
    }

    #[test]
    fn sampling_is_deterministic() {
        let m = model();
        let a = m.sample(1, BankId(0), RowId(100), 32768);
        let b = m.sample(1, BankId(0), RowId(100), 32768);
        assert_eq!(a, b);
        let c = m.sample(1, BankId(0), RowId(101), 32768);
        assert_ne!(a, c);
        // §4.4.1: design-induced, so identical across banks.
        assert_eq!(a, m.sample(1, BankId(7), RowId(100), 32768));
    }

    #[test]
    fn t1_grid_pass_rates_reproduce_fig4_envelope() {
        // At t1=3 ns nearly all rows have sensed and none has latched;
        // at t1=1.5 ns almost none has sensed; at t1=6 ns almost all latched.
        let m = model();
        let n = 4000u32;
        let mut sensed_15 = 0;
        let mut sensed_30 = 0;
        let mut latched_45 = 0;
        let mut latched_60 = 0;
        for r in 0..n {
            let a = m.sample(3, BankId(0), RowId(r * 7), 32768);
            if a.sa_enable <= 1.5 {
                sensed_15 += 1;
            }
            if a.sa_enable <= 3.0 {
                sensed_30 += 1;
            }
            if a.act_latch <= 4.5 {
                latched_45 += 1;
            }
            if a.act_latch <= 6.0 {
                latched_60 += 1;
            }
        }
        let f = |x: u32| f64::from(x) / f64::from(n);
        assert!(f(sensed_15) < 0.05, "t1=1.5 sensed {}", f(sensed_15));
        assert!(f(sensed_30) > 0.95, "t1=3.0 sensed {}", f(sensed_30));
        assert!(f(latched_45) < 0.01, "t1=4.5 latched {}", f(latched_45));
        assert!(f(latched_60) > 0.9, "t1=6.0 latched {}", f(latched_60));
    }

    #[test]
    fn t2_windows_reproduce_fig4_envelope() {
        // At t2=3/4.5 ns the word line is still on for nearly all rows and the
        // LRB has disconnected; t2=6 ns mostly misses the window; t2=1.5 ns is
        // often too early to disconnect.
        let m = model();
        let n = 4000u32;
        let (mut wl_ok_45, mut wl_ok_60, mut disc_ok_15, mut disc_ok_30) = (0, 0, 0, 0);
        for r in 0..n {
            let a = m.sample(3, BankId(0), RowId(r * 3), 32768);
            if 4.5 <= a.wl_off {
                wl_ok_45 += 1;
            }
            if 6.0 <= a.wl_off {
                wl_ok_60 += 1;
            }
            if 1.5 >= a.lrb_disc {
                disc_ok_15 += 1;
            }
            if 3.0 >= a.lrb_disc {
                disc_ok_30 += 1;
            }
        }
        let f = |x: u32| f64::from(x) / f64::from(n);
        assert!(f(wl_ok_45) > 0.95, "t2=4.5 wl ok {}", f(wl_ok_45));
        assert!(f(wl_ok_60) < 0.05, "t2=6 wl ok {}", f(wl_ok_60));
        assert!(
            f(disc_ok_15) > 0.3 && f(disc_ok_15) < 0.9,
            "t2=1.5 disc {}",
            f(disc_ok_15)
        );
        assert!(f(disc_ok_30) > 0.99, "t2=3 disc {}", f(disc_ok_30));
    }

    #[test]
    fn pair_jitter_is_symmetric_in_determinism_not_value() {
        let m = model();
        let j1 = m.wl_off_jitter(1, BankId(0), RowId(5), RowId(9));
        let j2 = m.wl_off_jitter(1, BankId(0), RowId(5), RowId(9));
        assert_eq!(j1, j2);
        assert_ne!(j1, m.wl_off_jitter(1, BankId(0), RowId(9), RowId(5)));
    }

    #[test]
    fn restoration_target_is_below_tras() {
        // The spec tRAS (32 ns) must comfortably cover the analog restore
        // target, otherwise nominal operation would corrupt data.
        let m = model();
        for r in 0..2000u32 {
            let a = m.sample(11, BankId(1), RowId(r), 32768);
            assert!(
                a.restore_target < 32.0,
                "row {r} target {}",
                a.restore_target
            );
        }
    }
}
