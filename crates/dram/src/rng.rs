//! Deterministic, allocation-free hashing RNG used to sample per-row analog
//! parameters, weak-cell positions, and corruption masks.
//!
//! The chip model must return *identical* behaviour for identical
//! (module seed, bank, row, …) coordinates across runs and across query
//! orders, which rules out a stateful generator for per-row properties.
//! We therefore derive every sample from a [SplitMix64] hash of the logical
//! coordinates. A small stateful [`Stream`] wrapper is provided for sequences
//! (e.g. drawing many weak-cell positions for one row).
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

/// One round of the SplitMix64 output function.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a sequence of 64-bit words into a single well-mixed word.
#[inline]
pub fn hash_words(words: &[u64]) -> u64 {
    let mut acc = 0x853C_49E6_748F_EA9Bu64;
    for &w in words {
        acc = splitmix64(acc ^ w.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    }
    splitmix64(acc)
}

/// A deterministic stream of pseudo-random values seeded from coordinates.
///
/// Two `Stream`s built from the same words produce the same sequence.
#[derive(Debug, Clone)]
pub struct Stream {
    state: u64,
}

impl Stream {
    /// Creates a stream keyed by the given coordinate words.
    pub fn from_words(words: &[u64]) -> Self {
        Stream {
            state: hash_words(words),
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of uniformity.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiplicative range reduction; bias is negligible for our bounds.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Standard normal via Box-Muller (uses two uniforms, returns one value).
    #[inline]
    pub fn next_normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn next_gauss(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.next_normal()
    }

    /// Log-normal: `exp(N(mu, sigma))`.
    #[inline]
    pub fn next_lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.next_normal()).exp()
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Convenience: a single gaussian sample keyed entirely by coordinates.
#[inline]
pub fn gauss_at(words: &[u64], mean: f64, sd: f64) -> f64 {
    Stream::from_words(words).next_gauss(mean, sd)
}

/// Convenience: a single uniform sample in `[0,1)` keyed by coordinates.
#[inline]
pub fn unit_at(words: &[u64]) -> f64 {
    Stream::from_words(words).next_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn streams_with_same_key_agree() {
        let mut a = Stream::from_words(&[1, 2, 3]);
        let mut b = Stream::from_words(&[1, 2, 3]);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_with_different_keys_disagree() {
        let mut a = Stream::from_words(&[1, 2, 3]);
        let mut b = Stream::from_words(&[1, 2, 4]);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut s = Stream::from_words(&[42]);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| s.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut s = Stream::from_words(&[7]);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| s.next_gauss(3.0, 0.5)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "sd {}", var.sqrt());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut s = Stream::from_words(&[9]);
        for _ in 0..10_000 {
            assert!(s.next_below(37) < 37);
        }
    }

    #[test]
    fn bernoulli_rate_matches_probability() {
        let mut s = Stream::from_words(&[11]);
        let n = 50_000;
        let hits = (0..n).filter(|_| s.next_bool(0.32)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.32).abs() < 0.01, "rate {rate}");
    }
}
