//! # hira-dram — circuit-behavioural DDR4 model
//!
//! This crate is the DRAM substrate of the HiRA (MICRO 2022) reproduction. It
//! models an off-the-shelf DDR4 module at the level of detail the paper's
//! real-chip experiments observe:
//!
//! * bank / subarray / local-row-buffer organization with the open-bitline
//!   sense-amplifier sharing between vertically adjacent subarrays
//!   ([`geometry`], [`isolation`]),
//! * per-row *analog* timing parameters (sense-amplifier enable point,
//!   activation latch point, word-line turn-off delay, local-row-buffer
//!   disconnect delay, charge-restoration target) with design-induced and
//!   process variation ([`analog`]),
//! * a command-level state machine that accepts *arbitrary* — including
//!   deliberately timing-violating — `ACT`/`PRE` sequences and corrupts stored
//!   data exactly when the paper's HiRA operating conditions (§3) are violated
//!   ([`bank`], [`chip`]),
//! * RowHammer disturbance with per-row thresholds, weak cells and restore
//!   efficiency ([`rowhammer`]), retention leakage ([`retention`]),
//! * DRAM-internal logical→physical row remapping ([`mapping`]) and
//!   per-manufacturer behavioural profiles ([`vendor`]).
//!
//! The perf-oriented cycle simulator (`hira-sim`) does **not** use this data
//! model; it reuses only the shared [`timing`], [`addr`] and [`isolation`]
//! vocabulary. This crate exists so that §4's Algorithms 1 and 2 can run
//! verbatim against a software chip.
//!
//! ## Example
//!
//! ```rust
//! use hira_dram::chip::DramModule;
//! use hira_dram::module_spec::ModuleSpec;
//! use hira_dram::addr::{BankId, RowId};
//!
//! // Build a module model and run a nominal activate/precharge pair.
//! let spec = ModuleSpec::sk_hynix_4gb(0xC0FFEE);
//! let mut module = DramModule::new(spec);
//! let bank = BankId(0);
//! module.write_row(bank, RowId(42), &vec![0xAA; module.geometry().row_bytes]);
//! let data = module.read_row(bank, RowId(42));
//! assert!(data.iter().all(|&b| b == 0xAA));
//! ```

pub mod addr;
pub mod analog;
pub mod bank;
pub mod chip;
pub mod command;
pub mod error;
pub mod geometry;
pub mod isolation;
pub mod mapping;
pub mod module_spec;
pub mod retention;
pub mod rng;
pub mod rowhammer;
pub mod timing;
pub mod vendor;

pub use addr::{BankId, RowId, SubarrayId};
pub use chip::DramModule;
pub use command::DramCommand;
pub use error::DramError;
pub use geometry::ChipGeometry;
pub use isolation::IsolationMap;
pub use module_spec::ModuleSpec;
pub use timing::{HiraTimings, TimingParams};
