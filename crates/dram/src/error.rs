//! Error type for the DRAM model.

use crate::addr::{BankId, RowId};
use std::error::Error;
use std::fmt;

/// Errors returned by the chip/module model's host-level helpers.
///
/// Note that *command execution itself never fails*: real DRAM silently does
/// whatever its circuits do when fed an illegal sequence. Errors arise only
/// from host-level misuse (reading a row that is not open, out-of-range
/// addresses, wrong buffer sizes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// A bank index exceeded the module geometry.
    BankOutOfRange { bank: BankId, banks: u16 },
    /// A row index exceeded the module geometry.
    RowOutOfRange { row: RowId, rows_per_bank: u32 },
    /// A column access was issued while the bank had no open row.
    NoOpenRow { bank: BankId },
    /// A host buffer had the wrong length for a row transfer.
    BadRowBuffer { expected: usize, got: usize },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::BankOutOfRange { bank, banks } => {
                write!(f, "bank {bank} out of range (module has {banks} banks)")
            }
            DramError::RowOutOfRange { row, rows_per_bank } => {
                write!(f, "row {row} out of range (bank has {rows_per_bank} rows)")
            }
            DramError::NoOpenRow { bank } => {
                write!(f, "column access to bank {bank} with no open row")
            }
            DramError::BadRowBuffer { expected, got } => {
                write!(
                    f,
                    "row buffer length {got} does not match row size {expected}"
                )
            }
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = DramError::NoOpenRow { bank: BankId(3) };
        let s = e.to_string();
        assert!(s.contains("bank 3"));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(DramError::BadRowBuffer {
            expected: 8192,
            got: 0,
        });
    }
}
