//! Typed DRAM address components.
//!
//! Newtypes keep channel/rank/bank/row/column indices from being mixed up at
//! compile time (C-NEWTYPE). All are plain `Copy` wrappers over the smallest
//! convenient integer and format transparently.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident($ty:ty)) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $ty);

        impl $name {
            /// Returns the raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<$ty> for $name {
            fn from(v: $ty) -> Self {
                $name(v)
            }
        }
    };
}

id_newtype!(
    /// A memory channel index.
    ChannelId(u8)
);
id_newtype!(
    /// A rank index within a channel.
    RankId(u8)
);
id_newtype!(
    /// A bank-group index within a rank.
    BankGroupId(u8)
);
id_newtype!(
    /// A bank index within a rank (flat across bank groups).
    BankId(u16)
);
id_newtype!(
    /// A memory-controller-visible (logical) row index within a bank.
    RowId(u32)
);
id_newtype!(
    /// A physical row index within a bank, i.e. after the DRAM-internal
    /// remapping reverse-engineered in §4 (footnote 8).
    PhysRowId(u32)
);
id_newtype!(
    /// A column (cache-line-sized) index within a row.
    ColId(u16)
);
id_newtype!(
    /// A subarray index within a bank.
    SubarrayId(u16)
);

/// A fully-resolved DRAM location down to row granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RowAddress {
    /// Channel containing the row.
    pub channel: ChannelId,
    /// Rank within the channel.
    pub rank: RankId,
    /// Bank within the rank.
    pub bank: BankId,
    /// Row within the bank.
    pub row: RowId,
}

impl fmt::Display for RowAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/rk{}/ba{}/row{}",
            self.channel, self.rank, self.bank, self.row
        )
    }
}

/// A fully-resolved DRAM location down to column granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ColumnAddress {
    /// Row-level part of the address.
    pub row: RowAddress,
    /// Column within the row.
    pub col: ColId,
}

impl fmt::Display for ColumnAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/col{}", self.row, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtypes_are_distinct_types_with_indices() {
        let b = BankId(3);
        let r = RowId(1024);
        assert_eq!(b.index(), 3);
        assert_eq!(r.index(), 1024);
        assert_eq!(format!("{b}"), "3");
    }

    #[test]
    fn row_address_displays_hierarchically() {
        let a = RowAddress {
            channel: ChannelId(1),
            rank: RankId(0),
            bank: BankId(7),
            row: RowId(99),
        };
        assert_eq!(format!("{a}"), "ch1/rk0/ba7/row99");
    }

    #[test]
    fn from_raw_conversions_work() {
        assert_eq!(RowId::from(5u32), RowId(5));
        assert_eq!(BankId::from(2u16), BankId(2));
    }
}
