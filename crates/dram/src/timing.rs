//! DDR4 timing parameters (in nanoseconds) and the HiRA timing pair.
//!
//! Values follow the paper's Table 3 and §2.2/§3: DDR4-2400 with
//! `tRC = 46.25 ns`, `tRAS = 32 ns`, `tRP = 14.25 ns`, `tFAW = 16 ns`,
//! and HiRA's customized `t1`/`t2` (3 ns each in the best configuration).
//! The refresh latency `tRFC` scales with chip capacity per the paper's
//! Expression (1): `tRFC = 110 × C_chip^0.6` ns.

/// Full set of DDR4 timing parameters used by the controller and benches.
///
/// All fields are in nanoseconds. The set is deliberately flat and public in
/// the C-struct spirit: it is passive configuration data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// Command clock period (DDR4-2400 ⇒ 0.8333 ns).
    pub t_ck: f64,
    /// ACT → column command (row-activation latency).
    pub t_rcd: f64,
    /// ACT → PRE (charge-restoration latency).
    pub t_ras: f64,
    /// PRE → ACT (precharge latency).
    pub t_rp: f64,
    /// ACT → ACT, same bank (row cycle); `>= t_ras + t_rp`.
    pub t_rc: f64,
    /// ACT → ACT, different banks, same bank group.
    pub t_rrd_l: f64,
    /// ACT → ACT, different banks, different bank groups.
    pub t_rrd_s: f64,
    /// Four-activation window (per rank).
    pub t_faw: f64,
    /// RD → RD, same bank group.
    pub t_ccd_l: f64,
    /// RD → RD, different bank groups.
    pub t_ccd_s: f64,
    /// CAS (read) latency.
    pub t_cl: f64,
    /// CAS write latency.
    pub t_cwl: f64,
    /// Burst duration on the data bus (BL8 at DDR ⇒ 4 command clocks).
    pub t_bl: f64,
    /// Write recovery: end of write burst → PRE.
    pub t_wr: f64,
    /// Write → read turnaround, same rank.
    pub t_wtr: f64,
    /// Read → PRE.
    pub t_rtp: f64,
    /// REF → next command to the rank (all-bank refresh latency).
    pub t_rfc: f64,
    /// Average periodic-refresh interval.
    pub t_refi: f64,
    /// Refresh window: every row must be refreshed once per window.
    pub t_refw: f64,
}

impl TimingParams {
    /// A canonical, exhaustive rendering of every timing field (shortest
    /// round-trip `f64` formatting) — the timing portion of a simulation's
    /// cache identity. Lives next to the struct so a new field cannot be
    /// forgotten here silently: the exhaustive destructuring below stops
    /// compiling when the struct grows.
    pub fn cache_descriptor(&self) -> String {
        let TimingParams {
            t_ck,
            t_rcd,
            t_ras,
            t_rp,
            t_rc,
            t_rrd_l,
            t_rrd_s,
            t_faw,
            t_ccd_l,
            t_ccd_s,
            t_cl,
            t_cwl,
            t_bl,
            t_wr,
            t_wtr,
            t_rtp,
            t_rfc,
            t_refi,
            t_refw,
        } = self;
        format!(
            "tCK={t_ck};tRCD={t_rcd};tRAS={t_ras};tRP={t_rp};tRC={t_rc};\
             tRRDL={t_rrd_l};tRRDS={t_rrd_s};tFAW={t_faw};tCCDL={t_ccd_l};\
             tCCDS={t_ccd_s};tCL={t_cl};tCWL={t_cwl};tBL={t_bl};tWR={t_wr};\
             tWTR={t_wtr};tRTP={t_rtp};tRFC={t_rfc};tREFI={t_refi};tREFW={t_refw}"
        )
    }

    /// DDR4-2400 parameters for a 4 Gb chip (the characterization default),
    /// matching the paper's Table 3 and JESD79-4 values.
    pub fn ddr4_2400() -> Self {
        TimingParams {
            t_ck: 0.8333,
            t_rcd: 14.25,
            t_ras: 32.0,
            t_rp: 14.25,
            t_rc: 46.25,
            t_rrd_l: 4.9,
            t_rrd_s: 3.3,
            t_faw: 16.0,
            t_ccd_l: 5.0,
            t_ccd_s: 3.333,
            t_cl: 14.25,
            t_cwl: 10.0,
            t_bl: 3.333,
            t_wr: 15.0,
            t_wtr: 7.5,
            t_rtp: 7.5,
            t_rfc: 260.0,
            t_refi: 7800.0,
            t_refw: 64_000_000.0,
        }
    }

    /// Same as [`TimingParams::ddr4_2400`] but with `tRFC` projected for the
    /// given chip capacity (in gigabits) using the paper's Expression (1).
    pub fn ddr4_2400_with_capacity(chip_gbit: f64) -> Self {
        let mut t = Self::ddr4_2400();
        t.t_rfc = trfc_for_capacity(chip_gbit);
        t
    }

    /// DDR4-3200 parameters (JESD79-4, speed bin 3200AA). The faster
    /// command clock (1.6 GHz) tightens most ns-denominated parameters
    /// slightly while the analog core (`tRAS`, charge restoration) stays
    /// put — which is exactly why the refresh/demand interference balance
    /// shifts across speed bins.
    pub fn ddr4_3200() -> Self {
        TimingParams {
            t_ck: 0.625,
            t_rcd: 13.75,
            t_ras: 32.0,
            t_rp: 13.75,
            t_rc: 45.75,
            t_rrd_l: 4.9,
            t_rrd_s: 2.5,
            t_faw: 13.125,
            t_ccd_l: 5.0,
            t_ccd_s: 2.5,
            t_cl: 13.75,
            t_cwl: 10.0,
            t_bl: 2.5,
            t_wr: 15.0,
            t_wtr: 7.5,
            t_rtp: 7.5,
            t_rfc: 260.0,
            t_refi: 7800.0,
            t_refw: 64_000_000.0,
        }
    }

    /// LPDDR4-3200 parameters (JESD209-4). The mobile standard trades a
    /// slower analog core (`tRC = 60 ns`) for *native per-bank refresh*:
    /// `REFpb` is a first-class command with `tRFCpb = tRFC/2`, and the
    /// refresh window is 32 ms — double DDR4's periodic-refresh rate.
    /// Geometry differs too: 8 banks, no bank groups (`tCCD`/`tRRD` have a
    /// single value each).
    pub fn lpddr4_3200() -> Self {
        TimingParams {
            t_ck: 0.625,
            t_rcd: 18.0,
            t_ras: 42.0,
            t_rp: 18.0,
            t_rc: 60.0,
            t_rrd_l: 10.0,
            t_rrd_s: 10.0,
            t_faw: 40.0,
            t_ccd_l: 5.0,
            t_ccd_s: 5.0,
            t_cl: 17.5,
            t_cwl: 8.75,
            t_bl: 2.5,
            t_wr: 18.0,
            t_wtr: 10.0,
            t_rtp: 7.5,
            t_rfc: 280.0,
            t_refi: 3904.0,
            t_refw: 32_000_000.0,
        }
    }

    /// DDR5-4800 parameters (JESD79-5). The paper's §2.3 motivates HiRA
    /// partly through DDR5's tighter refresh regime: a 32 ms `tREFW` and
    /// 3.9 µs `tREFI` double the periodic-refresh rate relative to DDR4.
    pub fn ddr5_4800() -> Self {
        TimingParams {
            t_ck: 0.4167,
            t_rcd: 16.0,
            t_ras: 32.0,
            t_rp: 16.0,
            t_rc: 48.0,
            t_rrd_l: 5.0,
            t_rrd_s: 3.3,
            t_faw: 13.3,
            t_ccd_l: 5.0,
            t_ccd_s: 3.333,
            t_cl: 16.7,
            t_cwl: 14.2,
            t_bl: 3.333,
            t_wr: 30.0,
            t_wtr: 10.0,
            t_rtp: 7.5,
            t_rfc: 295.0,
            t_refi: 3900.0,
            t_refw: 32_000_000.0,
        }
    }

    /// Latency of refreshing one row with nominal commands: `tRAS + tRP`.
    pub fn single_row_refresh_ns(&self) -> f64 {
        self.t_ras + self.t_rp
    }

    /// Latency of refreshing two rows back-to-back with nominal commands:
    /// `tRAS + tRP + tRAS` (§3 footnote 2) = 78.25 ns at DDR4-2400.
    pub fn two_row_refresh_ns(&self) -> f64 {
        self.t_ras + self.t_rp + self.t_ras
    }
}

/// The paper's Expression (1): `tRFC = 110 × C_chip^0.6` ns, `C_chip` in Gb.
///
/// This is the state-of-the-art regression model \[124\] the paper uses to
/// project refresh latency for future high-capacity chips.
pub fn trfc_for_capacity(chip_gbit: f64) -> f64 {
    assert!(chip_gbit > 0.0, "chip capacity must be positive");
    110.0 * chip_gbit.powf(0.6)
}

/// HiRA's two custom timing parameters (§3, Fig. 2).
///
/// `t1` is the first-`ACT` → `PRE` gap, `t2` the `PRE` → second-`ACT` gap.
/// SoftMC on the Alveo U200 can place commands on a 1.5 ns grid (§4.1 fn. 5),
/// so the experimentally swept values are multiples of 1.5 ns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HiraTimings {
    /// First ACT → PRE latency in ns.
    pub t1: f64,
    /// PRE → second ACT latency in ns.
    pub t2: f64,
}

impl HiraTimings {
    /// The best configuration found in §4.2: `t1 = t2 = 3 ns`.
    pub fn nominal() -> Self {
        HiraTimings { t1: 3.0, t2: 3.0 }
    }

    /// Total added latency before the second row's activation begins.
    pub fn lead_ns(&self) -> f64 {
        self.t1 + self.t2
    }

    /// Latency of refreshing two rows with HiRA: `t1 + t2 + tRAS`
    /// (= 38 ns at the nominal configuration, §4.2).
    pub fn two_row_refresh_ns(&self, timing: &TimingParams) -> f64 {
        self.lead_ns() + timing.t_ras
    }

    /// The grid of `t1`/`t2` values swept in Fig. 4.
    pub fn figure4_grid() -> Vec<HiraTimings> {
        let steps = [1.5, 3.0, 4.5, 6.0];
        let mut out = Vec::with_capacity(16);
        for &t1 in &steps {
            for &t2 in &steps {
                out.push(HiraTimings { t1, t2 });
            }
        }
        out
    }
}

impl Default for HiraTimings {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_is_internally_consistent() {
        let t = TimingParams::ddr4_2400();
        assert!(t.t_rc >= t.t_ras + t.t_rp);
        assert!((t.t_rc - 46.25).abs() < 1e-9);
        assert!((t.t_ras - 32.0).abs() < 1e-9);
    }

    #[test]
    fn two_row_nominal_latency_matches_paper() {
        let t = TimingParams::ddr4_2400();
        assert!((t.two_row_refresh_ns() - 78.25).abs() < 1e-9);
    }

    #[test]
    fn hira_two_row_latency_matches_paper() {
        let t = TimingParams::ddr4_2400();
        let h = HiraTimings::nominal();
        assert!((h.two_row_refresh_ns(&t) - 38.0).abs() < 1e-9);
        // Headline claim: 51.4% reduction (§1, §4.2).
        let reduction = 1.0 - h.two_row_refresh_ns(&t) / t.two_row_refresh_ns();
        assert!((reduction - 0.514).abs() < 0.002, "reduction {reduction}");
    }

    #[test]
    fn ddr4_3200_tightens_the_grid_but_not_the_core() {
        let slow = TimingParams::ddr4_2400();
        let fast = TimingParams::ddr4_3200();
        assert!(fast.t_ck < slow.t_ck);
        // The analog charge-restoration core is speed-bin independent.
        assert!((fast.t_ras - slow.t_ras).abs() < 1e-9);
        assert!(fast.t_rc >= fast.t_ras + fast.t_rp);
        assert!(fast.t_faw >= 4.0 * fast.t_rrd_s);
    }

    #[test]
    fn lpddr4_is_per_bank_refresh_shaped() {
        let t = TimingParams::lpddr4_3200();
        assert!(t.t_rc >= t.t_ras + t.t_rp);
        assert!(t.t_faw >= 4.0 * t.t_rrd_s);
        // 32 ms window: double DDR4's periodic-refresh rate.
        assert!((TimingParams::ddr4_2400().t_refw / t.t_refw - 2.0).abs() < 1e-9);
        assert!(t.t_rfc < t.t_refi);
    }

    #[test]
    fn ddr5_doubles_the_refresh_rate() {
        let d4 = TimingParams::ddr4_2400();
        let d5 = TimingParams::ddr5_4800();
        assert!((d4.t_refw / d5.t_refw - 2.0).abs() < 1e-9);
        assert!((d4.t_refi / d5.t_refi - 2.0).abs() < 1e-9);
        assert!(d5.t_rc >= d5.t_ras + d5.t_rp);
    }

    #[test]
    fn trfc_scaling_matches_expression_1() {
        // 8 Gb: 110 * 8^0.6 = 382.9 ns; 128 Gb: ~2023 ns.
        assert!((trfc_for_capacity(8.0) - 110.0 * 8f64.powf(0.6)).abs() < 1e-9);
        let v = trfc_for_capacity(128.0);
        assert!(v > 2000.0 && v < 2050.0, "tRFC(128Gb) = {v}");
        // Monotone in capacity.
        assert!(trfc_for_capacity(16.0) > trfc_for_capacity(8.0));
    }

    #[test]
    fn figure4_grid_is_the_full_cartesian_product() {
        let grid = HiraTimings::figure4_grid();
        assert_eq!(grid.len(), 16);
        assert!(grid.iter().any(|h| h.t1 == 1.5 && h.t2 == 6.0));
        assert!(grid.iter().any(|h| h.t1 == 3.0 && h.t2 == 3.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn trfc_rejects_nonpositive_capacity() {
        trfc_for_capacity(0.0);
    }
}
