//! DRAM-internal logical→physical row remapping (§4 footnote 8).
//!
//! Manufacturers remap memory-controller-visible row addresses to physical
//! row locations (for redundancy repair and layout reasons), and the mapping
//! varies across modules. RowHammer experiments need *physical* adjacency, so
//! the paper reconstructs the mapping with single-sided hammering; our
//! characterization crate does the same against this model.
//!
//! Two mapping families cover the schemes reported in the literature
//! ([9, 24, 46, 51, 73, 75, 93, 102]):
//!
//! * [`RowMapping::Identity`] — physical = logical,
//! * [`RowMapping::BitSwizzle`] — XOR-and-swap on low address bits within
//!   512-row blocks (MSB region untouched, as on real parts where remapping
//!   is subarray-local).

use crate::addr::{PhysRowId, RowId};

/// A bijective logical→physical row mapping within a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowMapping {
    /// No remapping.
    Identity,
    /// Within each 512-row block: XOR bit 0 into bits [1..=k] depending on a
    /// per-module pattern. This is self-inverse and subarray-local.
    BitSwizzle {
        /// XOR mask applied to the low 9 bits when bit 0 of the row is set.
        mask: u16,
    },
}

impl RowMapping {
    /// Derives a module-specific mapping from its seed.
    pub fn for_module(seed: u64) -> Self {
        // Keep bit 0 in the mask so the transform stays self-inverse:
        // p = l ^ (mask * bit0(l)) flips bit 0 only if mask bit0 = 0; we use
        // masks with bit0 cleared so bit 0 (the trigger) is preserved.
        let mask = (crate::rng::splitmix64(seed ^ 0x4D41_5050) as u16) & 0x1FE;
        RowMapping::BitSwizzle { mask }
    }

    /// Maps a logical row to its physical location.
    #[inline]
    pub fn to_physical(self, row: RowId) -> PhysRowId {
        match self {
            RowMapping::Identity => PhysRowId(row.0),
            RowMapping::BitSwizzle { mask } => {
                let low = row.0 & 0x1FF;
                let swz = if low & 1 == 1 {
                    low ^ u32::from(mask)
                } else {
                    low
                };
                PhysRowId((row.0 & !0x1FF) | swz)
            }
        }
    }

    /// Maps a physical row back to the logical address.
    #[inline]
    pub fn to_logical(self, row: PhysRowId) -> RowId {
        match self {
            RowMapping::Identity => RowId(row.0),
            RowMapping::BitSwizzle { mask } => {
                // Self-inverse because the trigger bit is outside the mask.
                let low = row.0 & 0x1FF;
                let swz = if low & 1 == 1 {
                    low ^ u32::from(mask)
                } else {
                    low
                };
                RowId((row.0 & !0x1FF) | swz)
            }
        }
    }

    /// The physical neighbours (victim candidates) of a physical row, within
    /// `rows_per_bank`.
    pub fn physical_neighbors(row: PhysRowId, rows_per_bank: u32) -> Vec<PhysRowId> {
        let mut v = Vec::with_capacity(2);
        if row.0 > 0 {
            v.push(PhysRowId(row.0 - 1));
        }
        if row.0 + 1 < rows_per_bank {
            v.push(PhysRowId(row.0 + 1));
        }
        v
    }

    /// Convenience: the logical addresses of the physical neighbours of a
    /// *logical* row — what a double-sided RowHammer attacker needs.
    pub fn logical_aggressors(self, victim: RowId, rows_per_bank: u32) -> Vec<RowId> {
        Self::physical_neighbors(self.to_physical(victim), rows_per_bank)
            .into_iter()
            .map(|p| self.to_logical(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swizzle_is_bijective_over_a_block() {
        let m = RowMapping::for_module(77);
        let mut seen = std::collections::HashSet::new();
        for r in 0..512u32 {
            let p = m.to_physical(RowId(r));
            assert!(seen.insert(p.0), "collision at {r}");
            assert_eq!(m.to_logical(p), RowId(r), "not self-inverse at {r}");
        }
    }

    #[test]
    fn swizzle_stays_within_block() {
        let m = RowMapping::for_module(123);
        for r in [0u32, 511, 512, 1023, 32_000] {
            let p = m.to_physical(RowId(r));
            assert_eq!(p.0 & !0x1FF, r & !0x1FF, "left block at {r}");
        }
    }

    #[test]
    fn identity_maps_trivially() {
        let m = RowMapping::Identity;
        assert_eq!(m.to_physical(RowId(42)), PhysRowId(42));
        assert_eq!(m.to_logical(PhysRowId(42)), RowId(42));
    }

    #[test]
    fn aggressors_are_physical_neighbors() {
        let m = RowMapping::Identity;
        let aggr = m.logical_aggressors(RowId(100), 32768);
        assert_eq!(aggr, vec![RowId(99), RowId(101)]);
        // Edge rows have a single neighbour.
        assert_eq!(m.logical_aggressors(RowId(0), 32768).len(), 1);
        assert_eq!(m.logical_aggressors(RowId(32767), 32768).len(), 1);
    }

    #[test]
    fn swizzled_aggressors_roundtrip() {
        let m = RowMapping::for_module(9);
        let victim = RowId(1000);
        for a in m.logical_aggressors(victim, 32768) {
            let pa = m.to_physical(a);
            let pv = m.to_physical(victim);
            assert_eq!(pa.0.abs_diff(pv.0), 1, "aggressor {a} not adjacent");
        }
    }

    #[test]
    fn different_modules_get_different_masks_often() {
        let distinct: std::collections::HashSet<u16> = (0..32u64)
            .map(|s| match RowMapping::for_module(s) {
                RowMapping::BitSwizzle { mask } => mask,
                RowMapping::Identity => 0,
            })
            .collect();
        assert!(distinct.len() > 16);
    }
}
