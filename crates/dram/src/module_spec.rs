//! Module definitions: the seven DIMMs of Table 1 / Table 4 plus
//! HiRA-inert comparison parts.
//!
//! A [`ModuleSpec`] bundles everything identity-dependent: geometry, the
//! deterministic seed, the analog/RowHammer/retention distribution knobs, the
//! subarray-isolation parameters (calibrated to the Table 4 coverage bands)
//! and the manufacturer behaviour profile.

use crate::analog::AnalogModel;
use crate::geometry::ChipGeometry;
use crate::isolation::IsolationMap;
use crate::mapping::RowMapping;
use crate::retention::RetentionModel;
use crate::rowhammer::RowHammerModel;
use crate::vendor::Manufacturer;

/// Full static description of one DRAM module.
#[derive(Debug, Clone)]
pub struct ModuleSpec {
    /// Module label as in Table 1 (e.g. "C0").
    pub label: String,
    /// DIMM vendor string (e.g. "SK Hynix").
    pub dimm_vendor: String,
    /// Chip manufacturer (controls HiRA capability).
    pub manufacturer: Manufacturer,
    /// Die revision letter from Table 1.
    pub die_rev: char,
    /// Manufacturing date code, `(week, year)`.
    pub date_code: (u8, u16),
    /// Geometry of the module.
    pub geometry: ChipGeometry,
    /// Deterministic seed: all per-row behaviour derives from this.
    pub seed: u64,
    /// Analog timing distributions.
    pub analog: AnalogModel,
    /// RowHammer distributions.
    pub rowhammer: RowHammerModel,
    /// Retention distributions.
    pub retention: RetentionModel,
    /// Target mean row-pair isolation fraction among *far* pairs. Measured
    /// HiRA coverage over a first/middle/last tested-row set is lower by the
    /// structural same/adjacent-subarray exclusion factor (≈0.79 at the
    /// paper's 3×2K scale), which is how these values map to Table 4's
    /// 25-38 % coverage averages.
    pub isolation_target: f64,
    /// Per-subarray spread of the isolation fraction.
    pub isolation_spread: f64,
    /// Internal logical→physical row mapping.
    pub mapping: RowMapping,
}

impl ModuleSpec {
    /// Builds the isolation map for this module (identical across banks,
    /// §4.4.1).
    pub fn isolation_map(&self) -> IsolationMap {
        IsolationMap::new(
            self.seed,
            self.geometry.rows_per_bank,
            self.geometry.rows_per_subarray,
            self.isolation_target,
            self.isolation_spread,
        )
    }

    #[allow(clippy::too_many_arguments)] // one flat row of Table 4 per call site
    fn sk_hynix_die(
        label: &str,
        dimm_vendor: &str,
        die_rev: char,
        date_code: (u8, u16),
        geometry: ChipGeometry,
        seed: u64,
        isolation_target: f64,
        isolation_spread: f64,
        eff_mean: f64,
    ) -> Self {
        let rowhammer = RowHammerModel {
            eff_mean,
            ..RowHammerModel::default()
        };
        ModuleSpec {
            label: label.to_owned(),
            dimm_vendor: dimm_vendor.to_owned(),
            manufacturer: Manufacturer::SkHynix,
            die_rev,
            date_code,
            geometry,
            seed,
            analog: AnalogModel::default(),
            rowhammer,
            retention: RetentionModel::default(),
            isolation_target,
            isolation_spread,
            mapping: RowMapping::for_module(seed),
        }
    }

    /// Module A0: G.SKill F4-2400C17S-8GNT, 4 Gb B-die (Table 4:
    /// measured coverage 24.8/25.0/25.5 %, normalized NRH avg 1.90).
    pub fn a0() -> Self {
        Self::sk_hynix_die(
            "A0",
            "G.SKill",
            'B',
            (42, 2020),
            ChipGeometry::module_4gb(),
            0xA0,
            0.317,
            0.004,
            0.947,
        )
    }

    /// Module A1: second G.SKill 4 Gb B-die DIMM (coverage avg 26.6 %).
    pub fn a1() -> Self {
        Self::sk_hynix_die(
            "A1",
            "G.SKill",
            'B',
            (42, 2020),
            ChipGeometry::module_4gb(),
            0xA1,
            0.337,
            0.012,
            0.950,
        )
    }

    /// Module B0: Kingston KSM32RD8/16HDR, 8 Gb D-die (coverage avg 32.6 %).
    pub fn b0() -> Self {
        Self::sk_hynix_die(
            "B0",
            "Kingston",
            'D',
            (48, 2020),
            ChipGeometry::module_8gb(),
            0xB0,
            0.413,
            0.032,
            0.946,
        )
    }

    /// Module B1: second Kingston 8 Gb D-die DIMM (coverage avg 31.6 %).
    pub fn b1() -> Self {
        Self::sk_hynix_die(
            "B1",
            "Kingston",
            'D',
            (48, 2020),
            ChipGeometry::module_8gb(),
            0xB1,
            0.400,
            0.028,
            0.948,
        )
    }

    /// Module C0: SK Hynix HMAA4GU6AJR8N-XN, 4 Gb F-die (coverage avg 35.3 %).
    pub fn c0() -> Self {
        Self::sk_hynix_die(
            "C0",
            "SK Hynix",
            'F',
            (51, 2020),
            ChipGeometry::module_4gb(),
            0xC0,
            0.447,
            0.040,
            0.946,
        )
    }

    /// Module C1: second SK Hynix F-die DIMM (coverage avg 38.4 %, widest
    /// spread in Table 4: 29.2-49.9 %).
    pub fn c1() -> Self {
        Self::sk_hynix_die(
            "C1",
            "SK Hynix",
            'F',
            (51, 2020),
            ChipGeometry::module_4gb(),
            0xC1,
            0.486,
            0.060,
            0.945,
        )
    }

    /// Module C2: third SK Hynix F-die DIMM (coverage avg 36.1 %).
    pub fn c2() -> Self {
        Self::sk_hynix_die(
            "C2",
            "SK Hynix",
            'F',
            (51, 2020),
            ChipGeometry::module_4gb(),
            0xC2,
            0.457,
            0.045,
            0.951,
        )
    }

    /// All seven HiRA-capable modules of Table 1/4, in label order.
    pub fn table1_modules() -> Vec<ModuleSpec> {
        vec![
            Self::a0(),
            Self::a1(),
            Self::b0(),
            Self::b1(),
            Self::c0(),
            Self::c1(),
            Self::c2(),
        ]
    }

    /// A representative Samsung part (§12: HiRA-inert; the timing-violating
    /// commands are ignored by the decoder).
    pub fn samsung_4gb(seed: u64) -> Self {
        let mut spec = Self::sk_hynix_die(
            "S0",
            "Samsung",
            'B',
            (30, 2020),
            ChipGeometry::module_4gb(),
            seed,
            0.41,
            0.03,
            0.947,
        );
        spec.manufacturer = Manufacturer::Samsung;
        spec.dimm_vendor = "Samsung".to_owned();
        spec
    }

    /// A representative Micron part (§12: HiRA-inert).
    pub fn micron_4gb(seed: u64) -> Self {
        let mut spec = Self::sk_hynix_die(
            "M0",
            "Micron",
            'E',
            (25, 2020),
            ChipGeometry::module_4gb(),
            seed,
            0.41,
            0.03,
            0.947,
        );
        spec.manufacturer = Manufacturer::Micron;
        spec.dimm_vendor = "Micron".to_owned();
        spec
    }

    /// A generic SK Hynix-style module with the paper's average behaviour,
    /// handy for examples and tests.
    pub fn sk_hynix_4gb(seed: u64) -> Self {
        Self::sk_hynix_die(
            "X0",
            "Generic",
            'F',
            (51, 2020),
            ChipGeometry::module_4gb(),
            seed,
            0.405,
            0.03,
            0.947,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_seven_modules_with_unique_labels() {
        let mods = ModuleSpec::table1_modules();
        assert_eq!(mods.len(), 7);
        let labels: std::collections::HashSet<_> = mods.iter().map(|m| m.label.clone()).collect();
        assert_eq!(labels.len(), 7);
    }

    #[test]
    fn isolation_targets_match_table4_bands() {
        use crate::addr::RowId;
        for m in ModuleSpec::table1_modules() {
            let map = m.isolation_map();
            let realized: f64 = (0..32)
                .map(|i| map.isolated_fraction(RowId(i * 997 + 5), 256))
                .sum::<f64>()
                / 32.0;
            assert!(
                (realized - m.isolation_target).abs() < 0.05,
                "{}: target {} realized {}",
                m.label,
                m.isolation_target,
                realized
            );
        }
    }

    #[test]
    fn b_modules_are_8gb_others_4gb() {
        assert_eq!(ModuleSpec::b0().geometry.rows_per_bank, 64 * 1024);
        assert_eq!(ModuleSpec::a0().geometry.rows_per_bank, 32 * 1024);
        assert_eq!(ModuleSpec::c2().geometry.rows_per_bank, 32 * 1024);
    }

    #[test]
    fn non_hynix_parts_are_hira_inert() {
        assert!(!ModuleSpec::samsung_4gb(1).manufacturer.hira_capable());
        assert!(!ModuleSpec::micron_4gb(1).manufacturer.hira_capable());
        assert!(ModuleSpec::c0().manufacturer.hira_capable());
    }
}
