//! Manufacturer behavioural profiles (§4.1 footnote 3, §12).
//!
//! The paper observes successful HiRA only on SK Hynix dies; Samsung and
//! Micron chips appear to *ignore* `PRE` or `ACT` commands that grossly
//! violate `tRAS`/`tRP` (the hypothesized guard logic in §12). We model the
//! three behaviours so the characterization harness can reproduce both the
//! positive and the negative results.

use std::fmt;

/// DRAM manufacturer identity for a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Manufacturer {
    /// SK Hynix — executes interruptible precharges (HiRA works).
    SkHynix,
    /// Samsung — ignores timing-violating `PRE`/second-`ACT` (HiRA inert).
    Samsung,
    /// Micron — ignores timing-violating `PRE`/second-`ACT` (HiRA inert).
    Micron,
}

impl fmt::Display for Manufacturer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Manufacturer::SkHynix => "SK Hynix",
            Manufacturer::Samsung => "Samsung",
            Manufacturer::Micron => "Micron",
        };
        f.write_str(s)
    }
}

/// How a die's command decoder treats grossly timing-violating commands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ViolationBehavior {
    /// The analog circuits follow the command stream as-is; an `ACT` arriving
    /// during an in-flight `PRE` interrupts it (HiRA-capable, §3).
    Execute,
    /// The decoder drops a `PRE` issued before `tRAS_guard` has elapsed and an
    /// `ACT` issued before `tRP_guard` after a `PRE` (HiRA-inert, §12).
    IgnoreViolating {
        /// Minimum `ACT`→`PRE` gap the decoder will honour, in ns.
        t_ras_guard: f64,
        /// Minimum `PRE`→`ACT` gap the decoder will honour, in ns.
        t_rp_guard: f64,
    },
}

impl Manufacturer {
    /// The violation behaviour inferred for this manufacturer in §12.
    pub fn violation_behavior(self) -> ViolationBehavior {
        match self {
            Manufacturer::SkHynix => ViolationBehavior::Execute,
            // Guard bands: anything far below the JEDEC values is dropped.
            Manufacturer::Samsung | Manufacturer::Micron => ViolationBehavior::IgnoreViolating {
                t_ras_guard: 20.0,
                t_rp_guard: 10.0,
            },
        }
    }

    /// Whether HiRA is expected to function on this manufacturer's dies.
    pub fn hira_capable(self) -> bool {
        matches!(self.violation_behavior(), ViolationBehavior::Execute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_sk_hynix_is_hira_capable() {
        assert!(Manufacturer::SkHynix.hira_capable());
        assert!(!Manufacturer::Samsung.hira_capable());
        assert!(!Manufacturer::Micron.hira_capable());
    }

    #[test]
    fn guard_bands_are_below_jedec_but_above_hira_timings() {
        if let ViolationBehavior::IgnoreViolating {
            t_ras_guard,
            t_rp_guard,
        } = Manufacturer::Micron.violation_behavior()
        {
            // HiRA's t1=3 ns / t2=3 ns must fall inside the guard (dropped),
            // while nominal tRAS=32 / tRP=14.25 must be honoured.
            assert!(t_ras_guard > 3.0 && t_ras_guard < 32.0);
            assert!(t_rp_guard > 3.0 && t_rp_guard < 14.25);
        } else {
            panic!("expected IgnoreViolating");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Manufacturer::SkHynix.to_string(), "SK Hynix");
    }
}
