//! DDR4 command vocabulary shared by the chip model and the cycle simulator.

use crate::addr::{BankId, ColId, RowId};
use std::fmt;

/// A DDR4 command as seen on the command/address bus.
///
/// The chip model accepts any sequence of these with arbitrary timestamps —
/// like real silicon, it performs no timing validation. Timing correctness is
/// the issuer's (memory controller's / SoftMC program's) responsibility, and
/// *violating* it deliberately is exactly how HiRA works.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCommand {
    /// Activate (open) `row` in `bank`.
    Act { bank: BankId, row: RowId },
    /// Precharge `bank` (close any open row(s); no row address is supplied,
    /// which is why one `PRE` suffices to close both HiRA rows, §3 fn. 1).
    Pre { bank: BankId },
    /// Precharge all banks in the rank.
    PreAll,
    /// Read a burst from the open row.
    Rd { bank: BankId, col: ColId },
    /// Read with auto-precharge.
    RdA { bank: BankId, col: ColId },
    /// Write a burst to the open row.
    Wr { bank: BankId, col: ColId },
    /// Write with auto-precharge.
    WrA { bank: BankId, col: ColId },
    /// All-bank refresh (the rank is busy for `tRFC`).
    Ref,
    /// No operation / DES. Present so programs can pad slots explicitly.
    Nop,
}

impl DramCommand {
    /// Returns the bank the command targets, if it is bank-scoped.
    pub fn bank(&self) -> Option<BankId> {
        match *self {
            DramCommand::Act { bank, .. }
            | DramCommand::Pre { bank }
            | DramCommand::Rd { bank, .. }
            | DramCommand::RdA { bank, .. }
            | DramCommand::Wr { bank, .. }
            | DramCommand::WrA { bank, .. } => Some(bank),
            DramCommand::PreAll | DramCommand::Ref | DramCommand::Nop => None,
        }
    }

    /// True for commands that open a row.
    pub fn is_activate(&self) -> bool {
        matches!(self, DramCommand::Act { .. })
    }

    /// True for column accesses (reads or writes).
    pub fn is_column(&self) -> bool {
        matches!(
            self,
            DramCommand::Rd { .. }
                | DramCommand::RdA { .. }
                | DramCommand::Wr { .. }
                | DramCommand::WrA { .. }
        )
    }

    /// True for commands that (eventually) close rows.
    pub fn is_precharge(&self) -> bool {
        matches!(
            self,
            DramCommand::Pre { .. }
                | DramCommand::PreAll
                | DramCommand::RdA { .. }
                | DramCommand::WrA { .. }
        )
    }
}

impl fmt::Display for DramCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DramCommand::Act { bank, row } => write!(f, "ACT b{bank} r{row}"),
            DramCommand::Pre { bank } => write!(f, "PRE b{bank}"),
            DramCommand::PreAll => write!(f, "PREA"),
            DramCommand::Rd { bank, col } => write!(f, "RD b{bank} c{col}"),
            DramCommand::RdA { bank, col } => write!(f, "RDA b{bank} c{col}"),
            DramCommand::Wr { bank, col } => write!(f, "WR b{bank} c{col}"),
            DramCommand::WrA { bank, col } => write!(f, "WRA b{bank} c{col}"),
            DramCommand::Ref => write!(f, "REF"),
            DramCommand::Nop => write!(f, "NOP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_extraction_matches_scope() {
        let act = DramCommand::Act {
            bank: BankId(2),
            row: RowId(5),
        };
        assert_eq!(act.bank(), Some(BankId(2)));
        assert_eq!(DramCommand::Ref.bank(), None);
        assert_eq!(DramCommand::PreAll.bank(), None);
    }

    #[test]
    fn classification_predicates() {
        let rd = DramCommand::Rd {
            bank: BankId(0),
            col: ColId(1),
        };
        let rda = DramCommand::RdA {
            bank: BankId(0),
            col: ColId(1),
        };
        assert!(rd.is_column() && !rd.is_precharge());
        assert!(rda.is_column() && rda.is_precharge());
        assert!(DramCommand::Act {
            bank: BankId(0),
            row: RowId(0)
        }
        .is_activate());
        assert!(DramCommand::PreAll.is_precharge());
    }

    #[test]
    fn display_is_compact() {
        let act = DramCommand::Act {
            bank: BankId(1),
            row: RowId(7),
        };
        assert_eq!(format!("{act}"), "ACT b1 r7");
    }
}
