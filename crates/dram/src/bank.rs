//! Bank-level circuit state machine.
//!
//! This is where HiRA's physics live. The machine accepts `ACT`/`PRE` events
//! with arbitrary (ns) timestamps and reports *circuit effects* — which rows
//! were sensed, closed with what restoration fraction, or corrupted — that the
//! chip layer ([`crate::chip`]) applies to stored data.
//!
//! The behavioural rules implement the paper's four HiRA operating conditions
//! (§3) plus the tRP-violation behaviour that explains the Fig. 4 envelope:
//!
//! 1. a `PRE` arriving before the first row's sense amplifiers have latched
//!    (`t1 < sa_enable`) destroys the row;
//! 2. a `PRE` arriving after activation has committed (`t1 > act_latch`) is a
//!    full, non-interruptible precharge — a subsequent early `ACT` senses on
//!    a bank that is mid-equalization and corrupts the new row;
//! 3. an interrupting `ACT` must arrive while the first row's word line is
//!    still on (`t2 ≤ wl_off + pair jitter`), otherwise the first row closed
//!    with partial restoration;
//! 4. the interrupting `ACT` must give the precharge enough time to cut the
//!    first local row buffer from the bank I/O (`t2 ≥ lrb_disc + pair
//!    jitter`), otherwise both row buffers drive the bank I/O and corrupt
//!    each other;
//! 5. the two rows' subarrays must be electrically isolated
//!    ([`crate::isolation::IsolationMap`]), otherwise charge sharing on common
//!    bitlines/sense-amps garbles both rows.

use crate::addr::{BankId, RowId};
use crate::analog::AnalogModel;
use crate::isolation::IsolationMap;
use crate::rng::Stream;
use crate::vendor::ViolationBehavior;

/// Word-line turn-off delay of a *committed* (normal) precharge, ns.
const COMMITTED_WL_OFF_NS: f64 = 2.0;

/// Observable outcome of a command on the bank circuits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CircuitEffect {
    /// The row's cell contents were irrecoverably garbled.
    Corrupt { row: RowId },
    /// The row was sensed (latched into its local row buffer) at `at` ns.
    Sensed { row: RowId, at: f64 },
    /// The row was closed at `at` ns; `frac ≥ 1.0` means full charge
    /// restoration, smaller values mean partial restoration (weak cells may
    /// flip). `at` is the physical word-line-off time, which can precede the
    /// command that observes the close (closes are evaluated lazily).
    Restored { row: RowId, frac: f64, at: f64 },
    /// The command decoder dropped an `ACT` (vendor guard or bank-active).
    ActIgnored { row: RowId },
    /// The command decoder dropped a `PRE` (vendor guard).
    PreIgnored,
}

/// Context the bank needs from the module to evaluate analog behaviour.
#[derive(Debug, Clone, Copy)]
pub struct CircuitCtx<'a> {
    /// Module seed.
    pub seed: u64,
    /// This bank's id.
    pub bank: BankId,
    /// Rows per bank (for design-induced position skew).
    pub rows_per_bank: u32,
    /// Rows per subarray (to derive subarray ids).
    pub rows_per_subarray: u32,
    /// Analog distribution knobs.
    pub analog: &'a AnalogModel,
    /// Row-pair electrical-isolation predicate.
    pub isolation: &'a IsolationMap,
    /// Command-decoder behaviour (vendor dependent).
    pub behavior: ViolationBehavior,
}

#[derive(Debug, Clone, Copy)]
struct Engaged {
    row: RowId,
    act_at: f64,
    /// Set when the sense amplifiers never latched (data already destroyed).
    dead: bool,
    /// Sampled analog profile of the row (cached at ACT time).
    sa_enable: f64,
    act_latch: f64,
    wl_off: f64,
    lrb_disc: f64,
    restore_target: f64,
    /// When a `PRE` is in flight: whether it was committed for this row.
    committed: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// No open row; bitlines ready for activation at `ready_at`.
    Precharged { ready_at: f64 },
    /// One or more rows engaged, no precharge in flight.
    Active,
    /// `PRE` issued at `pre_at`; word lines turning off.
    Precharging { pre_at: f64 },
}

/// The per-bank circuit state machine.
#[derive(Debug, Clone)]
pub struct BankCircuit {
    phase: Phase,
    engaged: Vec<Engaged>,
    /// Counts precharge events (keys the per-event bitline-ready sample).
    pre_events: u64,
    /// Time of the most recent honoured `PRE` (for vendor guards).
    last_pre_at: f64,
}

impl Default for BankCircuit {
    fn default() -> Self {
        Self::new()
    }
}

impl BankCircuit {
    /// A bank in the precharged state, ready immediately.
    pub fn new() -> Self {
        BankCircuit {
            phase: Phase::Precharged {
                ready_at: f64::NEG_INFINITY,
            },
            engaged: Vec::with_capacity(2),
            pre_events: 0,
            last_pre_at: f64::NEG_INFINITY,
        }
    }

    /// Rows currently engaged (connected to their local row buffers).
    pub fn open_rows(&self) -> Vec<RowId> {
        self.engaged
            .iter()
            .filter(|e| !e.dead)
            .map(|e| e.row)
            .collect()
    }

    /// Whether `row` is open (engaged and sensed) at time `t`.
    pub fn is_open(&self, row: RowId, t: f64) -> bool {
        self.engaged
            .iter()
            .any(|e| e.row == row && !e.dead && t >= e.act_at + e.sa_enable)
    }

    fn bitline_ready_sample(&self, ctx: &CircuitCtx<'_>, pre_at: f64) -> f64 {
        let mut s = Stream::from_words(&[
            ctx.seed,
            0x0042_4C52,
            u64::from(ctx.bank.0),
            self.pre_events,
        ]);
        pre_at
            + (ctx.analog.bitline_ready_mean + ctx.analog.bitline_ready_sd * s.next_normal())
                .max(6.0)
    }

    /// Advances lazily-expiring state (a precharge whose word lines have all
    /// turned off by `t`) and emits the resulting close effects.
    fn settle(&mut self, ctx: &CircuitCtx<'_>, t: f64, out: &mut Vec<CircuitEffect>) {
        if let Phase::Precharging { pre_at } = self.phase {
            // Without an interrupting ACT, every engaged row closes at its
            // own word-line-off point (base value; pair jitter only applies
            // to interrupt races).
            let all_closed = self.engaged.iter().all(|e| {
                let off = if e.committed {
                    COMMITTED_WL_OFF_NS
                } else {
                    e.wl_off
                };
                e.dead || t >= pre_at + off
            });
            if all_closed {
                for e in self.engaged.drain(..) {
                    let off = if e.committed {
                        COMMITTED_WL_OFF_NS
                    } else {
                        e.wl_off
                    };
                    close_row(&e, pre_at + off, out);
                }
                self.phase = Phase::Precharged {
                    ready_at: self.bitline_ready_sample(ctx, pre_at),
                };
            }
        }
    }

    fn engage(&mut self, ctx: &CircuitCtx<'_>, row: RowId, t: f64) -> Engaged {
        let a = ctx
            .analog
            .sample(ctx.seed, ctx.bank, row, ctx.rows_per_bank);
        Engaged {
            row,
            act_at: t,
            dead: false,
            sa_enable: a.sa_enable,
            act_latch: a.act_latch,
            wl_off: a.wl_off,
            lrb_disc: a.lrb_disc,
            restore_target: a.restore_target,
            committed: false,
        }
    }

    /// Executes an `ACT` at time `t` (ns). Returns the circuit effects.
    pub fn act(&mut self, ctx: &CircuitCtx<'_>, row: RowId, t: f64) -> Vec<CircuitEffect> {
        let mut out = Vec::new();

        // Vendor guard: some decoders drop an ACT that violates tRP (§12).
        if let ViolationBehavior::IgnoreViolating { t_rp_guard, .. } = ctx.behavior {
            let after_pre = t - self.last_pre_at;
            if after_pre >= 0.0 && after_pre < t_rp_guard {
                out.push(CircuitEffect::ActIgnored { row });
                return out;
            }
        }

        self.settle(ctx, t, &mut out);

        match self.phase {
            Phase::Active => {
                // ACT to a bank with an open row and no PRE in flight: the
                // decoder drops it (no second wordline is raised).
                out.push(CircuitEffect::ActIgnored { row });
            }
            Phase::Precharged { ready_at } => {
                let e = self.engage(ctx, row, t);
                out.push(CircuitEffect::Sensed {
                    row,
                    at: t + e.sa_enable,
                });
                if t < ready_at {
                    // Activation during bitline equalization (tRP violation):
                    // sensing is unreliable and the row's content is lost.
                    out.push(CircuitEffect::Corrupt { row });
                }
                self.engaged.push(e);
                self.phase = Phase::Active;
            }
            Phase::Precharging { pre_at } => {
                let t2 = t - pre_at;
                let ready = self.bitline_ready_sample(ctx, pre_at);
                let mut corrupt_new = false;
                let mut survivors = Vec::with_capacity(self.engaged.len());
                for e in self.engaged.drain(..) {
                    if e.dead {
                        // Destroyed at PRE time; word line state irrelevant.
                        continue;
                    }
                    let committed_off = pre_at + COMMITTED_WL_OFF_NS;
                    if e.committed {
                        // Full precharge in progress: the first row closed,
                        // and the whole bank is equalizing — activating now
                        // (t2 < bitline-ready) mis-senses the new row.
                        close_row(&e, committed_off, &mut out);
                        if t < ready {
                            corrupt_new = true;
                        }
                        continue;
                    }
                    // Interruptible precharge: race against the word line.
                    let wl_window =
                        e.wl_off + ctx.analog.wl_off_jitter(ctx.seed, ctx.bank, e.row, row);
                    if t2 > wl_window {
                        // Word line already off: the row closed with whatever
                        // restoration it got; bank is equalizing.
                        close_row(&e, pre_at + wl_window, &mut out);
                        if t < ready {
                            corrupt_new = true;
                        }
                        continue;
                    }
                    // Interrupted! The first row stays engaged (HiRA path).
                    // Condition 3: PRE must have had time to cut the LRB from
                    // the bank I/O before the new row's buffer attaches.
                    let disc_window =
                        e.lrb_disc + ctx.analog.lrb_disc_jitter(ctx.seed, ctx.bank, e.row, row);
                    if t2 < disc_window {
                        out.push(CircuitEffect::Corrupt { row: e.row });
                        corrupt_new = true;
                    }
                    // Condition 4: electrical isolation of the two rows'
                    // charge-restoration circuitry.
                    if !ctx.isolation.isolated(e.row, row) {
                        out.push(CircuitEffect::Corrupt { row: e.row });
                        corrupt_new = true;
                    }
                    survivors.push(e);
                }
                self.engaged = survivors;
                let e = self.engage(ctx, row, t);
                out.push(CircuitEffect::Sensed {
                    row,
                    at: t + e.sa_enable,
                });
                if corrupt_new {
                    out.push(CircuitEffect::Corrupt { row });
                }
                self.engaged.push(e);
                self.phase = Phase::Active;
            }
        }
        out
    }

    /// Executes a `PRE` at time `t` (ns). Returns the circuit effects.
    pub fn pre(&mut self, ctx: &CircuitCtx<'_>, t: f64) -> Vec<CircuitEffect> {
        let mut out = Vec::new();

        // Vendor guard: some decoders drop a PRE that violates tRAS (§12).
        if let ViolationBehavior::IgnoreViolating { t_ras_guard, .. } = ctx.behavior {
            if self
                .engaged
                .iter()
                .any(|e| !e.dead && t - e.act_at < t_ras_guard)
            {
                out.push(CircuitEffect::PreIgnored);
                return out;
            }
        }

        self.settle(ctx, t, &mut out);

        match self.phase {
            Phase::Precharged { .. } => {
                // PRE on an idle bank: refresh the equalization, nothing else.
            }
            Phase::Precharging { .. } => {
                // Repeated PRE while already precharging: absorbed.
            }
            Phase::Active => {
                for e in &mut self.engaged {
                    let t1 = t - e.act_at;
                    if t1 < e.sa_enable {
                        // Condition 1 violated: cells were mid charge-sharing
                        // when the bank equalized — data destroyed.
                        e.dead = true;
                        out.push(CircuitEffect::Corrupt { row: e.row });
                        continue;
                    }
                    // Condition 2 boundary: past the latch point the PRE is a
                    // normal, non-interruptible precharge.
                    e.committed = t1 >= e.act_latch;
                }
                self.pre_events += 1;
                self.last_pre_at = t;
                self.phase = Phase::Precharging { pre_at: t };
            }
        }
        out
    }
}

fn close_row(e: &Engaged, close_t: f64, out: &mut Vec<CircuitEffect>) {
    if e.dead {
        return;
    }
    let restore_time = close_t - e.act_at;
    let frac = ((restore_time - e.sa_enable) / (e.restore_target - e.sa_enable)).max(0.0);
    out.push(CircuitEffect::Restored {
        row: e.row,
        frac,
        at: close_t,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::ChipGeometry;
    use crate::vendor::Manufacturer;

    fn fixture() -> (AnalogModel, IsolationMap, ChipGeometry) {
        (
            AnalogModel::default(),
            IsolationMap::new(42, 32 * 1024, 512, 0.32, 0.02),
            ChipGeometry::module_4gb(),
        )
    }

    /// A row in subarray >= 2 isolated from `row_a` under the fixture map.
    fn isolated_partner(iso: &IsolationMap, row_a: RowId) -> RowId {
        iso.find_partner(row_a).expect("fixture map has a partner")
    }

    /// A non-adjacent row that shares restoration circuitry with `row_a`.
    fn shared_partner(iso: &IsolationMap, row_a: RowId) -> RowId {
        (2..64u32)
            .flat_map(|sa| (0..8u32).map(move |k| RowId(sa * 512 + k)))
            .find(|&r| !iso.isolated(row_a, r) && iso.subarray_of(r) >= 2)
            .expect("fixture map has a shared partner")
    }

    fn ctx<'a>(
        analog: &'a AnalogModel,
        iso: &'a IsolationMap,
        geom: &'a ChipGeometry,
    ) -> CircuitCtx<'a> {
        CircuitCtx {
            seed: 42,
            bank: BankId(0),
            rows_per_bank: geom.rows_per_bank,
            rows_per_subarray: geom.rows_per_subarray,
            analog,
            isolation: iso,
            behavior: Manufacturer::SkHynix.violation_behavior(),
        }
    }

    fn corrupted(effects: &[CircuitEffect]) -> Vec<RowId> {
        effects
            .iter()
            .filter_map(|e| match e {
                CircuitEffect::Corrupt { row } => Some(*row),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn nominal_act_pre_restores_fully() {
        let (a, i, g) = fixture();
        let c = ctx(&a, &i, &g);
        let mut b = BankCircuit::new();
        let fx = b.act(&c, RowId(100), 0.0);
        assert!(corrupted(&fx).is_empty());
        let fx = b.pre(&c, 32.0);
        assert!(corrupted(&fx).is_empty());
        // Settle via a later command: row closes fully restored.
        let fx = b.act(&c, RowId(200), 32.0 + 14.25);
        let restored: Vec<_> = fx
            .iter()
            .filter_map(|e| match e {
                CircuitEffect::Restored { row, frac, .. } => Some((*row, *frac)),
                _ => None,
            })
            .collect();
        assert_eq!(restored.len(), 1);
        assert_eq!(restored[0].0, RowId(100));
        assert!(restored[0].1 >= 1.0, "frac {}", restored[0].1);
        assert!(corrupted(&fx).is_empty());
    }

    #[test]
    fn hira_sequence_keeps_both_rows_alive_for_isolated_subarrays() {
        let (a, i, g) = fixture();
        let c = ctx(&a, &i, &g);
        let mut b = BankCircuit::new();
        let row_a = RowId(100);
        let row_b = isolated_partner(&i, row_a);
        let mut all = Vec::new();
        all.extend(b.act(&c, row_a, 0.0));
        all.extend(b.pre(&c, 3.0));
        all.extend(b.act(&c, row_b, 6.0));
        assert!(corrupted(&all).is_empty(), "effects: {all:?}");
        assert_eq!(b.open_rows().len(), 2);
        // Single PRE closes both (footnote 1), both fully restored.
        let mut fx = b.pre(&c, 6.0 + 32.0);
        fx.extend(b.act(&c, RowId(300), 6.0 + 32.0 + 14.25));
        let full = fx
            .iter()
            .filter(|e| matches!(e, CircuitEffect::Restored { frac, .. } if *frac >= 1.0))
            .count();
        assert_eq!(full, 2, "effects: {fx:?}");
    }

    #[test]
    fn shared_subarray_pair_corrupts_both_rows() {
        let (a, i, g) = fixture();
        let c = ctx(&a, &i, &g);
        let mut b = BankCircuit::new();
        let row_a = RowId(100);
        let row_b = shared_partner(&i, row_a);
        let mut all = Vec::new();
        all.extend(b.act(&c, row_a, 0.0));
        all.extend(b.pre(&c, 3.0));
        all.extend(b.act(&c, row_b, 6.0));
        let bad = corrupted(&all);
        assert!(
            bad.contains(&row_a) && bad.contains(&row_b),
            "effects: {all:?}"
        );
    }

    #[test]
    fn premature_pre_destroys_the_row() {
        let (a, i, g) = fixture();
        let c = ctx(&a, &i, &g);
        let mut b = BankCircuit::new();
        b.act(&c, RowId(100), 0.0);
        let fx = b.pre(&c, 0.5); // long before any row's sa_enable
        assert_eq!(corrupted(&fx), vec![RowId(100)]);
    }

    #[test]
    fn late_pre_commits_and_early_act_corrupts_newcomer() {
        let (a, i, g) = fixture();
        let c = ctx(&a, &i, &g);
        let mut b = BankCircuit::new();
        let row_b = isolated_partner(&i, RowId(100));
        b.act(&c, RowId(100), 0.0);
        b.pre(&c, 8.0); // beyond every act_latch: committed precharge
        let fx = b.act(&c, row_b, 11.0); // 3 ns after PRE << bitline-ready
        assert!(corrupted(&fx).contains(&row_b), "effects: {fx:?}");
    }

    #[test]
    fn missed_wordline_window_partially_restores_first_row() {
        let (a, i, g) = fixture();
        let c = ctx(&a, &i, &g);
        let mut b = BankCircuit::new();
        b.act(&c, RowId(100), 0.0);
        b.pre(&c, 3.0);
        // t2 = 9 ns: word line is off for every row (wl_off ≈ 5.3 ± jitter).
        let fx = b.act(&c, isolated_partner(&i, RowId(100)), 12.0);
        let partial = fx.iter().any(|e| {
            matches!(e, CircuitEffect::Restored { row, frac, .. } if *row == RowId(100) && *frac < 1.0)
        });
        assert!(partial, "effects: {fx:?}");
    }

    #[test]
    fn act_on_active_bank_is_ignored() {
        let (a, i, g) = fixture();
        let c = ctx(&a, &i, &g);
        let mut b = BankCircuit::new();
        b.act(&c, RowId(1), 0.0);
        let fx = b.act(&c, RowId(2), 10.0);
        assert!(fx.contains(&CircuitEffect::ActIgnored { row: RowId(2) }));
        assert_eq!(b.open_rows(), vec![RowId(1)]);
    }

    #[test]
    fn hira_inert_vendor_drops_violating_commands() {
        let (a, i, g) = fixture();
        let mut c = ctx(&a, &i, &g);
        c.behavior = Manufacturer::Micron.violation_behavior();
        let mut b = BankCircuit::new();
        b.act(&c, RowId(100), 0.0);
        let fx = b.pre(&c, 3.0); // violates the tRAS guard
        assert!(fx.contains(&CircuitEffect::PreIgnored));
        // Second ACT lands on an active bank and is dropped too.
        let fx = b.act(&c, RowId(4096), 6.0);
        assert!(fx.contains(&CircuitEffect::ActIgnored { row: RowId(4096) }));
        // Row A remains intact and closes normally.
        let fx = b.pre(&c, 40.0);
        assert!(corrupted(&fx).is_empty());
    }

    #[test]
    fn is_open_respects_sense_latency() {
        let (a, i, g) = fixture();
        let c = ctx(&a, &i, &g);
        let mut b = BankCircuit::new();
        b.act(&c, RowId(5), 100.0);
        assert!(!b.is_open(RowId(5), 100.1)); // not sensed yet
        assert!(b.is_open(RowId(5), 110.0));
        assert!(!b.is_open(RowId(6), 110.0));
    }

    #[test]
    fn isolation_map_subarray_mapping() {
        let (_a, i, _g) = fixture();
        assert_eq!(i.subarray_of(RowId(0)), 0);
        assert_eq!(i.subarray_of(RowId(512)), 1);
    }
}
