//! RowHammer disturbance model (§2.4, §4.3).
//!
//! Every physical row accrues one "hammer" per activation of a physically
//! adjacent row. When a row is *sensed* (activated) with an accumulated
//! hammer count at or above its instantaneous threshold, its weak cells flip.
//! Closing a row with full charge restoration scrubs most — not all — of the
//! accumulated disturbance: the *restore efficiency* `eff` leaves a residue
//! `(1 − eff)·count`, which is what makes the measured RowHammer threshold
//! with a mid-attack HiRA refresh ≈ `2/(2−eff) ≈ 1.9×` the baseline threshold
//! (Fig. 5b, Table 4) rather than exactly 2×.
//!
//! Thresholds are sampled log-normally per row (Fig. 5a: 10 K-80 K, mean
//! ≈ 27.2 K) and each *measurement* sees multiplicative noise, which is why
//! normalized thresholds occasionally exceed 2 (Table 4 max 2.58).

use crate::addr::{BankId, RowId};
use crate::rng::Stream;

/// Distribution knobs for a module's RowHammer behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowHammerModel {
    /// `ln` of the median per-row threshold.
    pub nrh_ln_median: f64,
    /// Log-space standard deviation of the per-row threshold.
    pub nrh_ln_sigma: f64,
    /// Mean restore efficiency (fraction of disturbance scrubbed by a full
    /// restoration).
    pub eff_mean: f64,
    /// Standard deviation of the restore efficiency.
    pub eff_sd: f64,
    /// Log-space sigma of per-sensing measurement noise on the threshold.
    pub measure_sigma: f64,
    /// Number of RowHammer-weak cells per row (upper bound of a small range).
    pub weak_cells_max: u32,
    /// Threshold derating per °C above the 45 °C reference (higher
    /// temperature ⇒ more vulnerable, after ref \[129\]).
    pub temp_slope_per_c: f64,
}

impl Default for RowHammerModel {
    fn default() -> Self {
        RowHammerModel {
            nrh_ln_median: (26_000.0f64).ln(),
            nrh_ln_sigma: 0.33,
            eff_mean: 0.947,
            eff_sd: 0.035,
            measure_sigma: 0.045,
            weak_cells_max: 12,
            temp_slope_per_c: 0.004,
        }
    }
}

impl RowHammerModel {
    /// The row's intrinsic threshold (activations of neighbours within a
    /// refresh window before first bit flip), before measurement noise.
    pub fn nrh_base(&self, seed: u64, bank: BankId, row: RowId) -> f64 {
        let mut s = Stream::from_words(&[seed, 0x004E_5248, u64::from(bank.0), u64::from(row.0)]);
        s.next_lognormal(self.nrh_ln_median, self.nrh_ln_sigma)
            .max(1_000.0)
    }

    /// The threshold seen by one particular sensing event (adds measurement
    /// noise and temperature derating).
    pub fn nrh_instance(
        &self,
        seed: u64,
        bank: BankId,
        row: RowId,
        sense_event: u64,
        temp_c: f64,
    ) -> f64 {
        let base = self.nrh_base(seed, bank, row);
        let noise = Stream::from_words(&[
            seed,
            0x004E_4F49,
            u64::from(bank.0),
            u64::from(row.0),
            sense_event,
        ])
        .next_lognormal(0.0, self.measure_sigma);
        let temp_factor = (1.0 - self.temp_slope_per_c * (temp_c - 45.0)).clamp(0.5, 1.5);
        base * noise * temp_factor
    }

    /// The row's restore efficiency (stable per row).
    pub fn restore_eff(&self, seed: u64, bank: BankId, row: RowId) -> f64 {
        Stream::from_words(&[seed, 0x0045_4646, u64::from(bank.0), u64::from(row.0)])
            .next_gauss(self.eff_mean, self.eff_sd)
            .clamp(0.75, 0.995)
    }

    /// Bit positions (byte index, bit index) of the row's RowHammer-weak
    /// cells. Deterministic per row; between 1 and `weak_cells_max` cells.
    pub fn weak_cells(
        &self,
        seed: u64,
        bank: BankId,
        row: RowId,
        row_bytes: usize,
    ) -> Vec<(usize, u8)> {
        let mut s = Stream::from_words(&[seed, 0x0057_4541, u64::from(bank.0), u64::from(row.0)]);
        let count = 1 + s.next_below(u64::from(self.weak_cells_max)) as usize;
        (0..count)
            .map(|_| {
                let byte = s.next_below(row_bytes as u64) as usize;
                let bit = (s.next_u64() % 8) as u8;
                (byte, bit)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nrh_distribution_matches_fig5a_envelope() {
        let m = RowHammerModel::default();
        let n = 5_000u32;
        let xs: Vec<f64> = (0..n).map(|r| m.nrh_base(1, BankId(0), RowId(r))).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        // Fig. 5a: mean 27.2K, support roughly 10K..80K.
        assert!((mean - 27_200.0).abs() < 3_000.0, "mean {mean}");
        let lo = xs.iter().cloned().fold(f64::MAX, f64::min);
        let hi = xs.iter().cloned().fold(f64::MIN, f64::max);
        assert!(lo > 5_000.0 && hi < 130_000.0, "range {lo}..{hi}");
    }

    #[test]
    fn restore_eff_yields_norm_ratio_near_1_9() {
        let m = RowHammerModel::default();
        let n = 3_000u32;
        let mean_ratio: f64 = (0..n)
            .map(|r| {
                let eff = m.restore_eff(2, BankId(0), RowId(r));
                2.0 / (2.0 - eff)
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean_ratio - 1.9).abs() < 0.05,
            "mean normalized NRH {mean_ratio}"
        );
    }

    #[test]
    fn measurement_noise_varies_per_sense_event() {
        let m = RowHammerModel::default();
        let a = m.nrh_instance(1, BankId(0), RowId(9), 0, 45.0);
        let b = m.nrh_instance(1, BankId(0), RowId(9), 1, 45.0);
        assert_ne!(a, b);
        assert!((a / b - 1.0).abs() < 0.5);
    }

    #[test]
    fn temperature_derates_threshold() {
        let m = RowHammerModel::default();
        let cold = m.nrh_instance(1, BankId(0), RowId(5), 0, 45.0);
        let hot = m.nrh_instance(1, BankId(0), RowId(5), 0, 85.0);
        assert!(hot < cold);
    }

    #[test]
    fn weak_cells_are_in_range_and_deterministic() {
        let m = RowHammerModel::default();
        let a = m.weak_cells(3, BankId(1), RowId(77), 8192);
        let b = m.weak_cells(3, BankId(1), RowId(77), 8192);
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() <= m.weak_cells_max as usize);
        for (byte, bit) in a {
            assert!(byte < 8192);
            assert!(bit < 8);
        }
    }
}
