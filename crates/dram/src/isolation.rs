//! Row-pair electrical-isolation model (HiRA operating condition 4, §3).
//!
//! Two rows can be HiRA-activated concurrently only if their charge
//! restoration circuitry is electrically isolated. Two facts from §4 shape
//! the model:
//!
//! * in the open-bitline architecture, vertically adjacent subarrays share
//!   sense-amplifier strips, so rows in the same or adjacent subarrays are
//!   **never** isolated;
//! * beyond adjacency, only ≈32 % of row pairs work on average, the working
//!   pairs are *identical across banks* (§4.4.1, design-induced), and the
//!   per-row coverage bands of Table 4 are narrow (A0: 24.8-25.5 % over ~6 K
//!   partners — binomial-noise narrow), which implies the compatible-partner
//!   property is fine-grained (per row pair), not a property of whole
//!   subarray pairs.
//!
//! We therefore model isolation as a deterministic symmetric predicate over
//! row pairs: a hash of `(module seed, min(row), max(row))` accepted with a
//! per-row probability `f(row) = target + spread·z(subarray)` — the spread
//! term reproduces the per-module degree variation of Table 4 (tight for A0,
//! wide for C1). The predicate needs no storage, so it scales from the 4 Gb
//! characterization parts to the 128 Gb simulator configurations, and it has
//! no bank term, reproducing §4.4.1's invariance.

use crate::addr::RowId;
use crate::rng::{unit_at, Stream};

/// Deterministic row-pair isolation predicate for one module.
#[derive(Debug, Clone)]
pub struct IsolationMap {
    seed: u64,
    rows_per_bank: u32,
    rows_per_subarray: u32,
    target: f64,
    /// Per-subarray acceptance fraction (target + design-induced offset).
    per_subarray: Vec<f64>,
}

impl IsolationMap {
    /// Builds the module's isolation map.
    ///
    /// * `seed` — module seed (die design identity),
    /// * `rows_per_bank`, `rows_per_subarray` — geometry,
    /// * `target` — mean isolated fraction (HiRA coverage level),
    /// * `spread` — standard deviation of the per-subarray fraction.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate or `target` outside `(0, 1)`.
    pub fn new(
        seed: u64,
        rows_per_bank: u32,
        rows_per_subarray: u32,
        target: f64,
        spread: f64,
    ) -> Self {
        assert!(rows_per_subarray > 0 && rows_per_bank >= 4 * rows_per_subarray);
        assert!(target > 0.0 && target < 1.0, "target must be in (0,1)");
        let subarrays = rows_per_bank.div_ceil(rows_per_subarray) as usize;
        let per_subarray = (0..subarrays)
            .map(|sa| {
                let z = Stream::from_words(&[seed, 0x5A5A, sa as u64]).next_normal();
                (target + spread * z).clamp(0.02, 0.95)
            })
            .collect();
        IsolationMap {
            seed,
            rows_per_bank,
            rows_per_subarray,
            target,
            per_subarray,
        }
    }

    /// Subarray index of a row.
    #[inline]
    pub fn subarray_of(&self, row: RowId) -> u32 {
        row.0 / self.rows_per_subarray
    }

    /// Whether `a` and `b` are electrically isolated, i.e. whether HiRA can
    /// concurrently activate them. Symmetric; identical across banks.
    #[inline]
    pub fn isolated(&self, a: RowId, b: RowId) -> bool {
        let sa = self.subarray_of(a);
        let sb = self.subarray_of(b);
        // Same or adjacent subarray: shared bitlines / sense amplifiers.
        if sa.abs_diff(sb) <= 1 {
            return false;
        }
        let fa = self.per_subarray[sa as usize];
        let fb = self.per_subarray[sb as usize];
        let p = (fa * fb).sqrt();
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        unit_at(&[self.seed, 0xED6E, u64::from(lo), u64::from(hi)]) < p
    }

    /// The configured mean isolated fraction.
    pub fn target(&self) -> f64 {
        self.target
    }

    /// Rows per bank covered by the map.
    pub fn rows_per_bank(&self) -> u32 {
        self.rows_per_bank
    }

    /// Measures the isolated fraction of `row` against a sample of `n`
    /// partners spread over the bank.
    pub fn isolated_fraction(&self, row: RowId, n: u32) -> f64 {
        let step = (self.rows_per_bank / n.max(1)).max(1);
        let mut hits = 0u32;
        let mut probes = 0u32;
        let mut b = 0u32;
        while b < self.rows_per_bank {
            if b != row.0 {
                probes += 1;
                if self.isolated(row, RowId(b)) {
                    hits += 1;
                }
            }
            b += step;
        }
        f64::from(hits) / f64::from(probes.max(1))
    }

    /// Finds the lowest-addressed row isolated from `row`, scanning subarray
    /// base rows (used to pick HiRA dummy/partner rows).
    pub fn find_partner(&self, row: RowId) -> Option<RowId> {
        let subarrays = self.rows_per_bank / self.rows_per_subarray;
        (0..subarrays)
            .map(|sa| RowId(sa * self.rows_per_subarray))
            .find(|&cand| self.isolated(row, cand))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(target: f64, spread: f64) -> IsolationMap {
        IsolationMap::new(99, 32 * 1024, 512, target, spread)
    }

    #[test]
    fn predicate_is_symmetric_and_deterministic() {
        let m = map(0.32, 0.02);
        for i in 0..200u32 {
            let a = RowId(i * 157 % 32768);
            let b = RowId(i * 5003 % 32768);
            assert_eq!(m.isolated(a, b), m.isolated(b, a));
            assert_eq!(m.isolated(a, b), m.isolated(a, b));
        }
    }

    #[test]
    fn same_and_adjacent_subarrays_are_never_isolated() {
        let m = map(0.32, 0.02);
        assert!(!m.isolated(RowId(0), RowId(100)));
        assert!(!m.isolated(RowId(0), RowId(512)));
        assert!(!m.isolated(RowId(1000), RowId(700)));
        assert!(!m.isolated(RowId(5), RowId(5)));
    }

    #[test]
    fn mean_fraction_tracks_target() {
        for &target in &[0.25, 0.32, 0.38] {
            let m = map(target, 0.005);
            let mean: f64 = (0..64)
                .map(|i| m.isolated_fraction(RowId(i * 500 + 3), 256))
                .sum::<f64>()
                / 64.0;
            assert!(
                (mean - target).abs() < 0.04,
                "target {target} realized {mean}"
            );
        }
    }

    #[test]
    fn spread_controls_per_row_variation() {
        let measure_sd = |spread: f64| {
            let m = IsolationMap::new(7, 32 * 1024, 512, 0.32, spread);
            let fracs: Vec<f64> = (0..48)
                .map(|i| m.isolated_fraction(RowId(i * 683 + 1), 512))
                .collect();
            let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
            (fracs.iter().map(|f| (f - mean) * (f - mean)).sum::<f64>() / fracs.len() as f64).sqrt()
        };
        let tight = measure_sd(0.003);
        let wide = measure_sd(0.08);
        assert!(wide > tight * 1.5, "wide {wide} tight {tight}");
    }

    #[test]
    fn no_bank_term_means_identical_across_banks() {
        // The predicate has no bank input at all; this test documents the
        // §4.4.1 design decision.
        let m = map(0.32, 0.02);
        assert!(std::mem::size_of_val(&m.isolated(RowId(0), RowId(9999))) == 1);
    }

    #[test]
    fn find_partner_returns_isolated_row() {
        let m = map(0.32, 0.02);
        for r in [0u32, 511, 16000, 32767] {
            let p = m.find_partner(RowId(r)).expect("partner exists");
            assert!(m.isolated(RowId(r), p));
        }
    }

    #[test]
    #[should_panic(expected = "target")]
    fn rejects_bad_target() {
        IsolationMap::new(1, 32 * 1024, 512, 1.5, 0.0);
    }
}
