//! Data-retention model (§2.3).
//!
//! Each row's weakest cell has a retention time sampled from a long-tailed
//! distribution; if the row goes unrestored for longer than that, retention
//! flips appear at the next sensing. The paper's experiments deliberately run
//! for ≤ 10 ms to stay clear of retention effects (§4.1), which this model
//! reproduces: the sampled minimum retention is far above 10 ms, and an
//! unrefreshed row eventually *does* lose data — exercised by tests and the
//! refresh-completeness example.

use crate::addr::{BankId, RowId};
use crate::rng::Stream;

/// Distribution knobs for retention behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetentionModel {
    /// `ln` of the median per-row (weakest-cell) retention time in ms.
    pub ln_median_ms: f64,
    /// Log-space standard deviation.
    pub ln_sigma: f64,
    /// Hard floor on retention, ms. JEDEC guarantees a full `tREFW` (64 ms);
    /// real cells retain much longer at nominal temperature.
    pub floor_ms: f64,
    /// Retention halves for every this many °C above 45 °C.
    pub halving_c: f64,
}

impl Default for RetentionModel {
    fn default() -> Self {
        RetentionModel {
            ln_median_ms: (4_000.0f64).ln(),
            ln_sigma: 0.9,
            floor_ms: 180.0,
            halving_c: 10.0,
        }
    }
}

impl RetentionModel {
    /// The row's weakest-cell retention time in ms at the given temperature.
    pub fn retention_ms(&self, seed: u64, bank: BankId, row: RowId, temp_c: f64) -> f64 {
        let base = Stream::from_words(&[seed, 0x0052_4554, u64::from(bank.0), u64::from(row.0)])
            .next_lognormal(self.ln_median_ms, self.ln_sigma)
            .max(self.floor_ms);
        let derate = 2f64.powf(-(temp_c - 45.0) / self.halving_c);
        base * derate.min(1.0)
    }

    /// Whether a row last restored `elapsed_ns` ago has lost charge.
    pub fn expired(
        &self,
        seed: u64,
        bank: BankId,
        row: RowId,
        temp_c: f64,
        elapsed_ns: f64,
    ) -> bool {
        elapsed_ns / 1.0e6 > self.retention_ms(seed, bank, row, temp_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_ms_tests_never_see_retention_errors() {
        let m = RetentionModel::default();
        for r in 0..5_000u32 {
            assert!(
                !m.expired(1, BankId(0), RowId(r), 45.0, 10.0e6),
                "row {r} expired within 10 ms"
            );
        }
    }

    #[test]
    fn floor_exceeds_refresh_window() {
        // A properly refreshed row (once per 64 ms) never expires at 45 °C.
        let m = RetentionModel::default();
        for r in 0..5_000u32 {
            assert!(!m.expired(1, BankId(0), RowId(r), 45.0, 64.0e6), "row {r}");
        }
    }

    #[test]
    fn very_long_neglect_expires_everything_weak() {
        let m = RetentionModel::default();
        let expired = (0..2_000u32)
            .filter(|&r| m.expired(1, BankId(0), RowId(r), 45.0, 3_600.0e9))
            .count();
        assert!(expired > 1_000, "only {expired} rows expired after an hour");
    }

    #[test]
    fn heat_shortens_retention() {
        let m = RetentionModel::default();
        let r45 = m.retention_ms(1, BankId(0), RowId(3), 45.0);
        let r85 = m.retention_ms(1, BankId(0), RowId(3), 85.0);
        assert!((r45 / r85 - 16.0).abs() < 0.1, "expected 2^4 derating");
    }
}
