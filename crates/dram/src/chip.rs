//! The module-level chip model: command execution, stored data, RowHammer
//! and retention state.
//!
//! A DDR4 module's chips operate in lock-step (§2.1), so the model treats the
//! module as one logical chip whose row is the module-level row (8 KB). Rows
//! are materialized lazily — only rows that are written or disturbed occupy
//! memory — which keeps multi-gigabyte modules cheap to model.
//!
//! Like real silicon, [`DramModule::execute`] performs **no timing checks**:
//! it hands the command to the bank circuit ([`crate::bank`]) which decides
//! what the analog circuits would do. Host-level helpers (`write_row`,
//! `read_row`, `hira`, `hammer_pair`) issue nominally-timed sequences and
//! advance the module's internal clock.

use crate::addr::{BankId, PhysRowId, RowId};
use crate::bank::{BankCircuit, CircuitCtx, CircuitEffect};
use crate::command::DramCommand;
use crate::error::DramError;
use crate::geometry::ChipGeometry;
use crate::isolation::IsolationMap;
use crate::module_spec::ModuleSpec;
use crate::rng::Stream;
use crate::timing::{HiraTimings, TimingParams};
use std::collections::HashMap;

/// Restoration fraction at/above which a close counts as a full restore.
const FULL_RESTORE_FRAC: f64 = 0.97;

/// Per-row dynamic state (lazily created).
#[derive(Debug, Clone, Default)]
struct RowState {
    /// Stored bits; `None` until first written.
    data: Option<Box<[u8]>>,
    /// Accumulated disturbance from neighbour activations.
    hammer: f64,
    /// Timestamp (ns) of the last full charge restoration.
    last_restore: f64,
    /// Number of sensing events (keys measurement noise).
    senses: u64,
    /// Number of corruption events (keys the garble mask).
    corruptions: u64,
}

/// Counters of decoder/circuit events, useful for verification (§4.3 checks
/// that HiRA's second `ACT` is *not* ignored).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModuleStats {
    /// `ACT` commands dropped by the decoder.
    pub acts_ignored: u64,
    /// `PRE` commands dropped by the decoder.
    pub pres_ignored: u64,
    /// Rows fully corrupted by circuit events.
    pub corruption_events: u64,
    /// Rows closed with partial restoration.
    pub partial_restores: u64,
    /// Rows closed fully restored.
    pub full_restores: u64,
    /// RowHammer bit-flip materializations.
    pub rowhammer_flips: u64,
    /// Retention-failure materializations.
    pub retention_flips: u64,
}

/// A behavioural model of one DRAM module (rank).
#[derive(Debug, Clone)]
pub struct DramModule {
    spec: ModuleSpec,
    isolation: IsolationMap,
    timing: TimingParams,
    banks: Vec<BankCircuit>,
    rows: HashMap<u64, RowState>,
    now: f64,
    temp_c: f64,
    stats: ModuleStats,
}

impl DramModule {
    /// Builds a module from its spec. The isolation matrix is generated once
    /// (identical across banks, §4.4.1).
    pub fn new(spec: ModuleSpec) -> Self {
        let isolation = spec.isolation_map();
        let banks = (0..spec.geometry.banks)
            .map(|_| BankCircuit::new())
            .collect();
        let timing = TimingParams::ddr4_2400_with_capacity(spec.geometry.chip_gbit());
        DramModule {
            spec,
            isolation,
            timing,
            banks,
            rows: HashMap::new(),
            now: 0.0,
            temp_c: 45.0,
            stats: ModuleStats::default(),
        }
    }

    /// Module geometry.
    pub fn geometry(&self) -> &ChipGeometry {
        &self.spec.geometry
    }

    /// Module specification.
    pub fn spec(&self) -> &ModuleSpec {
        &self.spec
    }

    /// The module's row-pair isolation predicate.
    pub fn isolation(&self) -> &IsolationMap {
        &self.isolation
    }

    /// Nominal timing parameters for this module's capacity.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Current module time in ns.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Event counters.
    pub fn stats(&self) -> ModuleStats {
        self.stats
    }

    /// Resets event counters (e.g. between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = ModuleStats::default();
    }

    /// Sets the ambient temperature (the heater rig of §4.1).
    pub fn set_temperature(&mut self, temp_c: f64) {
        self.temp_c = temp_c;
    }

    /// Current temperature in °C.
    pub fn temperature(&self) -> f64 {
        self.temp_c
    }

    fn key(bank: BankId, row: RowId) -> u64 {
        (u64::from(bank.0) << 32) | u64::from(row.0)
    }

    /// Runs `f` on the bank circuit with a borrowed context (the context
    /// borrows `spec`/`isolation`, disjoint from the mutable bank borrow).
    fn with_bank<R>(
        &mut self,
        bank: BankId,
        f: impl FnOnce(&mut BankCircuit, &CircuitCtx<'_>) -> R,
    ) -> R {
        let ctx = CircuitCtx {
            seed: self.spec.seed,
            bank,
            rows_per_bank: self.spec.geometry.rows_per_bank,
            rows_per_subarray: self.spec.geometry.rows_per_subarray,
            analog: &self.spec.analog,
            isolation: &self.isolation,
            behavior: self.spec.manufacturer.violation_behavior(),
        };
        f(&mut self.banks[bank.index()], &ctx)
    }

    fn check_bank(&self, bank: BankId) -> Result<(), DramError> {
        if bank.index() >= self.banks.len() {
            return Err(DramError::BankOutOfRange {
                bank,
                banks: self.spec.geometry.banks,
            });
        }
        Ok(())
    }

    fn check_row(&self, row: RowId) -> Result<(), DramError> {
        if row.0 >= self.spec.geometry.rows_per_bank {
            return Err(DramError::RowOutOfRange {
                row,
                rows_per_bank: self.spec.geometry.rows_per_bank,
            });
        }
        Ok(())
    }

    /// Executes a command at absolute time `at` (ns).
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the module clock (commands must be issued in
    /// time order) or if the command addresses a non-existent bank/row.
    pub fn execute(&mut self, cmd: DramCommand, at: f64) {
        assert!(
            at >= self.now - 1e-9,
            "command {cmd} at {at} ns precedes module time {} ns",
            self.now
        );
        self.now = self.now.max(at);
        match cmd {
            DramCommand::Act { bank, row } => {
                self.check_bank(bank).expect("bank in range");
                self.check_row(row).expect("row in range");
                let effects = self.with_bank(bank, |b, ctx| b.act(ctx, row, at));
                let activated = effects
                    .iter()
                    .any(|e| matches!(e, CircuitEffect::Sensed { .. }));
                self.apply_effects(bank, &effects, at);
                if activated {
                    self.hammer_neighbors(bank, row, 1);
                }
            }
            DramCommand::Pre { bank } => {
                self.check_bank(bank).expect("bank in range");
                let effects = self.with_bank(bank, |b, ctx| b.pre(ctx, at));
                self.apply_effects(bank, &effects, at);
            }
            DramCommand::PreAll => {
                for b in 0..self.banks.len() {
                    let bank = BankId(b as u16);
                    let effects = self.with_bank(bank, |b, ctx| b.pre(ctx, at));
                    self.apply_effects(bank, &effects, at);
                }
            }
            DramCommand::Ref => {
                // The chip-internal refresh engine is disabled in all of §4's
                // experiments; the model treats REF as a rank-busy no-op here
                // (the cycle simulator accounts tRFC at the controller).
            }
            DramCommand::Rd { .. }
            | DramCommand::RdA { .. }
            | DramCommand::Wr { .. }
            | DramCommand::WrA { .. }
            | DramCommand::Nop => {
                // Column traffic moves data the host helpers already model.
            }
        }
    }

    fn apply_effects(&mut self, bank: BankId, effects: &[CircuitEffect], at: f64) {
        for eff in effects {
            match *eff {
                CircuitEffect::Sensed { row, .. } => self.on_sense(bank, row, at),
                CircuitEffect::Corrupt { row } => self.corrupt_row(bank, row, at),
                CircuitEffect::Restored {
                    row,
                    frac,
                    at: close_t,
                } => self.on_restore(bank, row, frac, close_t),
                CircuitEffect::ActIgnored { .. } => self.stats.acts_ignored += 1,
                CircuitEffect::PreIgnored => self.stats.pres_ignored += 1,
            }
        }
    }

    fn hammer_neighbors(&mut self, bank: BankId, row: RowId, count: u32) {
        let phys = self.spec.mapping.to_physical(row);
        for p in
            crate::mapping::RowMapping::physical_neighbors(phys, self.spec.geometry.rows_per_bank)
        {
            let victim = self.spec.mapping.to_logical(PhysRowId(p.0));
            let state = self.rows.entry(Self::key(bank, victim)).or_default();
            state.hammer += f64::from(count);
        }
    }

    fn on_sense(&mut self, bank: BankId, row: RowId, at: f64) {
        let seed = self.spec.seed;
        let rh = self.spec.rowhammer;
        let ret = self.spec.retention;
        let temp = self.temp_c;
        let row_bytes = self.spec.geometry.row_bytes;
        let state = self.rows.entry(Self::key(bank, row)).or_default();
        state.senses += 1;
        let senses = state.senses;
        let hammer = state.hammer;
        let elapsed = at - state.last_restore;
        let retention_hit = state.data.is_some() && ret.expired(seed, bank, row, temp, elapsed);
        let rh_hit =
            state.data.is_some() && hammer >= rh.nrh_instance(seed, bank, row, senses, temp);
        if retention_hit || rh_hit {
            let cells = rh.weak_cells(seed, bank, row, row_bytes);
            let polarity = crate::rng::splitmix64(seed ^ u64::from(row.0)) & 1 == 1;
            let state = self
                .rows
                .get_mut(&Self::key(bank, row))
                .expect("row exists");
            if let Some(data) = state.data.as_deref_mut() {
                flip_cells(data, &cells, polarity);
            }
            if rh_hit {
                self.stats.rowhammer_flips += 1;
            }
            if retention_hit {
                self.stats.retention_flips += 1;
            }
        }
    }

    fn on_restore(&mut self, bank: BankId, row: RowId, frac: f64, at: f64) {
        let margin = self.spec.analog.restore_margin;
        if frac < margin {
            self.corrupt_row(bank, row, at);
            return;
        }
        let seed = self.spec.seed;
        let eff = self.spec.rowhammer.restore_eff(seed, bank, row);
        if frac >= FULL_RESTORE_FRAC {
            let state = self.rows.entry(Self::key(bank, row)).or_default();
            state.hammer *= 1.0 - eff;
            state.last_restore = at;
            self.stats.full_restores += 1;
        } else {
            // Partial restoration: some weak cells lose enough margin to flip
            // and the disturbance scrub is proportionally weaker.
            let cells =
                self.spec
                    .rowhammer
                    .weak_cells(seed, bank, row, self.spec.geometry.row_bytes);
            let k = ((1.0 - frac) * cells.len() as f64).ceil() as usize;
            let polarity = crate::rng::splitmix64(seed ^ u64::from(row.0)) & 1 == 1;
            let state = self.rows.entry(Self::key(bank, row)).or_default();
            state.hammer *= 1.0 - eff * frac;
            if let Some(data) = state.data.as_deref_mut() {
                flip_cells(data, &cells[..k.min(cells.len())], polarity);
            }
            self.stats.partial_restores += 1;
        }
    }

    fn corrupt_row(&mut self, bank: BankId, row: RowId, at: f64) {
        self.stats.corruption_events += 1;
        let seed = self.spec.seed;
        let state = self.rows.entry(Self::key(bank, row)).or_default();
        state.corruptions += 1;
        state.hammer = 0.0;
        state.last_restore = at;
        if let Some(data) = state.data.as_deref_mut() {
            let mut s = Stream::from_words(&[
                seed,
                0xC0_5217,
                u64::from(bank.0),
                u64::from(row.0),
                state.corruptions,
            ]);
            // Garble roughly half the bits; force at least one flip.
            for b in data.iter_mut() {
                *b ^= (s.next_u64() & 0xFF) as u8;
            }
            data[0] |= 1; // ensure the row cannot silently match its pattern
            data[0] ^= 1;
            let idx = (s.next_below(data.len() as u64)) as usize;
            data[idx] ^= 1 << (s.next_u64() % 8);
        }
    }

    // ------------------------------------------------------------------
    // Host-level helpers (nominally-timed command sequences)
    // ------------------------------------------------------------------

    /// Writes a full row: `PRE`, `ACT`, burst writes, `PRE`, using nominal
    /// timing. Fully re-drives the cells (hammer state cleared).
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range addresses or wrong buffer length.
    pub fn write_row(&mut self, bank: BankId, row: RowId, data: &[u8]) {
        self.try_write_row(bank, row, data)
            .expect("write_row arguments valid")
    }

    /// Fallible variant of [`DramModule::write_row`].
    pub fn try_write_row(
        &mut self,
        bank: BankId,
        row: RowId,
        data: &[u8],
    ) -> Result<(), DramError> {
        self.check_bank(bank)?;
        self.check_row(row)?;
        if data.len() != self.spec.geometry.row_bytes {
            return Err(DramError::BadRowBuffer {
                expected: self.spec.geometry.row_bytes,
                got: data.len(),
            });
        }
        let t = self.timing;
        let t0 = self.now;
        self.execute(DramCommand::Pre { bank }, t0);
        self.execute(DramCommand::Act { bank, row }, t0 + t.t_rp);
        let write_done = t0 + t.t_rp + t.t_rcd + t.t_cwl;
        let state = self.rows.entry(Self::key(bank, row)).or_default();
        state.data = Some(data.to_vec().into_boxed_slice());
        state.hammer = 0.0;
        state.last_restore = write_done;
        self.execute(
            DramCommand::Pre { bank },
            t0 + t.t_rp + t.t_ras.max(t.t_rcd + t.t_cwl + t.t_wr),
        );
        self.now += t.t_rp;
        Ok(())
    }

    /// Reads a full row with a nominal `PRE`/`ACT`/read/`PRE` sequence.
    /// Unwritten rows read as zeros.
    pub fn read_row(&mut self, bank: BankId, row: RowId) -> Vec<u8> {
        self.try_read_row(bank, row)
            .expect("read_row arguments valid")
    }

    /// Fallible variant of [`DramModule::read_row`].
    pub fn try_read_row(&mut self, bank: BankId, row: RowId) -> Result<Vec<u8>, DramError> {
        self.check_bank(bank)?;
        self.check_row(row)?;
        let t = self.timing;
        let t0 = self.now;
        self.execute(DramCommand::Pre { bank }, t0);
        self.execute(DramCommand::Act { bank, row }, t0 + t.t_rp);
        self.execute(DramCommand::Pre { bank }, t0 + t.t_rp + t.t_ras);
        self.now += t.t_rp;
        Ok(self
            .rows
            .get(&Self::key(bank, row))
            .and_then(|s| s.data.as_deref())
            .map(<[u8]>::to_vec)
            .unwrap_or_else(|| vec![0u8; self.spec.geometry.row_bytes]))
    }

    /// Performs one HiRA operation (§3, Fig. 2): `ACT RowA — t1 — PRE — t2 —
    /// ACT RowB`, waits `tRAS`, then closes both rows with a single `PRE`.
    pub fn hira(&mut self, bank: BankId, row_a: RowId, row_b: RowId, h: HiraTimings) {
        let t = self.timing;
        let t0 = self.now;
        self.execute(DramCommand::Act { bank, row: row_a }, t0);
        self.execute(DramCommand::Pre { bank }, t0 + h.t1);
        self.execute(DramCommand::Act { bank, row: row_b }, t0 + h.t1 + h.t2);
        self.execute(DramCommand::Pre { bank }, t0 + h.t1 + h.t2 + t.t_ras);
        self.now = t0 + h.t1 + h.t2 + t.t_ras + t.t_rp;
    }

    /// Fast-path double-sided hammering: `iters` iterations of
    /// `ACT a / PRE / ACT b / PRE` at nominal timing (Algorithm 2, steps 2
    /// and 4). Semantically identical to issuing the commands one by one —
    /// verified by `hammer_fast_path_matches_slow_path` — but O(1) in
    /// `iters`.
    pub fn hammer_pair(&mut self, bank: BankId, aggr_a: RowId, aggr_b: RowId, iters: u32) {
        if iters == 0 {
            return;
        }
        let t = self.timing;
        // Close any open rows first, as the slow path's first PRE would.
        self.execute(DramCommand::Pre { bank }, self.now);
        let start = self.now + t.t_rp;
        // First activation of each aggressor performs its sense checks with
        // the pre-loop counters (materializes any pending flips).
        self.execute(DramCommand::Act { bank, row: aggr_a }, start);
        self.execute(DramCommand::Pre { bank }, start + t.t_ras);
        self.execute(DramCommand::Act { bank, row: aggr_b }, start + t.t_rc);
        self.execute(DramCommand::Pre { bank }, start + t.t_rc + t.t_ras);
        self.now = start + 2.0 * t.t_rc;
        let remaining = iters - 1;
        if remaining > 0 {
            // Remaining iterations in bulk: each ACT disturbs the aggressor's
            // physical neighbours once; the aggressors themselves are fully
            // restored every cycle, which repeatedly scrubs their own counters
            // to (1-eff)^remaining ≈ 0 of an already-negligible value.
            self.hammer_neighbors(bank, aggr_a, remaining);
            self.hammer_neighbors(bank, aggr_b, remaining);
            let seed = self.spec.seed;
            for &r in &[aggr_a, aggr_b] {
                let eff = self.spec.rowhammer.restore_eff(seed, bank, r);
                let state = self.rows.entry(Self::key(bank, r)).or_default();
                state.senses += u64::from(remaining);
                state.hammer *= (1.0 - eff).powi(remaining.min(1000) as i32);
                state.last_restore = self.now;
            }
            self.now += f64::from(remaining) * 2.0 * t.t_rc;
        }
    }

    /// Advances the module clock without issuing commands (Algorithm 2's
    /// "without HiRA" arm waits exactly as long as the HiRA arm takes).
    pub fn wait(&mut self, ns: f64) {
        assert!(ns >= 0.0, "cannot wait a negative duration");
        self.now += ns;
    }

    /// The sampled analog profile of a row (diagnostics / reporting).
    pub fn analog_profile(&self, bank: BankId, row: RowId) -> crate::analog::RowAnalog {
        self.spec
            .analog
            .sample(self.spec.seed, bank, row, self.spec.geometry.rows_per_bank)
    }

    /// Current accumulated hammer count of a row (test/diagnostic hook).
    pub fn hammer_count(&self, bank: BankId, row: RowId) -> f64 {
        self.rows
            .get(&Self::key(bank, row))
            .map_or(0.0, |s| s.hammer)
    }
}

fn flip_cells(data: &mut [u8], cells: &[(usize, u8)], polarity: bool) {
    for &(byte, bit) in cells {
        if byte < data.len() {
            if polarity {
                data[byte] &= !(1 << bit); // true cell: charge loss reads 0
            } else {
                data[byte] |= 1 << bit; // anti cell: charge loss reads 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> DramModule {
        DramModule::new(ModuleSpec::sk_hynix_4gb(0xFEED))
    }

    fn pattern(module: &DramModule, byte: u8) -> Vec<u8> {
        vec![byte; module.geometry().row_bytes]
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut m = module();
        let data = pattern(&m, 0x5A);
        m.write_row(BankId(0), RowId(123), &data);
        assert_eq!(m.read_row(BankId(0), RowId(123)), data);
    }

    #[test]
    fn unwritten_rows_read_as_zeros() {
        let mut m = module();
        let z = m.read_row(BankId(2), RowId(77));
        assert!(z.iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_range_addresses_error() {
        let mut m = module();
        let rows = m.geometry().rows_per_bank;
        assert!(matches!(
            m.try_read_row(BankId(99), RowId(0)),
            Err(DramError::BankOutOfRange { .. })
        ));
        assert!(matches!(
            m.try_read_row(BankId(0), RowId(rows)),
            Err(DramError::RowOutOfRange { .. })
        ));
        assert!(matches!(
            m.try_write_row(BankId(0), RowId(0), &[0u8; 3]),
            Err(DramError::BadRowBuffer { .. })
        ));
    }

    #[test]
    fn hira_on_isolated_pair_preserves_both_rows() {
        let mut m = module();
        let bank = BankId(0);
        let row_a = RowId(10);
        let row_b = m
            .isolation()
            .find_partner(row_a)
            .expect("row has a partner");
        let pa = pattern(&m, 0xAA);
        let pb = pattern(&m, 0x55);
        m.write_row(bank, row_a, &pa);
        m.write_row(bank, row_b, &pb);
        m.hira(bank, row_a, row_b, HiraTimings::nominal());
        assert_eq!(m.read_row(bank, row_a), pa);
        assert_eq!(m.read_row(bank, row_b), pb);
    }

    #[test]
    fn hira_on_adjacent_subarrays_corrupts() {
        let mut m = module();
        let bank = BankId(0);
        let row_a = RowId(10); // subarray 0
        let row_b = RowId(512 + 10); // subarray 1 (shares sense amps)
        let pa = pattern(&m, 0xFF);
        let pb = pattern(&m, 0x00);
        m.write_row(bank, row_a, &pa);
        m.write_row(bank, row_b, &pb);
        m.hira(bank, row_a, row_b, HiraTimings::nominal());
        let flips = m.read_row(bank, row_a) != pa || m.read_row(bank, row_b) != pb;
        assert!(flips, "expected corruption for a shared-sense-amp pair");
        assert!(m.stats().corruption_events > 0);
    }

    #[test]
    fn hammer_fast_path_matches_slow_path() {
        let victim = RowId(1000);
        let mut slow = module();
        let mut fast = module();
        let aggr = slow
            .spec()
            .mapping
            .logical_aggressors(victim, slow.geometry().rows_per_bank);
        let (a, b) = (aggr[0], aggr[1]);
        let iters = 40u32;
        // Slow path: explicit command stream.
        let t = *slow.timing();
        slow.execute(DramCommand::Pre { bank: BankId(0) }, slow.now());
        let mut at = slow.now() + t.t_rp;
        for _ in 0..iters {
            slow.execute(
                DramCommand::Act {
                    bank: BankId(0),
                    row: a,
                },
                at,
            );
            slow.execute(DramCommand::Pre { bank: BankId(0) }, at + t.t_ras);
            slow.execute(
                DramCommand::Act {
                    bank: BankId(0),
                    row: b,
                },
                at + t.t_rc,
            );
            slow.execute(DramCommand::Pre { bank: BankId(0) }, at + t.t_rc + t.t_ras);
            at += 2.0 * t.t_rc;
        }
        // Fast path.
        fast.hammer_pair(BankId(0), a, b, iters);
        let dv = slow.hammer_count(BankId(0), victim) - fast.hammer_count(BankId(0), victim);
        assert!(dv.abs() < 1e-6, "victim hammer mismatch: {dv}");
        assert_eq!(
            slow.hammer_count(BankId(0), victim),
            f64::from(2 * iters),
            "victim receives two hammers per iteration"
        );
    }

    #[test]
    fn sustained_hammering_flips_victim_bits() {
        let mut m = module();
        let bank = BankId(0);
        let victim = RowId(2000);
        let aggr = m
            .spec()
            .mapping
            .logical_aggressors(victim, m.geometry().rows_per_bank);
        let data = pattern(&m, 0xAA);
        m.write_row(bank, victim, &data);
        // Hammer far past any plausible threshold.
        m.hammer_pair(bank, aggr[0], aggr[1], 150_000);
        let read = m.read_row(bank, victim);
        assert_ne!(read, data, "expected RowHammer flips");
        assert!(m.stats().rowhammer_flips > 0);
    }

    #[test]
    fn refreshed_victim_resists_the_same_hammer_count() {
        let mut m = module();
        let bank = BankId(0);
        let victim = RowId(3000);
        let aggr = m
            .spec()
            .mapping
            .logical_aggressors(victim, m.geometry().rows_per_bank);
        let nrh = m.spec().rowhammer.nrh_base(m.spec().seed, bank, victim) as u32;
        let data = pattern(&m, 0x55);

        // Slightly above threshold without refresh: flips.
        m.write_row(bank, victim, &data);
        m.hammer_pair(bank, aggr[0], aggr[1], nrh * 11 / 20);
        assert_ne!(m.read_row(bank, victim), data);

        // Same total with a mid-point refresh (activate + close): no flips.
        m.write_row(bank, victim, &data);
        m.hammer_pair(bank, aggr[0], aggr[1], nrh * 11 / 40);
        let t0 = m.now();
        m.execute(DramCommand::Act { bank, row: victim }, t0);
        m.execute(DramCommand::Pre { bank }, t0 + m.timing().t_ras);
        m.wait(m.timing().t_rp);
        m.hammer_pair(bank, aggr[0], aggr[1], nrh * 11 / 40);
        assert_eq!(m.read_row(bank, victim), data);
    }

    #[test]
    fn micron_module_ignores_hira_commands() {
        let mut m = DramModule::new(ModuleSpec::micron_4gb(7));
        let bank = BankId(0);
        let row_a = RowId(10);
        let row_b = m.isolation().find_partner(row_a).unwrap();
        let pa = pattern(&m, 0xAA);
        let pb = pattern(&m, 0x55);
        m.write_row(bank, row_a, &pa);
        m.write_row(bank, row_b, &pb);
        m.hira(bank, row_a, row_b, HiraTimings::nominal());
        // No data corrupted (looks like success)...
        assert_eq!(m.read_row(bank, row_a), pa);
        assert_eq!(m.read_row(bank, row_b), pb);
        // ...but the commands were silently dropped (§4.3's ambiguity).
        let s = m.stats();
        assert!(s.pres_ignored > 0 && s.acts_ignored > 0, "stats: {s:?}");
    }

    #[test]
    fn commands_must_be_time_ordered() {
        let mut m = module();
        m.execute(
            DramCommand::Act {
                bank: BankId(0),
                row: RowId(0),
            },
            100.0,
        );
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.execute(DramCommand::Pre { bank: BankId(0) }, 50.0);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn retention_failure_after_long_neglect() {
        let mut m = module();
        let bank = BankId(0);
        // Find a weak-retention row among the first few thousand.
        let ret = m.spec().retention;
        let seed = m.spec().seed;
        let weak = (0..4000u32)
            .map(RowId)
            .min_by(|&x, &y| {
                ret.retention_ms(seed, bank, x, 45.0)
                    .total_cmp(&ret.retention_ms(seed, bank, y, 45.0))
            })
            .unwrap();
        // Charge loss reads 0 in true cells and 1 in anti cells, so test both
        // all-ones and all-zeros: one of them must expose the decay.
        let ms = ret.retention_ms(seed, bank, weak, 45.0);
        let mut decayed = false;
        for byte in [0xFFu8, 0x00] {
            let data = pattern(&m, byte);
            m.write_row(bank, weak, &data);
            m.wait(ms * 1.0e6 * 2.0);
            decayed |= m.read_row(bank, weak) != data;
        }
        assert!(decayed, "row should have decayed");
        assert!(m.stats().retention_flips > 0);
    }
}
