//! Chip / module organization: banks, subarrays, rows, row size.
//!
//! A DDR4 module is a set of chips operating in lock-step (§2.1); since every
//! chip receives the same command stream and stores a slice of every row, the
//! model treats the module as one logical array whose row size is the
//! module-level row (8 KB for a ×8 ECC-less DIMM: 8 chips × 1 KB per chip).

use crate::addr::{RowId, SubarrayId};

/// Static geometry of one DRAM module (all chips combined).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipGeometry {
    /// Per-chip capacity in megabits (e.g. 4096 for a 4 Gb die).
    pub chip_mbit: u64,
    /// Number of chips on the module running in lock-step.
    pub chips: u16,
    /// Banks per rank (DDR4: 16, in 4 bank groups).
    pub banks: u16,
    /// Bank groups per rank.
    pub bank_groups: u16,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Rows per subarray (paper assumes up to 1024; 512 is typical).
    pub rows_per_subarray: u32,
    /// Module-level row size in bytes (8 KB in the paper's examples).
    pub row_bytes: usize,
}

impl ChipGeometry {
    /// Geometry for a module built from ×8 chips of the given capacity.
    ///
    /// Row size per chip is 8 Kb (1 KB), so `rows_per_bank =
    /// chip_capacity / (banks × 8 Kb)`. A 4 Gb chip yields 32 K rows/bank,
    /// 8 Gb yields 64 K (the paper's running example in §5.1.1).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not divisible into whole rows.
    pub fn x8_module(chip_mbit: u64, chips: u16) -> Self {
        let banks = 16u16;
        let row_bits_per_chip = 8 * 1024u64; // 8 Kb row slice per chip
        let total_bits = chip_mbit * 1024 * 1024;
        assert!(
            total_bits.is_multiple_of(u64::from(banks) * row_bits_per_chip),
            "capacity must divide into whole rows"
        );
        let rows_per_bank = (total_bits / (u64::from(banks) * row_bits_per_chip)) as u32;
        ChipGeometry {
            chip_mbit,
            chips,
            banks,
            bank_groups: 4,
            rows_per_bank,
            rows_per_subarray: 512,
            row_bytes: (row_bits_per_chip as usize / 8) * chips as usize,
        }
    }

    /// A 4 Gb ×8 module (the characterization default; modules A and C in
    /// Table 4 use 4 Gb dies).
    pub fn module_4gb() -> Self {
        Self::x8_module(4 * 1024, 8)
    }

    /// An 8 Gb ×8 module (module B in Table 1).
    pub fn module_8gb() -> Self {
        Self::x8_module(8 * 1024, 8)
    }

    /// Number of subarrays in each bank.
    pub fn subarrays_per_bank(&self) -> u32 {
        self.rows_per_bank.div_ceil(self.rows_per_subarray)
    }

    /// Maps a physical row to its subarray.
    pub fn subarray_of(&self, row: RowId) -> SubarrayId {
        debug_assert!(row.0 < self.rows_per_bank, "row {row} out of range");
        SubarrayId((row.0 / self.rows_per_subarray) as u16)
    }

    /// First row of a subarray.
    pub fn subarray_base(&self, sa: SubarrayId) -> RowId {
        RowId(u32::from(sa.0) * self.rows_per_subarray)
    }

    /// Chip capacity in gigabits as a float (for `tRFC` projection).
    pub fn chip_gbit(&self) -> f64 {
        self.chip_mbit as f64 / 1024.0
    }

    /// Total rows in the module rank (`banks × rows_per_bank`).
    pub fn total_rows(&self) -> u64 {
        u64::from(self.banks) * u64::from(self.rows_per_bank)
    }

    /// The row sets the paper tests per bank: first, middle and last `n`
    /// rows (§4.1 footnote 4, with `n = 2048`).
    pub fn tested_rows(&self, n: u32) -> Vec<RowId> {
        let n = n.min(self.rows_per_bank / 3);
        let mut rows = Vec::with_capacity(3 * n as usize);
        let mid_start = (self.rows_per_bank / 2) - n / 2;
        for i in 0..n {
            rows.push(RowId(i));
        }
        for i in 0..n {
            rows.push(RowId(mid_start + i));
        }
        for i in 0..n {
            rows.push(RowId(self.rows_per_bank - n + i));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_gb_module_has_32k_rows_per_bank() {
        let g = ChipGeometry::module_4gb();
        assert_eq!(g.rows_per_bank, 32 * 1024);
        assert_eq!(g.banks, 16);
        assert_eq!(g.row_bytes, 8192);
        assert_eq!(g.subarrays_per_bank(), 64);
    }

    #[test]
    fn eight_gb_module_has_64k_rows_per_bank() {
        let g = ChipGeometry::module_8gb();
        assert_eq!(g.rows_per_bank, 64 * 1024);
        assert_eq!(g.subarrays_per_bank(), 128);
    }

    #[test]
    fn subarray_mapping_is_consistent() {
        let g = ChipGeometry::module_8gb();
        assert_eq!(g.subarray_of(RowId(0)), SubarrayId(0));
        assert_eq!(g.subarray_of(RowId(511)), SubarrayId(0));
        assert_eq!(g.subarray_of(RowId(512)), SubarrayId(1));
        let sa = g.subarray_of(RowId(40_000));
        let base = g.subarray_base(sa);
        assert!(base.0 <= 40_000 && 40_000 < base.0 + g.rows_per_subarray);
    }

    #[test]
    fn tested_rows_cover_first_middle_last() {
        let g = ChipGeometry::module_4gb();
        let rows = g.tested_rows(2048);
        assert_eq!(rows.len(), 3 * 2048);
        assert_eq!(rows[0], RowId(0));
        assert_eq!(*rows.last().unwrap(), RowId(g.rows_per_bank - 1));
        // Middle block is centered.
        assert!(rows[2048].0 > g.rows_per_bank / 4 && rows[2048].0 < 3 * g.rows_per_bank / 4);
    }

    #[test]
    fn tested_rows_shrink_for_small_banks() {
        let g = ChipGeometry::module_4gb();
        let rows = g.tested_rows(u32::MAX);
        assert_eq!(rows.len() as u32, 3 * (g.rows_per_bank / 3));
    }

    #[test]
    fn chip_gbit_roundtrips() {
        assert!((ChipGeometry::module_4gb().chip_gbit() - 4.0).abs() < 1e-12);
    }
}
