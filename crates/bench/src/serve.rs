//! The `hira serve` engine: a long-running sweep service over line-delimited
//! JSON, backed by the content-addressed sweep cache.
//!
//! The `serve` binary is a thin I/O wrapper (stdin/stdout or a Unix
//! socket) around [`Server`], which this module keeps transport-free so
//! the whole protocol is unit-testable: one request line in, a stream of
//! event lines out through an `emit` callback.
//!
//! ## Wire protocol
//!
//! Requests (client → server), one JSON object per line:
//!
//! * `{"op":"sweep","id":"a","task":"ws","policies":["baseline","hira4"],
//!   "workloads":["mix0"],"devices":["ddr4-2400"],"caps":[8],"insts":2000}`
//!   — run a grid sweep. `id` is the client's correlation token (echoed on
//!   every event). `task` is `"ws"` (weighted speedup, default) or
//!   `"ws+stats"` (plus the channel metrics). `policies` / `workloads`
//!   default to `["baseline"]` / `["mix0"]`; `devices`, `caps` and
//!   `plugins` are optional axes (absent → the builder's default part at
//!   the Table 3 capacity, no controller plugin). `plugins` entries are
//!   `--plugin=` forms (`none`, `oracle:<tRH>`, `para:<p>`,
//!   `graphene:<tRH>:<k>`; see [`hira_sim::plugin`]); an unknown form
//!   rejects the spec with a structured `error` event. `insts` overrides
//!   `HIRA_INSTS` for this sweep. `name` selects the sweep/shard name
//!   (default `"serve"`).
//! * `{"op":"stats"}` — report the session's accumulated totals.
//! * `{"op":"metrics"}` — dump the session's metrics registry in
//!   Prometheus text format (the shared `hira_*` name catalogue plus the
//!   `hira_serve_*` counters; see the README's Observability section).
//! * `{"op":"shutdown"}` — say goodbye and stop.
//!
//! Events (server → client), one JSON object per line:
//!
//! * `{"event":"accepted","id":"a","sweep":"serve","points":4,"hits":2,
//!   "misses":2,"skipped":0}` — the sweep was planned against the store
//!   (before anything runs); `skipped` counts grid combos the builder
//!   rejects (e.g. a HiRA policy on a HiRA-inert device).
//! * `{"event":"record","id":"a","cached":true,"key":{...},"metric":"ws",
//!   "value":6.25,"wall_ms":12.5}` — one metric of one finished point.
//!   Cache hits stream first (in point order, milliseconds after
//!   `accepted`); computed points follow in completion order.
//! * `{"event":"done","id":"a","points":4,"hits":2,"misses":2,
//!   "appended":2,"wall_ms":25.0}` — the sweep finished; `wall_ms` is the
//!   sum of per-point simulation walls (replayed verbatim for hits).
//! * `{"event":"progress","id":"a","done":3,"total":4,"cached":2,
//!   "points_per_sec":2.5,"eta_ms":400.0}` — emitted after each finished
//!   point of an accepted sweep; `points_per_sec`/`eta_ms` count only
//!   computed points and are `null` until a rate is known.
//! * `{"event":"error","id":"a","line":7,"message":"..."}` — the request
//!   was rejected (unparsable line, unknown name, empty grid); `line` is
//!   the 1-based request line number within the session and the server
//!   keeps serving.
//! * `{"event":"stats","sweeps":2,"points":8,"hits":6,"misses":2,
//!   "appended":2,"uptime_ms":153.0,"sweeps_accepted":2,
//!   "points_streamed":8}` — answer to `{"op":"stats"}`.
//! * `{"event":"metrics","text":"# HELP ..."}` — answer to
//!   `{"op":"metrics"}`: one JSON string holding the Prometheus text.
//! * `{"event":"bye"}` — shutdown (op or end of input).

use crate::{cache_salt, kernel_events, ws_canonical, ws_point_task, CacheSpec, Meters, Scale};
use hira_engine::json::{self, Value};
use hira_engine::{flabel, Executor, ScenarioKey, Sweep};
use hira_obs::{field, Counter, Gauge, Level, MetricsRegistry, Progress, TraceSink};
use hira_sim::builder::{BuildError, SystemBuilder};
use hira_sim::config::SystemConfig;
use hira_store::{CacheExecutorExt, CacheStats, SweepPlan, SweepStore};
use std::path::PathBuf;
use std::time::Instant;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Run a grid sweep.
    Sweep(SweepSpec),
    /// Report session totals.
    Stats,
    /// Dump the session metrics in Prometheus text format.
    Metrics,
    /// Stop serving.
    Shutdown,
}

/// A grid-sweep request: policy × workload (× device × capacity).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Client correlation token, echoed on every event of this sweep.
    pub id: String,
    /// Sweep (and store shard) name.
    pub name: String,
    /// `true` → the `ws+stats` task (channel metrics besides `ws`).
    pub channel_stats: bool,
    /// Policy axis (registry names; default `["baseline"]`).
    pub policies: Vec<String>,
    /// Workload axis (registry names; default `["mix0"]`).
    pub workloads: Vec<String>,
    /// Optional device axis (absent → builder default, no `dev` axis).
    pub devices: Vec<String>,
    /// Optional capacity axis in Gb (absent → Table 3 capacity, no `cap`
    /// axis).
    pub caps: Vec<f64>,
    /// Optional controller-plugin axis (`--plugin=` forms, `"none"` for
    /// the undefended baseline point; absent → no `plugin` axis).
    pub plugins: Vec<String>,
    /// Measured instructions per core (absent → the session [`Scale`]).
    pub insts: Option<u64>,
}

fn str_list(v: &Value, field: &str) -> Result<Vec<String>, String> {
    match v.get(field) {
        None => Ok(Vec::new()),
        Some(list) => list
            .as_arr()
            .ok_or_else(|| format!("`{field}` must be an array of strings"))?
            .iter()
            .map(|e| {
                e.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| format!("`{field}` must be an array of strings"))
            })
            .collect(),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a protocol-level message (for an `error` event) when the line
/// is not valid JSON, has no known `op`, or has malformed fields.
pub fn parse_op(line: &str) -> Result<Op, String> {
    let v = json::parse(line).map_err(|e| format!("bad request line: {e}"))?;
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or("request needs a string `op` field")?;
    match op {
        "stats" => Ok(Op::Stats),
        "metrics" => Ok(Op::Metrics),
        "shutdown" => Ok(Op::Shutdown),
        "sweep" => {
            let id = v
                .get("id")
                .and_then(Value::as_str)
                .ok_or("sweep needs a string `id` field")?
                .to_owned();
            let name = v
                .get("name")
                .map(|n| {
                    n.as_str()
                        .map(str::to_owned)
                        .ok_or("`name` must be a string")
                })
                .transpose()?
                .unwrap_or_else(|| "serve".to_owned());
            let channel_stats = match v.get("task").map(|t| t.as_str()) {
                None => false,
                Some(Some("ws")) => false,
                Some(Some("ws+stats")) => true,
                Some(other) => {
                    return Err(format!(
                        "unknown task {other:?}: expected \"ws\" or \"ws+stats\""
                    ))
                }
            };
            let mut policies = str_list(&v, "policies")?;
            if policies.is_empty() {
                policies.push("baseline".to_owned());
            }
            let mut workloads = str_list(&v, "workloads")?;
            if workloads.is_empty() {
                workloads.push("mix0".to_owned());
            }
            let devices = str_list(&v, "devices")?;
            let plugins = str_list(&v, "plugins")?;
            let caps = match v.get("caps") {
                None => Vec::new(),
                Some(list) => list
                    .as_arr()
                    .ok_or("`caps` must be an array of numbers")?
                    .iter()
                    .map(|e| e.as_f64().ok_or("`caps` must be an array of numbers"))
                    .collect::<Result<Vec<f64>, _>>()?,
            };
            let insts = match v.get("insts") {
                None => None,
                Some(n) => Some(n.as_u64().ok_or("`insts` must be a positive integer")?),
            };
            Ok(Op::Sweep(SweepSpec {
                id,
                name,
                channel_stats,
                policies,
                workloads,
                devices,
                caps,
                plugins,
                insts,
            }))
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

impl SweepSpec {
    /// Builds the grid: policy × workload (× device × cap × plugin),
    /// resolving every name against the standard registries. Combos the
    /// builder rejects as HiRA-incompatible — or as pairing a
    /// directed-refresh defense with a part that drops VRR — are skipped
    /// (second return); any other build failure or unknown name rejects
    /// the whole spec.
    ///
    /// # Errors
    ///
    /// Returns a message (for an `error` event) on unknown registry names,
    /// non-geometry build errors, or an empty grid.
    pub fn build(&self, scale: Scale) -> Result<(Sweep<SystemConfig>, usize), String> {
        let policy_reg = hira_sim::policy::PolicyRegistry::standard();
        let device_reg = hira_sim::device::DeviceRegistry::standard();
        let workload_reg = hira_workload::WorkloadRegistry::standard();
        let plugin_reg = hira_sim::plugin::PluginRegistry::standard();
        let insts = self.insts.unwrap_or(scale.insts);
        let warmup = insts / 5;

        // Resolve the plugin axis once up front: unknown forms reject the
        // spec before any cell builds. `"none"` is the undefended point.
        let plugins: Vec<(Option<String>, Option<hira_sim::plugin::PluginHandle>)> =
            if self.plugins.is_empty() {
                vec![(None, None)]
            } else {
                self.plugins
                    .iter()
                    .map(|gn| {
                        if gn == "none" {
                            return Ok((Some("none".to_owned()), None));
                        }
                        let h = plugin_reg
                            .lookup(gn)
                            .ok_or_else(|| format!("unknown plugin `{gn}`"))?;
                        Ok((Some(h.name().to_owned()), Some(h)))
                    })
                    .collect::<Result<_, String>>()?
            };

        let mut points = Vec::new();
        let mut skipped = 0usize;
        for pn in &self.policies {
            let p = policy_reg
                .lookup(pn)
                .ok_or_else(|| format!("unknown policy `{pn}`"))?;
            for wn in &self.workloads {
                let w = workload_reg
                    .lookup(wn)
                    .ok_or_else(|| format!("unknown workload `{wn}`"))?;
                // Optional axes expand to a single no-axis pseudo-value.
                let devs: Vec<Option<&str>> = if self.devices.is_empty() {
                    vec![None]
                } else {
                    self.devices.iter().map(|d| Some(d.as_str())).collect()
                };
                for dn in devs {
                    let caps: Vec<Option<f64>> = if self.caps.is_empty() {
                        vec![None]
                    } else {
                        self.caps.iter().map(|&c| Some(c)).collect()
                    };
                    for cap in caps {
                        for (gn, g) in &plugins {
                            let mut b = SystemBuilder::new()
                                .policy(p.clone())
                                .workload(w.clone())
                                .insts(insts, warmup);
                            if let Some(dn) = dn {
                                let d = device_reg
                                    .lookup(dn)
                                    .ok_or_else(|| format!("unknown device `{dn}`"))?;
                                b = b.device(d);
                            }
                            if let Some(c) = cap {
                                b = b.chip_gbit(c);
                            }
                            if let Some(g) = g {
                                b = b.plugin(g.clone());
                            }
                            let mut key = ScenarioKey::root().with("policy", pn).with("wl", wn);
                            if let Some(dn) = dn {
                                key = key.with("dev", dn);
                            }
                            if let Some(c) = cap {
                                key = key.with("cap", flabel(c));
                            }
                            if let Some(gn) = gn {
                                key = key.with("plugin", gn);
                            }
                            match b.build() {
                                Ok(cfg) => points.push((key, cfg)),
                                Err(BuildError::DeviceLacksHira { .. }) => skipped += 1,
                                Err(BuildError::DeviceLacksVrr { .. }) => skipped += 1,
                                Err(e) => return Err(format!("cannot build {key}: {e}")),
                            }
                        }
                    }
                }
            }
        }
        if points.is_empty() {
            return Err("sweep grid is empty (every combo skipped or no axes)".to_owned());
        }
        Ok((
            Sweep::from_points(&self.name, hira_engine::DEFAULT_BASE_SEED, points),
            skipped,
        ))
    }
}

fn obj(entries: Vec<(&str, String)>) -> String {
    let mut out = String::new();
    json::write_object(&mut out, entries);
    out
}

fn jstr(s: &str) -> String {
    let mut out = String::new();
    json::write_str(&mut out, s);
    out
}

fn jf64(v: f64) -> String {
    let mut out = String::new();
    json::write_f64(&mut out, v);
    out
}

fn key_json(key: &ScenarioKey) -> String {
    let mut out = String::new();
    json::write_object(&mut out, key.axes().map(|(a, v)| (a, jstr(v))));
    out
}

/// The transport-free sweep service: feed request lines to
/// [`Server::handle`], receive event lines through its `emit` callback.
pub struct Server {
    ex: Executor,
    scale: Scale,
    store: SweepStore,
    /// Present when the store lives in a scratch directory this server
    /// created (no `--cache=`): removed again on drop.
    scratch: Option<PathBuf>,
    sweeps: usize,
    totals: CacheStats,
    started: Instant,
    /// Request lines received so far — the `line` field of error events.
    lines: u64,
    sweeps_accepted: u64,
    registry: MetricsRegistry,
    meters: Meters,
    errors: Counter,
    streamed: Counter,
    plugin_sweeps: Counter,
    uptime: Gauge,
    sink: Option<TraceSink>,
}

impl Server {
    /// A server executing on `ex` at `scale`, caching in `cache`'s
    /// directory — or, when the spec is inactive, in a scratch store under
    /// the temp directory (hits then only span this session's lifetime).
    ///
    /// # Panics
    ///
    /// Panics when the store cannot be opened (an explicitly requested
    /// cache that cannot work is an error, not a silent slow path).
    pub fn new(ex: Executor, scale: Scale, cache: &CacheSpec) -> Self {
        let (dir, scratch) = match cache.dir() {
            Some(dir) => (dir.to_path_buf(), None),
            None => {
                let dir = std::env::temp_dir().join(format!("hira-serve-{}", std::process::id()));
                (dir.clone(), Some(dir))
            }
        };
        let store = SweepStore::open(&dir)
            .unwrap_or_else(|e| panic!("serve: cannot open store at {}: {e}", dir.display()));
        let registry = MetricsRegistry::new();
        let meters = Meters::new(&registry);
        let errors = registry.counter("hira_serve_errors_total", "protocol errors answered");
        let streamed = registry.counter(
            "hira_serve_points_streamed_total",
            "points streamed to clients",
        );
        let plugin_sweeps = registry.counter(
            "hira_serve_plugin_sweeps",
            "accepted sweeps carrying a controller-plugin axis",
        );
        let uptime = registry.gauge("hira_serve_uptime_ms", "milliseconds since server start");
        Server {
            ex,
            scale,
            store,
            scratch,
            sweeps: 0,
            totals: CacheStats::default(),
            started: Instant::now(),
            lines: 0,
            sweeps_accepted: 0,
            registry,
            meters,
            errors,
            streamed,
            plugin_sweeps,
            uptime,
            sink: None,
        }
    }

    /// Attaches a trace sink: the server then writes a span per sweep and
    /// an event per protocol error, beside whatever the transport wrapper
    /// logs (e.g. per-connection spans).
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The session metrics in Prometheus text format — what the
    /// `{"op":"metrics"}` request answers with.
    pub fn metrics_text(&self) -> String {
        self.uptime.set(self.started.elapsed().as_secs_f64() * 1e3);
        self.registry.render()
    }

    /// Session totals across all sweeps handled so far.
    pub fn totals(&self) -> CacheStats {
        self.totals
    }

    /// Handles one request line, emitting every resulting event line
    /// through `emit`. Returns `false` when the server should stop
    /// (shutdown op); protocol errors emit an `error` event and return
    /// `true` — a long-running service survives bad requests.
    pub fn handle(&mut self, line: &str, emit: &(dyn Fn(&str) + Sync)) -> bool {
        self.lines += 1;
        let line = line.trim();
        if line.is_empty() {
            return true;
        }
        let request_counter = |op: &str| {
            self.registry.counter_with(
                "hira_serve_requests_total",
                "requests handled",
                &[("op", op)],
            )
        };
        match parse_op(line) {
            Err(msg) => {
                self.errors.inc();
                self.trace_error(&msg);
                emit(&obj(vec![
                    ("event", jstr("error")),
                    ("id", jstr("")),
                    ("line", self.lines.to_string()),
                    ("message", jstr(&msg)),
                ]));
                true
            }
            Ok(Op::Shutdown) => {
                request_counter("shutdown").inc();
                emit(&obj(vec![("event", jstr("bye"))]));
                if let Some(s) = &self.sink {
                    s.flush();
                }
                false
            }
            Ok(Op::Stats) => {
                request_counter("stats").inc();
                let uptime_ms = self.started.elapsed().as_secs_f64() * 1e3;
                self.uptime.set(uptime_ms);
                emit(&obj(vec![
                    ("event", jstr("stats")),
                    ("sweeps", self.sweeps.to_string()),
                    ("points", self.totals.points.to_string()),
                    ("hits", self.totals.hits.to_string()),
                    ("misses", self.totals.misses.to_string()),
                    ("appended", self.totals.appended.to_string()),
                    ("uptime_ms", jf64(uptime_ms)),
                    ("sweeps_accepted", self.sweeps_accepted.to_string()),
                    ("points_streamed", self.streamed.get().to_string()),
                ]));
                true
            }
            Ok(Op::Metrics) => {
                request_counter("metrics").inc();
                emit(&obj(vec![
                    ("event", jstr("metrics")),
                    ("text", jstr(&self.metrics_text())),
                ]));
                true
            }
            Ok(Op::Sweep(spec)) => {
                request_counter("sweep").inc();
                if let Err(msg) = self.run_sweep(&spec, emit) {
                    self.errors.inc();
                    self.trace_error(&msg);
                    emit(&obj(vec![
                        ("event", jstr("error")),
                        ("id", jstr(&spec.id)),
                        ("line", self.lines.to_string()),
                        ("message", jstr(&msg)),
                    ]));
                }
                true
            }
        }
    }

    fn trace_error(&self, msg: &str) {
        if let Some(s) = &self.sink {
            s.event(
                Level::Warn,
                "serve_error",
                &[field("line", self.lines), field("message", msg)],
            );
        }
    }

    fn run_sweep(&mut self, spec: &SweepSpec, emit: &(dyn Fn(&str) + Sync)) -> Result<(), String> {
        let (sweep, skipped) = spec.build(self.scale)?;
        let tag = if spec.channel_stats { "ws+stats" } else { "ws" };
        let plan = SweepPlan::compute(&self.store, &sweep, cache_salt(), |sc| {
            ws_canonical(tag, sc.params)
        });
        let span = self.sink.as_ref().map(|s| {
            s.span(
                Level::Info,
                "sweep",
                vec![
                    field("id", spec.id.as_str()),
                    field("sweep", sweep.name()),
                    field("points", plan.len()),
                    field("hits", plan.hits()),
                ],
            )
        });
        self.sweeps_accepted += 1;
        if !spec.plugins.is_empty() {
            self.plugin_sweeps.inc();
        }
        emit(&obj(vec![
            ("event", jstr("accepted")),
            ("id", jstr(&spec.id)),
            ("sweep", jstr(sweep.name())),
            ("points", plan.len().to_string()),
            ("hits", plan.hits().to_string()),
            ("misses", plan.misses().to_string()),
            ("skipped", skipped.to_string()),
        ]));

        // Alone-IPC denominators only for the points that actually run.
        let scale = self.scale_for(spec);
        crate::warm_alone_cache(
            &self.ex,
            plan.miss_indices().map(|i| &sweep.points()[i].1),
            sweep.base_seed(),
            scale,
        );

        let channel_stats = spec.channel_stats;
        let meters = &self.meters;
        let streamed = &self.streamed;
        let progress = Progress::new(plan.len());
        let on_point = |o: hira_store::PointOutcome<'_>| {
            let key = &sweep.points()[o.index].0;
            for m in &o.point.metrics {
                emit(&obj(vec![
                    ("event", jstr("record")),
                    ("id", jstr(&spec.id)),
                    ("cached", o.cached.to_string()),
                    ("key", key_json(key)),
                    ("metric", jstr(&m.name)),
                    ("value", jf64(m.value)),
                    ("wall_ms", jf64(o.point.wall_ms)),
                ]));
            }
            streamed.inc();
            meters.point(o.cached, o.queue_wait_ms, o.point.wall_ms);
            let snap = progress.point_done(o.cached);
            let rate = if snap.points_per_sec > 0.0 {
                jf64(snap.points_per_sec)
            } else {
                "null".to_owned()
            };
            emit(&obj(vec![
                ("event", jstr("progress")),
                ("id", jstr(&spec.id)),
                ("done", snap.done.to_string()),
                ("total", snap.total.to_string()),
                ("cached", snap.cached.to_string()),
                ("points_per_sec", rate),
                (
                    "eta_ms",
                    snap.eta_ms.map_or_else(|| "null".to_owned(), jf64),
                ),
            ]));
        };
        let (run, stats) = self
            .ex
            .run_cached(
                &mut self.store,
                &sweep,
                &plan,
                |sc| ws_point_task(sc, scale, channel_stats),
                Some(&on_point),
            )
            .map_err(|e| format!("cannot persist results: {e}"))?;

        self.meters.kernel_events.add(kernel_events(&run));
        self.meters.sweep_wall_ms.set(run.wall_ms);
        self.meters.sweeps.inc();
        self.meters.cache_hits.add(stats.hits as u64);
        self.meters.cache_misses.add(stats.misses as u64);
        self.meters.cache_appended.add(stats.appended as u64);
        drop(span);
        if let Some(s) = &self.sink {
            s.flush();
        }
        self.sweeps += 1;
        self.totals.points += stats.points;
        self.totals.hits += stats.hits;
        self.totals.misses += stats.misses;
        self.totals.appended += stats.appended;
        emit(&obj(vec![
            ("event", jstr("done")),
            ("id", jstr(&spec.id)),
            ("points", stats.points.to_string()),
            ("hits", stats.hits.to_string()),
            ("misses", stats.misses.to_string()),
            ("appended", stats.appended.to_string()),
            ("wall_ms", jf64(run.wall_ms)),
        ]));
        Ok(())
    }

    /// The session scale with the spec's overrides applied — alone-IPC
    /// keys include the instruction counts, so the override must reach
    /// them too.
    fn scale_for(&self, spec: &SweepSpec) -> Scale {
        let mut scale = self.scale;
        if let Some(insts) = spec.insts {
            scale.insts = insts;
            scale.warmup = insts / 5;
        }
        scale
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(dir) = &self.scratch {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn tiny_scale() -> Scale {
        Scale {
            mixes: 2,
            insts: 2_000,
            warmup: 400,
            rows: 16,
        }
    }

    fn collect(server: &mut Server, line: &str) -> (bool, Vec<String>) {
        let events: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let emit = |l: &str| events.lock().unwrap().push(l.to_owned());
        let alive = server.handle(line, &emit);
        (alive, events.into_inner().unwrap())
    }

    fn field<'a>(event: &'a str, key: &str) -> &'a str {
        let needle = format!("\"{key}\":");
        let at = event.find(&needle).unwrap_or_else(|| {
            panic!("event {event} has no `{key}` field");
        }) + needle.len();
        let rest = &event[at..];
        let end = rest
            .char_indices()
            .scan(0i32, |depth, (i, c)| match c {
                '{' | '[' => {
                    *depth += 1;
                    Some(i)
                }
                '}' | ']' if *depth > 0 => {
                    *depth -= 1;
                    Some(i)
                }
                ',' | '}' if *depth == 0 => None,
                _ => Some(i),
            })
            .last()
            .map_or(0, |i| i + 1);
        &rest[..end]
    }

    #[test]
    fn request_lines_parse_into_ops() {
        assert_eq!(parse_op("{\"op\":\"stats\"}"), Ok(Op::Stats));
        assert_eq!(parse_op("{\"op\":\"shutdown\"}"), Ok(Op::Shutdown));
        let spec = match parse_op(
            "{\"op\":\"sweep\",\"id\":\"a\",\"task\":\"ws+stats\",\
             \"policies\":[\"noref\",\"baseline\"],\"caps\":[8,64],\
             \"plugins\":[\"para:0.05\"],\"insts\":2000}",
        ) {
            Ok(Op::Sweep(s)) => s,
            other => panic!("expected sweep, got {other:?}"),
        };
        assert_eq!(spec.id, "a");
        assert_eq!(spec.name, "serve");
        assert!(spec.channel_stats);
        assert_eq!(spec.policies, vec!["noref", "baseline"]);
        assert_eq!(spec.workloads, vec!["mix0"], "defaulted");
        assert!(spec.devices.is_empty());
        assert_eq!(spec.caps, vec![8.0, 64.0]);
        assert_eq!(spec.plugins, vec!["para:0.05"]);
        assert_eq!(spec.insts, Some(2000));
        // Malformed requests carry their reason.
        assert!(parse_op("not json").is_err());
        assert!(parse_op("{\"no\":\"op\"}").is_err());
        assert!(parse_op("{\"op\":\"dance\"}").is_err());
        assert!(parse_op("{\"op\":\"sweep\"}").is_err(), "id is required");
        assert!(parse_op("{\"op\":\"sweep\",\"id\":\"a\",\"task\":\"nope\"}").is_err());
        assert!(
            parse_op("{\"op\":\"sweep\",\"id\":\"a\",\"policies\":[1]}").is_err(),
            "axis lists must hold strings"
        );
    }

    #[test]
    fn specs_build_registry_resolved_grids() {
        let spec = SweepSpec {
            id: "t".into(),
            name: "serve_test".into(),
            channel_stats: false,
            policies: vec!["noref".into(), "baseline".into()],
            workloads: vec!["stream".into()],
            devices: Vec::new(),
            caps: vec![8.0],
            plugins: Vec::new(),
            insts: None,
        };
        let (sweep, skipped) = spec.build(tiny_scale()).unwrap();
        assert_eq!(sweep.len(), 2);
        assert_eq!(skipped, 0);
        assert_eq!(
            sweep.points()[0].0.to_string(),
            "policy=noref wl=stream cap=8"
        );
        // Unknown names reject the whole spec with a message.
        let mut bad = spec.clone();
        bad.policies = vec!["nope".into()];
        assert!(bad.build(tiny_scale()).unwrap_err().contains("nope"));
        // HiRA-on-inert-device combos are skipped, not fatal.
        let hira_on_inert = SweepSpec {
            policies: vec!["hira4".into(), "baseline".into()],
            devices: vec!["ddr4-2133".into()],
            ..spec.clone()
        };
        match hira_on_inert.build(tiny_scale()) {
            Ok((sweep, skipped)) => {
                assert_eq!(skipped, 1);
                assert_eq!(sweep.len(), 1);
            }
            // If the registry has no HiRA-inert part, the lookup fails
            // loudly instead — either way nothing is silently dropped.
            Err(msg) => assert!(msg.contains("ddr4-2133")),
        }
    }

    #[test]
    fn plugin_specs_expand_the_grid_and_reject_unknown_forms() {
        let spec = SweepSpec {
            id: "g".into(),
            name: "serve_plugins".into(),
            channel_stats: false,
            policies: vec!["baseline".into()],
            workloads: vec!["stream".into()],
            devices: Vec::new(),
            caps: Vec::new(),
            plugins: vec!["none".into(), "para:0.05".into(), "oracle:64".into()],
            insts: None,
        };
        let (sweep, skipped) = spec.build(tiny_scale()).unwrap();
        assert_eq!(sweep.len(), 3, "one point per plugin form");
        assert_eq!(skipped, 0);
        assert_eq!(
            sweep.points()[0].0.to_string(),
            "policy=baseline wl=stream plugin=none"
        );
        assert_eq!(
            sweep.points()[2].0.to_string(),
            "policy=baseline wl=stream plugin=oracle:64"
        );
        // An unknown form rejects the whole spec with a message.
        let mut bad = spec.clone();
        bad.plugins = vec!["blink:7".into()];
        assert!(bad.build(tiny_scale()).unwrap_err().contains("blink:7"));
        // Directed-refresh defenses on a VRR-less part are skipped cells,
        // not fatal; para survives (it refreshes via plain activations).
        let vrr_less = SweepSpec {
            devices: vec!["samsung-ddr4-2400".into()],
            ..spec.clone()
        };
        let (sweep, skipped) = vrr_less.build(tiny_scale()).unwrap();
        assert_eq!(skipped, 1, "oracle dropped on the VRR-less part");
        assert_eq!(sweep.len(), 2);
    }

    #[test]
    fn sweeps_stream_accepted_records_done_and_hit_on_replay() {
        let mut server = Server::new(
            Executor::with_threads(2),
            tiny_scale(),
            &CacheSpec::disabled(),
        );
        let req = "{\"op\":\"sweep\",\"id\":\"s1\",\"name\":\"serve_smoke\",\
                   \"policies\":[\"noref\",\"baseline\"],\"workloads\":[\"stream\"]}";
        let (alive, events) = collect(&mut server, req);
        assert!(alive);
        assert_eq!(field(&events[0], "event"), "\"accepted\"");
        assert_eq!(field(&events[0], "misses"), "2");
        let records: Vec<&String> = events
            .iter()
            .filter(|e| e.contains("\"event\":\"record\""))
            .collect();
        assert_eq!(records.len(), 2, "one ws record per point");
        assert!(records.iter().all(|r| field(r, "cached") == "false"));
        let done = events.last().unwrap();
        assert_eq!(field(done, "event"), "\"done\"");
        assert_eq!(field(done, "hits"), "0");
        assert_eq!(field(done, "appended"), "2");

        // The same sweep again: all hits, replayed in point order, and the
        // record payloads are byte-identical to the cold pass.
        let (_, replay) = collect(&mut server, req);
        assert_eq!(field(&replay[0], "hits"), "2");
        let replay_records: Vec<&String> = replay
            .iter()
            .filter(|e| e.contains("\"event\":\"record\""))
            .collect();
        assert!(replay_records.iter().all(|r| field(r, "cached") == "true"));
        let strip = |rs: &[&String]| -> Vec<String> {
            let mut v: Vec<String> = rs
                .iter()
                .map(|r| {
                    r.replace("\"cached\":true,", "")
                        .replace("\"cached\":false,", "")
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(strip(&records), strip(&replay_records));

        // Session totals accumulate across both sweeps.
        let (_, stats) = collect(&mut server, "{\"op\":\"stats\"}");
        assert_eq!(field(&stats[0], "sweeps"), "2");
        assert_eq!(field(&stats[0], "points"), "4");
        assert_eq!(field(&stats[0], "hits"), "2");
        assert_eq!(field(&stats[0], "misses"), "2");

        // Bad requests emit an error event and keep the server alive.
        let (alive, err) = collect(
            &mut server,
            "{\"op\":\"sweep\",\"id\":\"x\",\"policies\":[\"nope\"]}",
        );
        assert!(alive);
        assert_eq!(field(&err[0], "event"), "\"error\"");

        // Shutdown says goodbye and stops.
        let (alive, bye) = collect(&mut server, "{\"op\":\"shutdown\"}");
        assert!(!alive);
        assert_eq!(field(&bye[0], "event"), "\"bye\"");
    }

    #[test]
    fn errors_carry_line_numbers_and_feed_the_metrics() {
        let mut server = Server::new(
            Executor::with_threads(1),
            tiny_scale(),
            &CacheSpec::disabled(),
        );
        // Malformed JSON, an unknown op, and an unknown registry name in
        // an otherwise well-formed grid spec: each answers with a
        // structured error naming the request line, and serving continues.
        let (alive, ev) = collect(&mut server, "{not json");
        assert!(alive);
        assert_eq!(field(&ev[0], "event"), "\"error\"");
        assert_eq!(field(&ev[0], "line"), "1");
        let (_, ev) = collect(&mut server, "{\"op\":\"dance\"}");
        assert_eq!(field(&ev[0], "event"), "\"error\"");
        assert_eq!(field(&ev[0], "line"), "2");
        assert!(ev[0].contains("unknown op"));
        let (_, ev) = collect(
            &mut server,
            "{\"op\":\"sweep\",\"id\":\"x\",\"policies\":[\"nope\"]}",
        );
        assert_eq!(field(&ev[0], "event"), "\"error\"");
        assert_eq!(field(&ev[0], "id"), "\"x\"");
        assert_eq!(field(&ev[0], "line"), "3");
        assert!(ev[0].contains("nope"));

        // The metrics op answers with strict Prometheus text carrying the
        // error and request counters.
        let (alive, ev) = collect(&mut server, "{\"op\":\"metrics\"}");
        assert!(alive);
        assert_eq!(field(&ev[0], "event"), "\"metrics\"");
        let text = json::parse(&ev[0])
            .unwrap()
            .get("text")
            .and_then(|t| t.as_str().map(str::to_owned))
            .expect("metrics event carries a text field");
        let samples = hira_obs::parse_prometheus(&text).expect("strict Prometheus text");
        let value = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("no sample {name}"))
                .value
        };
        assert_eq!(value("hira_serve_errors_total"), 3.0);
        assert!(value("hira_serve_uptime_ms") > 0.0);
        let metrics_reqs = samples
            .iter()
            .find(|s| {
                s.name == "hira_serve_requests_total"
                    && s.labels.contains(&("op".to_owned(), "metrics".to_owned()))
            })
            .expect("per-op request counter");
        assert_eq!(metrics_reqs.value, 1.0);

        // Stats gained uptime and cumulative counters, appended after the
        // original fields.
        let (_, ev) = collect(&mut server, "{\"op\":\"stats\"}");
        let stats = &ev[0];
        assert!(stats.find("\"appended\":").unwrap() < stats.find("\"uptime_ms\":").unwrap());
        assert_eq!(field(stats, "sweeps_accepted"), "0");
        assert_eq!(field(stats, "points_streamed"), "0");
        assert!(field(stats, "uptime_ms").parse::<f64>().unwrap() > 0.0);
    }

    #[test]
    fn sweeps_stream_progress_and_count_streamed_points() {
        let mut server = Server::new(
            Executor::with_threads(2),
            tiny_scale(),
            &CacheSpec::disabled(),
        );
        let req = "{\"op\":\"sweep\",\"id\":\"p1\",\"name\":\"serve_progress\",\
                   \"policies\":[\"noref\",\"baseline\"],\"workloads\":[\"stream\"]}";
        let (_, events) = collect(&mut server, req);
        let progress: Vec<&String> = events
            .iter()
            .filter(|e| e.contains("\"event\":\"progress\""))
            .collect();
        assert_eq!(progress.len(), 2, "one progress event per point");
        for p in &progress {
            assert_eq!(field(p, "id"), "\"p1\"");
            assert_eq!(field(p, "total"), "2");
        }
        let last = progress.last().unwrap();
        assert_eq!(field(last, "done"), "2");
        assert_ne!(field(last, "eta_ms"), "null", "finished sweep has an ETA");
        // Each record is preceded by... rather: every progress event comes
        // after its point's records; the final event is still `done`.
        assert_eq!(field(events.last().unwrap(), "event"), "\"done\"");

        let (_, ev) = collect(&mut server, "{\"op\":\"stats\"}");
        assert_eq!(field(&ev[0], "sweeps_accepted"), "1");
        assert_eq!(field(&ev[0], "points_streamed"), "2");

        // The session metrics absorbed the sweep: points, cache misses,
        // kernel events.
        let text = server.metrics_text();
        let samples = hira_obs::parse_prometheus(&text).unwrap();
        let value = |name: &str| {
            samples
                .iter()
                .filter(|s| s.name == name)
                .map(|s| s.value)
                .sum::<f64>()
        };
        assert_eq!(value("hira_points_total"), 2.0);
        assert_eq!(value("hira_cache_misses_total"), 2.0);
        assert_eq!(value("hira_serve_points_streamed_total"), 2.0);
        assert!(value("hira_kernel_events_total") > 0.0);
    }

    #[test]
    fn plugin_sweeps_stream_plugin_metrics_and_feed_the_counter() {
        let mut server = Server::new(
            Executor::with_threads(2),
            tiny_scale(),
            &CacheSpec::disabled(),
        );
        let req = "{\"op\":\"sweep\",\"id\":\"g1\",\"name\":\"serve_plugin\",\
                   \"policies\":[\"baseline\"],\"workloads\":[\"stream\"],\
                   \"plugins\":[\"none\",\"para:0.05\"]}";
        let (alive, events) = collect(&mut server, req);
        assert!(alive);
        assert_eq!(field(&events[0], "event"), "\"accepted\"");
        assert_eq!(field(&events[0], "points"), "2");
        let records: Vec<&String> = events
            .iter()
            .filter(|e| e.contains("\"event\":\"record\""))
            .collect();
        // The defended point streams the per-row victim accounting beside
        // ws; the undefended baseline must stay plugin-metric-free.
        assert!(records.iter().any(|r| {
            r.contains("\"plugin\":\"para:0.05\"") && r.contains("\"metric\":\"plugin_acts\"")
        }));
        assert!(records.iter().any(|r| {
            r.contains("\"plugin\":\"para:0.05\"")
                && r.contains("\"metric\":\"victim_max_exposure\"")
        }));
        assert!(
            !records
                .iter()
                .any(|r| r.contains("\"plugin\":\"none\"") && r.contains("plugin_acts")),
            "the undefended baseline grew plugin metrics"
        );

        // An unknown form answers a structured error and keeps serving.
        let (alive, ev) = collect(
            &mut server,
            "{\"op\":\"sweep\",\"id\":\"g2\",\"plugins\":[\"blink:7\"]}",
        );
        assert!(alive);
        assert_eq!(field(&ev[0], "event"), "\"error\"");
        assert_eq!(field(&ev[0], "id"), "\"g2\"");
        assert!(ev[0].contains("blink:7"));

        // Exactly one accepted sweep carried a plugin axis.
        let text = server.metrics_text();
        let samples = hira_obs::parse_prometheus(&text).unwrap();
        let plugin_sweeps = samples
            .iter()
            .find(|s| s.name == "hira_serve_plugin_sweeps")
            .expect("plugin-sweep counter in the catalogue");
        assert_eq!(plugin_sweeps.value, 1.0);
    }

    #[test]
    fn attached_traces_record_sweep_spans_and_errors() {
        let sink = hira_obs::TraceSink::in_memory(Level::Info);
        let mut server = Server::new(
            Executor::with_threads(1),
            tiny_scale(),
            &CacheSpec::disabled(),
        )
        .with_trace(sink.clone());
        collect(&mut server, "{\"op\":\"nope\"}");
        collect(
            &mut server,
            "{\"op\":\"sweep\",\"id\":\"t\",\"policies\":[\"noref\"],\
             \"workloads\":[\"stream\"]}",
        );
        let lines = sink.lines();
        assert!(
            lines
                .iter()
                .any(|l| l.contains("\"event\":\"serve_error\"") && l.contains("\"line\":1")),
            "{lines:?}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.contains("\"event\":\"sweep\"") && l.contains("\"dur_us\":")),
            "{lines:?}"
        );
    }

    #[test]
    fn blank_lines_are_ignored() {
        let mut server = Server::new(
            Executor::with_threads(1),
            tiny_scale(),
            &CacheSpec::disabled(),
        );
        let (alive, events) = collect(&mut server, "   ");
        assert!(alive);
        assert!(events.is_empty());
    }
}
