//! Engine smoke sweep: a fast end-to-end exercise of the orchestration
//! subsystem — a small `scheme × capacity` weighted-speedup grid run twice,
//! at 1 thread and at the configured thread count, asserting the canonical
//! result sets are byte-identical. Prints the engine's own result table.
//!
//! This is the cheap CI-facing proof that scheduling never leaks into
//! results; the figure binaries then scale the same machinery up.

use hira_bench::{run_ws, Scale};
use hira_engine::{flabel, Executor, Sweep};
use hira_sim::config::SystemConfig;
use hira_sim::policy;

fn sweep() -> Sweep<SystemConfig> {
    Sweep::new("engine_smoke")
        .axis(
            "scheme",
            [
                ("NoRefresh", policy::noref()),
                ("Baseline", policy::baseline()),
            ],
            |_, s| s.clone(),
        )
        .axis("cap", [8.0, 64.0].map(|c| (flabel(c), c)), |s, c| {
            SystemConfig::table3(*c, s.clone())
        })
}

fn main() {
    let scale = Scale {
        mixes: 2,
        insts: 4_000,
        warmup: 800,
        rows: 16,
    };
    let ex = Executor::from_env();

    println!("== engine smoke: {} worker thread(s) vs 1 ==", ex.threads());
    let parallel = run_ws(&ex, sweep(), scale);
    let serial = run_ws(&Executor::with_threads(1), sweep(), scale);
    assert_eq!(
        parallel.run.canonical_json(),
        serial.run.canonical_json(),
        "engine results must be independent of thread count"
    );
    println!("canonical result sets byte-identical: yes");
    println!(
        "sweep wall time: {:.0} ms at {} thread(s), {:.0} ms at 1",
        parallel.run.wall_ms, parallel.run.threads, serial.run.wall_ms
    );
    println!();
    print!("{}", parallel.run.table());
    parallel.emit();
}
