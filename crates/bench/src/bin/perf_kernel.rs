//! Kernel A/B harness: times the event-driven kernel against the dense
//! reference over the headline policy sweep (every registered refresh
//! policy × the Table 3 capacity × the standard mix suite) and — point by
//! point — asserts the two kernels' [`hira_sim::SimResult`]s are
//! **identical**. This is the executable form of the
//! [`hira_sim::policy::RefreshPolicy::next_wake`] contract: any policy
//! whose wake declaration is too eager shows up here as a result mismatch,
//! not as a silently wrong BENCH baseline.
//!
//! Timing is single-threaded ([`hira_bench::run_perf_kernel`]) so the
//! wall-clock comparison measures the kernels, not the executor. Always
//! writes `BENCH_perf_kernel.json` (into `HIRA_BENCH_DIR`, or the working
//! directory when unset) with per-point `wall_dense_ms` / `wall_event_ms`
//! / `speedup` records plus the aggregate `speedup_total`. The wall-clock
//! figures naturally vary run to run — unlike the matrix baselines, this
//! file is a snapshot, not a byte-reproducible artifact — *except* under
//! a warm `--cache`, which replays the stored walls verbatim (the
//! kernel-identity assertion ran when each point was first computed).
//!
//! Flags:
//!
//! * `--policy=<name>[,<name>...]` (repeatable) — subset the policy axis;
//!   default: the full standard registry,
//! * `--plugin=<form>[,<form>...]` (repeatable) — cross the sweep with a
//!   controller-plugin axis (`none`, `oracle:<tRH>`, `para:<p>`,
//!   `graphene:<tRH>:<k>`); the dense-vs-event identity assertion then
//!   runs with each plugin attached; without the flag no plugin axis is
//!   added and the sweep keys are unchanged,
//! * `--cache=<dir>` / `--no-cache` / `--cache-stats` — the shared sweep
//!   cache: replay previously timed points and run only the misses (see
//!   [`hira_bench::CacheSpec`]),
//! * `--check-baseline=<path>` — after the sweep, compare `speedup_total`
//!   against the one recorded in the `BENCH_perf_kernel.json` at `<path>`
//!   and fail when it regressed by more than the tolerance — the CI guard
//!   that the no-probe notification sites stay free,
//! * `--baseline-tolerance=<frac>` — allowed fractional regression for
//!   `--check-baseline` (default 0.35; wall-clock ratios are noisy on
//!   shared runners),
//! * `--trace[=<path>]` / `--metrics[=<path>]` / `--progress` /
//!   `--log-level=<level>` — the shared observability axis: JSONL span
//!   log, Prometheus dump, live progress on stderr and the slow-point
//!   report (see [`hira_bench::ObsSpec`]),
//! * `--list` — print the registered policies and plugin forms, then exit.
//!
//! Scale: `HIRA_MIXES` × `HIRA_INSTS` as everywhere else.

use hira_bench::{
    extract_metric_value, plugin_axis_from_args, policy_axis_from_args, print_plugin_list,
    print_policy_list, print_series, run_perf_kernel_observed, CacheSpec, ObsSpec, Scale,
};
use hira_engine::{RunRecord, ScenarioKey};
use std::path::Path;

/// The single value of a `--<flag>=` argument, when passed.
fn flag_value(flag: &str) -> Option<String> {
    let prefix = format!("--{flag}=");
    std::env::args().find_map(|a| a.strip_prefix(&prefix).map(str::to_owned))
}

fn main() {
    if std::env::args().any(|a| a == "--list") {
        print_policy_list();
        println!();
        print_plugin_list();
        return;
    }
    let scale = Scale::from_env();
    let cap = 8.0;
    let policies = policy_axis_from_args();
    let plugins = plugin_axis_from_args();
    let cache = CacheSpec::from_args();
    let obs = ObsSpec::from_args();
    // Read the baseline before the sweep so a bad path fails fast.
    let baseline = flag_value("check-baseline").map(|path| {
        let body = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("--check-baseline: cannot read {path}: {e}"));
        let total = extract_metric_value(&body, "speedup_total")
            .unwrap_or_else(|| panic!("--check-baseline: no speedup_total record in {path}"));
        (path, total)
    });
    let tolerance: f64 = flag_value("baseline-tolerance")
        .map(|v| v.parse().expect("--baseline-tolerance"))
        .unwrap_or(0.35);
    assert!(
        !policies.is_empty(),
        "perf_kernel needs at least one policy"
    );

    println!(
        "== perf_kernel: dense vs event over {} policies x {} mixes x {} insts at {cap} Gb ==",
        policies.len(),
        scale.mixes,
        scale.insts
    );
    if !plugins.is_empty() {
        let plugin_names: Vec<&str> = plugins.iter().map(|(n, _)| n.as_str()).collect();
        println!(
            "plugins: {} (per-policy walls sum over the plugin axis)",
            plugin_names.join(", ")
        );
    }

    let (mut run, stats) = run_perf_kernel_observed(&policies, &plugins, cap, scale, &cache, &obs);
    // Replayed points skipped both kernel runs; their identity was
    // asserted when they were first computed into the store.
    let note = if stats.hits == 0 {
        "results identical"
    } else {
        "identity verified at first computation for replayed points"
    };

    let sum_for = |name: &str, metric: &str| -> f64 {
        run.records
            .iter()
            .filter(|r| r.metric == metric && r.key.matches(&[("policy", name)]))
            .map(|r| r.value)
            .sum()
    };
    let mut total_dense = 0.0;
    let mut total_event = 0.0;
    let mut speedups = Vec::new();
    for (name, _) in &policies {
        let policy_dense = sum_for(name, "wall_dense_ms");
        let policy_event = sum_for(name, "wall_event_ms");
        total_dense += policy_dense;
        total_event += policy_event;
        speedups.push(policy_dense / policy_event);
        println!(
            "{name:<12} dense {policy_dense:>9.1} ms   event {policy_event:>9.1} ms   \
             speedup {:>5.2}x   ({note})",
            policy_dense / policy_event
        );
    }

    let total = total_dense / total_event;
    println!("\n-- speedup per policy --");
    print_series("speedup", &speedups);
    println!(
        "\ntotal: dense {total_dense:.1} ms, event {total_event:.1} ms -> {total:.2}x \
         over the headline sweep"
    );
    run.records.push(RunRecord {
        key: ScenarioKey::root(),
        metric: "speedup_total".to_owned(),
        value: total,
        wall_ms: total_dense + total_event,
        telemetry: None,
    });

    if let Some((path, expected)) = baseline {
        let floor = expected * (1.0 - tolerance);
        println!(
            "baseline check: speedup_total {total:.2}x vs {expected:.2}x in {path} \
             (floor {floor:.2}x at tolerance {tolerance})"
        );
        assert!(
            total >= floor,
            "event-kernel speedup regressed: {total:.2}x < {floor:.2}x \
             ({expected:.2}x in {path} minus {tolerance} tolerance) — \
             did the no-probe path grow overhead?"
        );
    }

    let dir = std::env::var("HIRA_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    match run.write_bench_json(Path::new(&dir)) {
        Ok(path) => println!("(result store written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_perf_kernel.json: {e}"),
    }
}
