//! Kernel A/B harness: times the event-driven kernel against the dense
//! reference over the headline policy sweep (every registered refresh
//! policy × the Table 3 capacity × the standard mix suite) and — point by
//! point — asserts the two kernels' [`hira_sim::SimResult`]s are
//! **identical**. This is the executable form of the
//! [`hira_sim::policy::RefreshPolicy::next_wake`] contract: any policy
//! whose wake declaration is too eager shows up here as a result mismatch,
//! not as a silently wrong BENCH baseline.
//!
//! Timing is single-threaded and engine-free (`System::run` is called
//! directly) so the wall-clock comparison measures the kernels, not the
//! executor. Always writes `BENCH_perf_kernel.json` (into
//! `HIRA_BENCH_DIR`, or the working directory when unset) with per-point
//! `wall_dense_ms` / `wall_event_ms` / `speedup` records plus the
//! aggregate `speedup_total`. The wall-clock figures naturally vary run
//! to run — unlike the matrix baselines, this file is a snapshot, not a
//! byte-reproducible artifact.
//!
//! Flags:
//!
//! * `--policy=<name>[,<name>...]` (repeatable) — subset the policy axis;
//!   default: the full standard registry,
//! * `--check-baseline=<path>` — after the sweep, compare `speedup_total`
//!   against the one recorded in the `BENCH_perf_kernel.json` at `<path>`
//!   and fail when it regressed by more than the tolerance — the CI guard
//!   that the no-probe notification sites stay free,
//! * `--baseline-tolerance=<frac>` — allowed fractional regression for
//!   `--check-baseline` (default 0.35; wall-clock ratios are noisy on
//!   shared runners),
//! * `--list` — print the registered policies and exit.
//!
//! Scale: `HIRA_MIXES` × `HIRA_INSTS` as everywhere else.

use hira_bench::{extract_metric_value, policy_axis_from_args, print_series, Scale};
use hira_engine::{RunRecord, RunSet, ScenarioKey};
use hira_sim::config::{KernelMode, SystemConfig};
use hira_sim::{SimResult, System};
use hira_workload::mix;
use std::path::Path;
use std::time::Instant;

/// Runs one configuration under `kernel`, returning the result and the
/// wall time in milliseconds.
fn timed(cfg: &SystemConfig, kernel: KernelMode) -> (SimResult, f64) {
    let cfg = cfg.clone().with_kernel(kernel);
    let start = Instant::now();
    let result = System::new(cfg).run();
    (result, start.elapsed().as_secs_f64() * 1e3)
}

/// The single value of a `--<flag>=` argument, when passed.
fn flag_value(flag: &str) -> Option<String> {
    let prefix = format!("--{flag}=");
    std::env::args().find_map(|a| a.strip_prefix(&prefix).map(str::to_owned))
}

fn main() {
    let scale = Scale::from_env();
    let cap = 8.0;
    let policies = policy_axis_from_args();
    // Read the baseline before the sweep so a bad path fails fast.
    let baseline = flag_value("check-baseline").map(|path| {
        let body = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("--check-baseline: cannot read {path}: {e}"));
        let total = extract_metric_value(&body, "speedup_total")
            .unwrap_or_else(|| panic!("--check-baseline: no speedup_total record in {path}"));
        (path, total)
    });
    let tolerance: f64 = flag_value("baseline-tolerance")
        .map(|v| v.parse().expect("--baseline-tolerance"))
        .unwrap_or(0.35);
    assert!(
        !policies.is_empty(),
        "perf_kernel needs at least one policy"
    );

    println!(
        "== perf_kernel: dense vs event over {} policies x {} mixes x {} insts at {cap} Gb ==",
        policies.len(),
        scale.mixes,
        scale.insts
    );

    let t0 = Instant::now();
    let mut records = Vec::new();
    let mut total_dense = 0.0;
    let mut total_event = 0.0;
    let mut speedups = Vec::new();
    for (name, policy) in &policies {
        let mut policy_dense = 0.0;
        let mut policy_event = 0.0;
        for mix_id in 0..scale.mixes {
            let cfg = SystemConfig::table3(cap, policy.clone())
                .with_insts(scale.insts, scale.warmup)
                .with_workload(mix(mix_id));
            let (dense, wall_dense) = timed(&cfg, KernelMode::Dense);
            let (event, wall_event) = timed(&cfg, KernelMode::Event);
            assert_eq!(
                dense, event,
                "kernel divergence at policy {name}, mix {mix_id}: the \
                 next_wake contract is violated somewhere"
            );
            policy_dense += wall_dense;
            policy_event += wall_event;
            let key = ScenarioKey::root()
                .with("policy", name)
                .with("mix", mix_id.to_string());
            for (metric, value) in [
                ("wall_dense_ms", wall_dense),
                ("wall_event_ms", wall_event),
                ("speedup", wall_dense / wall_event),
            ] {
                records.push(RunRecord {
                    key: key.clone(),
                    metric: metric.to_owned(),
                    value,
                    wall_ms: wall_dense + wall_event,
                    telemetry: None,
                });
            }
        }
        total_dense += policy_dense;
        total_event += policy_event;
        speedups.push(policy_dense / policy_event);
        println!(
            "{name:<12} dense {policy_dense:>9.1} ms   event {policy_event:>9.1} ms   \
             speedup {:>5.2}x   (results identical)",
            policy_dense / policy_event
        );
    }

    let total = total_dense / total_event;
    println!("\n-- speedup per policy --");
    print_series("speedup", &speedups);
    println!(
        "\ntotal: dense {total_dense:.1} ms, event {total_event:.1} ms -> {total:.2}x \
         over the headline sweep"
    );
    records.push(RunRecord {
        key: ScenarioKey::root(),
        metric: "speedup_total".to_owned(),
        value: total,
        wall_ms: total_dense + total_event,
        telemetry: None,
    });

    if let Some((path, expected)) = baseline {
        let floor = expected * (1.0 - tolerance);
        println!(
            "baseline check: speedup_total {total:.2}x vs {expected:.2}x in {path} \
             (floor {floor:.2}x at tolerance {tolerance})"
        );
        assert!(
            total >= floor,
            "event-kernel speedup regressed: {total:.2}x < {floor:.2}x \
             ({expected:.2}x in {path} minus {tolerance} tolerance) — \
             did the no-probe path grow overhead?"
        );
    }

    let run = RunSet {
        sweep: "perf_kernel".to_owned(),
        threads: 1,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        records,
    };
    let dir = std::env::var("HIRA_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    match run.write_bench_json(Path::new(&dir)) {
        Ok(path) => println!("(result store written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_perf_kernel.json: {e}"),
    }
}
