//! Fig. 16: rank-count sweep for PARA with and without HiRA — one engine
//! sweep over `NRH × scheme × ranks` plus one no-defense baseline point.

use hira_bench::{print_series, pth_for, run_ws, Scale};
use hira_core::config::HiraConfig;
use hira_engine::{Executor, ScenarioKey, Sweep};
use hira_sim::config::{PreventiveMode, RefreshScheme, SystemConfig};

fn main() {
    let scale = Scale::from_env();
    let ex = Executor::from_env();
    let ranks = [1usize, 2, 4, 8];
    let nrhs = [1024u32, 256, 64];
    let names = ["PARA", "HiRA-2", "HiRA-4"];

    let mut sweep = Sweep::new("fig16_ranks_para")
        .axis("nrh", nrhs.map(|n| (n.to_string(), n)), |_, n| *n)
        .expand("scheme", |_, &nrh| {
            let schemes: [(&str, f64, PreventiveMode); 3] = [
                ("PARA", pth_for(nrh, 0), PreventiveMode::Immediate),
                (
                    "HiRA-2",
                    pth_for(nrh, 2),
                    PreventiveMode::Hira(HiraConfig::hira_n(2)),
                ),
                (
                    "HiRA-4",
                    pth_for(nrh, 4),
                    PreventiveMode::Hira(HiraConfig::hira_n(4)),
                ),
            ];
            schemes
                .into_iter()
                .map(|(n, pth, mode)| (n.to_string(), (pth, mode)))
                .collect()
        })
        .axis(
            "rk",
            ranks.map(|r| (r.to_string(), r)),
            |&(pth, mode), rk| {
                SystemConfig::table3(8.0, RefreshScheme::Baseline)
                    .with_geometry(1, *rk)
                    .with_preventive(pth, mode)
            },
        );
    sweep.push(
        ScenarioKey::root().with("scheme", "no-defense"),
        SystemConfig::table3(8.0, RefreshScheme::Baseline),
    );
    let t = run_ws(&ex, sweep, scale);
    let base = t.mean(&[("scheme", "no-defense")]);

    for nrh in nrhs {
        println!("== Fig. 16: NRH = {nrh}, ranks/channel {ranks:?} (normalized to no-defense 1ch/1rk) ==");
        for name in names {
            let ws: Vec<f64> = ranks
                .iter()
                .map(|&rk| {
                    t.mean(&[
                        ("nrh", &nrh.to_string()),
                        ("scheme", name),
                        ("rk", &rk.to_string()),
                    ]) / base
                })
                .collect();
            print_series(name, &ws);
        }
        println!();
    }
    println!("(paper: HiRA-2/4 improve over PARA by 30.5 %/42.9 % even at 8 ranks, NRH=64)");
    t.emit();
}
