//! Fig. 16: rank-count sweep for PARA with and without HiRA — one engine
//! sweep over `NRH × scheme × ranks` plus one no-defense baseline point.

use hira_bench::{preventive_schemes_geometry, print_series, run_ws, Scale};
use hira_engine::{Executor, ScenarioKey, Sweep};
use hira_sim::config::SystemConfig;
use hira_sim::policy;

fn main() {
    let scale = Scale::from_env();
    let ex = Executor::from_env();
    let ranks = [1usize, 2, 4, 8];
    let nrhs = [1024u32, 256, 64];
    let names = ["PARA", "HiRA-2", "HiRA-4"];

    let mut sweep = Sweep::new("fig16_ranks_para")
        .axis("nrh", nrhs.map(|n| (n.to_string(), n)), |_, n| *n)
        .expand("scheme", |_, &nrh| {
            preventive_schemes_geometry(nrh)
                .into_iter()
                .map(|(n, handle)| (n.to_string(), handle))
                .collect()
        })
        .axis("rk", ranks.map(|r| (r.to_string(), r)), |handle, rk| {
            SystemConfig::table3(8.0, handle.clone()).with_geometry(1, *rk)
        });
    sweep.push(
        ScenarioKey::root().with("scheme", "no-defense"),
        SystemConfig::table3(8.0, policy::baseline()),
    );
    let t = run_ws(&ex, sweep, scale);
    let base = t.mean(&[("scheme", "no-defense")]);

    for nrh in nrhs {
        println!("== Fig. 16: NRH = {nrh}, ranks/channel {ranks:?} (normalized to no-defense 1ch/1rk) ==");
        for name in names {
            let ws: Vec<f64> = ranks
                .iter()
                .map(|&rk| {
                    t.mean(&[
                        ("nrh", &nrh.to_string()),
                        ("scheme", name),
                        ("rk", &rk.to_string()),
                    ]) / base
                })
                .collect();
            print_series(name, &ws);
        }
        println!();
    }
    println!("(paper: HiRA-2/4 improve over PARA by 30.5 %/42.9 % even at 8 ranks, NRH=64)");
    t.emit();
}
