//! Fig. 4: HiRA coverage across the t1 × t2 grid (box plots) — one engine
//! task per grid cell, each against its own software chip.

use hira_bench::Scale;
use hira_characterize::config::CharacterizeConfig;
use hira_characterize::coverage::{self, CoverageGridPoint};
use hira_characterize::report::render_figure4;
use hira_dram::addr::BankId;
use hira_dram::timing::HiraTimings;
use hira_dram::ModuleSpec;
use hira_engine::{metric, Executor, ScenarioKey, Sweep};
use hira_softmc::SoftMc;

fn main() {
    let scale = Scale::from_env();
    let cfg = CharacterizeConfig {
        rows_per_region: scale.rows.min(32),
        row_a_stride: 2,
        row_b_stride: 2,
        ..CharacterizeConfig::fast()
    };
    println!("== Fig. 4: coverage vs (t1, t2), module C0, bank 0 ==");
    println!("(paper: ~32 % at t1=3,t2∈{{3,4.5}}; ~0 at t1∈{{1.5,6}}; min 25 %)");

    let points = HiraTimings::figure4_grid()
        .into_iter()
        .map(|h| {
            let key = ScenarioKey::root()
                .with("t1", format!("{}", h.t1))
                .with("t2", format!("{}", h.t2));
            (key, h)
        })
        .collect();
    let sweep = Sweep::from_points("fig04_coverage", hira_engine::DEFAULT_BASE_SEED, points);
    let (grid, run): (Vec<CoverageGridPoint>, _) = Executor::from_env().run_with(&sweep, |sc| {
        let mut mc = SoftMc::new(ModuleSpec::c0());
        let result = coverage::measure(&mut mc, BankId(0), &cfg.with_hira(*sc.params));
        let stats = result.stats();
        let metrics = vec![
            metric("coverage_mean", stats.mean),
            metric("coverage_min", stats.min),
            metric("coverage_max", stats.max),
        ];
        (
            CoverageGridPoint {
                hira: *sc.params,
                stats,
            },
            metrics,
        )
    });

    print!("{}", render_figure4(&grid));
    run.emit_if_requested();
}
