//! Fig. 4: HiRA coverage across the t1 × t2 grid (box plots).

use hira_bench::Scale;
use hira_characterize::config::CharacterizeConfig;
use hira_characterize::coverage::figure4_grid;
use hira_characterize::report::render_figure4;
use hira_dram::addr::BankId;
use hira_dram::ModuleSpec;
use hira_softmc::SoftMc;

fn main() {
    let scale = Scale::from_env();
    let cfg = CharacterizeConfig {
        rows_per_region: scale.rows.min(32),
        row_a_stride: 2,
        row_b_stride: 2,
        ..CharacterizeConfig::fast()
    };
    println!("== Fig. 4: coverage vs (t1, t2), module C0, bank 0 ==");
    println!("(paper: ~32 % at t1=3,t2∈{{3,4.5}}; ~0 at t1∈{{1.5,6}}; min 25 %)");
    let mut mc = SoftMc::new(ModuleSpec::c0());
    let grid = figure4_grid(&mut mc, BankId(0), &cfg);
    print!("{}", render_figure4(&grid));
}
