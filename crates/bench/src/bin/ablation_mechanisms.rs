//! Ablation study (DESIGN.md §8): which HiRA-MC mechanism buys what.
//!
//! Runs HiRA-4 on 64 Gb chips with refresh-access and refresh-refresh
//! pairing individually disabled, against the full configuration, the
//! Baseline and the ideal No-Refresh system.

use hira_bench::{mean_ws, print_series, Scale};
use hira_core::config::HiraConfig;
use hira_sim::config::{RefreshScheme, SystemConfig};

fn main() {
    let scale = Scale::from_env();
    let cap = 64.0;
    println!("== Ablation: HiRA-4 mechanisms at {cap} Gb, {} mixes x {} insts ==", scale.mixes, scale.insts);
    let ideal = mean_ws(&SystemConfig::table3(cap, RefreshScheme::NoRefresh), scale);
    let configs = [
        ("Baseline", RefreshScheme::Baseline),
        ("HiRA-4 full", RefreshScheme::Hira(HiraConfig::hira_n(4))),
        ("no refresh-access", RefreshScheme::Hira(HiraConfig::hira_n(4).without_refresh_access())),
        ("no refresh-refresh", RefreshScheme::Hira(HiraConfig::hira_n(4).without_refresh_refresh())),
        (
            "singles only",
            RefreshScheme::Hira(
                HiraConfig::hira_n(4).without_refresh_access().without_refresh_refresh(),
            ),
        ),
    ];
    println!("(weighted speedup normalized to the ideal No-Refresh system)");
    for (name, scheme) in configs {
        let ws = mean_ws(&SystemConfig::table3(cap, scheme), scale);
        print_series(name, &[ws / ideal]);
    }
}
