//! Ablation study (DESIGN.md §8): which HiRA-MC mechanism buys what.
//!
//! Runs HiRA-4 on 64 Gb chips with refresh-access and refresh-refresh
//! pairing individually disabled, against the full configuration, the
//! Baseline and the ideal No-Refresh system — one engine sweep over the
//! `scheme` axis, every point a registered-or-custom policy handle.

use hira_bench::{print_series, run_ws, Scale};
use hira_core::config::HiraConfig;
use hira_engine::{Executor, Sweep};
use hira_sim::config::SystemConfig;
use hira_sim::policy;

fn main() {
    let scale = Scale::from_env();
    let ex = Executor::from_env();
    let cap = 64.0;
    let schemes = vec![
        ("NoRefresh", policy::noref()),
        ("Baseline", policy::baseline()),
        ("HiRA-4 full", policy::hira(4)),
        (
            "no refresh-access",
            policy::hira_custom("hira4-noRA", HiraConfig::hira_n(4).without_refresh_access()),
        ),
        (
            "no refresh-refresh",
            policy::hira_custom(
                "hira4-noRR",
                HiraConfig::hira_n(4).without_refresh_refresh(),
            ),
        ),
        (
            "singles only",
            policy::hira_custom(
                "hira4-singles",
                HiraConfig::hira_n(4)
                    .without_refresh_access()
                    .without_refresh_refresh(),
            ),
        ),
    ];
    let names: Vec<&str> = schemes.iter().skip(1).map(|(n, _)| *n).collect();

    println!(
        "== Ablation: HiRA-4 mechanisms at {cap} Gb, {} mixes x {} insts ==",
        scale.mixes, scale.insts
    );
    let sweep = Sweep::new("ablation_mechanisms").axis("scheme", schemes, |_, s| {
        SystemConfig::table3(cap, s.clone())
    });
    let t = run_ws(&ex, sweep, scale);
    let ideal = t.mean(&[("scheme", "NoRefresh")]);

    println!("(weighted speedup normalized to the ideal No-Refresh system)");
    for name in names {
        print_series(name, &[t.mean(&[("scheme", name)]) / ideal]);
    }
    t.emit();
}
