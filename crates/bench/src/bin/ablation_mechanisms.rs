//! Ablation study (DESIGN.md §8): which HiRA-MC mechanism buys what.
//!
//! Runs HiRA-4 on 64 Gb chips with refresh-access and refresh-refresh
//! pairing individually disabled, against the full configuration, the
//! Baseline and the ideal No-Refresh system — one engine sweep over the
//! `scheme` axis.

use hira_bench::{print_series, run_ws, Scale};
use hira_core::config::HiraConfig;
use hira_engine::{Executor, Sweep};
use hira_sim::config::{RefreshScheme, SystemConfig};

fn main() {
    let scale = Scale::from_env();
    let ex = Executor::from_env();
    let cap = 64.0;
    let schemes = vec![
        ("NoRefresh", RefreshScheme::NoRefresh),
        ("Baseline", RefreshScheme::Baseline),
        ("HiRA-4 full", RefreshScheme::Hira(HiraConfig::hira_n(4))),
        (
            "no refresh-access",
            RefreshScheme::Hira(HiraConfig::hira_n(4).without_refresh_access()),
        ),
        (
            "no refresh-refresh",
            RefreshScheme::Hira(HiraConfig::hira_n(4).without_refresh_refresh()),
        ),
        (
            "singles only",
            RefreshScheme::Hira(
                HiraConfig::hira_n(4)
                    .without_refresh_access()
                    .without_refresh_refresh(),
            ),
        ),
    ];
    let names: Vec<&str> = schemes.iter().skip(1).map(|(n, _)| *n).collect();

    println!(
        "== Ablation: HiRA-4 mechanisms at {cap} Gb, {} mixes x {} insts ==",
        scale.mixes, scale.insts
    );
    let sweep = Sweep::new("ablation_mechanisms")
        .axis("scheme", schemes, |_, s| SystemConfig::table3(cap, *s));
    let t = run_ws(&ex, sweep, scale);
    let ideal = t.mean(&[("scheme", "NoRefresh")]);

    println!("(weighted speedup normalized to the ideal No-Refresh system)");
    for name in names {
        print_series(name, &[t.mean(&[("scheme", name)]) / ideal]);
    }
    t.emit();
}
