//! §4.2 headline numbers: two-row refresh latency with and without HiRA.

use hira_core::hira_op::HiraOperation;
use hira_dram::timing::TimingParams;

fn main() {
    let t = TimingParams::ddr4_2400();
    let op = HiraOperation::nominal();
    println!("== HiRA headline latencies (DDR4-2400, t1=t2=3 ns) ==");
    println!("conventional two-row refresh : {:>7.2} ns (tRAS+tRP+tRAS)", t.two_row_refresh_ns());
    println!("HiRA two-row refresh         : {:>7.2} ns (t1+t2+tRAS)", op.two_row_refresh_ns(&t));
    println!("latency reduction            : {:>6.1} %  (paper: 51.4 %)",
        op.refresh_latency_reduction(&t) * 100.0);
    println!("access after refresh         : {:>7.2} ns lead (paper: as small as 6 ns, vs tRC {:.2})",
        op.lead_ns(), t.t_rc);
}
