//! §4.2 headline numbers: two-row refresh latency with and without HiRA.
//!
//! Runs through `hira-engine` and always emits `BENCH_headline.json` (into
//! `HIRA_BENCH_DIR`, or the working directory when unset) so every PR's perf
//! trajectory has a machine-readable baseline.

use hira_core::hira_op::HiraOperation;
use hira_dram::timing::TimingParams;
use hira_engine::{metric, Executor, ScenarioKey, Sweep};
use std::path::Path;

fn main() {
    let mut sweep = Sweep::from_points("headline", hira_engine::DEFAULT_BASE_SEED, Vec::new());
    sweep.push(
        ScenarioKey::root().with("timing", "ddr4_2400"),
        TimingParams::ddr4_2400(),
    );
    let run = Executor::from_env().run(&sweep, |sc| {
        let t = sc.params;
        let op = HiraOperation::nominal();
        vec![
            metric("conventional_two_row_ns", t.two_row_refresh_ns()),
            metric("hira_two_row_ns", op.two_row_refresh_ns(t)),
            metric(
                "latency_reduction_pct",
                op.refresh_latency_reduction(t) * 100.0,
            ),
            metric("access_lead_ns", op.lead_ns()),
            metric("t_rc_ns", t.t_rc),
        ]
    });

    println!("== HiRA headline latencies (DDR4-2400, t1=t2=3 ns) ==");
    println!(
        "conventional two-row refresh : {:>7.2} ns (tRAS+tRP+tRAS)",
        run.value(&[], "conventional_two_row_ns")
    );
    println!(
        "HiRA two-row refresh         : {:>7.2} ns (t1+t2+tRAS)",
        run.value(&[], "hira_two_row_ns")
    );
    println!(
        "latency reduction            : {:>6.1} %  (paper: 51.4 %)",
        run.value(&[], "latency_reduction_pct")
    );
    println!(
        "access after refresh         : {:>7.2} ns lead (paper: as small as 6 ns, vs tRC {:.2})",
        run.value(&[], "access_lead_ns"),
        run.value(&[], "t_rc_ns")
    );

    let dir = std::env::var("HIRA_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    match run.write_bench_json(Path::new(&dir)) {
        Ok(path) => println!("(result store written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_headline.json: {e}"),
    }
}
