//! Device matrix: device × refresh policy × workload, through one engine
//! weighted-speedup sweep — the comparison surface the open
//! [`hira_sim::device`] API exists for. Where `policy_matrix` holds the
//! device fixed and sweeps policies, and `workload_matrix` crosses
//! workloads with policies, this grid adds the third axis: how each
//! refresh arrangement costs on each DRAM part, under each traffic shape.
//! Weighted speedup is normalized per device (each cell's alone-IPC
//! denominators run on that cell's device), so the numbers isolate
//! refresh interference rather than raw inter-device speed.
//!
//! Besides `ws`, every record set carries the channel metrics: `read_lat`
//! / `write_lat` (average demand latencies, memory cycles) and `dbus`
//! (mean per-channel data-bus busy fraction).
//!
//! Combos the builder refuses with
//! [`hira_sim::builder::BuildError::DeviceLacksHira`] (a HiRA policy on a
//! HiRA-inert part) or
//! [`hira_sim::builder::BuildError::DeviceLacksVrr`] (a directed-refresh
//! plugin on a part that drops vendor directed-refresh commands) are
//! skipped and reported explicitly — absent cells print as `-`, never as
//! silent zeros.
//!
//! Always writes `BENCH_device_matrix.json` (into `HIRA_BENCH_DIR`, or
//! the working directory when unset): the tracked perf baseline for the
//! device comparison surface.
//!
//! Flags:
//!
//! * `--device=<name>[,<name>...]` (repeatable) — subset the device axis
//!   by registry name (including the dynamic `ddr4-2400@<Gb>` form);
//!   default: the HiRA-capable presets plus a pinned 32 Gb part,
//! * `--policy=<name>[,<name>...]` (repeatable) — subset the policy
//!   axis; default: a representative arrangement per family,
//! * `--workload=<name>[,<name>...]` (repeatable) — subset the workload
//!   axis; default: a mix, a streaming and a random generator,
//! * `--plugin=<form>[,<form>...]` (repeatable) — cross the grid with a
//!   controller-plugin axis (`none`, `oracle:<tRH>`, `para:<p>`,
//!   `graphene:<tRH>:<k>`; see [`hira_sim::plugin`]); each combo is
//!   validated through the builder, so VRR-less parts skip
//!   directed-refresh plugins; without the flag no plugin axis is added
//!   and the sweep keys are unchanged,
//! * `--kernel=dense|event` — simulation kernel (default `event`; results
//!   are bit-identical, `dense` is the reference escape hatch),
//! * `--probe=<form>` / `--cmdtrace=<prefix>` / `--stats-epoch=<cycles>` —
//!   attach observers to every point (results stay bit-identical; output
//!   paths are suffixed per point), `--telemetry` — print the per-point
//!   run telemetry table,
//! * `--cache=<dir>` / `--no-cache` / `--cache-stats` — the shared sweep
//!   cache: replay previously computed points from a `hira-store`
//!   directory and simulate only the misses (see
//!   [`hira_bench::CacheSpec`]),
//! * `--trace[=<path>]` / `--metrics[=<path>]` / `--progress` /
//!   `--log-level=<level>` — the shared observability axis: JSONL span
//!   log, Prometheus dump, live progress on stderr and the slow-point
//!   report (see [`hira_bench::ObsSpec`]; canonical results stay
//!   byte-identical),
//! * `--list` — print all three registries (plus the probe forms and
//!   kernel modes) with their one-liners and exit,
//! * `--check-determinism` — re-run the sweep single-threaded and assert
//!   the canonical result sets are byte-identical.

use hira_bench::{
    device_axis_from_args_or, kernel_from_args, maybe_print_telemetry, plugin_axis_from_args,
    policy_axis_from_args_or, print_device_list, print_kernel_list, print_plugin_list,
    print_policy_list, print_probe_list, print_workload_list, run_ws_with_stats_observed,
    workload_axis_from_args_or, CacheSpec, ObsSpec, ProbeSpec, Scale, WsTable,
};
use hira_engine::{Executor, ScenarioKey, Sweep};
use hira_sim::builder::{BuildError, SystemBuilder};
use hira_sim::config::{KernelMode, SystemConfig};
use hira_sim::device::DeviceHandle;
use hira_sim::plugin::PluginHandle;
use hira_sim::policy::PolicyHandle;
use hira_workload::WorkloadHandle;
use std::path::Path;

/// The HiRA-capable presets plus the dynamic capacity form's 32 Gb point.
const DEFAULT_DEVICES: &[&str] = &["ddr4-2400", "ddr4-3200", "lpddr4-3200", "ddr4-2400@32"];

/// One representative refresh arrangement per family: the ideal bound,
/// the all-bank baseline, per-bank parallelism, and HiRA.
const DEFAULT_POLICIES: &[&str] = &["noref", "baseline", "refpb", "hira4"];

/// A multiprogrammed mix, a streaming, a random and a write-heavy
/// generator (the last keeps `write_lat` a live column).
const DEFAULT_WORKLOADS: &[&str] = &["mix0", "stream", "random", "rw50"];

type Axis<T> = [(String, T)];

/// Builds the cartesian grid, skipping device × policy (HiRA-inert part)
/// and device × plugin (VRR-less part) combos the builder rejects
/// (returned separately for reporting). An empty `plugins` slice adds no
/// `plugin` key part, keeping the plugin-free grid's keys unchanged.
fn grid(
    devices: &Axis<DeviceHandle>,
    policies: &Axis<PolicyHandle>,
    workloads: &Axis<WorkloadHandle>,
    plugins: &Axis<Option<PluginHandle>>,
    kernel: KernelMode,
) -> (Sweep<SystemConfig>, Vec<String>) {
    let no_plugins = [("none".to_owned(), None)];
    let plugin_axis: &Axis<Option<PluginHandle>> = if plugins.is_empty() {
        &no_plugins
    } else {
        plugins
    };
    let keyed = !plugins.is_empty();
    let mut points = Vec::new();
    let mut skipped = Vec::new();
    for (dn, d) in devices {
        for (pn, p) in policies {
            for (gn, g) in plugin_axis {
                let mut combo_ok = true;
                for (wn, w) in workloads {
                    if !combo_ok {
                        break;
                    }
                    let mut builder = SystemBuilder::new()
                        .device(d.clone())
                        .policy(p.clone())
                        .workload(w.clone())
                        .kernel(kernel);
                    if let Some(h) = g {
                        builder = builder.plugin(h.clone());
                    }
                    match builder.build() {
                        Ok(cfg) => {
                            let mut key = ScenarioKey::root()
                                .with("dev", dn)
                                .with("policy", pn)
                                .with("wl", wn);
                            if keyed {
                                key = key.with("plugin", gn);
                            }
                            points.push((key, cfg));
                        }
                        Err(BuildError::DeviceLacksHira { .. }) => {
                            let msg = format!("{dn} x {pn} (HiRA-inert device)");
                            if !skipped.contains(&msg) {
                                skipped.push(msg);
                            }
                            combo_ok = false;
                        }
                        Err(BuildError::DeviceLacksVrr { .. }) => {
                            let msg = format!("{dn} x {gn} (device drops directed refresh)");
                            if !skipped.contains(&msg) {
                                skipped.push(msg);
                            }
                            combo_ok = false;
                        }
                        Err(e) => panic!("device_matrix point {dn} x {pn} x {wn}: {e}"),
                    }
                }
            }
        }
    }
    (
        Sweep::from_points("device_matrix", hira_engine::DEFAULT_BASE_SEED, points),
        skipped,
    )
}

fn print_grid(t: &WsTable, devices: &[String], policies: &[String], workloads: &[String]) {
    println!("\n-- weighted speedup, rows = device x policy, columns = workloads --");
    let header: Vec<String> = workloads.iter().map(|n| format!("{n:>8}")).collect();
    println!("{:<30} {}", "", header.join(" "));
    for d in devices {
        for p in policies {
            let row: Vec<String> = workloads
                .iter()
                .map(
                    |w| match t.try_mean(&[("dev", d), ("policy", p), ("wl", w)]) {
                        Some(v) => format!("{v:>8.4}"),
                        None => format!("{:>8}", "-"),
                    },
                )
                .collect();
            println!("{:<30} {}", format!("{d} / {p}"), row.join(" "));
        }
    }
}

fn main() {
    if std::env::args().any(|a| a == "--list") {
        print_device_list();
        println!();
        print_policy_list();
        println!();
        print_workload_list();
        println!();
        print_plugin_list();
        println!();
        print_probe_list();
        println!();
        print_kernel_list();
        return;
    }
    let scale = Scale::from_env();
    let ex = Executor::from_env();
    let kernel = kernel_from_args();
    let probes = ProbeSpec::from_args();
    let cache = CacheSpec::from_args();
    let obs = ObsSpec::from_args();
    let devices = device_axis_from_args_or(DEFAULT_DEVICES);
    let policies = policy_axis_from_args_or(DEFAULT_POLICIES);
    let workloads = workload_axis_from_args_or(DEFAULT_WORKLOADS);
    let plugins = plugin_axis_from_args();
    assert!(
        !devices.is_empty() && !policies.is_empty() && !workloads.is_empty(),
        "device_matrix needs at least one device, one policy and one workload"
    );
    let dev_names: Vec<String> = devices.iter().map(|(n, _)| n.clone()).collect();
    let pol_names: Vec<String> = policies.iter().map(|(n, _)| n.clone()).collect();
    let wl_names: Vec<String> = workloads.iter().map(|(n, _)| n.clone()).collect();

    println!(
        "== device matrix: {} devices x {} policies x {} workloads, {} insts ==",
        devices.len(),
        policies.len(),
        workloads.len(),
        scale.insts
    );
    println!("devices:   {}", dev_names.join(", "));
    println!("policies:  {}", pol_names.join(", "));
    println!("workloads: {}", wl_names.join(", "));
    if !plugins.is_empty() {
        let plugin_names: Vec<&str> = plugins.iter().map(|(n, _)| n.as_str()).collect();
        println!("plugins:   {}", plugin_names.join(", "));
        println!("(weighted-speedup cells below average over the plugin axis)");
    }

    let (sweep, skipped) = grid(&devices, &policies, &workloads, &plugins, kernel);
    for s in &skipped {
        println!("skipping {s}");
    }
    assert!(!sweep.is_empty(), "every device x policy combo was skipped");
    let t = run_ws_with_stats_observed(&ex, sweep, scale, &probes, &cache, &obs);

    if std::env::args().any(|a| a == "--check-determinism") {
        let (sweep, _) = grid(&devices, &policies, &workloads, &plugins, kernel);
        // Deliberately uncached: re-simulating also proves any cache
        // replays above were bit-identical to fresh simulation.
        let serial = run_ws_with_stats_observed(
            &Executor::with_threads(1),
            sweep,
            scale,
            &probes,
            &CacheSpec::disabled(),
            &ObsSpec::disabled(),
        );
        assert_eq!(
            t.run.canonical_json(),
            serial.run.canonical_json(),
            "device sweep results must be independent of HIRA_THREADS"
        );
        println!("determinism check: canonical result sets byte-identical at 1 thread");
    }

    print_grid(&t, &dev_names, &pol_names, &wl_names);

    // Channel metrics under one representative policy: `baseline` when it
    // is on the axis, the first selected policy otherwise.
    let metrics_policy = pol_names
        .iter()
        .find(|n| *n == "baseline")
        .unwrap_or(&pol_names[0]);
    println!("\n-- channel metrics per device ({metrics_policy} policy, mean over workloads) --");
    println!(
        "{:<18} {:>10} {:>10} {:>8} {:>9} {:>9} {:>9}",
        "", "read_lat", "write_lat", "dbus", "read_p50", "read_p99", "write_p99"
    );
    for d in &dev_names {
        let mean_of = |metric: &str| -> Option<f64> {
            let vals: Vec<f64> = t
                .run
                .records
                .iter()
                .filter(|r| {
                    r.metric == metric && r.key.matches(&[("dev", d), ("policy", metrics_policy)])
                })
                .map(|r| r.value)
                .collect();
            (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
        };
        match (
            mean_of("read_lat"),
            mean_of("write_lat"),
            mean_of("dbus"),
            mean_of("read_p50"),
            mean_of("read_p99"),
            mean_of("write_p99"),
        ) {
            (Some(rl), Some(wl), Some(db), Some(r50), Some(r99), Some(w99)) => {
                println!(
                    "{d:<18} {rl:>10.2} {wl:>10.2} {db:>8.4} {r50:>9.1} {r99:>9.1} {w99:>9.1}"
                );
            }
            // A skipped device x policy combo has no records: say so.
            _ => println!(
                "{d:<18} {:>10} {:>10} {:>8} {:>9} {:>9} {:>9}",
                "-", "-", "-", "-", "-", "-"
            ),
        }
    }

    maybe_print_telemetry(&t.run);
    if probes.is_active() {
        println!("\nprobes attached: {}", probes.specs().join(", "));
    }

    let dir = std::env::var("HIRA_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    match t.run.write_bench_json(Path::new(&dir)) {
        Ok(path) => println!("(result store written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_device_matrix.json: {e}"),
    }
}
