//! Extension experiment: RowHammer thresholds vs temperature, with and
//! without HiRA (the §4.1 heater rig, exercised) — one engine task per
//! heater setpoint, each against its own software chip.

use hira_characterize::config::CharacterizeConfig;
use hira_characterize::temperature::{sweep as temp_sweep, TemperaturePoint};
use hira_dram::addr::BankId;
use hira_dram::ModuleSpec;
use hira_engine::{flabel, metric, Executor, Sweep};
use hira_softmc::SoftMc;

fn main() {
    let cfg = CharacterizeConfig {
        nrh_victims: 12,
        ..CharacterizeConfig::fast()
    };
    let temps = [35.0, 45.0, 55.0, 65.0, 75.0, 85.0];

    let sweep =
        Sweep::new("temperature_sweep").axis("temp_c", temps.map(|t| (flabel(t), t)), |_, t| *t);
    let (points, run): (Vec<TemperaturePoint>, _) = Executor::from_env().run_with(&sweep, |sc| {
        let mut mc = SoftMc::new(ModuleSpec::c0());
        let p = temp_sweep(&mut mc, BankId(0), &[*sc.params], &cfg).remove(0);
        let metrics = vec![
            metric("abs_nrh_mean", p.absolute.mean),
            metric("norm_nrh_mean", p.normalized.mean),
        ];
        (p, metrics)
    });

    println!("== Extension: thresholds vs heater setpoint (module C0) ==");
    println!(
        "{:>6} {:>14} {:>14}",
        "deg C", "abs NRH mean", "normalized mean"
    );
    for p in &points {
        println!(
            "{:>6.1} {:>14.0} {:>14.2}",
            p.temp_c, p.absolute.mean, p.normalized.mean
        );
    }
    println!("(threshold falls with temperature; HiRA's 1.9x ratio is temperature-invariant)");
    run.emit_if_requested();
}
