//! Extension experiment: RowHammer thresholds vs temperature, with and
//! without HiRA (the §4.1 heater rig, exercised).

use hira_characterize::config::CharacterizeConfig;
use hira_characterize::temperature::sweep;
use hira_dram::addr::BankId;
use hira_dram::ModuleSpec;
use hira_softmc::SoftMc;

fn main() {
    let mut mc = SoftMc::new(ModuleSpec::c0());
    let cfg = CharacterizeConfig { nrh_victims: 12, ..CharacterizeConfig::fast() };
    println!("== Extension: thresholds vs heater setpoint (module C0) ==");
    println!("{:>6} {:>14} {:>14}", "deg C", "abs NRH mean", "normalized mean");
    for p in sweep(&mut mc, BankId(0), &[35.0, 45.0, 55.0, 65.0, 75.0, 85.0], &cfg) {
        println!("{:>6.1} {:>14.0} {:>14.2}", p.temp_c, p.absolute.mean, p.normalized.mean);
    }
    println!("(threshold falls with temperature; HiRA's 1.9x ratio is temperature-invariant)");
}
