//! RowHammer-defense matrix: controller plugin × refresh policy × device,
//! through one engine weighted-speedup sweep — the comparison surface the
//! open [`hira_sim::plugin`] API exists for. Every cell runs the same
//! row-reuse-heavy workload under a different (defense, refresh
//! arrangement, DRAM part) triple, so the grid answers the paper's §9
//! question end-to-end: what does each preventive-refresh defense cost on
//! top of each refresh arrangement — and how much victim exposure does it
//! leave behind?
//!
//! Besides `ws` (and the per-point defense counters `plugin_acts`,
//! `plugin_injected`, `victim_max_exposure`, `victim_mean_exposure`,
//! `rows_over_threshold` on every plugin-bearing point), the result store
//! carries derived `ws_vs_none` records: each defended cell's weighted
//! speedup relative to the undefended `none` cell of the same (policy,
//! device, workload) — the defense's performance overhead, isolated from
//! everything else.
//!
//! Combos the builder refuses with
//! [`hira_sim::builder::BuildError::DeviceLacksHira`] (a HiRA policy on a
//! HiRA-inert part) or
//! [`hira_sim::builder::BuildError::DeviceLacksVrr`] (a directed-refresh
//! plugin on a part that drops vendor directed-refresh commands) are
//! skipped and reported explicitly — absent cells print as `-`, never as
//! silent zeros.
//!
//! Always writes `BENCH_rh_matrix.json` (into `HIRA_BENCH_DIR`, or the
//! working directory when unset): the tracked perf baseline for the
//! defense comparison surface.
//!
//! Flags:
//!
//! * `--plugin=<form>[,<form>...]` (repeatable) — subset the plugin axis
//!   (`none`, `oracle:<tRH>`, `para:<p>`, `graphene:<tRH>:<k>`; see
//!   [`hira_sim::plugin`]); default: `none` plus one working point per
//!   shipped defense,
//! * `--policy=<name>[,<name>...]` (repeatable) — subset the policy axis;
//!   default: the all-bank baseline, per-bank refresh and HiRA-4,
//! * `--device=<name>[,<name>...]` (repeatable) — subset the device axis;
//!   default: the DDR4-2400 and LPDDR4-3200 presets,
//! * `--workload=<name>[,<name>...]` (repeatable) — subset the workload
//!   axis; default: the row-reuse-heavy `hotspot` generator,
//! * `--kernel=dense|event` — simulation kernel (default `event`; results
//!   are bit-identical, `dense` is the reference escape hatch),
//! * `--probe=<form>` / `--cmdtrace=<prefix>` / `--stats-epoch=<cycles>` —
//!   attach observers to every point, `--telemetry` — print the per-point
//!   run telemetry table,
//! * `--cache=<dir>` / `--no-cache` / `--cache-stats` — the shared sweep
//!   cache (see [`hira_bench::CacheSpec`]),
//! * `--trace[=<path>]` / `--metrics[=<path>]` / `--progress` /
//!   `--log-level=<level>` — the shared observability axis (see
//!   [`hira_bench::ObsSpec`]),
//! * `--list` — print all four registries (plus the probe forms and
//!   kernel modes) with their one-liners and exit,
//! * `--check-determinism` — re-run the sweep single-threaded and assert
//!   the canonical result sets are byte-identical (the engine's guarantee,
//!   enforced end-to-end through every plugin).

use hira_bench::device_axis_from_args_or;
use hira_bench::{
    kernel_from_args, maybe_print_telemetry, plugin_axis_from_args_or, policy_axis_from_args_or,
    print_device_list, print_kernel_list, print_plugin_list, print_policy_list, print_probe_list,
    print_workload_list, run_ws_as_configured_observed, workload_axis_from_args_or, CacheSpec,
    ObsSpec, ProbeSpec, Scale, WsTable,
};
use hira_engine::{RunRecord, ScenarioKey, Sweep};
use hira_sim::builder::{BuildError, SystemBuilder};
use hira_sim::config::{KernelMode, SystemConfig};
use hira_sim::device::DeviceHandle;
use hira_sim::plugin::PluginHandle;
use hira_sim::policy::PolicyHandle;
use hira_workload::WorkloadHandle;
use std::path::Path;

/// The undefended baseline plus one working point per shipped defense.
/// Thresholds are scaled far below the paper's `tRH = 1024` on purpose:
/// benign bench-scale traffic never hammers any row that hard, and the
/// grid must exercise the injection paths, not just the tracking ones
/// (oracle fires on *victim* exposure, graphene on *aggressor* count —
/// roughly half the exposure — hence the different working points).
const DEFAULT_PLUGINS: &[&str] = &["none", "oracle:4", "para:0.05", "graphene:2:64"];

/// The all-bank baseline, per-bank refresh and HiRA-4 — one refresh
/// arrangement per family the defenses ride on.
const DEFAULT_POLICIES: &[&str] = &["baseline", "refpb", "hira4"];

/// Two parts with different geometries and refresh timings.
const DEFAULT_DEVICES: &[&str] = &["ddr4-2400", "lpddr4-3200"];

/// Concentrated row reuse: the traffic shape that actually exercises
/// aggressor tracking and preventive refresh injection.
const DEFAULT_WORKLOADS: &[&str] = &["hotspot"];

type Axis<T> = [(String, T)];

/// Builds the cartesian grid, skipping combos the builder rejects as
/// HiRA-incompatible or VRR-incompatible (returned separately).
fn grid(
    plugins: &Axis<Option<PluginHandle>>,
    policies: &Axis<PolicyHandle>,
    devices: &Axis<DeviceHandle>,
    workloads: &Axis<WorkloadHandle>,
    kernel: KernelMode,
) -> (Sweep<SystemConfig>, Vec<String>) {
    let mut points = Vec::new();
    let mut skipped = Vec::new();
    for (gn, g) in plugins {
        for (pn, p) in policies {
            for (dn, d) in devices {
                let mut combo_ok = true;
                for (wn, w) in workloads {
                    if !combo_ok {
                        break;
                    }
                    let mut builder = SystemBuilder::new()
                        .device(d.clone())
                        .policy(p.clone())
                        .workload(w.clone())
                        .kernel(kernel);
                    if let Some(h) = g {
                        builder = builder.plugin(h.clone());
                    }
                    match builder.build() {
                        Ok(cfg) => points.push((
                            ScenarioKey::root()
                                .with("plugin", gn)
                                .with("policy", pn)
                                .with("dev", dn)
                                .with("wl", wn),
                            cfg,
                        )),
                        Err(BuildError::DeviceLacksHira { .. }) => {
                            let msg = format!("{dn} x {pn} (HiRA-inert device)");
                            if !skipped.contains(&msg) {
                                skipped.push(msg);
                            }
                            combo_ok = false;
                        }
                        Err(BuildError::DeviceLacksVrr { .. }) => {
                            let msg = format!("{dn} x {gn} (device drops directed refresh)");
                            if !skipped.contains(&msg) {
                                skipped.push(msg);
                            }
                            combo_ok = false;
                        }
                        Err(e) => panic!("rh_matrix point {gn} x {pn} x {dn} x {wn}: {e}"),
                    }
                }
            }
        }
    }
    (
        Sweep::from_points("rh_matrix", hira_engine::DEFAULT_BASE_SEED, points),
        skipped,
    )
}

/// Appends the derived `ws_vs_none` records: every defended cell's `ws`
/// divided by the undefended `none` cell of the same (policy, device,
/// workload). Cells whose `none` counterpart is absent are left out.
fn push_overhead_records(t: &mut WsTable) {
    let mut derived = Vec::new();
    for r in &t.run.records {
        if r.metric != "ws" || r.key.matches(&[("plugin", "none")]) || r.key.get("plugin").is_none()
        {
            continue;
        }
        // Same cell, plugin swapped for `none`: every non-plugin axis
        // label must match.
        let same_cell = |other: &ScenarioKey| {
            ["policy", "dev", "wl"]
                .iter()
                .all(|axis| r.key.get(axis) == other.get(axis))
        };
        let baseline = t.run.records.iter().find(|b| {
            b.metric == "ws" && b.key.matches(&[("plugin", "none")]) && same_cell(&b.key)
        });
        if let Some(b) = baseline {
            derived.push(RunRecord {
                key: r.key.clone(),
                metric: "ws_vs_none".to_owned(),
                value: r.value / b.value,
                wall_ms: 0.0,
                telemetry: None,
            });
        }
    }
    t.run.records.extend(derived);
}

fn main() {
    if std::env::args().any(|a| a == "--list") {
        print_plugin_list();
        println!();
        print_policy_list();
        println!();
        print_device_list();
        println!();
        print_workload_list();
        println!();
        print_probe_list();
        println!();
        print_kernel_list();
        return;
    }
    let scale = Scale::from_env();
    let ex = hira_engine::Executor::from_env();
    let kernel = kernel_from_args();
    let probes = ProbeSpec::from_args();
    let cache = CacheSpec::from_args();
    let obs = ObsSpec::from_args();
    let plugins = plugin_axis_from_args_or(DEFAULT_PLUGINS);
    let policies = policy_axis_from_args_or(DEFAULT_POLICIES);
    let devices = device_axis_from_args_or(DEFAULT_DEVICES);
    let workloads = workload_axis_from_args_or(DEFAULT_WORKLOADS);
    assert!(
        !plugins.is_empty() && !policies.is_empty() && !devices.is_empty() && !workloads.is_empty(),
        "rh_matrix needs at least one plugin, one policy, one device and one workload"
    );
    let plug_names: Vec<String> = plugins.iter().map(|(n, _)| n.clone()).collect();
    let pol_names: Vec<String> = policies.iter().map(|(n, _)| n.clone()).collect();
    let dev_names: Vec<String> = devices.iter().map(|(n, _)| n.clone()).collect();
    let wl_names: Vec<String> = workloads.iter().map(|(n, _)| n.clone()).collect();

    println!(
        "== rh matrix: {} plugins x {} policies x {} devices x {} workloads, {} insts ==",
        plugins.len(),
        policies.len(),
        devices.len(),
        workloads.len(),
        scale.insts
    );
    println!("plugins:   {}", plug_names.join(", "));
    println!("policies:  {}", pol_names.join(", "));
    println!("devices:   {}", dev_names.join(", "));
    println!("workloads: {}", wl_names.join(", "));

    let (sweep, skipped) = grid(&plugins, &policies, &devices, &workloads, kernel);
    for s in &skipped {
        println!("skipping {s}");
    }
    assert!(!sweep.is_empty(), "every rh_matrix combo was skipped");
    let mut t = run_ws_as_configured_observed(&ex, sweep, scale, &probes, &cache, &obs);

    if std::env::args().any(|a| a == "--check-determinism") {
        let (sweep, _) = grid(&plugins, &policies, &devices, &workloads, kernel);
        // Deliberately uncached: re-simulating also proves any cache
        // replays above were bit-identical to fresh simulation.
        let serial = run_ws_as_configured_observed(
            &hira_engine::Executor::with_threads(1),
            sweep,
            scale,
            &probes,
            &CacheSpec::disabled(),
            &ObsSpec::disabled(),
        );
        assert_eq!(
            t.run.canonical_json(),
            serial.run.canonical_json(),
            "rh_matrix results must be independent of HIRA_THREADS"
        );
        println!("determinism check: canonical result sets byte-identical at 1 thread");
    }

    push_overhead_records(&mut t);

    println!("\n-- weighted speedup, rows = plugin, columns = policy (mean over devices) --");
    let header: Vec<String> = pol_names.iter().map(|n| format!("{n:>8}")).collect();
    println!("{:<18} {}", "", header.join(" "));
    for g in &plug_names {
        let row: Vec<String> = pol_names
            .iter()
            .map(|p| match t.try_mean(&[("plugin", g), ("policy", p)]) {
                Some(v) => format!("{v:>8.4}"),
                None => format!("{:>8}", "-"),
            })
            .collect();
        println!("{g:<18} {}", row.join(" "));
    }

    if plug_names.iter().any(|g| g == "none") {
        println!("\n-- defense overhead: ws relative to `none` (1.0 = free) --");
        println!("{:<18} {}", "", header.join(" "));
        for g in plug_names.iter().filter(|g| *g != "none") {
            let row: Vec<String> = pol_names
                .iter()
                .map(|p| {
                    let vals: Vec<f64> = t
                        .run
                        .records
                        .iter()
                        .filter(|r| {
                            r.metric == "ws_vs_none"
                                && r.key.matches(&[("plugin", g), ("policy", p)])
                        })
                        .map(|r| r.value)
                        .collect();
                    if vals.is_empty() {
                        format!("{:>8}", "-")
                    } else {
                        format!("{:>8.4}", vals.iter().sum::<f64>() / vals.len() as f64)
                    }
                })
                .collect();
            println!("{g:<18} {}", row.join(" "));
        }
    }

    println!("\n-- victim exposure per plugin (mean over the grid) --");
    println!(
        "{:<18} {:>12} {:>12} {:>14} {:>15} {:>10}",
        "", "acts", "injected", "max_exposure", "mean_exposure", "rows>tRH"
    );
    for g in &plug_names {
        let mean_of = |metric: &str| -> Option<f64> {
            let vals: Vec<f64> = t
                .run
                .records
                .iter()
                .filter(|r| r.metric == metric && r.key.matches(&[("plugin", g)]))
                .map(|r| r.value)
                .collect();
            (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
        };
        match (
            mean_of("plugin_acts"),
            mean_of("plugin_injected"),
            mean_of("victim_max_exposure"),
            mean_of("victim_mean_exposure"),
            mean_of("rows_over_threshold"),
        ) {
            (Some(a), Some(i), Some(mx), Some(mn), Some(ro)) => {
                println!("{g:<18} {a:>12.0} {i:>12.0} {mx:>14.0} {mn:>15.2} {ro:>10.0}")
            }
            // The `none` row tracks nothing: say so instead of zeros.
            _ => println!(
                "{g:<18} {:>12} {:>12} {:>14} {:>15} {:>10}",
                "-", "-", "-", "-", "-"
            ),
        }
    }

    maybe_print_telemetry(&t.run);
    if probes.is_active() {
        println!("\nprobes attached: {}", probes.specs().join(", "));
    }

    let dir = std::env::var("HIRA_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    match t.run.write_bench_json(Path::new(&dir)) {
        Ok(path) => println!("(result store written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_rh_matrix.json: {e}"),
    }
}
