//! Fig. 9: periodic-refresh performance vs chip capacity (2-128 Gb):
//! (a) normalized to the ideal No-Refresh system, (b) normalized to the
//! Baseline (rank-level REF). One engine sweep over `scheme × capacity`.

use hira_bench::{periodic_schemes_ablated, print_series, run_ws, Scale};
use hira_engine::{flabel, Executor, Sweep};
use hira_sim::config::SystemConfig;
use hira_sim::policy;

fn main() {
    let scale = Scale::from_env();
    let ex = Executor::from_env();
    let no_ra = std::env::args().any(|a| a == "--no-refresh-access");
    let caps = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

    let mut schemes = vec![("NoRefresh", policy::noref())];
    schemes.extend(periodic_schemes_ablated(no_ra));
    let names: Vec<&str> = schemes.iter().skip(1).map(|(n, _)| *n).collect();

    println!(
        "== Fig. 9: periodic refresh, capacities 2..128 Gb, {} mixes x {} insts ==",
        scale.mixes, scale.insts
    );
    println!("capacity (Gb): {caps:?}");

    let sweep = Sweep::new("fig09_periodic")
        .axis("scheme", schemes, |_, s| s.clone())
        .axis("cap", caps.map(|c| (flabel(c), c)), |s, c| {
            SystemConfig::table3(*c, s.clone())
        });
    let t = run_ws(&ex, sweep, scale);
    let series = |name: &str| -> Vec<f64> {
        caps.iter()
            .map(|&c| t.mean(&[("scheme", name), ("cap", &flabel(c))]))
            .collect()
    };
    let ideal = series("NoRefresh");
    let base = series("Baseline");

    println!(
        "\n-- Fig. 9a: WS normalized to No-Refresh (paper: baseline drops to ~0.74 at 128 Gb) --"
    );
    for name in &names {
        let norm: Vec<f64> = series(name)
            .iter()
            .zip(&ideal)
            .map(|(w, i)| w / i)
            .collect();
        print_series(name, &norm);
    }

    println!("\n-- Fig. 9b: WS normalized to Baseline (paper: HiRA-2 reaches ~1.126 at 128 Gb) --");
    for name in &names {
        let norm: Vec<f64> = series(name).iter().zip(&base).map(|(w, b)| w / b).collect();
        print_series(name, &norm);
    }
    t.emit();
}
