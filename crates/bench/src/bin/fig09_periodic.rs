//! Fig. 9: periodic-refresh performance vs chip capacity (2-128 Gb):
//! (a) normalized to the ideal No-Refresh system, (b) normalized to the
//! Baseline (rank-level REF).

use hira_bench::{mean_ws, periodic_schemes, print_series, Scale};
use hira_sim::config::{RefreshScheme, SystemConfig};

fn main() {
    let scale = Scale::from_env();
    let no_ra = std::env::args().any(|a| a == "--no-refresh-access");
    let caps = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
    println!("== Fig. 9: periodic refresh, capacities 2..128 Gb, {} mixes x {} insts ==",
        scale.mixes, scale.insts);
    println!("capacity (Gb): {:?}", caps);

    let ideal: Vec<f64> = caps
        .iter()
        .map(|&c| mean_ws(&SystemConfig::table3(c, RefreshScheme::NoRefresh), scale))
        .collect();

    let mut by_scheme = Vec::new();
    for (name, mut scheme) in periodic_schemes() {
        if no_ra {
            if let RefreshScheme::Hira(h) = scheme {
                scheme = RefreshScheme::Hira(h.without_refresh_access());
            }
        }
        let ws: Vec<f64> = caps
            .iter()
            .map(|&c| mean_ws(&SystemConfig::table3(c, scheme), scale))
            .collect();
        by_scheme.push((name, ws));
    }

    println!("\n-- Fig. 9a: WS normalized to No-Refresh (paper: baseline drops to ~0.74 at 128 Gb) --");
    for (name, ws) in &by_scheme {
        let norm: Vec<f64> = ws.iter().zip(&ideal).map(|(w, i)| w / i).collect();
        print_series(name, &norm);
    }

    println!("\n-- Fig. 9b: WS normalized to Baseline (paper: HiRA-2 reaches ~1.126 at 128 Gb) --");
    let base = by_scheme[0].1.clone();
    for (name, ws) in &by_scheme {
        let norm: Vec<f64> = ws.iter().zip(&base).map(|(w, b)| w / b).collect();
        print_series(name, &norm);
    }
}
