//! Fig. 6: normalized RowHammer threshold across all 16 banks of modules
//! A0, B0 and C0, plus the §4.4.1 pair-invariance check. The per-bank
//! measurements run as one engine sweep over `module × bank` (48 tasks);
//! the invariance checks as a second sweep over modules.

use hira_characterize::banks::pair_invariance;
use hira_characterize::config::CharacterizeConfig;
use hira_characterize::stats::BoxStats;
use hira_characterize::verify;
use hira_dram::addr::BankId;
use hira_dram::ModuleSpec;
use hira_engine::{metric, Executor, Sweep};
use hira_softmc::SoftMc;

/// Normalized-threshold distribution of one bank, on a fresh chip model —
/// the single-bank slice of `banks::per_bank_normalized_nrh`; victim count
/// comes from `cfg.nrh_victims` like every other threshold study.
fn bank_stats(spec: &ModuleSpec, bank: BankId, cfg: &CharacterizeConfig) -> BoxStats {
    let mut mc = SoftMc::new(spec.clone());
    let victims =
        verify::victim_spread(mc.module().geometry(), cfg.rows_per_region, cfg.nrh_victims);
    let norms: Vec<f64> = victims
        .iter()
        .filter_map(|&v| verify::measure_victim(&mut mc, bank, v, cfg))
        .map(|m| m.normalized())
        .collect();
    BoxStats::from_samples(&norms)
}

fn main() {
    let cfg = CharacterizeConfig {
        nrh_victims: 6,
        rows_per_region: 24,
        ..CharacterizeConfig::fast()
    };
    let ex = Executor::from_env();
    let modules = [ModuleSpec::a0(), ModuleSpec::b0(), ModuleSpec::c0()];
    let labels: Vec<String> = modules.iter().map(|s| s.label.clone()).collect();
    let module_axis: Vec<(String, ModuleSpec)> = modules
        .iter()
        .map(|s| (s.label.clone(), s.clone()))
        .collect();
    let banks = modules[0].geometry.banks;

    let inv_sweep =
        Sweep::new("fig06_invariance").axis("module", module_axis.clone(), |_, s| s.clone());
    let (invariances, inv_run) = ex.run_with(&inv_sweep, |sc| {
        let mut mc = SoftMc::new(sc.params.clone());
        let inv = pair_invariance(&mut mc, &cfg, 16);
        let metrics = vec![
            metric("pairs_probed", inv.pairs_probed as f64),
            metric("divergent_banks", inv.divergent_banks.len() as f64),
        ];
        (inv, metrics)
    });

    let bank_sweep = Sweep::new("fig06_banks")
        .axis("module", module_axis, |_, s| s.clone())
        .axis("bank", (0..banks).map(|b| (b.to_string(), b)), |spec, b| {
            (spec.clone(), BankId(*b))
        });
    let (stats, bank_run) = ex.run_with(&bank_sweep, |sc| {
        let (spec, bank) = sc.params;
        let s = bank_stats(spec, *bank, &cfg);
        (
            s,
            vec![
                metric("norm_nrh_median", s.median),
                metric("norm_nrh_min", s.min),
            ],
        )
    });

    for (m, (label, inv)) in labels.iter().zip(invariances.iter()).enumerate() {
        println!("== Fig. 6: DIMM {label} ==");
        println!(
            "working-pair sets identical across banks: {} ({} pairs probed; paper: identical)",
            if inv.divergent_banks.is_empty() {
                "yes"
            } else {
                "NO"
            },
            inv.pairs_probed
        );
        println!(
            "{:>4} {:>6} {:>6} {:>6} {:>6} {:>6}",
            "bank", "min", "q1", "med", "q3", "max"
        );
        for b in 0..banks as usize {
            let s = stats[m * banks as usize + b];
            println!(
                "{:>4} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
                b, s.min, s.q1, s.median, s.q3, s.max
            );
        }
        println!("(paper: all-bank minimum > 1.56x, per-bank averages 1.80-1.97x)\n");
    }
    inv_run.emit_if_requested();
    bank_run.emit_if_requested();
}
