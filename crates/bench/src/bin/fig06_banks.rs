//! Fig. 6: normalized RowHammer threshold across all 16 banks of modules
//! A0, B0 and C0, plus the §4.4.1 pair-invariance check.

use hira_characterize::banks::{pair_invariance, per_bank_normalized_nrh};
use hira_characterize::config::CharacterizeConfig;
use hira_dram::ModuleSpec;
use hira_softmc::SoftMc;

fn main() {
    let cfg = CharacterizeConfig { nrh_victims: 6, rows_per_region: 24, ..CharacterizeConfig::fast() };
    for spec in [ModuleSpec::a0(), ModuleSpec::b0(), ModuleSpec::c0()] {
        let label = spec.label.clone();
        let mut mc = SoftMc::new(spec);
        let inv = pair_invariance(&mut mc, &cfg, 16);
        println!("== Fig. 6: DIMM {label} ==");
        println!(
            "working-pair sets identical across banks: {} ({} pairs probed; paper: identical)",
            if inv.divergent_banks.is_empty() { "yes" } else { "NO" },
            inv.pairs_probed
        );
        println!("{:>4} {:>6} {:>6} {:>6} {:>6} {:>6}", "bank", "min", "q1", "med", "q3", "max");
        for b in per_bank_normalized_nrh(&mut mc, &cfg, 6) {
            let s = b.normalized;
            println!(
                "{:>4} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
                b.bank.0, s.min, s.q1, s.median, s.q3, s.max
            );
        }
        println!("(paper: all-bank minimum > 1.56x, per-bank averages 1.80-1.97x)\n");
    }
}
