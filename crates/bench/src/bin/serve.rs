//! `hira serve` — a long-running sweep service over the content-addressed
//! sweep cache: line-delimited JSON requests in, streamed JSON events out.
//! Repeated or overlapping sweeps replay cached points in milliseconds;
//! only never-seen configurations simulate.
//!
//! Transports:
//!
//! * default — requests on stdin, events on stdout (one JSON object per
//!   line each way). End of input is a graceful shutdown.
//! * `--socket=<path>` — listen on a Unix socket instead; clients connect
//!   one at a time (requests and events on the same stream). A `shutdown`
//!   op stops the whole server, end of one client's input just ends that
//!   connection.
//!
//! Flags: the shared cache axis (`--cache=<dir>` persists results across
//! server runs; without it a scratch store lives for this session only),
//! the shared observability axis (`--trace[=<path>]` writes a span per
//! sweep and per accepted connection plus an event per protocol error;
//! `--log-level=` filters it; `--metrics`/`--progress` are served over
//! the wire instead — see the `metrics` op and `progress` events), plus
//! the `HIRA_*` scale/thread knobs. See [`hira_bench::serve`] for the
//! full wire protocol.
//!
//! Example session (stdio):
//!
//! ```text
//! > {"op":"sweep","id":"a","policies":["baseline","hira4"],"insts":2000}
//! < {"event":"accepted","id":"a","sweep":"serve","points":2,...}
//! < {"event":"record","id":"a","cached":false,...}
//! < {"event":"done","id":"a",...}
//! > {"op":"shutdown"}
//! < {"event":"bye"}
//! ```

use hira_bench::serve::Server;
use hira_bench::{CacheSpec, ObsSpec, Scale};
use hira_engine::Executor;
use hira_obs::{field, Level, TraceSink};
use std::io::{BufRead, BufReader, Write};

fn main() {
    let socket = std::env::args().find_map(|a| {
        a.strip_prefix("--socket=")
            .map(|p| std::path::PathBuf::from(p.to_owned()))
    });
    let cache = CacheSpec::from_args();
    let sink = ObsSpec::from_args().sink("serve");
    let mut server = Server::new(Executor::from_env(), Scale::from_env(), &cache);
    if let Some(s) = &sink {
        server = server.with_trace(s.clone());
    }
    eprintln!(
        "serve: ready ({})",
        cache
            .dir()
            .map_or("scratch store, this session only".to_string(), |d| {
                format!("cache at {}", d.display())
            })
    );

    match socket {
        None => serve_stdio(&mut server, sink.as_ref()),
        Some(path) => serve_socket(&mut server, &path, sink.as_ref()),
    }
    if let Some(s) = &sink {
        s.flush();
    }
}

/// Requests on stdin, events on stdout; EOF is a graceful shutdown.
fn serve_stdio(server: &mut Server, sink: Option<&TraceSink>) {
    let _span = sink.map(|s| s.span(Level::Info, "connection", vec![field("transport", "stdio")]));
    let stdout = std::io::stdout();
    let emit = move |line: &str| {
        let mut out = stdout.lock();
        // A broken pipe here means the client is gone; the read loop will
        // see EOF next and wind down.
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    };
    for line in std::io::stdin().lock().lines() {
        let Ok(line) = line else { break };
        if !server.handle(&line, &emit) {
            return;
        }
    }
    emit("{\"event\":\"bye\"}");
}

/// Accepts one client at a time on a Unix socket; a `shutdown` op stops
/// the server, a disconnect just ends that client's session.
fn serve_socket(server: &mut Server, path: &std::path::Path, sink: Option<&TraceSink>) {
    // A previous run's socket file would make bind fail with AddrInUse.
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)
        .unwrap_or_else(|e| panic!("serve: cannot bind {}: {e}", path.display()));
    eprintln!("serve: listening on {}", path.display());
    let mut connections = 0u64;
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        connections += 1;
        let _span = sink.map(|s| {
            s.span(
                Level::Info,
                "connection",
                vec![
                    field("transport", "socket"),
                    field("connection", connections),
                ],
            )
        });
        let write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        let write_half = std::sync::Mutex::new(write_half);
        let emit = |line: &str| {
            let mut out = write_half.lock().unwrap();
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        };
        let mut alive = true;
        for line in BufReader::new(stream).lines() {
            let Ok(line) = line else { break };
            alive = server.handle(&line, &emit);
            if !alive {
                break;
            }
        }
        if !alive {
            break;
        }
        emit("{\"event\":\"bye\"}");
    }
    let _ = std::fs::remove_file(path);
}
