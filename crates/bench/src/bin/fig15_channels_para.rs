//! Fig. 15: channel-count sweep for PARA with and without HiRA — one engine
//! sweep over `NRH × scheme × channels`, where each scheme's `p_th` depends
//! on the NRH axis (point-dependent expansion), plus one no-defense
//! baseline point.

use hira_bench::{preventive_schemes_geometry, print_series, run_ws, Scale};
use hira_engine::{Executor, ScenarioKey, Sweep};
use hira_sim::config::SystemConfig;
use hira_sim::policy;

fn main() {
    let scale = Scale::from_env();
    let ex = Executor::from_env();
    let channels = [1usize, 2, 4, 8];
    let nrhs = [1024u32, 256, 64];
    let names = ["PARA", "HiRA-2", "HiRA-4"];

    let mut sweep = Sweep::new("fig15_channels_para")
        .axis("nrh", nrhs.map(|n| (n.to_string(), n)), |_, n| *n)
        .expand("scheme", |_, &nrh| {
            preventive_schemes_geometry(nrh)
                .into_iter()
                .map(|(n, handle)| (n.to_string(), handle))
                .collect()
        })
        .axis("ch", channels.map(|c| (c.to_string(), c)), |handle, ch| {
            SystemConfig::table3(8.0, handle.clone()).with_geometry(*ch, 1)
        });
    sweep.push(
        ScenarioKey::root().with("scheme", "no-defense"),
        SystemConfig::table3(8.0, policy::baseline()),
    );
    let t = run_ws(&ex, sweep, scale);
    let base = t.mean(&[("scheme", "no-defense")]);

    for nrh in nrhs {
        println!(
            "== Fig. 15: NRH = {nrh}, channels {channels:?} (normalized to no-defense 1ch/1rk) =="
        );
        for name in names {
            let ws: Vec<f64> = channels
                .iter()
                .map(|&ch| {
                    t.mean(&[
                        ("nrh", &nrh.to_string()),
                        ("scheme", name),
                        ("ch", &ch.to_string()),
                    ]) / base
                })
                .collect();
            print_series(name, &ws);
        }
        println!();
    }
    println!("(paper: more channels help; HiRA beats PARA at every channel count and gap widens at low NRH)");
    t.emit();
}
