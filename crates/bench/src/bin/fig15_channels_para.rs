//! Fig. 15: channel-count sweep for PARA with and without HiRA.

use hira_bench::{mean_ws, pth_for, print_series, Scale};
use hira_core::config::HiraConfig;
use hira_sim::config::{PreventiveMode, RefreshScheme, SystemConfig};

fn main() {
    let scale = Scale::from_env();
    let channels = [1usize, 2, 4, 8];
    for nrh in [1024u32, 256, 64] {
        println!("== Fig. 15: NRH = {nrh}, channels {:?} (normalized to no-defense 1ch/1rk) ==", channels);
        let base = mean_ws(&SystemConfig::table3(8.0, RefreshScheme::Baseline), scale);
        let schemes: [(&str, f64, PreventiveMode); 3] = [
            ("PARA", pth_for(nrh, 0), PreventiveMode::Immediate),
            ("HiRA-2", pth_for(nrh, 2), PreventiveMode::Hira(HiraConfig::hira_n(2))),
            ("HiRA-4", pth_for(nrh, 4), PreventiveMode::Hira(HiraConfig::hira_n(4))),
        ];
        for (name, pth, mode) in schemes {
            let ws: Vec<f64> = channels
                .iter()
                .map(|&ch| {
                    let cfg = SystemConfig::table3(8.0, RefreshScheme::Baseline)
                        .with_geometry(ch, 1)
                        .with_preventive(pth, mode);
                    mean_ws(&cfg, scale) / base
                })
                .collect();
            print_series(name, &ws);
        }
        println!();
    }
    println!("(paper: more channels help; HiRA beats PARA at every channel count and gap widens at low NRH)");
}
