//! Policy matrix: every registered refresh policy × chip capacity, through
//! one engine weighted-speedup sweep — the comparison surface the open
//! [`hira_sim::policy`] API exists for. Where Fig. 9 compares the paper's
//! three arrangements, this matrix spans the whole registry: `noref`,
//! `baseline`, `refpb`, `raidr` and the `hira<N>` family side by side (and
//! any `--policy=` subset of them).
//!
//! Always writes `BENCH_policy_matrix.json` (into `HIRA_BENCH_DIR`, or the
//! working directory when unset): the tracked perf baseline for the policy
//! comparison surface.
//!
//! Flags:
//!
//! * `--policy=<name>[,<name>...]` (repeatable) — subset the policy axis by
//!   registry name; default: the full standard registry,
//! * `--plugin=<form>[,<form>...]` (repeatable) — cross the sweep with a
//!   controller-plugin axis (`none`, `oracle:<tRH>`, `para:<p>`,
//!   `graphene:<tRH>:<k>`; see [`hira_sim::plugin`]); without the flag no
//!   plugin axis is added and the sweep keys are unchanged,
//! * `--kernel=dense|event` — simulation kernel (default `event`; results
//!   are bit-identical, `dense` is the reference escape hatch),
//! * `--probe=<form>` / `--cmdtrace=<prefix>` / `--stats-epoch=<cycles>` —
//!   attach observers to every point (results stay bit-identical; output
//!   paths are suffixed per point), `--telemetry` — print the per-point
//!   run telemetry table,
//! * `--cache=<dir>` / `--no-cache` / `--cache-stats` — the shared sweep
//!   cache: replay previously computed points from a `hira-store`
//!   directory and simulate only the misses (see
//!   [`hira_bench::CacheSpec`]),
//! * `--trace[=<path>]` / `--metrics[=<path>]` / `--progress` /
//!   `--log-level=<level>` — the shared observability axis: JSONL span
//!   log, Prometheus dump, live progress on stderr and the slow-point
//!   report (see [`hira_bench::ObsSpec`]; canonical results stay
//!   byte-identical),
//! * `--list` — print the policy registry, the probe forms and the kernel
//!   modes, then exit,
//! * `--check-determinism` — re-run the sweep single-threaded and assert
//!   the canonical result sets are byte-identical (the engine's guarantee,
//!   enforced end-to-end through every policy object).

use hira_bench::{
    kernel_from_args, maybe_print_telemetry, plugin_axis_from_args, policy_axis_from_args,
    print_kernel_list, print_plugin_list, print_policy_list, print_probe_list, print_series,
    run_ws_observed, with_plugin_axis, CacheSpec, ObsSpec, ProbeSpec, Scale,
};
use hira_engine::{flabel, Executor, Sweep};
use hira_sim::config::SystemConfig;
use std::path::Path;

fn main() {
    if std::env::args().any(|a| a == "--list") {
        print_policy_list();
        println!();
        print_plugin_list();
        println!();
        print_probe_list();
        println!();
        print_kernel_list();
        return;
    }
    let scale = Scale::from_env();
    let ex = Executor::from_env();
    let caps = [8.0, 64.0];
    let kernel = kernel_from_args();
    let probes = ProbeSpec::from_args();
    let cache = CacheSpec::from_args();
    let obs = ObsSpec::from_args();
    let policies = policy_axis_from_args();
    let plugins = plugin_axis_from_args();
    assert!(
        !policies.is_empty(),
        "policy_matrix needs at least one policy"
    );
    let names: Vec<String> = policies.iter().map(|(n, _)| n.clone()).collect();

    println!(
        "== policy matrix: {} policies x capacities {caps:?}, {} mixes x {} insts ==",
        policies.len(),
        scale.mixes,
        scale.insts
    );
    println!("policies: {}", names.join(", "));
    if !plugins.is_empty() {
        let plugin_names: Vec<&str> = plugins.iter().map(|(n, _)| n.as_str()).collect();
        println!("plugins:  {}", plugin_names.join(", "));
        println!("(weighted-speedup rows below average over the plugin axis)");
    }

    let mk_sweep = || {
        with_plugin_axis(
            Sweep::new("policy_matrix")
                .axis("policy", policies.clone(), |_, h| h.clone())
                .axis("cap", caps.map(|c| (flabel(c), c)), move |h, c| {
                    SystemConfig::table3(*c, h.clone()).with_kernel(kernel)
                }),
            &plugins,
        )
    };
    let t = run_ws_observed(&ex, mk_sweep(), scale, &probes, &cache, &obs);

    if std::env::args().any(|a| a == "--check-determinism") {
        // Deliberately uncached: with a warm cache the serial run would
        // only replay, so this re-simulates — which also proves any cache
        // replays above were bit-identical to fresh simulation.
        let serial = run_ws_observed(
            &Executor::with_threads(1),
            mk_sweep(),
            scale,
            &probes,
            &CacheSpec::disabled(),
            &ObsSpec::disabled(),
        );
        assert_eq!(
            t.run.canonical_json(),
            serial.run.canonical_json(),
            "policy sweep results must be independent of HIRA_THREADS"
        );
        println!("determinism check: canonical result sets byte-identical at 1 thread");
    }

    let series = |name: &str| -> Vec<f64> {
        caps.iter()
            .map(|&c| t.mean(&[("policy", name), ("cap", &flabel(c))]))
            .collect()
    };
    println!("\n-- weighted speedup by capacity (Gb): {caps:?} --");
    for name in &names {
        print_series(name, &series(name));
    }
    if let Some(ideal_name) = names.iter().find(|n| *n == "noref") {
        let ideal = series(ideal_name);
        println!("\n-- normalized to noref (refresh-interference cost) --");
        for name in &names {
            let norm: Vec<f64> = series(name)
                .iter()
                .zip(&ideal)
                .map(|(w, i)| w / i)
                .collect();
            print_series(name, &norm);
        }
    }

    maybe_print_telemetry(&t.run);
    if probes.is_active() {
        println!("\nprobes attached: {}", probes.specs().join(", "));
    }

    let dir = std::env::var("HIRA_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    match t.run.write_bench_json(Path::new(&dir)) {
        Ok(path) => println!("(result store written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_policy_matrix.json: {e}"),
    }
}
