//! Fig. 14: rank-count sweep (1-8, shared command bus) for periodic refresh
//! — one engine sweep over `capacity × scheme × ranks`.

use hira_bench::{print_series, run_ws, Scale};
use hira_engine::{flabel, Executor, Sweep};
use hira_sim::config::SystemConfig;
use hira_sim::policy;

fn main() {
    let scale = Scale::from_env();
    let ex = Executor::from_env();
    let ranks = [1usize, 2, 4, 8];
    let caps = [2.0, 8.0, 32.0];
    let schemes = [
        ("Baseline", policy::baseline()),
        ("HiRA-2", policy::hira(2)),
        ("HiRA-4", policy::hira(4)),
    ];

    let sweep = Sweep::new("fig14_ranks_periodic")
        .axis("cap", caps.map(|c| (flabel(c), c)), |_, c| *c)
        .axis("scheme", schemes.clone(), |c, s| (*c, s.clone()))
        .axis(
            "rk",
            ranks.map(|r| (r.to_string(), r)),
            |(cap, scheme), rk| SystemConfig::table3(*cap, scheme.clone()).with_geometry(1, *rk),
        );
    let t = run_ws(&ex, sweep, scale);

    for cap in caps {
        println!(
            "== Fig. 14: {cap} Gb chips, ranks/channel {ranks:?} (normalized to Baseline 1ch/1rk) =="
        );
        let base_ref = t.mean(&[("cap", &flabel(cap)), ("scheme", "Baseline"), ("rk", "1")]);
        for (name, _) in &schemes {
            let ws: Vec<f64> = ranks
                .iter()
                .map(|&rk| {
                    t.mean(&[
                        ("cap", &flabel(cap)),
                        ("scheme", name),
                        ("rk", &rk.to_string()),
                    ]) / base_ref
                })
                .collect();
            print_series(name, &ws);
        }
        println!();
    }
    println!(
        "(paper: 1->2 ranks helps; beyond 2 the shared command bus erodes gains; HiRA stays ahead)"
    );
    t.emit();
}
