//! Fig. 14: rank-count sweep (1-8, shared command bus) for periodic refresh.

use hira_bench::{mean_ws, print_series, Scale};
use hira_core::config::HiraConfig;
use hira_sim::config::{RefreshScheme, SystemConfig};

fn main() {
    let scale = Scale::from_env();
    let ranks = [1usize, 2, 4, 8];
    let schemes = [
        ("Baseline", RefreshScheme::Baseline),
        ("HiRA-2", RefreshScheme::Hira(HiraConfig::hira_n(2))),
        ("HiRA-4", RefreshScheme::Hira(HiraConfig::hira_n(4))),
    ];
    for cap in [2.0, 8.0, 32.0] {
        println!("== Fig. 14: {cap} Gb chips, ranks/channel {:?} (normalized to Baseline 1ch/1rk) ==", ranks);
        let base_ref = mean_ws(&SystemConfig::table3(cap, RefreshScheme::Baseline), scale);
        for (name, scheme) in schemes {
            let ws: Vec<f64> = ranks
                .iter()
                .map(|&r| {
                    mean_ws(&SystemConfig::table3(cap, scheme).with_geometry(1, r), scale)
                        / base_ref
                })
                .collect();
            print_series(name, &ws);
        }
        println!();
    }
    println!("(paper: 1->2 ranks helps; beyond 2 the shared command bus erodes gains; HiRA stays ahead)");
}
