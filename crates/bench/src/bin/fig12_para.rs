//! Fig. 12: PARA preventive-refresh performance vs RowHammer threshold:
//! (a) normalized to a baseline with no RowHammer defense, (b) HiRA's
//! improvement over plain PARA. The `p_th` of each scheme depends on the
//! `NRH` axis, so the scheme axis uses point-dependent expansion.

use hira_bench::{preventive_schemes, print_series, run_ws, Scale};
use hira_engine::{Executor, ScenarioKey, Sweep};
use hira_sim::config::SystemConfig;
use hira_sim::policy;

fn main() {
    let scale = Scale::from_env();
    let ex = Executor::from_env();
    let nrhs = [1024u32, 512, 256, 128, 64];
    let names: Vec<&str> = preventive_schemes(nrhs[0])
        .iter()
        .map(|(n, _)| *n)
        .collect();
    println!(
        "== Fig. 12: PARA +- HiRA, NRH sweep {:?}, {} mixes x {} insts ==",
        nrhs, scale.mixes, scale.insts
    );

    let mut sweep = Sweep::new("fig12_para")
        .axis("nrh", nrhs.map(|n| (n.to_string(), n)), |_, n| *n)
        .expand("scheme", |_, &nrh| {
            preventive_schemes(nrh)
                .into_iter()
                .map(|(name, handle)| (name.to_string(), SystemConfig::table3(8.0, handle)))
                .collect()
        });
    // The normalization baseline: periodic refresh only, no RowHammer defense.
    sweep.push(
        ScenarioKey::root().with("scheme", "no-defense"),
        SystemConfig::table3(8.0, policy::baseline()),
    );
    let t = run_ws(&ex, sweep, scale);

    let base_ws = t.mean(&[("scheme", "no-defense")]);
    let series = |name: &str| -> Vec<f64> {
        nrhs.iter()
            .map(|&n| t.mean(&[("nrh", &n.to_string()), ("scheme", name)]))
            .collect()
    };

    println!("\n-- Fig. 12a: WS normalized to no-defense baseline --");
    println!("(paper: PARA 0.71 at NRH=1024 down to 0.04 at NRH=64)");
    println!("NRH:         {nrhs:?}");
    for name in &names {
        let norm: Vec<f64> = series(name).iter().map(|w| w / base_ws).collect();
        print_series(name, &norm);
    }

    println!("\n-- Fig. 12b: WS normalized to plain PARA --");
    println!("(paper: HiRA-2 1.054x at NRH=1024, 2.75x at NRH=64; HiRA-4 3.73x at NRH=64)");
    let para = series("PARA");
    for name in &names {
        let norm: Vec<f64> = series(name).iter().zip(&para).map(|(w, p)| w / p).collect();
        print_series(name, &norm);
    }
    t.emit();
}
