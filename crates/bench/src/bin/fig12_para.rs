//! Fig. 12: PARA preventive-refresh performance vs RowHammer threshold:
//! (a) normalized to a baseline with no RowHammer defense, (b) HiRA's
//! improvement over plain PARA.

use hira_bench::{mean_ws, preventive_schemes, print_series, Scale};
use hira_sim::config::{RefreshScheme, SystemConfig};

fn main() {
    let scale = Scale::from_env();
    let nrhs = [1024u32, 512, 256, 128, 64];
    println!("== Fig. 12: PARA +- HiRA, NRH sweep {:?}, {} mixes x {} insts ==",
        nrhs, scale.mixes, scale.insts);

    // Baseline: periodic refresh only, no RowHammer defense.
    let base_ws = mean_ws(&SystemConfig::table3(8.0, RefreshScheme::Baseline), scale);

    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for &nrh in &nrhs {
        for (name, pth, mode) in preventive_schemes(nrh) {
            let cfg = SystemConfig::table3(8.0, RefreshScheme::Baseline)
                .with_preventive(pth, mode);
            let ws = mean_ws(&cfg, scale);
            match rows.iter_mut().find(|(n, _)| n == name) {
                Some((_, v)) => v.push(ws),
                None => rows.push((name.to_owned(), vec![ws])),
            }
        }
    }

    println!("\n-- Fig. 12a: WS normalized to no-defense baseline --");
    println!("(paper: PARA 0.71 at NRH=1024 down to 0.04 at NRH=64)");
    println!("NRH:         {:?}", nrhs);
    for (name, ws) in &rows {
        let norm: Vec<f64> = ws.iter().map(|w| w / base_ws).collect();
        print_series(name, &norm);
    }

    println!("\n-- Fig. 12b: WS normalized to plain PARA --");
    println!("(paper: HiRA-2 1.054x at NRH=1024, 2.75x at NRH=64; HiRA-4 3.73x at NRH=64)");
    let para = rows.iter().find(|(n, _)| n == "PARA").unwrap().1.clone();
    for (name, ws) in &rows {
        let norm: Vec<f64> = ws.iter().zip(&para).map(|(w, p)| w / p).collect();
        print_series(name, &norm);
    }
}
