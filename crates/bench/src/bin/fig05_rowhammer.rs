//! Fig. 5: RowHammer thresholds with/without HiRA (absolute histograms and
//! the normalized distribution).

use hira_characterize::config::CharacterizeConfig;
use hira_characterize::report::render_histogram;
use hira_characterize::stats::{BoxStats, Histogram};
use hira_characterize::verify::measure_many;
use hira_dram::addr::BankId;
use hira_dram::ModuleSpec;
use hira_softmc::SoftMc;

fn main() {
    let cfg = CharacterizeConfig { nrh_victims: 48, ..CharacterizeConfig::fast() };
    let mut mc = SoftMc::new(ModuleSpec::c0());
    let ms = measure_many(&mut mc, BankId(0), &cfg);
    let without: Vec<f64> = ms.iter().map(|m| f64::from(m.without_hira)).collect();
    let with: Vec<f64> = ms.iter().map(|m| f64::from(m.with_hira)).collect();
    let norm: Vec<f64> = ms.iter().map(|m| m.normalized()).collect();

    println!("== Fig. 5a: absolute RowHammer threshold (units of aggressor ACTs) ==");
    let mut h = Histogram::new(0.0, 100_000.0, 10);
    h.extend(&without);
    print!("{}", render_histogram("without HiRA (K):", &h.normalized(), 1000.0));
    let mut h = Histogram::new(0.0, 100_000.0, 10);
    h.extend(&with);
    print!("{}", render_histogram("with HiRA (K):", &h.normalized(), 1000.0));
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("means: without {:.1}K / with {:.1}K  (paper: 27.2K / 51.0K)",
        avg(&without) / 1000.0, avg(&with) / 1000.0);

    println!("\n== Fig. 5b: normalized threshold ==");
    let s = BoxStats::from_samples(&norm);
    println!("min {:.2}  q1 {:.2}  median {:.2}  q3 {:.2}  max {:.2}  mean {:.2}  (paper mean: 1.9x)",
        s.min, s.q1, s.median, s.q3, s.max, s.mean);
    let over_17 = norm.iter().filter(|&&x| x > 1.7).count() as f64 / norm.len() as f64;
    println!("fraction above 1.7x: {:.1} % (paper: 88.1 %)", over_17 * 100.0);
}
