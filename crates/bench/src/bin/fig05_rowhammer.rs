//! Fig. 5: RowHammer thresholds with/without HiRA (absolute histograms and
//! the normalized distribution) — one engine task per victim row, each
//! against its own software chip.

use hira_characterize::config::CharacterizeConfig;
use hira_characterize::report::render_histogram;
use hira_characterize::stats::{BoxStats, Histogram};
use hira_characterize::verify::{measure_victim, victim_spread, NrhMeasurement};
use hira_dram::addr::{BankId, RowId};
use hira_dram::ModuleSpec;
use hira_engine::{metric, Executor, ScenarioKey, Sweep};
use hira_softmc::SoftMc;

fn main() {
    let cfg = CharacterizeConfig {
        nrh_victims: 48,
        ..CharacterizeConfig::fast()
    };
    let spec = ModuleSpec::c0();

    // The same victim spread `verify::measure_many` uses, as sweep points.
    let points = victim_spread(&spec.geometry, cfg.rows_per_region, cfg.nrh_victims)
        .into_iter()
        .map(|v| (ScenarioKey::root().with("victim", v.0.to_string()), v))
        .collect::<Vec<(ScenarioKey, RowId)>>();
    let sweep = Sweep::from_points("fig05_rowhammer", hira_engine::DEFAULT_BASE_SEED, points);

    let (measured, run): (Vec<Option<NrhMeasurement>>, _) =
        Executor::from_env().run_with(&sweep, |sc| {
            let mut mc = SoftMc::new(ModuleSpec::c0());
            let m = measure_victim(&mut mc, BankId(0), *sc.params, &cfg);
            let metrics = m
                .map(|m| {
                    vec![
                        metric("nrh_without", f64::from(m.without_hira)),
                        metric("nrh_with", f64::from(m.with_hira)),
                        metric("nrh_normalized", m.normalized()),
                    ]
                })
                .unwrap_or_default();
            (m, metrics)
        });
    let ms: Vec<NrhMeasurement> = measured.into_iter().flatten().collect();
    let without: Vec<f64> = ms.iter().map(|m| f64::from(m.without_hira)).collect();
    let with: Vec<f64> = ms.iter().map(|m| f64::from(m.with_hira)).collect();
    let norm: Vec<f64> = ms.iter().map(NrhMeasurement::normalized).collect();

    println!("== Fig. 5a: absolute RowHammer threshold (units of aggressor ACTs) ==");
    let mut h = Histogram::new(0.0, 100_000.0, 10);
    h.extend(&without);
    print!(
        "{}",
        render_histogram("without HiRA (K):", &h.normalized(), 1000.0)
    );
    let mut h = Histogram::new(0.0, 100_000.0, 10);
    h.extend(&with);
    print!(
        "{}",
        render_histogram("with HiRA (K):", &h.normalized(), 1000.0)
    );
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "means: without {:.1}K / with {:.1}K  (paper: 27.2K / 51.0K)",
        avg(&without) / 1000.0,
        avg(&with) / 1000.0
    );

    println!("\n== Fig. 5b: normalized threshold ==");
    let s = BoxStats::from_samples(&norm);
    println!(
        "min {:.2}  q1 {:.2}  median {:.2}  q3 {:.2}  max {:.2}  mean {:.2}  (paper mean: 1.9x)",
        s.min, s.q1, s.median, s.q3, s.max, s.mean
    );
    let over_17 = norm.iter().filter(|&&x| x > 1.7).count() as f64 / norm.len() as f64;
    println!(
        "fraction above 1.7x: {:.1} % (paper: 88.1 %)",
        over_17 * 100.0
    );
    run.emit_if_requested();
}
