//! Table 1 / Table 4: per-module HiRA coverage and normalized RowHammer
//! thresholds for the seven tested DIMMs — one engine task per module.

use hira_bench::Scale;
use hira_characterize::config::CharacterizeConfig;
use hira_characterize::modules::{characterize_module, ModuleCharacterization};
use hira_characterize::report::render_table1;
use hira_dram::ModuleSpec;
use hira_engine::{metric, Executor, Sweep};

fn main() {
    let scale = Scale::from_env();
    let cfg = CharacterizeConfig {
        rows_per_region: scale.rows,
        row_a_stride: 2,
        row_b_stride: 2,
        nrh_victims: 16,
        ..CharacterizeConfig::fast()
    };
    println!("== Table 1 / Table 4: tested DDR4 modules (t1=t2=3 ns) ==");
    println!("(paper coverage averages: A0 25.0  A1 26.6  B0 32.6  B1 31.6  C0 35.3  C1 38.4  C2 36.1 %)");
    println!("(paper normalized NRH averages: 1.88-1.96)");

    let sweep = Sweep::new("table1_modules").axis(
        "module",
        ModuleSpec::table1_modules()
            .into_iter()
            .map(|s| (s.label.clone(), s)),
        |_, s| s.clone(),
    );
    let (rows, run): (Vec<ModuleCharacterization>, _) =
        Executor::from_env().run_with(&sweep, |sc| {
            let m = characterize_module(sc.params.clone(), &cfg);
            let metrics = vec![
                metric("coverage_mean", m.coverage.mean),
                metric("norm_nrh_mean", m.norm_nrh.mean),
                metric("hira_capable", f64::from(u8::from(m.hira_capable))),
            ];
            (m, metrics)
        });

    print!("{}", render_table1(&rows));
    run.emit_if_requested();
}
