//! Table 1 / Table 4: per-module HiRA coverage and normalized RowHammer
//! thresholds for the seven tested DIMMs.

use hira_bench::Scale;
use hira_characterize::config::CharacterizeConfig;
use hira_characterize::modules::characterize_table1;
use hira_characterize::report::render_table1;

fn main() {
    let scale = Scale::from_env();
    let cfg = CharacterizeConfig {
        rows_per_region: scale.rows,
        row_a_stride: 2,
        row_b_stride: 2,
        nrh_victims: 16,
        ..CharacterizeConfig::fast()
    };
    println!("== Table 1 / Table 4: tested DDR4 modules (t1=t2=3 ns) ==");
    println!("(paper coverage averages: A0 25.0  A1 26.6  B0 32.6  B1 31.6  C0 35.3  C1 38.4  C2 36.1 %)");
    println!("(paper normalized NRH averages: 1.88-1.96)");
    let rows = characterize_table1(&cfg);
    print!("{}", render_table1(&rows));
}
