//! Workload matrix: workload × refresh policy, through one engine
//! weighted-speedup sweep — the comparison surface the open
//! [`hira_workload`] frontend exists for. Where `policy_matrix` holds the
//! workload fixed and sweeps policies, this grid crosses both axes: how
//! much each refresh arrangement costs under streaming, random, pointer-
//! chasing, skewed, write-heavy, open-loop and multiprogrammed-mix
//! traffic, side by side.
//!
//! Always writes `BENCH_workload_matrix.json` (into `HIRA_BENCH_DIR`, or
//! the working directory when unset): the tracked perf baseline for the
//! workload comparison surface.
//!
//! Flags:
//!
//! * `--workload=<name>[,<name>...]` (repeatable) — subset the workload
//!   axis by registry name (including the dynamic `mix<N>`, `zipf<N>`,
//!   `rw<N>`, `open<N>` and `trace:<path>` forms); default: a
//!   representative point per family,
//! * `--policy=<name>[,<name>...]` (repeatable) — subset the policy axis;
//!   default: the full standard registry,
//! * `--plugin=<form>[,<form>...]` (repeatable) — cross the sweep with a
//!   controller-plugin axis (`none`, `oracle:<tRH>`, `para:<p>`,
//!   `graphene:<tRH>:<k>`; see [`hira_sim::plugin`]); without the flag no
//!   plugin axis is added and the sweep keys are unchanged,
//! * `--kernel=dense|event` — simulation kernel (default `event`; results
//!   are bit-identical, `dense` is the reference escape hatch),
//! * `--probe=<form>` / `--cmdtrace=<prefix>` / `--stats-epoch=<cycles>` —
//!   attach observers to every point (results stay bit-identical; output
//!   paths are suffixed per point), `--telemetry` — print the per-point
//!   run telemetry table,
//! * `--cache=<dir>` / `--no-cache` / `--cache-stats` — the shared sweep
//!   cache: replay previously computed points from a `hira-store`
//!   directory and simulate only the misses (see
//!   [`hira_bench::CacheSpec`]),
//! * `--trace[=<path>]` / `--metrics[=<path>]` / `--progress` /
//!   `--log-level=<level>` — the shared observability axis: JSONL span
//!   log, Prometheus dump, live progress on stderr and the slow-point
//!   report (see [`hira_bench::ObsSpec`]; canonical results stay
//!   byte-identical),
//! * `--list` — print both registries (plus the probe forms and kernel
//!   modes) with their profile one-liners and exit,
//! * `--check-determinism` — re-run the sweep single-threaded and assert
//!   the canonical result sets are byte-identical (the engine's guarantee,
//!   enforced end-to-end through every workload frontend).

use hira_bench::{
    kernel_from_args, maybe_print_telemetry, plugin_axis_from_args, policy_axis_from_args,
    print_kernel_list, print_plugin_list, print_policy_list, print_probe_list, print_workload_list,
    run_ws_as_configured_observed, with_plugin_axis, workload_axis_from_args_or, CacheSpec,
    ObsSpec, ProbeSpec, Scale,
};
use hira_engine::{Executor, Sweep};
use hira_sim::config::SystemConfig;
use std::path::Path;

/// One representative point per family: two roster benchmarks and a mix
/// (synthetic), the pattern generators, and the embedded trace replay.
const DEFAULT_WORKLOADS: &[&str] = &[
    "mix0",
    "mcf",
    "libquantum",
    "stream",
    "random",
    "chase",
    "hotspot",
    "zipf80",
    "rw50",
    "open25",
    "demo-trace",
];

fn main() {
    if std::env::args().any(|a| a == "--list") {
        print_workload_list();
        println!();
        print_policy_list();
        println!();
        print_plugin_list();
        println!();
        print_probe_list();
        println!();
        print_kernel_list();
        return;
    }
    let scale = Scale::from_env();
    let ex = Executor::from_env();
    let cap = 8.0;
    let kernel = kernel_from_args();
    let probes = ProbeSpec::from_args();
    let cache = CacheSpec::from_args();
    let obs = ObsSpec::from_args();
    let workloads = workload_axis_from_args_or(DEFAULT_WORKLOADS);
    let policies = policy_axis_from_args();
    let plugins = plugin_axis_from_args();
    assert!(
        !workloads.is_empty() && !policies.is_empty(),
        "workload_matrix needs at least one workload and one policy"
    );
    let wl_names: Vec<String> = workloads.iter().map(|(n, _)| n.clone()).collect();
    let pol_names: Vec<String> = policies.iter().map(|(n, _)| n.clone()).collect();

    println!(
        "== workload matrix: {} workloads x {} policies at {cap} Gb, {} insts ==",
        workloads.len(),
        policies.len(),
        scale.insts
    );
    println!("workloads: {}", wl_names.join(", "));
    println!("policies:  {}", pol_names.join(", "));
    if !plugins.is_empty() {
        let plugin_names: Vec<&str> = plugins.iter().map(|(n, _)| n.as_str()).collect();
        println!("plugins:   {}", plugin_names.join(", "));
        println!("(weighted-speedup cells below average over the plugin axis)");
    }

    let mk_sweep = || {
        with_plugin_axis(
            Sweep::new("workload_matrix")
                .axis("wl", workloads.clone(), |_, w| w.clone())
                .axis("policy", policies.clone(), move |w, p| {
                    SystemConfig::table3(cap, p.clone())
                        .with_workload(w.clone())
                        .with_kernel(kernel)
                }),
            &plugins,
        )
    };
    let t = run_ws_as_configured_observed(&ex, mk_sweep(), scale, &probes, &cache, &obs);

    if std::env::args().any(|a| a == "--check-determinism") {
        // Deliberately uncached: re-simulating also proves any cache
        // replays above were bit-identical to fresh simulation.
        let serial = run_ws_as_configured_observed(
            &Executor::with_threads(1),
            mk_sweep(),
            scale,
            &probes,
            &CacheSpec::disabled(),
            &ObsSpec::disabled(),
        );
        assert_eq!(
            t.run.canonical_json(),
            serial.run.canonical_json(),
            "workload sweep results must be independent of HIRA_THREADS"
        );
        println!("determinism check: canonical result sets byte-identical at 1 thread");
    }

    println!("\n-- weighted speedup, rows = workloads, columns = policies --");
    let header: Vec<String> = pol_names.iter().map(|n| format!("{n:>8}")).collect();
    println!("{:<12} {}", "", header.join(" "));
    for wl in &wl_names {
        let row: Vec<f64> = pol_names
            .iter()
            .map(|p| t.mean(&[("wl", wl), ("policy", p)]))
            .collect();
        hira_bench::print_series(wl, &row);
    }
    if let Some(ideal) = pol_names.iter().find(|n| *n == "noref") {
        println!("\n-- normalized to noref (refresh-interference cost per workload) --");
        for wl in &wl_names {
            let bound = t.mean(&[("wl", wl), ("policy", ideal)]);
            let row: Vec<f64> = pol_names
                .iter()
                .map(|p| t.mean(&[("wl", wl), ("policy", p)]) / bound)
                .collect();
            hira_bench::print_series(wl, &row);
        }
    }

    maybe_print_telemetry(&t.run);
    if probes.is_active() {
        println!("\nprobes attached: {}", probes.specs().join(", "));
    }

    let dir = std::env::var("HIRA_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    match t.run.write_bench_json(Path::new(&dir)) {
        Ok(path) => println!("(result store written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_workload_matrix.json: {e}"),
    }
}
