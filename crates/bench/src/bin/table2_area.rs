//! Table 2: HiRA-MC hardware complexity (area + access latency) and the
//! §6.2 worst-case search latency.

use hira_core::area::table2_default;

fn main() {
    let r = table2_default();
    println!("== Table 2: HiRA-MC components (per rank, analytic 22 nm SRAM model) ==");
    println!("{:<28} {:>10} {:>12} {:>12}", "component", "bits", "area (mm^2)", "access (ns)");
    for s in &r.structures {
        println!("{:<28} {:>10} {:>12.5} {:>12.3}", s.name, s.bits, s.area_mm2, s.access_ns);
    }
    println!("{:<28} {:>10} {:>12.5}", "overall", "", r.total_mm2);
    println!("fraction of reference die: {:.5} %  (paper: 0.0023 %)", r.die_fraction * 100.0);
    println!(
        "worst-case search latency: {:.2} ns (paper: 6.31 ns; must be < tRP 14.25 ns: {})",
        r.worst_case_search_ns,
        if r.worst_case_search_ns < 14.25 { "ok" } else { "VIOLATED" }
    );
}
