//! Table 2: HiRA-MC hardware complexity (area + access latency) and the
//! §6.2 worst-case search latency.

use hira_core::area::{table2_default, AreaReport};
use hira_engine::{metric, Executor, ScenarioKey, Sweep};

fn main() {
    let mut sweep = Sweep::from_points("table2_area", hira_engine::DEFAULT_BASE_SEED, Vec::new());
    sweep.push(ScenarioKey::root().with("process", "22nm"), ());
    let (reports, run): (Vec<AreaReport>, _) = Executor::from_env().run_with(&sweep, |_| {
        let r = table2_default();
        let mut ms = vec![
            metric("total_mm2", r.total_mm2),
            metric("die_fraction_pct", r.die_fraction * 100.0),
            metric("worst_case_search_ns", r.worst_case_search_ns),
        ];
        for s in &r.structures {
            ms.push(metric(format!("area_mm2/{}", s.name), s.area_mm2));
            ms.push(metric(format!("access_ns/{}", s.name), s.access_ns));
        }
        (r, ms)
    });
    let r = &reports[0];

    println!("== Table 2: HiRA-MC components (per rank, analytic 22 nm SRAM model) ==");
    println!(
        "{:<28} {:>10} {:>12} {:>12}",
        "component", "bits", "area (mm^2)", "access (ns)"
    );
    for s in &r.structures {
        println!(
            "{:<28} {:>10} {:>12.5} {:>12.3}",
            s.name, s.bits, s.area_mm2, s.access_ns
        );
    }
    println!("{:<28} {:>10} {:>12.5}", "overall", "", r.total_mm2);
    println!(
        "fraction of reference die: {:.5} %  (paper: 0.0023 %)",
        r.die_fraction * 100.0
    );
    println!(
        "worst-case search latency: {:.2} ns (paper: 6.31 ns; must be < tRP 14.25 ns: {})",
        r.worst_case_search_ns,
        if r.worst_case_search_ns < 14.25 {
            "ok"
        } else {
            "VIOLATED"
        }
    );
    run.emit_if_requested();
}
