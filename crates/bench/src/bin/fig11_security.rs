//! Fig. 11: PARA probability thresholds (a) and overall RowHammer success
//! probabilities (b) vs the RowHammer threshold, for tRefSlack in
//! {0,2,4,8}tRC plus PARA-Legacy.

use hira_core::security::{figure11, legacy_pth};

fn main() {
    let nrhs = [1024u32, 512, 256, 128, 64];
    let slacks = [0u32, 2, 4, 8];
    let pts = figure11(&nrhs, &slacks, 1e-15);

    println!("== Fig. 11a: PARA probability threshold p_th ==");
    print!("{:>22}", "NRH:");
    for n in nrhs { print!(" {n:>9}"); }
    println!();
    print!("{:>22}", "PARA-Legacy");
    for n in nrhs { print!(" {:>9.4}", legacy_pth(n, 1e-15)); }
    println!();
    for slack in slacks {
        print!("tRefSlack = {slack:>2} tRC    ");
        for n in nrhs {
            let p = pts.iter().find(|p| p.nrh == n && p.slack_acts == slack).unwrap();
            print!(" {:>9.4}", p.pth);
        }
        println!();
    }

    println!("\n== Fig. 11b: overall RowHammer success probability (x 1e-15) ==");
    print!("{:>22}", "PARA-Legacy");
    for n in nrhs {
        let p = pts.iter().find(|p| p.nrh == n && p.slack_acts == 0).unwrap();
        print!(" {:>9.4}", p.p_rh_of_legacy / 1e-15);
    }
    println!("   <- exceeds the 1e-15 target as NRH falls (paper: 1.03..1.32)");
    for slack in slacks {
        print!("tRefSlack = {slack:>2} tRC    ");
        for n in nrhs {
            let p = pts.iter().find(|p| p.nrh == n && p.slack_acts == slack).unwrap();
            print!(" {:>9.4}", p.p_rh / 1e-15);
        }
        println!();
    }
    println!("(our configuration holds 1.0000 across the sweep, as in the paper)");
}
