//! Fig. 11: PARA probability thresholds (a) and overall RowHammer success
//! probabilities (b) vs the RowHammer threshold, for tRefSlack in
//! {0,2,4,8}tRC plus PARA-Legacy.

use hira_core::security::{figure11, legacy_pth};
use hira_engine::{metric, Executor, Sweep};

const TARGET: f64 = 1e-15;

fn main() {
    let nrhs = [1024u32, 512, 256, 128, 64];
    let slacks = [0u32, 2, 4, 8];

    let sweep = Sweep::new("fig11_security")
        .axis("slack", slacks.map(|s| (s.to_string(), s)), |_, s| *s)
        .axis("nrh", nrhs.map(|n| (n.to_string(), n)), |s, n| (*s, *n));
    let run = Executor::from_env().run(&sweep, |sc| {
        let &(slack, nrh) = sc.params;
        let p = figure11(&[nrh], &[slack], TARGET).remove(0);
        vec![
            metric("pth", p.pth),
            metric("p_rh_x1e15", p.p_rh / TARGET),
            metric("p_rh_legacy_x1e15", p.p_rh_of_legacy / TARGET),
        ]
    });

    let at = |slack: u32, nrh: u32, m: &str| {
        run.value(
            &[("slack", &slack.to_string()), ("nrh", &nrh.to_string())],
            m,
        )
    };

    println!("== Fig. 11a: PARA probability threshold p_th ==");
    print!("{:>22}", "NRH:");
    for n in nrhs {
        print!(" {n:>9}");
    }
    println!();
    print!("{:>22}", "PARA-Legacy");
    for n in nrhs {
        print!(" {:>9.4}", legacy_pth(n, TARGET));
    }
    println!();
    for slack in slacks {
        print!("tRefSlack = {slack:>2} tRC    ");
        for n in nrhs {
            print!(" {:>9.4}", at(slack, n, "pth"));
        }
        println!();
    }

    println!("\n== Fig. 11b: overall RowHammer success probability (x 1e-15) ==");
    print!("{:>22}", "PARA-Legacy");
    for n in nrhs {
        print!(" {:>9.4}", at(0, n, "p_rh_legacy_x1e15"));
    }
    println!("   <- exceeds the 1e-15 target as NRH falls (paper: 1.03..1.32)");
    for slack in slacks {
        print!("tRefSlack = {slack:>2} tRC    ");
        for n in nrhs {
            print!(" {:>9.4}", at(slack, n, "p_rh_x1e15"));
        }
        println!();
    }
    println!("(our configuration holds 1.0000 across the sweep, as in the paper)");
    run.emit_if_requested();
}
