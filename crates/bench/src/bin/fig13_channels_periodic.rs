//! Fig. 13: channel-count sweep (1-8) for periodic refresh at 2/8/32 Gb —
//! one engine sweep over `capacity × scheme × channels`.

use hira_bench::{print_series, run_ws, Scale};
use hira_engine::{flabel, Executor, Sweep};
use hira_sim::config::SystemConfig;
use hira_sim::policy;

fn main() {
    let scale = Scale::from_env();
    let ex = Executor::from_env();
    let channels = [1usize, 2, 4, 8];
    let caps = [2.0, 8.0, 32.0];
    let schemes = [
        ("Baseline", policy::baseline()),
        ("HiRA-2", policy::hira(2)),
        ("HiRA-4", policy::hira(4)),
    ];

    let sweep = Sweep::new("fig13_channels_periodic")
        .axis("cap", caps.map(|c| (flabel(c), c)), |_, c| *c)
        .axis("scheme", schemes.clone(), |c, s| (*c, s.clone()))
        .axis(
            "ch",
            channels.map(|c| (c.to_string(), c)),
            |(cap, scheme), ch| SystemConfig::table3(*cap, scheme.clone()).with_geometry(*ch, 1),
        );
    let t = run_ws(&ex, sweep, scale);

    for cap in caps {
        println!(
            "== Fig. 13: {cap} Gb chips, channels {channels:?} (normalized to Baseline 1ch/1rk) =="
        );
        let base_ref = t.mean(&[("cap", &flabel(cap)), ("scheme", "Baseline"), ("ch", "1")]);
        for (name, _) in &schemes {
            let ws: Vec<f64> = channels
                .iter()
                .map(|&ch| {
                    t.mean(&[
                        ("cap", &flabel(cap)),
                        ("scheme", name),
                        ("ch", &ch.to_string()),
                    ]) / base_ref
                })
                .collect();
            print_series(name, &ws);
        }
        println!();
    }
    println!("(paper: performance rises with channels; HiRA > Baseline at every channel count)");
    t.emit();
}
