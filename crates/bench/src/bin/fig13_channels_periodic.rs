//! Fig. 13: channel-count sweep (1-8) for periodic refresh at 2/8/32 Gb.

use hira_bench::{mean_ws, print_series, Scale};
use hira_core::config::HiraConfig;
use hira_sim::config::{RefreshScheme, SystemConfig};

fn main() {
    let scale = Scale::from_env();
    let channels = [1usize, 2, 4, 8];
    let schemes = [
        ("Baseline", RefreshScheme::Baseline),
        ("HiRA-2", RefreshScheme::Hira(HiraConfig::hira_n(2))),
        ("HiRA-4", RefreshScheme::Hira(HiraConfig::hira_n(4))),
    ];
    for cap in [2.0, 8.0, 32.0] {
        println!("== Fig. 13: {cap} Gb chips, channels {:?} (normalized to Baseline 1ch/1rk) ==", channels);
        let base_ref = mean_ws(&SystemConfig::table3(cap, RefreshScheme::Baseline), scale);
        for (name, scheme) in schemes {
            let ws: Vec<f64> = channels
                .iter()
                .map(|&ch| {
                    mean_ws(&SystemConfig::table3(cap, scheme).with_geometry(ch, 1), scale)
                        / base_ref
                })
                .collect();
            print_series(name, &ws);
        }
        println!();
    }
    println!("(paper: performance rises with channels; HiRA > Baseline at every channel count)");
}
