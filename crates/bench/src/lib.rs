//! # hira-bench — the figure/table regeneration harness
//!
//! One binary per table and figure of the paper (see `src/bin/`), built on
//! the shared sweep helpers here. Every binary prints the same rows/series
//! the paper reports; absolute values come from our simulator/model, the
//! *shape* (orderings, trends, crossovers) is the reproduction target.
//!
//! Scale knobs (all binaries):
//!
//! * `HIRA_MIXES` — number of 8-core workload mixes (default 6; paper: 125),
//! * `HIRA_INSTS` — measured instructions per core (default 60 000;
//!   paper: 200 M),
//! * `HIRA_ROWS` — characterization rows per region (default 48;
//!   paper: 2 048).

use hira_core::config::HiraConfig;
use hira_sim::config::{PreventiveMode, RefreshScheme, SystemConfig};
use hira_sim::system::System;
use hira_sim::workloads::{mixes, Benchmark, Mix};
use std::collections::HashMap;
use std::sync::Mutex;

/// Experiment scale options, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Number of multiprogrammed mixes per data point.
    pub mixes: usize,
    /// Measured instructions per core.
    pub insts: u64,
    /// Warmup instructions per core.
    pub warmup: u64,
    /// Characterization rows per region.
    pub rows: u32,
}

impl Scale {
    /// Reads `HIRA_MIXES` / `HIRA_INSTS` / `HIRA_ROWS` with defaults.
    pub fn from_env() -> Self {
        let get = |k: &str, d: u64| {
            std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d)
        };
        let insts = get("HIRA_INSTS", 60_000);
        Scale {
            mixes: get("HIRA_MIXES", 6) as usize,
            insts,
            warmup: insts / 5,
            rows: get("HIRA_ROWS", 48) as u32,
        }
    }
}

/// Global cache of alone-IPC values, keyed by benchmark name and geometry.
static ALONE_IPC: Mutex<Option<HashMap<(String, usize, usize), f64>>> = Mutex::new(None);

/// IPC of `bench` running alone on an ideal (no-refresh, no-PARA) system of
/// the given geometry — the denominator of weighted speedup.
pub fn alone_ipc(bench: &'static Benchmark, channels: usize, ranks: usize, scale: Scale) -> f64 {
    let key = (bench.name.to_owned(), channels, ranks);
    if let Some(v) = ALONE_IPC.lock().unwrap().as_ref().and_then(|m| m.get(&key).copied()) {
        return v;
    }
    let mut cfg = SystemConfig::table3(8.0, RefreshScheme::NoRefresh)
        .with_geometry(channels, ranks)
        .with_insts(scale.insts, scale.warmup);
    cfg.cores = 1;
    let mix = Mix { id: 0, benchmarks: vec![bench] };
    let ipc = System::new(cfg, &mix).run().ipc[0];
    let mut guard = ALONE_IPC.lock().unwrap();
    guard.get_or_insert_with(HashMap::new).insert(key, ipc);
    ipc
}

/// Runs one configuration over the mix suite (in parallel) and returns the
/// mean weighted speedup.
pub fn mean_ws(base_cfg: &SystemConfig, scale: Scale) -> f64 {
    let suite = mixes(scale.mixes, base_cfg.cores, 0xA11CE);
    // Warm the alone-IPC cache serially (it locks).
    for m in &suite {
        for b in &m.benchmarks {
            alone_ipc(b, base_cfg.channels, base_cfg.ranks, scale);
        }
    }
    let results: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = suite
            .iter()
            .map(|mix| {
                let cfg = base_cfg.clone().with_insts(scale.insts, scale.warmup);
                s.spawn(move || {
                    let r = System::new(cfg, mix).run();
                    let alone: Vec<f64> = mix
                        .benchmarks
                        .iter()
                        .map(|b| alone_ipc(b, base_cfg.channels, base_cfg.ranks, scale))
                        .collect();
                    r.weighted_speedup(&alone)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sim thread")).collect()
    });
    results.iter().sum::<f64>() / results.len() as f64
}

/// The periodic-refresh configurations of Fig. 9 for one chip capacity.
pub fn periodic_schemes() -> Vec<(&'static str, RefreshScheme)> {
    vec![
        ("Baseline", RefreshScheme::Baseline),
        ("HiRA-0", RefreshScheme::Hira(HiraConfig::hira_n(0))),
        ("HiRA-2", RefreshScheme::Hira(HiraConfig::hira_n(2))),
        ("HiRA-4", RefreshScheme::Hira(HiraConfig::hira_n(4))),
        ("HiRA-8", RefreshScheme::Hira(HiraConfig::hira_n(8))),
    ]
}

/// The preventive-refresh configurations of Fig. 12 (PARA ± HiRA). `p_th`
/// is resolved per configuration from the §9.1 analysis (slack-aware).
pub fn preventive_schemes(nrh: u32) -> Vec<(&'static str, f64, PreventiveMode)> {
    vec![
        ("PARA", pth_for(nrh, 0), PreventiveMode::Immediate),
        ("HiRA-0", pth_for(nrh, 0), PreventiveMode::Hira(HiraConfig::hira_n(0))),
        ("HiRA-2", pth_for(nrh, 2), PreventiveMode::Hira(HiraConfig::hira_n(2))),
        ("HiRA-4", pth_for(nrh, 4), PreventiveMode::Hira(HiraConfig::hira_n(4))),
        ("HiRA-8", pth_for(nrh, 8), PreventiveMode::Hira(HiraConfig::hira_n(8))),
    ]
}

/// `p_th` for a RowHammer threshold under the §9.1 analysis, with the slack
/// of the given HiRA-N (0 for plain PARA).
pub fn pth_for(nrh: u32, slack_acts: u32) -> f64 {
    let params = hira_core::security::SecurityParams::paper_defaults(slack_acts);
    hira_core::security::solve_pth(&params, nrh)
}

/// Formats one numeric series row for the harness output.
pub fn print_series(label: &str, xs: &[f64]) {
    let body: Vec<String> = xs.iter().map(|v| format!("{v:>8.4}")).collect();
    println!("{label:<12} {}", body.join(" "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_are_sane() {
        let s = Scale::from_env();
        assert!(s.mixes >= 1);
        assert!(s.insts >= 1_000);
        assert!(s.warmup < s.insts);
    }

    #[test]
    fn scheme_lists_cover_the_paper_configs() {
        assert_eq!(periodic_schemes().len(), 5);
        assert_eq!(preventive_schemes(512).len(), 5);
    }

    #[test]
    fn pth_is_monotone_in_nrh() {
        assert!(pth_for(64, 0) > pth_for(1024, 0));
    }
}
