//! # hira-bench — the figure/table regeneration harness
//!
//! One binary per table and figure of the paper (see `src/bin/`), each of
//! which declares its experiment space as a [`hira_engine::Sweep`] and runs
//! it through the engine's deterministic multi-threaded [`Executor`]. Every
//! binary prints the same rows/series the paper reports; absolute values
//! come from our simulator/model, the *shape* (orderings, trends,
//! crossovers) is the reproduction target.
//!
//! Scale knobs (all binaries):
//!
//! * `HIRA_MIXES` — number of 8-core workload mixes (default 6; paper: 125),
//! * `HIRA_INSTS` — measured instructions per core (default 60 000;
//!   paper: 200 M),
//! * `HIRA_ROWS` — characterization rows per region (default 48;
//!   paper: 2 048),
//! * `HIRA_THREADS` — engine worker threads (default: available
//!   parallelism); results are bit-identical for any value,
//! * `HIRA_BENCH_DIR` — when set, every binary additionally writes its
//!   machine-readable `BENCH_<sweep>.json` result set there.
//!
//! Binaries that sweep refresh policies also accept `--policy=<name>[,..]`
//! (repeatable) to subset the policy axis by registry name — see
//! [`policy_axis_from_args`] — binaries that sweep workloads accept
//! `--workload=<name>[,..]` the same way ([`workload_axis_from_args`]),
//! and binaries that sweep devices accept `--device=<name>[,..]`
//! ([`device_axis_from_args_or`], including the dynamic `ddr4-2400@<Gb>`
//! form). Passing `--list` to any axis prints every registered name with
//! its one-line profile and exits, so sweep binaries are self-documenting.
//!
//! All matrix binaries additionally share the sweep-cache axis
//! ([`CacheSpec::from_args`]): `--cache=<dir>` replays previously computed
//! points from a `hira-store` directory and simulates only the misses,
//! `--no-cache` disables a configured cache, and `--cache-stats` prints
//! the hit/miss accounting after the run.
//!
//! And the observability axis ([`ObsSpec::from_args`]): `--trace[=<path>]`
//! writes one JSONL span/event log per sweep, `--metrics[=<path>]` dumps a
//! Prometheus text exposition after the run, `--progress` streams live
//! done/total/ETA lines to stderr, and `--log-level=` (or `HIRA_LOG`)
//! filters the trace. Observation rides beside the results — canonical
//! output is byte-identical with or without it.

use hira_engine::{
    metric, sanitize_key, suffix_path, Executor, Metric, PointRun, PointTelemetry, Scenario,
    ScenarioKey, Sweep,
};
use hira_obs::{field, Level, MetricsRegistry, Progress, TraceSink};
use hira_sim::builder::SystemBuilder;
use hira_sim::config::{KernelMode, SystemConfig};
use hira_sim::device::{DeviceHandle, DeviceRegistry};
use hira_sim::plugin::{PluginHandle, PluginRegistry};
use hira_sim::policy::{self, PolicyHandle, PolicyRegistry};
use hira_sim::probe::ProbeRegistry;
use hira_sim::system::System;
use hira_sim::ProbeHandle;
use hira_store::{CacheExecutorExt, PointOutcome, SweepPlan, SweepStore};
use hira_workload::{mix, WorkloadHandle, WorkloadRegistry};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

pub mod serve;

pub use hira_engine::RunSet;
pub use hira_store::CacheStats;

/// Experiment scale options, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Number of multiprogrammed mixes per data point.
    pub mixes: usize,
    /// Measured instructions per core.
    pub insts: u64,
    /// Warmup instructions per core.
    pub warmup: u64,
    /// Characterization rows per region.
    pub rows: u32,
}

impl Scale {
    /// Reads `HIRA_MIXES` / `HIRA_INSTS` / `HIRA_ROWS` with defaults.
    pub fn from_env() -> Self {
        let get = |k: &str, d: u64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        let insts = get("HIRA_INSTS", 60_000);
        Scale {
            mixes: get("HIRA_MIXES", 6) as usize,
            insts,
            warmup: insts / 5,
            rows: get("HIRA_ROWS", 48) as u32,
        }
    }
}

/// Alone-IPC cache key: workload *instance* name (for a mix, the member
/// benchmark a core runs), device, channels, ranks, and the Scale
/// dimensions the simulation depends on (measured + warmup instructions)
/// — so runs at different scales or on different devices in one process
/// never share stale values.
type AloneKey = (String, String, usize, usize, u64, u64);

fn alone_key(
    name: &str,
    device: &DeviceHandle,
    channels: usize,
    ranks: usize,
    scale: Scale,
) -> AloneKey {
    (
        name.to_owned(),
        device.name().to_owned(),
        channels,
        ranks,
        scale.insts,
        scale.warmup,
    )
}

/// Global cache of alone-IPC values, keyed by instance name and geometry.
static ALONE_IPC: Mutex<Option<HashMap<AloneKey, f64>>> = Mutex::new(None);

fn cached_alone_ipc(key: &AloneKey) -> Option<f64> {
    ALONE_IPC
        .lock()
        .unwrap()
        .as_ref()
        .and_then(|m| m.get(key).copied())
}

fn store_alone_ipc(key: AloneKey, ipc: f64) {
    ALONE_IPC
        .lock()
        .unwrap()
        .get_or_insert_with(HashMap::new)
        .insert(key, ipc);
}

/// The (pure, deterministic) computation behind [`alone_ipc`]: the
/// workload instance alone on a single core of an ideal (no-refresh,
/// no-PARA) 8 Gb system of the given device and geometry.
fn compute_alone_ipc(
    handle: &WorkloadHandle,
    device: &DeviceHandle,
    channels: usize,
    ranks: usize,
    scale: Scale,
) -> f64 {
    let mut cfg = SystemBuilder::new()
        .device(device.clone())
        .chip_gbit(8.0)
        .policy(policy::noref())
        .geometry(channels, ranks)
        .insts(scale.insts, scale.warmup)
        .workload(handle.clone())
        .build()
        .expect("alone-IPC reference system must be valid");
    cfg.cores = 1;
    System::new(cfg).run().ipc[0]
}

/// IPC of the workload instance `name` running alone on an ideal
/// (no-refresh, no-PARA) system of the given device and geometry — the
/// denominator of weighted speedup. The device matters: a speedup on
/// `lpddr4-3200` is normalized by an `lpddr4-3200` alone run, so the
/// metric isolates refresh interference, not inter-device raw speed.
/// Memoized; the value is a pure function of its arguments, so concurrent
/// computation of the same key is merely redundant, never divergent.
///
/// # Panics
///
/// Panics when `name` does not resolve against the standard workload
/// registry: weighted-speedup sweeps require registry-resolvable instance
/// names (custom unregistered workloads can still be simulated directly,
/// just not normalized by [`run_ws`]).
pub fn alone_ipc(
    name: &str,
    device: &DeviceHandle,
    channels: usize,
    ranks: usize,
    scale: Scale,
) -> f64 {
    let key = alone_key(name, device, channels, ranks, scale);
    if let Some(v) = cached_alone_ipc(&key) {
        return v;
    }
    let ipc = compute_alone_ipc(
        &hira_workload::workload(name),
        device,
        channels,
        ranks,
        scale,
    );
    store_alone_ipc(key, ipc);
    ipc
}

/// Pre-computes every alone-IPC value the given configurations will need —
/// one engine task per distinct `(instance name, geometry)` pair — so the
/// main sweep's tasks only ever hit the in-process memo. Instance names
/// come from each configuration's workload handle (building an instance is
/// cheap and does not simulate). The cached run path passes only its *miss*
/// configurations here, so a fully warm sweep performs zero simulations.
fn warm_alone_cache<'a>(
    ex: &Executor,
    configs: impl IntoIterator<Item = &'a SystemConfig>,
    base_seed: u64,
    scale: Scale,
) {
    let mut points = Vec::new();
    let mut seen: Vec<AloneKey> = Vec::new();
    for cfg in configs {
        for name in cfg.workload.instance_names(cfg.cores, cfg.seed) {
            let key = alone_key(&name, &cfg.device, cfg.channels, cfg.ranks, scale);
            if cached_alone_ipc(&key).is_some() || seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let sc_key = ScenarioKey::root()
                .with("wl", &name)
                .with("dev", cfg.device.name())
                .with("ch", cfg.channels.to_string())
                .with("rk", cfg.ranks.to_string());
            points.push((sc_key, (name, cfg.device.clone(), cfg.channels, cfg.ranks)));
        }
    }
    let warm = Sweep::from_points("alone_ipc", base_seed, points);
    let ipcs = ex.map(&warm, |sc| {
        let (name, dev, ch, rk) = sc.params;
        compute_alone_ipc(&hira_workload::workload(name), dev, *ch, *rk, scale)
    });
    for ((_, (name, dev, ch, rk)), ipc) in warm.points().iter().zip(ipcs) {
        store_alone_ipc(alone_key(name, dev, *ch, *rk, scale), ipc);
    }
}

/// A weighted-speedup table: the raw per-mix [`RunSet`] plus the per-config
/// means (the numbers every figure plots).
#[derive(Debug, Clone)]
pub struct WsTable {
    /// Per-`(config, mix)` records (`ws` metric), for emission/inspection.
    pub run: RunSet,
    means: Vec<(ScenarioKey, f64)>,
}

impl WsTable {
    /// Mean weighted speedup of the first config point matching `filters`.
    ///
    /// # Panics
    ///
    /// Panics if no config point matches — a missing point in a figure
    /// binary is a programming error.
    pub fn mean(&self, filters: &[(&str, &str)]) -> f64 {
        self.try_mean(filters)
            .unwrap_or_else(|| panic!("no ws point matches {filters:?}"))
    }

    /// [`WsTable::mean`], but `None` when no point matches — for grids
    /// with legitimately absent cells (e.g. a HiRA policy on a HiRA-inert
    /// device, skipped at build time).
    pub fn try_mean(&self, filters: &[(&str, &str)]) -> Option<f64> {
        self.means
            .iter()
            .find(|(k, _)| k.matches(filters))
            .map(|(_, v)| *v)
    }

    /// All per-config means, in sweep order.
    pub fn means(&self) -> &[(ScenarioKey, f64)] {
        &self.means
    }

    /// Writes `BENCH_<sweep>.json` when `HIRA_BENCH_DIR` is set.
    pub fn emit(&self) {
        self.run.emit_if_requested();
    }
}

/// Runs a sweep of system configurations over the standard mix suite and
/// returns the mean weighted speedup per configuration.
///
/// The sweep is expanded with a `mix` axis (cartesian: every configuration ×
/// every mix handle `mix0..mixN`), every resulting point is simulated by
/// the engine executor, and the `mix` axis is then averaged away. All
/// parallelism — including the alone-IPC warm-up — goes through the engine;
/// results are bit-identical for any `HIRA_THREADS`.
///
/// # Panics
///
/// Panics if `sweep` is empty.
pub fn run_ws(ex: &Executor, sweep: Sweep<SystemConfig>, scale: Scale) -> WsTable {
    run_ws_probed(ex, sweep, scale, &ProbeSpec::default())
}

/// [`run_ws`] with probes from a [`ProbeSpec`] attached to every expanded
/// point (after the `mix` axis exists, so per-point output files are
/// distinct per mix). An inactive spec is a plain [`run_ws`].
pub fn run_ws_probed(
    ex: &Executor,
    sweep: Sweep<SystemConfig>,
    scale: Scale,
    probes: &ProbeSpec,
) -> WsTable {
    run_ws_probed_cached(ex, sweep, scale, probes, &CacheSpec::disabled())
}

/// [`run_ws_probed`] through the sweep cache selected by `cache`: hit
/// points replay from the store, only misses are simulated (including
/// their alone-IPC warmup), and the resulting table is bit-identical to an
/// uncached run.
pub fn run_ws_probed_cached(
    ex: &Executor,
    sweep: Sweep<SystemConfig>,
    scale: Scale,
    probes: &ProbeSpec,
    cache: &CacheSpec,
) -> WsTable {
    run_ws_observed(ex, sweep, scale, probes, cache, &ObsSpec::disabled())
}

/// [`run_ws_probed_cached`] with the observability selected by `obs`
/// attached: per-point trace events with phase timings, metrics counters
/// and histograms, live progress. Observation never touches the results —
/// the table is byte-identical to an unobserved run.
pub fn run_ws_observed(
    ex: &Executor,
    sweep: Sweep<SystemConfig>,
    scale: Scale,
    probes: &ProbeSpec,
    cache: &CacheSpec,
    obs: &ObsSpec,
) -> WsTable {
    assert!(
        scale.mixes >= 1,
        "HIRA_MIXES must be >= 1 (a data point needs at least one mix)"
    );
    let full = sweep.expand("mix", |_, cfg| {
        (0..scale.mixes)
            .map(|id| {
                let cfg = cfg
                    .clone()
                    .with_insts(scale.insts, scale.warmup)
                    .with_workload(mix(id));
                (id.to_string(), cfg)
            })
            .collect()
    });
    run_ws_points(ex, probes.attach(full), "mix", scale, false, cache, obs)
}

/// Runs a sweep of system configurations **as configured**: every point
/// keeps its own workload handle (a `--workload=` axis, a trace replay, a
/// custom generator) instead of being crossed with the mix suite. The
/// `workload_matrix` binary's path.
///
/// # Panics
///
/// Panics if `sweep` is empty, or if a point's workload yields instance
/// names the standard registry cannot resolve (see [`alone_ipc`]).
pub fn run_ws_as_configured(ex: &Executor, sweep: Sweep<SystemConfig>, scale: Scale) -> WsTable {
    run_ws_as_configured_probed(ex, sweep, scale, &ProbeSpec::default())
}

/// [`run_ws_as_configured`] with probes from a [`ProbeSpec`] attached to
/// every point.
pub fn run_ws_as_configured_probed(
    ex: &Executor,
    sweep: Sweep<SystemConfig>,
    scale: Scale,
    probes: &ProbeSpec,
) -> WsTable {
    run_ws_as_configured_cached(ex, sweep, scale, probes, &CacheSpec::disabled())
}

/// [`run_ws_as_configured_probed`] through the sweep cache selected by
/// `cache` (see [`run_ws_probed_cached`]).
pub fn run_ws_as_configured_cached(
    ex: &Executor,
    sweep: Sweep<SystemConfig>,
    scale: Scale,
    probes: &ProbeSpec,
    cache: &CacheSpec,
) -> WsTable {
    run_ws_as_configured_observed(ex, sweep, scale, probes, cache, &ObsSpec::disabled())
}

/// [`run_ws_as_configured_cached`] with the observability selected by
/// `obs` attached (see [`run_ws_observed`]).
pub fn run_ws_as_configured_observed(
    ex: &Executor,
    sweep: Sweep<SystemConfig>,
    scale: Scale,
    probes: &ProbeSpec,
    cache: &CacheSpec,
    obs: &ObsSpec,
) -> WsTable {
    let full = sweep.map(|_, cfg| cfg.with_insts(scale.insts, scale.warmup));
    run_ws_points(ex, probes.attach(full), "mix", scale, false, cache, obs)
}

/// [`run_ws_as_configured`] plus the channel-level metrics: every record
/// set carries `read_lat` / `write_lat` (average demand latencies in
/// memory cycles), `dbus` (mean per-channel data-bus busy fraction) and
/// the histogram quantiles `read_p50` / `read_p99` / `write_p50` /
/// `write_p99` alongside `ws`. The `device_matrix` binary's path.
pub fn run_ws_with_stats(ex: &Executor, sweep: Sweep<SystemConfig>, scale: Scale) -> WsTable {
    run_ws_with_stats_probed(ex, sweep, scale, &ProbeSpec::default())
}

/// [`run_ws_with_stats`] with probes from a [`ProbeSpec`] attached to
/// every point.
pub fn run_ws_with_stats_probed(
    ex: &Executor,
    sweep: Sweep<SystemConfig>,
    scale: Scale,
    probes: &ProbeSpec,
) -> WsTable {
    run_ws_with_stats_cached(ex, sweep, scale, probes, &CacheSpec::disabled())
}

/// [`run_ws_with_stats_probed`] through the sweep cache selected by
/// `cache` (see [`run_ws_probed_cached`]).
pub fn run_ws_with_stats_cached(
    ex: &Executor,
    sweep: Sweep<SystemConfig>,
    scale: Scale,
    probes: &ProbeSpec,
    cache: &CacheSpec,
) -> WsTable {
    run_ws_with_stats_observed(ex, sweep, scale, probes, cache, &ObsSpec::disabled())
}

/// [`run_ws_with_stats_cached`] with the observability selected by `obs`
/// attached (see [`run_ws_observed`]).
pub fn run_ws_with_stats_observed(
    ex: &Executor,
    sweep: Sweep<SystemConfig>,
    scale: Scale,
    probes: &ProbeSpec,
    cache: &CacheSpec,
    obs: &ObsSpec,
) -> WsTable {
    let full = sweep.map(|_, cfg| cfg.with_insts(scale.insts, scale.warmup));
    run_ws_points(ex, probes.attach(full), "mix", scale, true, cache, obs)
}

/// One weighted-speedup point: simulate, normalize each core by its
/// workload's alone-IPC, optionally add the channel-level metrics — the
/// task body both the cached and the uncached runner execute.
fn ws_point_task(
    sc: Scenario<'_, SystemConfig>,
    scale: Scale,
    channel_stats: bool,
) -> (Vec<Metric>, Option<PointTelemetry>) {
    let (ms, t, _) = ws_point_task_phased(sc, scale, channel_stats);
    (ms, t)
}

/// [`ws_point_task`] additionally reporting its phase split `(warmup_ms,
/// measure_ms)`: measure is the simulation proper, warmup the alone-IPC
/// normalization work (≈0 when the memo is already warm). The remainder of
/// the point's wall — metric assembly, result hand-off — is the serialize
/// phase, computed by the observer as `wall - warmup - measure`.
fn ws_point_task_phased(
    sc: Scenario<'_, SystemConfig>,
    scale: Scale,
    channel_stats: bool,
) -> (Vec<Metric>, Option<PointTelemetry>, (f64, f64)) {
    let cfg = sc.params;
    let t_measure = Instant::now();
    let (r, telemetry) = System::new(cfg.clone()).run_telemetered();
    let measure_ms = t_measure.elapsed().as_secs_f64() * 1e3;
    let t_warmup = Instant::now();
    let alone: Vec<f64> = r
        .workloads
        .iter()
        .map(|name| alone_ipc(name, &cfg.device, cfg.channels, cfg.ranks, scale))
        .collect();
    let warmup_ms = t_warmup.elapsed().as_secs_f64() * 1e3;
    let mut ms = vec![metric("ws", r.weighted_speedup(&alone))];
    if channel_stats {
        ms.push(metric("read_lat", r.avg_read_latency()));
        ms.push(metric("write_lat", r.avg_write_latency()));
        let util = r.data_bus_utilization();
        let mean_util = util.iter().sum::<f64>() / util.len().max(1) as f64;
        ms.push(metric("dbus", mean_util));
        // Histogram quantiles (memory cycles); 0 on empty histograms,
        // matching the documented empty-run convention of the means.
        let q = |v: Option<u64>| v.map_or(0.0, |x| x as f64);
        ms.push(metric("read_p50", q(r.read_latency_quantile(0.50))));
        ms.push(metric("read_p99", q(r.read_latency_quantile(0.99))));
        ms.push(metric("write_p50", q(r.write_latency_quantile(0.50))));
        ms.push(metric("write_p99", q(r.write_latency_quantile(0.99))));
    }
    // Points with controller plugins attached additionally report the
    // defense counters — the victim-exposure surface `rh_matrix` plots.
    // Plugin-free points are unchanged (keeps the committed matrix
    // baselines' record sets stable).
    if !r.plugin_stats.is_empty() {
        let totals = r.plugin_totals();
        ms.push(metric("plugin_acts", totals.acts_observed as f64));
        ms.push(metric("plugin_injected", totals.injected as f64));
        ms.push(metric("victim_max_exposure", totals.max_exposure as f64));
        ms.push(metric("victim_mean_exposure", totals.mean_exposure()));
        ms.push(metric(
            "rows_over_threshold",
            totals.rows_over_threshold as f64,
        ));
    }
    let t = PointTelemetry {
        events: telemetry.events,
        peak_queue: telemetry.peak_queue,
    };
    (ms, Some(t), (warmup_ms, measure_ms))
}

/// Shared runner: simulates every point ([`ws_point_task`]) and collapses
/// `mean_axis` (collapsing an absent axis is the identity grouping, so
/// per-point tables fall out of the same path). With an active `cache`,
/// the sweep goes through the store's plan/run path: hits replay, only
/// misses are simulated — including their alone-IPC warmup, so a fully
/// warm sweep performs zero simulations.
fn run_ws_points(
    ex: &Executor,
    full: Sweep<SystemConfig>,
    mean_axis: &str,
    scale: Scale,
    channel_stats: bool,
    cache: &CacheSpec,
    obs: &ObsSpec,
) -> WsTable {
    assert!(!full.is_empty(), "weighted-speedup sweep has no points");
    let watch = obs.begin(full.name(), full.len(), ex.threads());
    let task = |sc: Scenario<'_, SystemConfig>| {
        let key = watch.as_ref().map(|_| sc.key.clone());
        let (ms, t, phases) = ws_point_task_phased(sc, scale, channel_stats);
        if let (Some(w), Some(key)) = (&watch, key) {
            w.record_phases(&key, phases);
        }
        (ms, t)
    };
    let (run, stats) = if let Some(mut store) = cache.open_for(&full) {
        let tag = if channel_stats { "ws+stats" } else { "ws" };
        let plan = SweepPlan::compute(&store, &full, cache_salt(), |sc| {
            ws_canonical(tag, sc.params)
        });
        warm_alone_cache(
            ex,
            plan.miss_indices().map(|i| &full.points()[i].1),
            full.base_seed(),
            scale,
        );
        let on_point = |o: PointOutcome<'_>| {
            if let Some(w) = &watch {
                w.point_done(
                    &full.points()[o.index].0,
                    o.cached,
                    o.queue_wait_ms,
                    o.point.wall_ms,
                );
            }
        };
        let (run, stats) = ex
            .run_cached(&mut store, &full, &plan, task, Some(&on_point))
            .unwrap_or_else(|e| {
                panic!(
                    "cache: cannot persist results at {}: {e}",
                    store.dir().display()
                )
            });
        cache.report(&stats);
        (run, Some(stats))
    } else {
        warm_alone_cache(
            ex,
            full.points().iter().map(|(_, c)| c),
            full.base_seed(),
            scale,
        );
        let observer = |p: &PointRun<'_>| {
            if let Some(w) = &watch {
                w.point_done(p.key, false, p.queue_wait_ms, p.wall_ms);
            }
        };
        let (_, run) = ex.run_observed(
            &full,
            |sc| {
                let (ms, t) = task(sc);
                ((), ms, t)
            },
            Some(&observer),
        );
        (run, None)
    };
    if let Some(w) = watch {
        w.finish(&run, stats.as_ref());
    }
    obs.report_slow(&run);
    let means = run.mean_over(mean_axis, "ws");
    WsTable { run, means }
}

/// The kernel A/B task over one `(policy, mix)` point: time the dense and
/// event kernels on the same configuration, assert their results are
/// identical (the `next_wake` contract, enforced at every computed point),
/// and return the wall-clock pair plus their ratio as metrics.
fn perf_kernel_task(sc: Scenario<'_, SystemConfig>) -> (Vec<Metric>, Option<PointTelemetry>) {
    let base = sc.params;
    let timed = |kernel: KernelMode| {
        let cfg = base.clone().with_kernel(kernel);
        let start = std::time::Instant::now();
        let result = System::new(cfg).run();
        (result, start.elapsed().as_secs_f64() * 1e3)
    };
    let (dense, wall_dense) = timed(KernelMode::Dense);
    let (event, wall_event) = timed(KernelMode::Event);
    assert_eq!(
        dense, event,
        "kernel divergence at {}: the next_wake contract is violated somewhere",
        sc.key
    );
    (
        vec![
            metric("wall_dense_ms", wall_dense),
            metric("wall_event_ms", wall_event),
            metric("speedup", wall_dense / wall_event),
        ],
        None,
    )
}

/// The `perf_kernel` binary's sweep: every `(policy, mix)` point timed
/// under both kernels (`perf_kernel_task`), single-threaded so the
/// wall-clock comparison measures the kernels, not the executor. Through
/// an active `cache`, previously timed points replay their stored walls
/// (the kernel-identity assertion ran when they were first computed) and
/// a fully warm run is byte-reproducible; the returned stats say how many
/// points actually ran.
///
/// # Panics
///
/// Panics when `policies` is empty, when the two kernels' results diverge
/// at any computed point, or when the cache store cannot be opened or
/// written.
pub fn run_perf_kernel(
    policies: &[(String, PolicyHandle)],
    cap: f64,
    scale: Scale,
    cache: &CacheSpec,
) -> (RunSet, CacheStats) {
    run_perf_kernel_observed(policies, &[], cap, scale, cache, &ObsSpec::disabled())
}

/// [`run_perf_kernel`] with the observability selected by `obs` attached
/// (see [`run_ws_observed`]) and an optional controller-plugin axis: with
/// a non-empty `plugins`, every `(policy, mix)` point is crossed with the
/// plugin axis and the dense-vs-event identity assertion runs with each
/// plugin attached. The A/B timing itself is untouched.
pub fn run_perf_kernel_observed(
    policies: &[(String, PolicyHandle)],
    plugins: &[(String, Option<PluginHandle>)],
    cap: f64,
    scale: Scale,
    cache: &CacheSpec,
    obs: &ObsSpec,
) -> (RunSet, CacheStats) {
    let mut points = Vec::new();
    for (name, policy) in policies {
        for mix_id in 0..scale.mixes {
            let cfg = SystemConfig::table3(cap, policy.clone())
                .with_insts(scale.insts, scale.warmup)
                .with_workload(mix(mix_id));
            let key = ScenarioKey::root()
                .with("policy", name)
                .with("mix", mix_id.to_string());
            points.push((key, cfg));
        }
    }
    let sweep = with_plugin_axis(
        Sweep::from_points("perf_kernel", hira_engine::DEFAULT_BASE_SEED, points),
        plugins,
    );
    assert!(!sweep.is_empty(), "perf_kernel sweep has no points");
    let ex = Executor::with_threads(1);
    let watch = obs.begin(sweep.name(), sweep.len(), ex.threads());
    let task = |sc: Scenario<'_, SystemConfig>| {
        let key = watch.as_ref().map(|_| sc.key.clone());
        let t_measure = Instant::now();
        let out = perf_kernel_task(sc);
        if let (Some(w), Some(key)) = (&watch, key) {
            // Both kernel runs are the measure phase; there is no warmup.
            w.record_phases(&key, (0.0, t_measure.elapsed().as_secs_f64() * 1e3));
        }
        out
    };
    let via_cache;
    let (run, stats) = if let Some(mut store) = cache.open_for(&sweep) {
        via_cache = true;
        let plan = SweepPlan::compute(&store, &sweep, cache_salt(), |sc| {
            ws_canonical("perf_kernel", sc.params)
        });
        let on_point = |o: PointOutcome<'_>| {
            if let Some(w) = &watch {
                w.point_done(
                    &sweep.points()[o.index].0,
                    o.cached,
                    o.queue_wait_ms,
                    o.point.wall_ms,
                );
            }
        };
        let (run, stats) = ex
            .run_cached(&mut store, &sweep, &plan, task, Some(&on_point))
            .unwrap_or_else(|e| {
                panic!(
                    "cache: cannot persist results at {}: {e}",
                    store.dir().display()
                )
            });
        cache.report(&stats);
        (run, stats)
    } else {
        via_cache = false;
        let observer = |p: &PointRun<'_>| {
            if let Some(w) = &watch {
                w.point_done(p.key, false, p.queue_wait_ms, p.wall_ms);
            }
        };
        let (_, run) = ex.run_observed(
            &sweep,
            |sc| {
                let (ms, t) = task(sc);
                ((), ms, t)
            },
            Some(&observer),
        );
        let stats = CacheStats {
            points: run.records.len() / 3,
            hits: 0,
            misses: run.records.len() / 3,
            appended: 0,
        };
        (run, stats)
    };
    if let Some(w) = watch {
        w.finish(&run, via_cache.then_some(&stats));
    }
    obs.report_slow(&run);
    (run, stats)
}

/// The canonical configuration string of one weighted-speedup point under
/// task `tag` — the content the sweep cache keys by, besides the point's
/// seed and the process's [`cache_salt`]. The tag keeps tasks that measure
/// different metric sets over identical configurations (`ws`, `ws+stats`,
/// `perf_kernel`) from colliding in the store.
pub fn ws_canonical(tag: &str, cfg: &SystemConfig) -> String {
    format!("task={tag};{}", cfg.cache_descriptor())
}

/// The process's code-version salt for the sweep cache: the store schema
/// version plus the fingerprints of every registry a cached result depends
/// on (policies, workloads, devices, probe forms, plugin forms). Any
/// registry change — a handle added, removed or renamed — moves the salt
/// and conservatively invalidates existing stores.
pub fn cache_salt() -> u64 {
    let owned = |v: Vec<&str>| v.into_iter().map(str::to_owned).collect::<Vec<_>>();
    let forms = |v: Vec<(&str, &str)>| {
        v.into_iter()
            .map(|(form, _)| form.to_owned())
            .collect::<Vec<_>>()
    };
    hira_store::code_version_salt([
        ("policy", owned(PolicyRegistry::standard().names())),
        ("workload", owned(WorkloadRegistry::standard().names())),
        ("device", owned(DeviceRegistry::standard().names())),
        ("probe", forms(ProbeRegistry::standard().forms())),
        ("plugin", forms(PluginRegistry::standard().forms())),
    ])
}

/// The sweep-cache selection of a matrix binary: `--cache=<dir>` enables
/// the content-addressed result store at `<dir>` (created on first use),
/// `--no-cache` overrides it off, and `--cache-stats` prints the hit/miss
/// accounting after each cached sweep.
///
/// Probes are the one interaction the cache refuses to shortcut: replaying
/// a hit would skip the simulation the probe's output files come from, so
/// a sweep with probes attached runs uncached (with a note on stderr).
#[derive(Debug, Clone, Default)]
pub struct CacheSpec {
    dir: Option<PathBuf>,
    stats: bool,
}

impl CacheSpec {
    /// Parses the cache flags from the process arguments.
    ///
    /// # Panics
    ///
    /// Panics when `--cache=` names an empty path or is passed twice with
    /// different directories.
    pub fn from_args() -> Self {
        let mut dir: Option<PathBuf> = None;
        let mut no_cache = false;
        let mut stats = false;
        for a in std::env::args() {
            if let Some(d) = a.strip_prefix("--cache=") {
                assert!(!d.is_empty(), "--cache needs a directory: --cache=<dir>");
                let d = PathBuf::from(d);
                if let Some(prev) = &dir {
                    assert_eq!(prev, &d, "--cache passed twice with different directories");
                }
                dir = Some(d);
            } else if a == "--no-cache" {
                no_cache = true;
            } else if a == "--cache-stats" {
                stats = true;
            }
        }
        if no_cache {
            dir = None;
        }
        CacheSpec { dir, stats }
    }

    /// The inactive spec: every run simulates (the library default).
    pub fn disabled() -> Self {
        CacheSpec::default()
    }

    /// A spec caching at `dir`, for tests and embedding (`hira serve`).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        CacheSpec {
            dir: Some(dir.into()),
            stats: false,
        }
    }

    /// True when a cache directory is selected.
    pub fn is_active(&self) -> bool {
        self.dir.is_some()
    }

    /// The selected cache directory, when active.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Opens the store for one sweep — `None` when the spec is inactive or
    /// the sweep has probes attached (their output files require the
    /// simulations to actually run; noted on stderr).
    ///
    /// # Panics
    ///
    /// Panics when the store directory cannot be opened or is corrupt
    /// before its tail — an explicitly requested cache that cannot work is
    /// an error, not a silent slow path.
    fn open_for(&self, sweep: &Sweep<SystemConfig>) -> Option<SweepStore> {
        let dir = self.dir.as_ref()?;
        if sweep.points().iter().any(|(_, c)| c.probe.is_some()) {
            eprintln!(
                "cache: probes attached to sweep `{}`; running uncached so probe \
                 outputs are written (drop --probe or --cache to silence)",
                sweep.name()
            );
            return None;
        }
        Some(
            SweepStore::open(dir)
                .unwrap_or_else(|e| panic!("--cache: cannot open store at {}: {e}", dir.display())),
        )
    }

    /// Prints one accounting line when `--cache-stats` was passed.
    pub fn report(&self, stats: &CacheStats) {
        if self.stats {
            println!(
                "cache: {} points, {} hits, {} misses, {} appended ({})",
                stats.points,
                stats.hits,
                stats.misses,
                stats.appended,
                self.dir
                    .as_ref()
                    .map_or("inactive".to_string(), |d| d.display().to_string()),
            );
        }
    }
}

/// The observability selection of a bench binary, from the shared flags:
///
/// * `--trace[=<path>]` — write one append-only JSONL span/event log per
///   sweep. A bare `--trace` (or a directory path) derives the file name
///   from the sweep via the engine's path sanitizer
///   (`<dir>/<sweep>.trace.jsonl`); a path ending in `.jsonl` is used
///   verbatim. The bare form writes under `HIRA_BENCH_DIR` (or `.`).
/// * `--metrics[=<path>]` — dump the run's Prometheus text exposition
///   after the sweep. A bare `--metrics` (or a directory path) writes
///   `<dir>/<sweep>.prom`; a path with an extension is used verbatim.
/// * `--progress` — stream live `done/total, points/sec, ETA` lines to
///   stderr as points complete.
/// * `--log-level=<error|warn|info|debug|trace>` — trace verbosity
///   (default from `HIRA_LOG`, else `info`).
///
/// Any active flag also appends the slow-point outlier report (points
/// slower than 3× the sweep's median wall) to the run summary.
/// Observation rides beside the results: canonical output is byte-
/// identical with or without it, for any thread count and cache state.
#[derive(Debug, Clone)]
pub struct ObsSpec {
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    progress: bool,
    level: Level,
}

impl Default for ObsSpec {
    fn default() -> Self {
        ObsSpec {
            trace: None,
            metrics: None,
            progress: false,
            level: Level::Info,
        }
    }
}

/// The multiplier of [`ObsSpec::report_slow`]: a point is an outlier when
/// its wall exceeds this many times the sweep's median point wall.
pub const SLOW_POINT_FACTOR: f64 = 3.0;

impl ObsSpec {
    /// Parses the observability flags from the process arguments.
    ///
    /// # Panics
    ///
    /// Panics when `--log-level=` does not name a level, or when
    /// `--trace=`/`--metrics=` name an empty path.
    pub fn from_args() -> Self {
        let default_dir = || {
            std::env::var("HIRA_BENCH_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|_| PathBuf::from("."))
        };
        let mut trace = None;
        let mut metrics = None;
        let mut progress = false;
        let mut level_arg: Option<String> = None;
        for a in std::env::args() {
            if a == "--trace" {
                trace = Some(default_dir());
            } else if let Some(p) = a.strip_prefix("--trace=") {
                assert!(!p.is_empty(), "--trace needs a path: --trace=<path>");
                trace = Some(PathBuf::from(p));
            } else if a == "--metrics" {
                metrics = Some(default_dir());
            } else if let Some(p) = a.strip_prefix("--metrics=") {
                assert!(!p.is_empty(), "--metrics needs a path: --metrics=<path>");
                metrics = Some(PathBuf::from(p));
            } else if a == "--progress" {
                progress = true;
            } else if let Some(l) = a.strip_prefix("--log-level=") {
                level_arg = Some(l.to_owned());
            }
        }
        ObsSpec {
            trace,
            metrics,
            progress,
            level: Level::resolve(level_arg.as_deref()),
        }
    }

    /// The inactive spec: no tracing, no metrics, no progress (the
    /// library default).
    pub fn disabled() -> Self {
        ObsSpec::default()
    }

    /// True when any observability flag was passed.
    pub fn is_active(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some() || self.progress
    }

    /// Traces into `path` — a `.jsonl` file, or a directory to derive
    /// per-sweep file names in (the programmatic form of `--trace=`).
    pub fn with_trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace = Some(path.into());
        self
    }

    /// Dumps metrics at `path` — a file when it has an extension, a
    /// directory otherwise (the programmatic form of `--metrics=`).
    pub fn with_metrics(mut self, path: impl Into<PathBuf>) -> Self {
        self.metrics = Some(path.into());
        self
    }

    /// Streams live progress to stderr (the programmatic `--progress`).
    pub fn with_progress(mut self) -> Self {
        self.progress = true;
        self
    }

    /// Sets the trace level (the programmatic `--log-level=`).
    pub fn with_level(mut self, level: Level) -> Self {
        self.level = level;
        self
    }

    /// The effective trace level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Starts observing one sweep: opens the trace sink, creates the
    /// metrics registry and the progress ticker. `None` when the spec is
    /// inactive — the unobserved path pays nothing.
    ///
    /// # Panics
    ///
    /// Panics when the trace log cannot be opened — an explicitly
    /// requested trace that cannot work is an error, not a silent no-op.
    pub fn begin(&self, sweep: &str, points: usize, threads: usize) -> Option<ObsRun> {
        if !self.is_active() {
            return None;
        }
        let sink = self.sink(sweep);
        if let Some(s) = &sink {
            s.event(
                Level::Info,
                "sweep_start",
                &[
                    field("sweep", sweep),
                    field("points", points),
                    field("threads", threads),
                ],
            );
        }
        let registry = MetricsRegistry::new();
        let meters = Meters::new(&registry);
        Some(ObsRun {
            sink,
            registry,
            meters,
            progress: Progress::new(points),
            show_progress: self.progress,
            metrics_file: self.metrics_file(sweep),
            phases: Mutex::new(Vec::new()),
            sweep: sweep.to_owned(),
        })
    }

    /// Opens the trace sink `--trace` asked for (`None` without the
    /// flag), deriving the file name from `name` when the flag named a
    /// directory. Used by [`ObsSpec::begin`] and by services that manage
    /// their own observation (`hira serve`).
    ///
    /// # Panics
    ///
    /// Panics when the log cannot be opened — an explicitly requested
    /// trace that cannot work is an error, not a silent no-op.
    pub fn sink(&self, name: &str) -> Option<TraceSink> {
        self.trace.as_ref().map(|p| {
            let sink = if p.extension().is_some_and(|e| e == "jsonl") {
                TraceSink::to_path(p, self.level)
            } else {
                TraceSink::for_sweep(p, name, self.level)
            };
            sink.unwrap_or_else(|e| panic!("--trace: cannot open log under {}: {e}", p.display()))
        })
    }

    /// Where the Prometheus dump of sweep `sweep` would go, when
    /// `--metrics` is active.
    fn metrics_file(&self, sweep: &str) -> Option<PathBuf> {
        let p = self.metrics.as_ref()?;
        Some(if p.extension().is_some() {
            p.clone()
        } else {
            p.join(format!("{}.prom", hira_engine::sanitize_component(sweep)))
        })
    }

    /// Appends the slow-point outlier report to the run summary (stdout)
    /// when any observability flag is active: every point slower than
    /// [`SLOW_POINT_FACTOR`] × the sweep's median point wall, or one line
    /// saying none were.
    pub fn report_slow(&self, run: &RunSet) {
        if !self.is_active() {
            return;
        }
        let (median, slow) = slow_points(run, SLOW_POINT_FACTOR);
        if slow.is_empty() {
            println!(
                "slow points: none above {SLOW_POINT_FACTOR:.1}x the median point wall \
                 ({median:.1} ms)"
            );
        } else {
            println!("slow points (> {SLOW_POINT_FACTOR:.1}x median {median:.1} ms):");
            for (key, wall) in slow {
                println!(
                    "  {:<42} {wall:>9.1} ms ({:.1}x)",
                    key.to_string(),
                    wall / median
                );
            }
        }
    }
}

/// Total kernel iterations of `run`: each point's telemetry counted once
/// (a `ws+stats` point has several records sharing one simulation).
pub(crate) fn kernel_events(run: &RunSet) -> u64 {
    let mut seen: Vec<&ScenarioKey> = Vec::new();
    let mut events = 0u64;
    for r in &run.records {
        let Some(t) = r.telemetry else { continue };
        if seen.contains(&&r.key) {
            continue;
        }
        seen.push(&r.key);
        events += t.events;
    }
    events
}

/// The per-point walls of `run` that exceed `k` × the median point wall:
/// `(median, outliers in point order)`. Walls are per *point* (each key's
/// records share one wall), so a sweep with several metrics per point
/// still counts each point once.
pub fn slow_points(run: &RunSet, k: f64) -> (f64, Vec<(ScenarioKey, f64)>) {
    let mut seen: Vec<&ScenarioKey> = Vec::new();
    let mut walls: Vec<(ScenarioKey, f64)> = Vec::new();
    for r in &run.records {
        if seen.contains(&&r.key) {
            continue;
        }
        seen.push(&r.key);
        walls.push((r.key.clone(), r.wall_ms));
    }
    let mut sorted: Vec<f64> = walls.iter().map(|(_, w)| *w).collect();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let median = if n == 0 {
        0.0
    } else {
        (sorted[(n - 1) / 2] + sorted[n / 2]) / 2.0
    };
    let slow = walls
        .into_iter()
        .filter(|(_, w)| median > 0.0 && *w > k * median)
        .collect();
    (median, slow)
}

/// The standard engine/cache instruments, registered against one
/// [`MetricsRegistry`] — the shared name catalogue every observed bench
/// run and `hira serve` exposes (see the README's Observability section).
pub(crate) struct Meters {
    pub computed: hira_obs::Counter,
    pub replayed: hira_obs::Counter,
    pub cache_hits: hira_obs::Counter,
    pub cache_misses: hira_obs::Counter,
    pub cache_appended: hira_obs::Counter,
    pub sweeps: hira_obs::Counter,
    pub wall_us: hira_obs::Histogram,
    pub queue_wait_us: hira_obs::Histogram,
    pub kernel_events: hira_obs::Counter,
    pub sweep_wall_ms: hira_obs::Gauge,
}

impl Meters {
    pub(crate) fn new(reg: &MetricsRegistry) -> Meters {
        let points = "sweep points finished";
        Meters {
            computed: reg.counter_with("hira_points_total", points, &[("result", "computed")]),
            replayed: reg.counter_with("hira_points_total", points, &[("result", "replayed")]),
            cache_hits: reg.counter(
                "hira_cache_hits_total",
                "points replayed from the sweep store",
            ),
            cache_misses: reg.counter(
                "hira_cache_misses_total",
                "points computed because the store missed",
            ),
            cache_appended: reg.counter(
                "hira_cache_appended_total",
                "points newly persisted to the sweep store",
            ),
            sweeps: reg.counter("hira_sweeps_total", "sweeps completed"),
            wall_us: reg.histogram("hira_point_wall_us", "per-point wall time in microseconds"),
            queue_wait_us: reg.histogram(
                "hira_point_queue_wait_us",
                "per-point queue wait in microseconds",
            ),
            kernel_events: reg.counter(
                "hira_kernel_events_total",
                "kernel iterations across finished points",
            ),
            sweep_wall_ms: reg.gauge(
                "hira_sweep_wall_ms",
                "last sweep's summed per-point wall in milliseconds",
            ),
        }
    }

    /// Folds one finished point into the counters and histograms.
    pub(crate) fn point(&self, cached: bool, queue_wait_ms: f64, wall_ms: f64) {
        if cached {
            self.replayed.inc();
        } else {
            self.computed.inc();
        }
        self.wall_us.observe(wall_ms * 1e3);
        self.queue_wait_us.observe(queue_wait_ms * 1e3);
    }
}

/// One sweep under observation (see [`ObsSpec::begin`]): the trace sink,
/// metrics, progress ticker and the phase side-channel the task wrappers
/// feed. All methods are callable from worker threads.
pub struct ObsRun {
    sink: Option<TraceSink>,
    registry: MetricsRegistry,
    meters: Meters,
    progress: Progress,
    show_progress: bool,
    metrics_file: Option<PathBuf>,
    phases: Mutex<Vec<(ScenarioKey, (f64, f64))>>,
    sweep: String,
}

impl ObsRun {
    /// Records one point's `(warmup_ms, measure_ms)` phase split, keyed by
    /// scenario key — called by the task wrapper, consumed by
    /// [`ObsRun::point_done`] on the same point.
    pub fn record_phases(&self, key: &ScenarioKey, phases: (f64, f64)) {
        self.phases
            .lock()
            .expect("phase side-channel")
            .push((key.clone(), phases));
    }

    /// Folds one finished point into the trace, metrics and progress.
    /// Replayed points carry zero phase timings — nothing ran.
    pub fn point_done(&self, key: &ScenarioKey, cached: bool, queue_wait_ms: f64, wall_ms: f64) {
        let phases = {
            let mut v = self.phases.lock().expect("phase side-channel");
            v.iter()
                .position(|(k, _)| k == key)
                .map(|i| v.swap_remove(i).1)
        };
        let (warmup_ms, measure_ms) = phases.unwrap_or((0.0, 0.0));
        let serialize_ms = if cached {
            0.0
        } else {
            (wall_ms - warmup_ms - measure_ms).max(0.0)
        };
        self.meters.point(cached, queue_wait_ms, wall_ms);
        if let Some(s) = &self.sink {
            s.event(
                Level::Info,
                "point",
                &[
                    field("point", key.to_string()),
                    field("cached", cached),
                    field("queue_wait_ms", queue_wait_ms),
                    field("warmup_ms", warmup_ms),
                    field("measure_ms", measure_ms),
                    field("serialize_ms", serialize_ms),
                    field("wall_ms", wall_ms),
                ],
            );
        }
        let snap = self.progress.point_done(cached);
        if self.show_progress {
            eprintln!("progress[{}]: {}", self.sweep, snap.render());
        }
    }

    /// Closes the observation: folds the run-level aggregates (kernel
    /// events, sweep wall, cache accounting) into the metrics, writes the
    /// `sweep_done` trace event and the Prometheus dump.
    ///
    /// # Panics
    ///
    /// Panics when the `--metrics` dump cannot be written.
    pub fn finish(&self, run: &RunSet, stats: Option<&CacheStats>) {
        let kernel_events = kernel_events(run);
        self.meters.kernel_events.add(kernel_events);
        self.meters.sweep_wall_ms.set(run.wall_ms);
        self.meters.sweeps.inc();
        if let Some(s) = stats {
            self.meters.cache_hits.add(s.hits as u64);
            self.meters.cache_misses.add(s.misses as u64);
            self.meters.cache_appended.add(s.appended as u64);
        }
        if let Some(sink) = &self.sink {
            let mut fields = vec![
                field("sweep", self.sweep.as_str()),
                field("threads", run.threads),
                field("wall_ms", run.wall_ms),
                field("kernel_events", kernel_events),
            ];
            if let Some(s) = stats {
                fields.push(field("hits", s.hits));
                fields.push(field("misses", s.misses));
                fields.push(field("appended", s.appended));
            }
            sink.event(Level::Info, "sweep_done", &fields);
            sink.flush();
        }
        if let Some(path) = &self.metrics_file {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(parent);
                }
            }
            std::fs::write(path, self.registry.render())
                .unwrap_or_else(|e| panic!("--metrics: cannot write {}: {e}", path.display()));
        }
        if self.show_progress {
            let snap = self.progress.snapshot();
            eprintln!(
                "progress[{}]: {} in {:.0} ms",
                self.sweep,
                snap.render(),
                snap.elapsed_ms
            );
        }
    }
}

/// Mean weighted speedup of a single configuration over the mix suite —
/// a one-point [`run_ws`] sweep.
pub fn mean_ws(base_cfg: &SystemConfig, scale: Scale) -> f64 {
    let mut sweep = Sweep::from_points("mean_ws", hira_engine::DEFAULT_BASE_SEED, Vec::new());
    sweep.push(ScenarioKey::root(), base_cfg.clone());
    run_ws(&Executor::from_env(), sweep, scale).mean(&[])
}

/// The periodic-refresh policies of Fig. 9 (display label, registry
/// handle). The HiRA variants can be ablated through
/// [`periodic_schemes_ablated`].
pub fn periodic_schemes() -> Vec<(&'static str, PolicyHandle)> {
    periodic_schemes_ablated(false)
}

/// [`periodic_schemes`] with refresh-access pairing optionally disabled on
/// every HiRA point (the `--no-refresh-access` ablation of Fig. 9).
pub fn periodic_schemes_ablated(no_refresh_access: bool) -> Vec<(&'static str, PolicyHandle)> {
    let hira = |n: u32| {
        if no_refresh_access {
            policy::hira_custom(
                format!("hira{n}-noRA"),
                hira_core::config::HiraConfig::hira_n(n).without_refresh_access(),
            )
        } else {
            policy::hira(n)
        }
    };
    vec![
        ("Baseline", policy::baseline()),
        ("HiRA-0", hira(0)),
        ("HiRA-2", hira(2)),
        ("HiRA-4", hira(4)),
        ("HiRA-8", hira(8)),
    ]
}

/// The preventive-refresh arrangements of Fig. 12 (PARA ± HiRA), layered
/// over Baseline periodic refresh. `p_th` is resolved per arrangement from
/// the §9.1 analysis (slack-aware).
pub fn preventive_schemes(nrh: u32) -> Vec<(&'static str, PolicyHandle)> {
    let base = policy::baseline();
    vec![
        ("PARA", base.clone().with_para_immediate(pth_for(nrh, 0))),
        ("HiRA-0", base.clone().with_para_hira(pth_for(nrh, 0), 0)),
        ("HiRA-2", base.clone().with_para_hira(pth_for(nrh, 2), 2)),
        ("HiRA-4", base.clone().with_para_hira(pth_for(nrh, 4), 4)),
        ("HiRA-8", base.with_para_hira(pth_for(nrh, 8), 8)),
    ]
}

/// The three-arrangement subset of [`preventive_schemes`] the geometry
/// sweeps plot (Figs. 15/16: PARA, HiRA-2, HiRA-4).
pub fn preventive_schemes_geometry(nrh: u32) -> Vec<(&'static str, PolicyHandle)> {
    preventive_schemes(nrh)
        .into_iter()
        .filter(|(name, _)| matches!(*name, "PARA" | "HiRA-2" | "HiRA-4"))
        .collect()
}

/// Prints every registered refresh policy with its one-line summary (the
/// `--list` output of [`policy_axis_from_args`]).
pub fn print_policy_list() {
    println!("registered refresh policies (--policy=<name>):");
    for h in PolicyRegistry::standard().handles() {
        println!("  {:<12} {}", h.name(), h.summary());
    }
    println!(
        "  {:<12} (dynamic) any slack point: tRefSlack = N*tRC",
        "hira<N>"
    );
}

/// Prints every registered device with its one-line summary (the
/// `--list` output of [`device_axis_from_args_or`]).
pub fn print_device_list() {
    println!("registered devices (--device=<name>):");
    for h in DeviceRegistry::standard().handles() {
        println!("  {:<18} {}", h.name(), h.summary());
    }
    println!(
        "  {:<18} (dynamic) DDR4-2400 part pinned at <Gb> (tRFC fixed)",
        "ddr4-2400@<Gb>"
    );
}

/// Prints every registered workload with its family and one-line summary
/// (the `--list` output of [`workload_axis_from_args`]).
pub fn print_workload_list() {
    println!("registered workloads (--workload=<name>):");
    for h in WorkloadRegistry::standard().handles() {
        println!("  {:<12} [{}] {}", h.name(), h.family(), h.summary());
    }
    for (form, what) in [
        (
            "mix<N>",
            "multiprogrammed roster mix N of the standard suite",
        ),
        ("zipf<N>", "zipfian generator with theta = N/100"),
        (
            "rw<N>",
            "uniform-random generator with N% stores (N <= 100)",
        ),
        (
            "open<N>",
            "open-loop generator at N accesses per kinst (N >= 1)",
        ),
        ("trace:<path>", "replay of the .trace file at <path>"),
    ] {
        println!("  {form:<12} (dynamic) {what}");
    }
}

/// Prints the accepted probe forms (the `--probe=` grammar of
/// [`ProbeSpec::from_args`]) with the CLI shorthands.
pub fn print_probe_list() {
    println!("probe forms (--probe=<form>, repeatable):");
    for (form, what) in ProbeRegistry::standard().forms() {
        println!("  {form:<28} {what}");
    }
    for (short, what) in [
        (
            "--cmdtrace=<prefix>",
            "shorthand for --probe=cmdtrace:<prefix>",
        ),
        (
            "--stats-epoch=<cycles>",
            "shorthand for --probe=epochs:<cycles>",
        ),
        ("--telemetry", "print the per-point run telemetry table"),
    ] {
        println!("  {short:<28} {what}");
    }
}

/// The probe selection of a sweep binary: every `--probe=<form>` argument
/// (repeatable; see [`hira_sim::ProbeRegistry`] for the grammar) plus the
/// shorthands `--cmdtrace=<prefix>` and `--stats-epoch=<cycles>`. Probes
/// are read-only observers — results are bit-identical with or without
/// them — so any sweep binary can carry the same flags through one shared
/// parsing path.
#[derive(Debug, Clone, Default)]
pub struct ProbeSpec {
    specs: Vec<String>,
}

impl ProbeSpec {
    /// Parses the probe flags from the process arguments.
    ///
    /// # Panics
    ///
    /// Panics (with the accepted forms) when a spec does not resolve —
    /// before any simulation runs.
    pub fn from_args() -> Self {
        let mut specs = axis_args("probe");
        specs.extend(
            axis_args("cmdtrace")
                .into_iter()
                .map(|p| format!("cmdtrace:{p}")),
        );
        specs.extend(
            axis_args("stats-epoch")
                .into_iter()
                .map(|e| format!("epochs:{e}")),
        );
        for s in &specs {
            let _ = hira_sim::probe::probe(s);
        }
        ProbeSpec { specs }
    }

    /// True when any probe flag was passed.
    pub fn is_active(&self) -> bool {
        !self.specs.is_empty()
    }

    /// The selected specs, as normalized registry forms.
    pub fn specs(&self) -> &[String] {
        &self.specs
    }

    /// Attaches the selected probes to every point of `sweep`. Each
    /// point's output paths get the point's sanitized scenario key spliced
    /// in (before the extension), so concurrently-running points never
    /// write to the same file. A no-op when no probe flag was passed.
    pub fn attach(&self, sweep: Sweep<SystemConfig>) -> Sweep<SystemConfig> {
        if self.specs.is_empty() {
            return sweep;
        }
        sweep.map(|key, cfg| cfg.with_probe(self.handle_for(key)))
    }

    /// The (possibly multi-) probe handle for one scenario key.
    fn handle_for(&self, key: &ScenarioKey) -> ProbeHandle {
        assert!(self.is_active(), "handle_for needs at least one probe");
        let tag = sanitize_key(key);
        let mut handles: Vec<ProbeHandle> = self
            .specs
            .iter()
            .map(|s| hira_sim::probe::probe(&per_point_spec(s, &tag)))
            .collect();
        if handles.len() == 1 {
            handles.pop().expect("one handle")
        } else {
            ProbeHandle::multi(handles)
        }
    }
}

/// Splices `tag` into a probe spec's output path (via the engine's shared
/// [`suffix_path`] helper — the same one the sweep store names its shards
/// with) so every sweep point writes distinct files. Specs without a path
/// component (or an empty tag) pass through unchanged.
fn per_point_spec(spec: &str, tag: &str) -> String {
    if tag.is_empty() {
        return spec.to_owned();
    }
    let Some((kind, rest)) = spec.split_once(':') else {
        return spec.to_owned();
    };
    match kind {
        "cmdtrace" | "latency" | "act-exposure" => format!("{kind}:{}", suffix_path(rest, tag)),
        "epochs" => match rest.split_once(':') {
            Some((every, path)) if !path.is_empty() => {
                format!("epochs:{every}:{}", suffix_path(path, tag))
            }
            _ => format!("epochs:{rest}:{}", suffix_path("epochs.jsonl", tag)),
        },
        _ => spec.to_owned(),
    }
}

/// True when `--telemetry` was passed: the binary prints the per-point
/// run telemetry table after its result tables.
pub fn telemetry_requested() -> bool {
    std::env::args().any(|a| a == "--telemetry")
}

/// Prints the run's telemetry table when `--telemetry` was passed (and
/// the run carries any telemetry).
pub fn maybe_print_telemetry(run: &RunSet) {
    if !telemetry_requested() {
        return;
    }
    let table = run.telemetry_table();
    if table.is_empty() {
        println!("\n(no run telemetry recorded)");
    } else {
        println!("\n-- run telemetry: wall time, kernel events, peak queue per point --");
        print!("{table}");
    }
}

/// Extracts the first `metric` record's value from a `BENCH_*.json`
/// payload — a targeted scan for the perf-baseline check (the emitter
/// writes `"metric":"<name>","value":<v>` adjacently), not a general JSON
/// parser.
pub fn extract_metric_value(json: &str, metric: &str) -> Option<f64> {
    let needle = format!("\"metric\":\"{metric}\",\"value\":");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// True when `--list` was passed: the caller's axis helper prints its
/// registry and exits.
fn list_requested() -> bool {
    std::env::args().any(|a| a == "--list")
}

/// Collects the comma-separated values of every `--<flag>=` argument.
fn axis_args(flag: &str) -> Vec<String> {
    let prefix = format!("--{flag}=");
    std::env::args()
        .filter_map(|a| a.strip_prefix(&prefix).map(str::to_owned))
        .flat_map(|list| {
            list.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Shared implementation of every `--<flag>=` axis helper: print the
/// registry and exit on `--list`, otherwise resolve the selected names —
/// or `defaults` when none were passed — through `resolve` (which panics,
/// with the registered names, on an unknown name).
fn axis_from_args_or_with<T>(
    flag: &str,
    defaults: &[&str],
    print_list: fn(),
    resolve: impl Fn(&str) -> T,
) -> Vec<(String, T)> {
    if list_requested() {
        print_list();
        std::process::exit(0);
    }
    let mut selected = axis_args(flag);
    if selected.is_empty() {
        selected = defaults.iter().map(|s| (*s).to_owned()).collect();
    }
    selected
        .into_iter()
        .map(|name| {
            let handle = resolve(&name);
            (name, handle)
        })
        .collect()
}

/// The policy axis of a sweep, from `--policy=` CLI arguments: every
/// `--policy=name[,name...]` argument adds registry lookups (label =
/// registry key), and with no such argument every policy in the standard
/// registry is swept. This is how bench binaries select refresh policies —
/// an open, string-keyed axis instead of enum plumbing. With `--list`,
/// prints every registered policy (name + profile one-liner) and exits.
///
/// # Panics
///
/// Panics (with the registered names) when an argument names an unknown
/// policy.
pub fn policy_axis_from_args() -> Vec<(String, PolicyHandle)> {
    let registry = PolicyRegistry::standard();
    let names = registry.names();
    policy_axis_from_args_or(&names)
}

/// The policy axis of a sweep, from `--policy=` CLI arguments, with
/// `defaults` (registry names) when no argument selects one — for
/// binaries whose full-registry default would be too wide a grid.
///
/// # Panics
///
/// Panics (with the registered names) when an argument — or a default —
/// names an unknown policy.
pub fn policy_axis_from_args_or(defaults: &[&str]) -> Vec<(String, PolicyHandle)> {
    axis_from_args_or_with("policy", defaults, print_policy_list, policy::policy)
}

/// The device axis of a sweep, from `--device=` CLI arguments, with
/// `defaults` (registry names) when no argument selects one. With
/// `--list`, prints every registered device (name + summary, plus the
/// dynamic `ddr4-2400@<Gb>` form) and exits.
///
/// # Panics
///
/// Panics (with the registered names) when an argument — or a default —
/// names an unknown device.
pub fn device_axis_from_args_or(defaults: &[&str]) -> Vec<(String, DeviceHandle)> {
    axis_from_args_or_with("device", defaults, print_device_list, |n| {
        hira_sim::device::device(n)
    })
}

/// The workload axis of a sweep, from `--workload=` CLI arguments, with
/// `defaults` (registry names) when no argument selects one. With
/// `--list`, prints every registered workload (name, family, profile
/// one-liner, plus the dynamic forms) and exits.
///
/// # Panics
///
/// Panics (with the registered names) when an argument — or a default —
/// names an unknown workload.
pub fn workload_axis_from_args_or(defaults: &[&str]) -> Vec<(String, WorkloadHandle)> {
    axis_from_args_or_with("workload", defaults, print_workload_list, |n| {
        hira_workload::workload(n)
    })
}

/// [`workload_axis_from_args_or`] defaulting to the full standard registry.
pub fn workload_axis_from_args() -> Vec<(String, WorkloadHandle)> {
    let registry = WorkloadRegistry::standard();
    let names = registry.names();
    workload_axis_from_args_or(&names)
}

/// Prints the accepted controller-plugin forms (the `--plugin=` grammar of
/// [`plugin_axis_from_args`]) plus the `none` baseline.
pub fn print_plugin_list() {
    println!("controller plugins (--plugin=<form>, repeatable):");
    println!(
        "  {:<20} no plugin attached (the undefended baseline)",
        "none"
    );
    for (form, what) in PluginRegistry::standard().forms() {
        println!("  {form:<20} (dynamic) {what}");
    }
}

/// The controller-plugin axis of a sweep, from `--plugin=` CLI arguments,
/// with `defaults` (registry forms, or `"none"`) when no argument selects
/// one. Each entry is the canonical plugin name paired with `Some(handle)`
/// — or `"none"` / `None` for the undefended baseline point. With
/// `--list`, prints the accepted forms and exits.
///
/// # Panics
///
/// Panics (with the accepted forms) when an argument — or a default —
/// matches no plugin form.
pub fn plugin_axis_from_args_or(defaults: &[&str]) -> Vec<(String, Option<PluginHandle>)> {
    let axis = axis_from_args_or_with("plugin", defaults, print_plugin_list, |spec| {
        (spec != "none").then(|| hira_sim::plugin::plugin(spec))
    });
    axis.into_iter()
        // Key by the handle's *canonical* name (`oracle:01024` and
        // `oracle:1024` must land on one scenario key / cache entry).
        .map(|(raw, h)| match h {
            Some(h) => (h.name().to_owned(), Some(h)),
            None => (raw, None),
        })
        .collect()
}

/// The controller-plugin axis selected by explicit `--plugin=` arguments
/// only: empty when the flag was never passed. The matrix binaries use
/// this to add a `plugin` scenario-key axis *opt-in* — without the flag
/// their sweeps (and the committed `BENCH_*.json` keys) are unchanged.
pub fn plugin_axis_from_args() -> Vec<(String, Option<PluginHandle>)> {
    if axis_args("plugin").is_empty() && !list_requested() {
        return Vec::new();
    }
    plugin_axis_from_args_or(&[])
}

/// Expands `sweep` with a `plugin` scenario-key axis when `plugins` is
/// non-empty (each point's config gains the entry's handle; the `none` /
/// `None` entry leaves it untouched), and passes the sweep through
/// unchanged otherwise.
pub fn with_plugin_axis(
    sweep: Sweep<SystemConfig>,
    plugins: &[(String, Option<PluginHandle>)],
) -> Sweep<SystemConfig> {
    if plugins.is_empty() {
        return sweep;
    }
    sweep.axis("plugin", plugins.to_vec(), |cfg, p| match p {
        Some(h) => cfg.clone().with_plugin(h.clone()),
        None => cfg.clone(),
    })
}

/// Prints the accepted kernel modes (the `--kernel=` values of
/// [`kernel_from_args`]) — the `--list` output every axis helper offers.
pub fn print_kernel_list() {
    println!("simulation kernels (--kernel=<name>):");
    for (name, what) in [
        ("event", "event-driven time-skipping kernel (default)"),
        ("dense", "cycle-by-cycle reference kernel (bit-identical)"),
    ] {
        println!("  {name:<12} {what}");
    }
}

/// The simulation kernel selected by `--kernel=dense|event` (default:
/// [`KernelMode::Event`], the fast path). The dense kernel is the
/// bit-identical legacy reference — `--kernel=dense` is the escape hatch
/// for A/B-ing a result against it (see the `perf_kernel` binary for the
/// systematic harness). With `--list`, prints the accepted modes and exits
/// — the same contract as every other axis helper.
///
/// # Panics
///
/// Panics when the argument names an unknown kernel mode.
pub fn kernel_from_args() -> KernelMode {
    if list_requested() {
        print_kernel_list();
        std::process::exit(0);
    }
    let selected = axis_args("kernel");
    assert!(
        selected.len() <= 1,
        "--kernel selects the run's single kernel mode, not an axis: got {selected:?} \
         (use the perf_kernel binary to A/B both kernels)"
    );
    selected
        .first()
        .map(|name| name.parse().expect("--kernel"))
        .unwrap_or_default()
}

/// `p_th` for a RowHammer threshold under the §9.1 analysis, with the slack
/// of the given HiRA-N (0 for plain PARA).
pub fn pth_for(nrh: u32, slack_acts: u32) -> f64 {
    let params = hira_core::security::SecurityParams::paper_defaults(slack_acts);
    hira_core::security::solve_pth(&params, nrh)
}

/// Formats one numeric series row for the harness output.
pub fn print_series(label: &str, xs: &[f64]) {
    let body: Vec<String> = xs.iter().map(|v| format!("{v:>8.4}")).collect();
    println!("{label:<12} {}", body.join(" "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_are_sane() {
        let s = Scale::from_env();
        assert!(s.mixes >= 1);
        assert!(s.insts >= 1_000);
        assert!(s.warmup < s.insts);
    }

    #[test]
    fn scheme_lists_cover_the_paper_configs() {
        assert_eq!(periodic_schemes().len(), 5);
        assert_eq!(preventive_schemes(512).len(), 5);
    }

    #[test]
    fn pth_is_monotone_in_nrh() {
        assert!(pth_for(64, 0) > pth_for(1024, 0));
    }

    fn tiny_scale() -> Scale {
        Scale {
            mixes: 2,
            insts: 2_000,
            warmup: 400,
            rows: 16,
        }
    }

    #[test]
    fn run_ws_means_match_engine_records() {
        let sweep = Sweep::new("ws_smoke").axis(
            "scheme",
            [
                ("NoRefresh", policy::noref()),
                ("Baseline", policy::baseline()),
            ],
            |_, s| SystemConfig::table3(8.0, s.clone()),
        );
        let t = run_ws(&Executor::with_threads(2), sweep, tiny_scale());
        assert_eq!(t.means().len(), 2);
        // The mean over the mix axis really is the average of the records.
        let per_mix: Vec<f64> = t
            .run
            .records
            .iter()
            .filter(|r| r.metric == "ws" && r.key.matches(&[("scheme", "NoRefresh")]))
            .map(|r| r.value)
            .collect();
        assert_eq!(per_mix.len(), 2);
        let mean = per_mix.iter().sum::<f64>() / per_mix.len() as f64;
        assert!((t.mean(&[("scheme", "NoRefresh")]) - mean).abs() < 1e-12);
        // Refresh can only cost performance relative to the ideal system.
        assert!(t.mean(&[("scheme", "Baseline")]) <= t.mean(&[("scheme", "NoRefresh")]));
    }

    #[test]
    fn run_ws_with_stats_emits_channel_metrics() {
        let devices = [
            ("ddr4-2400", hira_sim::device::ddr4_2400()),
            ("lpddr4-3200", hira_sim::device::lpddr4_3200()),
        ];
        let sweep = Sweep::new("stats_smoke").axis("dev", devices, |_, d| {
            SystemBuilder::new()
                .device(d.clone())
                .policy(policy::baseline())
                .workload(hira_workload::stream())
                .build()
                .unwrap()
        });
        let t = run_ws_with_stats(&Executor::with_threads(2), sweep, tiny_scale());
        for m in ["ws", "read_lat", "write_lat", "dbus"] {
            assert!(
                t.run.records.iter().any(|r| r.metric == m),
                "{m} missing from the record set"
            );
        }
        // The grid is addressable per device; absent cells answer None.
        assert!(t.try_mean(&[("dev", "ddr4-2400")]).is_some());
        assert!(t.try_mean(&[("dev", "nope")]).is_none());
        // Streaming traffic keeps the bus meaningfully busy on both parts.
        for r in t.run.records.iter().filter(|r| r.metric == "dbus") {
            assert!(r.value > 0.0 && r.value <= 1.0, "dbus {}", r.value);
        }
    }

    #[test]
    fn policy_handles_carry_their_pth_in_the_identity() {
        let a = preventive_schemes(64);
        let b = preventive_schemes(1024);
        // Same label, different p_th: the handles must not compare equal,
        // or a sweep would silently collapse distinct configurations.
        assert_ne!(a[0].1, b[0].1);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn ablated_schemes_rename_their_hira_points() {
        let plain = periodic_schemes();
        let ablated = periodic_schemes_ablated(true);
        assert_eq!(plain[1].1.name(), "hira0");
        assert_eq!(ablated[1].1.name(), "hira0-noRA");
        assert_eq!(plain[0].1, ablated[0].1, "Baseline is not ablatable");
    }

    #[test]
    fn run_ws_records_carry_run_telemetry() {
        let mut sweep = Sweep::from_points("tel_smoke", hira_engine::DEFAULT_BASE_SEED, Vec::new());
        sweep.push(
            ScenarioKey::root(),
            SystemConfig::table3(8.0, policy::baseline()),
        );
        let t = run_ws(&Executor::with_threads(1), sweep, tiny_scale());
        for r in &t.run.records {
            let tel = r.telemetry.expect("every ws record carries telemetry");
            assert!(tel.events > 0);
            assert!(tel.peak_queue > 0);
        }
        assert!(!t.run.telemetry_table().is_empty());
    }

    #[test]
    fn per_point_specs_splice_the_key_tag_into_paths() {
        assert_eq!(
            suffix_path("out/epochs.jsonl", "mix-0"),
            "out/epochs.mix-0.jsonl"
        );
        assert_eq!(suffix_path("trace", "mix-0"), "trace.mix-0");
        assert_eq!(suffix_path("dir.d/file", "t"), "dir.d/file.t");
        assert_eq!(
            per_point_spec("cmdtrace:out/t", "policy-hira4"),
            "cmdtrace:out/t.policy-hira4"
        );
        assert_eq!(
            per_point_spec("epochs:5000", "mix-1"),
            "epochs:5000:epochs.mix-1.jsonl"
        );
        assert_eq!(
            per_point_spec("epochs:5000:e.jsonl", "mix-1"),
            "epochs:5000:e.mix-1.jsonl"
        );
        assert_eq!(
            per_point_spec("latency:lat.jsonl", ""),
            "latency:lat.jsonl",
            "an empty tag (root key) leaves the spec untouched"
        );
        let key = ScenarioKey::root().with("policy", "hira4").with("cap", "8");
        assert_eq!(sanitize_key(&key), "policy-hira4_cap-8");
        assert_eq!(sanitize_key(&ScenarioKey::root()), "");
        let odd = ScenarioKey::root().with("wl", "trace:/tmp/a.trace");
        assert_eq!(sanitize_key(&odd), "wl-trace--tmp-a.trace");
    }

    #[test]
    fn probe_spec_attaches_distinct_handles_per_point() {
        let spec = ProbeSpec {
            specs: vec!["latency:lat.jsonl".into(), "epochs:5000".into()],
        };
        assert!(spec.is_active());
        let sweep = Sweep::new("probe_attach").axis(
            "policy",
            [("noref", policy::noref()), ("baseline", policy::baseline())],
            |_, p| SystemConfig::table3(8.0, p.clone()),
        );
        let attached = spec.attach(sweep);
        let probes: Vec<_> = attached
            .points()
            .iter()
            .map(|(_, cfg)| cfg.probe.clone().expect("probe attached"))
            .collect();
        assert_eq!(probes.len(), 2);
        assert_ne!(probes[0], probes[1], "points must not share output files");
        assert!(probes[0].name().contains("latency:lat.policy-noref.jsonl"));
        assert!(probes[0].name().contains('+'), "multi-probe handle");
        // An inactive spec leaves configs untouched.
        let plain = ProbeSpec::default().attach(Sweep::from_points(
            "noop",
            0,
            vec![(
                ScenarioKey::root(),
                SystemConfig::table3(8.0, policy::noref()),
            )],
        ));
        assert!(plain.points()[0].1.probe.is_none());
    }

    #[test]
    fn extract_metric_value_reads_bench_json() {
        let json = r#"{"sweep":"x","records":[{"key":{},"metric":"speedup","value":2.5,"wall_ms":1},{"key":{},"metric":"speedup_total","value":3.25}]}"#;
        assert_eq!(extract_metric_value(json, "speedup_total"), Some(3.25));
        assert_eq!(extract_metric_value(json, "speedup"), Some(2.5));
        assert_eq!(extract_metric_value(json, "nope"), None);
    }

    #[test]
    fn mean_ws_agrees_with_single_point_sweep() {
        let scale = tiny_scale();
        let cfg = SystemConfig::table3(8.0, policy::baseline());
        let a = mean_ws(&cfg, scale);
        let b = mean_ws(&cfg, scale);
        assert_eq!(a, b, "mean_ws must be deterministic");
    }

    #[test]
    fn ws_canonical_separates_tasks_and_configs() {
        let a = SystemConfig::table3(8.0, policy::baseline());
        let b = SystemConfig::table3(64.0, policy::baseline());
        assert_eq!(ws_canonical("ws", &a), ws_canonical("ws", &a));
        assert_ne!(
            ws_canonical("ws", &a),
            ws_canonical("ws+stats", &a),
            "tasks measuring different metric sets must not share keys"
        );
        assert_ne!(ws_canonical("ws", &a), ws_canonical("ws", &b));
    }

    #[test]
    fn cache_salt_is_stable_within_a_process() {
        assert_eq!(cache_salt(), cache_salt());
    }

    #[test]
    fn cache_spec_selection_rules() {
        assert!(!CacheSpec::disabled().is_active());
        let spec = CacheSpec::at("/tmp/somewhere");
        assert!(spec.is_active());
        assert_eq!(spec.dir().unwrap(), Path::new("/tmp/somewhere"));
        // Probe-attached sweeps refuse the cache (their output files need
        // the simulations to actually run).
        let probed = ProbeSpec {
            specs: vec!["epochs:5000".into()],
        }
        .attach(Sweep::from_points(
            "probed",
            0,
            vec![(
                ScenarioKey::root(),
                SystemConfig::table3(8.0, policy::noref()),
            )],
        ));
        assert!(spec.open_for(&probed).is_none());
    }

    #[test]
    fn cached_run_ws_replays_bench_json_byte_identically() {
        let dir = std::env::temp_dir().join(format!("hira-bench-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let scale = tiny_scale();
        let mk = || {
            Sweep::new("cache_smoke").axis(
                "policy",
                [("noref", policy::noref()), ("baseline", policy::baseline())],
                |_, p| SystemConfig::table3(8.0, p.clone()),
            )
        };
        let uncached = run_ws(&Executor::with_threads(2), mk(), scale);
        let spec = CacheSpec::at(&dir);
        let cold = run_ws_probed_cached(
            &Executor::with_threads(2),
            mk(),
            scale,
            &ProbeSpec::default(),
            &spec,
        );
        let warm = run_ws_probed_cached(
            &Executor::with_threads(2),
            mk(),
            scale,
            &ProbeSpec::default(),
            &spec,
        );
        // A different worker count on a warm store must not matter either:
        // nothing runs, so only the reported thread width can change.
        let warm_serial = run_ws_probed_cached(
            &Executor::with_threads(1),
            mk(),
            scale,
            &ProbeSpec::default(),
            &spec,
        );
        assert_eq!(
            uncached.run.canonical_json(),
            cold.run.canonical_json(),
            "caching must not change results"
        );
        assert_eq!(
            cold.run.bench_json(),
            warm.run.bench_json(),
            "a warm replay must be byte-identical, wall times included"
        );
        assert_eq!(cold.run.canonical_json(), warm_serial.run.canonical_json());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
