//! # hira-bench — the figure/table regeneration harness
//!
//! One binary per table and figure of the paper (see `src/bin/`), each of
//! which declares its experiment space as a [`hira_engine::Sweep`] and runs
//! it through the engine's deterministic multi-threaded [`Executor`]. Every
//! binary prints the same rows/series the paper reports; absolute values
//! come from our simulator/model, the *shape* (orderings, trends,
//! crossovers) is the reproduction target.
//!
//! Scale knobs (all binaries):
//!
//! * `HIRA_MIXES` — number of 8-core workload mixes (default 6; paper: 125),
//! * `HIRA_INSTS` — measured instructions per core (default 60 000;
//!   paper: 200 M),
//! * `HIRA_ROWS` — characterization rows per region (default 48;
//!   paper: 2 048),
//! * `HIRA_THREADS` — engine worker threads (default: available
//!   parallelism); results are bit-identical for any value,
//! * `HIRA_BENCH_DIR` — when set, every binary additionally writes its
//!   machine-readable `BENCH_<sweep>.json` result set there.
//!
//! Binaries that sweep refresh policies also accept `--policy=<name>[,..]`
//! (repeatable) to subset the policy axis by registry name — see
//! [`policy_axis_from_args`].

use hira_engine::{metric, Executor, ScenarioKey, Sweep};
use hira_sim::config::SystemConfig;
use hira_sim::policy::{self, PolicyHandle, PolicyRegistry};
use hira_sim::system::System;
use hira_sim::workloads::{mixes, Benchmark, Mix};
use std::collections::{BTreeSet, HashMap};
use std::sync::Mutex;

pub use hira_engine::RunSet;

/// Experiment scale options, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Number of multiprogrammed mixes per data point.
    pub mixes: usize,
    /// Measured instructions per core.
    pub insts: u64,
    /// Warmup instructions per core.
    pub warmup: u64,
    /// Characterization rows per region.
    pub rows: u32,
}

impl Scale {
    /// Reads `HIRA_MIXES` / `HIRA_INSTS` / `HIRA_ROWS` with defaults.
    pub fn from_env() -> Self {
        let get = |k: &str, d: u64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        let insts = get("HIRA_INSTS", 60_000);
        Scale {
            mixes: get("HIRA_MIXES", 6) as usize,
            insts,
            warmup: insts / 5,
            rows: get("HIRA_ROWS", 48) as u32,
        }
    }
}

/// Alone-IPC cache key: benchmark name, channels, ranks, and the Scale
/// dimensions the simulation depends on (measured + warmup instructions) —
/// so runs at different scales in one process never share stale values.
type AloneKey = (String, usize, usize, u64, u64);

fn alone_key(bench: &Benchmark, channels: usize, ranks: usize, scale: Scale) -> AloneKey {
    (
        bench.name.to_owned(),
        channels,
        ranks,
        scale.insts,
        scale.warmup,
    )
}

/// Global cache of alone-IPC values, keyed by benchmark name and geometry.
static ALONE_IPC: Mutex<Option<HashMap<AloneKey, f64>>> = Mutex::new(None);

fn cached_alone_ipc(key: &AloneKey) -> Option<f64> {
    ALONE_IPC
        .lock()
        .unwrap()
        .as_ref()
        .and_then(|m| m.get(key).copied())
}

fn store_alone_ipc(key: AloneKey, ipc: f64) {
    ALONE_IPC
        .lock()
        .unwrap()
        .get_or_insert_with(HashMap::new)
        .insert(key, ipc);
}

/// The (pure, deterministic) computation behind [`alone_ipc`].
fn compute_alone_ipc(
    bench: &'static Benchmark,
    channels: usize,
    ranks: usize,
    scale: Scale,
) -> f64 {
    let mut cfg = SystemConfig::table3(8.0, policy::noref())
        .with_geometry(channels, ranks)
        .with_insts(scale.insts, scale.warmup);
    cfg.cores = 1;
    let mix = Mix {
        id: 0,
        benchmarks: vec![bench],
    };
    System::new(cfg, &mix).run().ipc[0]
}

/// IPC of `bench` running alone on an ideal (no-refresh, no-PARA) system of
/// the given geometry — the denominator of weighted speedup. Memoized; the
/// value is a pure function of its arguments, so concurrent computation of
/// the same key is merely redundant, never divergent.
pub fn alone_ipc(bench: &'static Benchmark, channels: usize, ranks: usize, scale: Scale) -> f64 {
    let key = alone_key(bench, channels, ranks, scale);
    if let Some(v) = cached_alone_ipc(&key) {
        return v;
    }
    let ipc = compute_alone_ipc(bench, channels, ranks, scale);
    store_alone_ipc(key, ipc);
    ipc
}

/// Pre-computes every alone-IPC value a weighted-speedup sweep will need —
/// one engine task per distinct `(benchmark, geometry)` pair — so the main
/// sweep's tasks only ever hit the cache.
fn warm_alone_cache(ex: &Executor, sweep: &Sweep<SystemConfig>, suite: &[Mix], scale: Scale) {
    let geoms: BTreeSet<(usize, usize)> = sweep
        .points()
        .iter()
        .map(|(_, c)| (c.channels, c.ranks))
        .collect();
    let mut benches: Vec<&'static Benchmark> = Vec::new();
    for mix in suite {
        for b in &mix.benchmarks {
            if !benches.iter().any(|have| have.name == b.name) {
                benches.push(b);
            }
        }
    }
    let mut points = Vec::new();
    for &(ch, rk) in &geoms {
        for &b in &benches {
            if cached_alone_ipc(&alone_key(b, ch, rk, scale)).is_none() {
                let key = ScenarioKey::root()
                    .with("bench", b.name)
                    .with("ch", ch.to_string())
                    .with("rk", rk.to_string());
                points.push((key, (b, ch, rk)));
            }
        }
    }
    let warm = Sweep::from_points("alone_ipc", sweep.base_seed(), points);
    let ipcs = ex.map(&warm, |sc| {
        let &(b, ch, rk) = sc.params;
        compute_alone_ipc(b, ch, rk, scale)
    });
    for ((_, (b, ch, rk)), ipc) in warm.points().iter().zip(ipcs) {
        store_alone_ipc(alone_key(b, *ch, *rk, scale), ipc);
    }
}

/// One executed point of a weighted-speedup sweep: a system configuration
/// paired with the mix it runs.
#[derive(Debug, Clone)]
struct WsPoint {
    cfg: SystemConfig,
    mix: Mix,
}

/// A weighted-speedup table: the raw per-mix [`RunSet`] plus the per-config
/// means (the numbers every figure plots).
#[derive(Debug, Clone)]
pub struct WsTable {
    /// Per-`(config, mix)` records (`ws` metric), for emission/inspection.
    pub run: RunSet,
    means: Vec<(ScenarioKey, f64)>,
}

impl WsTable {
    /// Mean weighted speedup of the first config point matching `filters`.
    ///
    /// # Panics
    ///
    /// Panics if no config point matches — a missing point in a figure
    /// binary is a programming error.
    pub fn mean(&self, filters: &[(&str, &str)]) -> f64 {
        self.means
            .iter()
            .find(|(k, _)| k.matches(filters))
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("no ws point matches {filters:?}"))
    }

    /// All per-config means, in sweep order.
    pub fn means(&self) -> &[(ScenarioKey, f64)] {
        &self.means
    }

    /// Writes `BENCH_<sweep>.json` when `HIRA_BENCH_DIR` is set.
    pub fn emit(&self) {
        self.run.emit_if_requested();
    }
}

/// Runs a sweep of system configurations over the mix suite and returns the
/// mean weighted speedup per configuration.
///
/// The sweep is expanded with a `mix` axis (cartesian: every configuration ×
/// every mix), every resulting point is simulated by the engine executor,
/// and the `mix` axis is then averaged away. All parallelism — including the
/// alone-IPC warm-up — goes through the engine; results are bit-identical
/// for any `HIRA_THREADS`.
///
/// # Panics
///
/// Panics if `sweep` is empty or its configurations disagree on core count.
pub fn run_ws(ex: &Executor, sweep: Sweep<SystemConfig>, scale: Scale) -> WsTable {
    assert!(!sweep.is_empty(), "weighted-speedup sweep has no points");
    assert!(
        scale.mixes >= 1,
        "HIRA_MIXES must be >= 1 (a data point needs at least one mix)"
    );
    let cores = sweep.points()[0].1.cores;
    assert!(
        sweep.points().iter().all(|(_, c)| c.cores == cores),
        "all configurations of one sweep must share a core count"
    );
    let suite = mixes(scale.mixes, cores, 0xA11CE);
    warm_alone_cache(ex, &sweep, &suite, scale);

    let full = sweep.expand("mix", |_, cfg| {
        suite
            .iter()
            .map(|m| {
                let point = WsPoint {
                    cfg: cfg.clone().with_insts(scale.insts, scale.warmup),
                    mix: m.clone(),
                };
                (m.id.to_string(), point)
            })
            .collect()
    });
    let run = ex.run(&full, |sc| {
        let WsPoint { cfg, mix } = sc.params;
        let r = System::new(cfg.clone(), mix).run();
        let alone: Vec<f64> = mix
            .benchmarks
            .iter()
            .map(|b| alone_ipc(b, cfg.channels, cfg.ranks, scale))
            .collect();
        vec![metric("ws", r.weighted_speedup(&alone))]
    });
    let means = run.mean_over("mix", "ws");
    WsTable { run, means }
}

/// Mean weighted speedup of a single configuration over the mix suite —
/// a one-point [`run_ws`] sweep.
pub fn mean_ws(base_cfg: &SystemConfig, scale: Scale) -> f64 {
    let mut sweep = Sweep::from_points("mean_ws", hira_engine::DEFAULT_BASE_SEED, Vec::new());
    sweep.push(ScenarioKey::root(), base_cfg.clone());
    run_ws(&Executor::from_env(), sweep, scale).mean(&[])
}

/// The periodic-refresh policies of Fig. 9 (display label, registry
/// handle). The HiRA variants can be ablated through
/// [`periodic_schemes_ablated`].
pub fn periodic_schemes() -> Vec<(&'static str, PolicyHandle)> {
    periodic_schemes_ablated(false)
}

/// [`periodic_schemes`] with refresh-access pairing optionally disabled on
/// every HiRA point (the `--no-refresh-access` ablation of Fig. 9).
pub fn periodic_schemes_ablated(no_refresh_access: bool) -> Vec<(&'static str, PolicyHandle)> {
    let hira = |n: u32| {
        if no_refresh_access {
            policy::hira_custom(
                format!("hira{n}-noRA"),
                hira_core::config::HiraConfig::hira_n(n).without_refresh_access(),
            )
        } else {
            policy::hira(n)
        }
    };
    vec![
        ("Baseline", policy::baseline()),
        ("HiRA-0", hira(0)),
        ("HiRA-2", hira(2)),
        ("HiRA-4", hira(4)),
        ("HiRA-8", hira(8)),
    ]
}

/// The preventive-refresh arrangements of Fig. 12 (PARA ± HiRA), layered
/// over Baseline periodic refresh. `p_th` is resolved per arrangement from
/// the §9.1 analysis (slack-aware).
pub fn preventive_schemes(nrh: u32) -> Vec<(&'static str, PolicyHandle)> {
    let base = policy::baseline();
    vec![
        ("PARA", base.clone().with_para_immediate(pth_for(nrh, 0))),
        ("HiRA-0", base.clone().with_para_hira(pth_for(nrh, 0), 0)),
        ("HiRA-2", base.clone().with_para_hira(pth_for(nrh, 2), 2)),
        ("HiRA-4", base.clone().with_para_hira(pth_for(nrh, 4), 4)),
        ("HiRA-8", base.with_para_hira(pth_for(nrh, 8), 8)),
    ]
}

/// The three-arrangement subset of [`preventive_schemes`] the geometry
/// sweeps plot (Figs. 15/16: PARA, HiRA-2, HiRA-4).
pub fn preventive_schemes_geometry(nrh: u32) -> Vec<(&'static str, PolicyHandle)> {
    preventive_schemes(nrh)
        .into_iter()
        .filter(|(name, _)| matches!(*name, "PARA" | "HiRA-2" | "HiRA-4"))
        .collect()
}

/// The policy axis of a sweep, from `--policy=` CLI arguments: every
/// `--policy=name[,name...]` argument adds registry lookups (label =
/// registry key), and with no such argument every policy in the standard
/// registry is swept. This is how bench binaries select refresh policies —
/// an open, string-keyed axis instead of enum plumbing.
///
/// # Panics
///
/// Panics (with the registered names) when an argument names an unknown
/// policy.
pub fn policy_axis_from_args() -> Vec<(String, PolicyHandle)> {
    let registry = PolicyRegistry::standard();
    let selected: Vec<String> = std::env::args()
        .filter_map(|a| a.strip_prefix("--policy=").map(str::to_owned))
        .flat_map(|list| {
            list.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect::<Vec<_>>()
        })
        .collect();
    if selected.is_empty() {
        return registry
            .handles()
            .map(|h| (h.name().to_owned(), h.clone()))
            .collect();
    }
    selected
        .into_iter()
        .map(|name| {
            let handle = registry.lookup(&name).unwrap_or_else(|| {
                panic!(
                    "unknown --policy `{name}`; registered: {} (plus hira<N>)",
                    registry.names().join(", ")
                )
            });
            (name, handle)
        })
        .collect()
}

/// `p_th` for a RowHammer threshold under the §9.1 analysis, with the slack
/// of the given HiRA-N (0 for plain PARA).
pub fn pth_for(nrh: u32, slack_acts: u32) -> f64 {
    let params = hira_core::security::SecurityParams::paper_defaults(slack_acts);
    hira_core::security::solve_pth(&params, nrh)
}

/// Formats one numeric series row for the harness output.
pub fn print_series(label: &str, xs: &[f64]) {
    let body: Vec<String> = xs.iter().map(|v| format!("{v:>8.4}")).collect();
    println!("{label:<12} {}", body.join(" "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_are_sane() {
        let s = Scale::from_env();
        assert!(s.mixes >= 1);
        assert!(s.insts >= 1_000);
        assert!(s.warmup < s.insts);
    }

    #[test]
    fn scheme_lists_cover_the_paper_configs() {
        assert_eq!(periodic_schemes().len(), 5);
        assert_eq!(preventive_schemes(512).len(), 5);
    }

    #[test]
    fn pth_is_monotone_in_nrh() {
        assert!(pth_for(64, 0) > pth_for(1024, 0));
    }

    fn tiny_scale() -> Scale {
        Scale {
            mixes: 2,
            insts: 2_000,
            warmup: 400,
            rows: 16,
        }
    }

    #[test]
    fn run_ws_means_match_engine_records() {
        let sweep = Sweep::new("ws_smoke").axis(
            "scheme",
            [
                ("NoRefresh", policy::noref()),
                ("Baseline", policy::baseline()),
            ],
            |_, s| SystemConfig::table3(8.0, s.clone()),
        );
        let t = run_ws(&Executor::with_threads(2), sweep, tiny_scale());
        assert_eq!(t.means().len(), 2);
        // The mean over the mix axis really is the average of the records.
        let per_mix: Vec<f64> = t
            .run
            .records
            .iter()
            .filter(|r| r.metric == "ws" && r.key.matches(&[("scheme", "NoRefresh")]))
            .map(|r| r.value)
            .collect();
        assert_eq!(per_mix.len(), 2);
        let mean = per_mix.iter().sum::<f64>() / per_mix.len() as f64;
        assert!((t.mean(&[("scheme", "NoRefresh")]) - mean).abs() < 1e-12);
        // Refresh can only cost performance relative to the ideal system.
        assert!(t.mean(&[("scheme", "Baseline")]) <= t.mean(&[("scheme", "NoRefresh")]));
    }

    #[test]
    fn policy_handles_carry_their_pth_in_the_identity() {
        let a = preventive_schemes(64);
        let b = preventive_schemes(1024);
        // Same label, different p_th: the handles must not compare equal,
        // or a sweep would silently collapse distinct configurations.
        assert_ne!(a[0].1, b[0].1);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn ablated_schemes_rename_their_hira_points() {
        let plain = periodic_schemes();
        let ablated = periodic_schemes_ablated(true);
        assert_eq!(plain[1].1.name(), "hira0");
        assert_eq!(ablated[1].1.name(), "hira0-noRA");
        assert_eq!(plain[0].1, ablated[0].1, "Baseline is not ablatable");
    }

    #[test]
    fn mean_ws_agrees_with_single_point_sweep() {
        let scale = tiny_scale();
        let cfg = SystemConfig::table3(8.0, policy::baseline());
        let a = mean_ws(&cfg, scale);
        let b = mean_ws(&cfg, scale);
        assert_eq!(a, b, "mean_ws must be deterministic");
    }
}
