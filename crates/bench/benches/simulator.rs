//! Criterion benches for the cycle simulator: steady-state simulation
//! throughput under each refresh policy (also an ablation of the refresh
//! machinery's bookkeeping cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hira_sim::config::SystemConfig;
use hira_sim::policy;
use hira_sim::system::System;
use hira_workload::mix_with_seed;

fn bench_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/2k_insts_8core");
    g.sample_size(10);
    for (name, handle) in [
        ("no_refresh", policy::noref()),
        ("baseline_ref", policy::baseline()),
        ("refpb", policy::refpb()),
        ("raidr", policy::raidr()),
        ("hira4", policy::hira(4)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &handle, |b, handle| {
            let wl = mix_with_seed(0, 1);
            b.iter(|| {
                let cfg = SystemConfig::table3(32.0, handle.clone())
                    .with_insts(2_000, 200)
                    .with_workload(wl.clone());
                System::new(cfg).run()
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_schemes
}
criterion_main!(benches);
