//! Criterion benches for the behavioural chip model: raw command
//! throughput, HiRA operations, and the coverage probe that Algorithm 1
//! executes millions of times at paper scale.

use criterion::{criterion_group, criterion_main, Criterion};
use hira_dram::addr::{BankId, RowId};
use hira_dram::command::DramCommand;
use hira_dram::timing::HiraTimings;
use hira_dram::{DramModule, ModuleSpec};
use std::hint::black_box;

fn bench_act_pre(c: &mut Criterion) {
    c.bench_function("chip/nominal_act_pre_cycle", |b| {
        let mut m = DramModule::new(ModuleSpec::sk_hynix_4gb(1));
        let t = *m.timing();
        b.iter(|| {
            let now = m.now();
            m.execute(DramCommand::Act { bank: BankId(0), row: RowId(100) }, now);
            m.execute(DramCommand::Pre { bank: BankId(0) }, now + t.t_ras);
            m.wait(t.t_rp);
        });
    });
}

fn bench_hira_op(c: &mut Criterion) {
    c.bench_function("chip/hira_operation", |b| {
        let mut m = DramModule::new(ModuleSpec::sk_hynix_4gb(2));
        let partner = m.isolation().find_partner(RowId(10)).unwrap();
        b.iter(|| m.hira(BankId(0), RowId(10), black_box(partner), HiraTimings::nominal()));
    });
}

fn bench_coverage_probe(c: &mut Criterion) {
    c.bench_function("chip/coverage_pair_probe", |b| {
        let mut mc = hira_softmc::SoftMc::new(ModuleSpec::c0());
        b.iter(|| {
            hira_characterize::coverage::pair_works(
                &mut mc,
                BankId(0),
                RowId(7),
                black_box(RowId(9 * 512)),
                HiraTimings::nominal(),
            )
        });
    });
}

fn bench_hammer(c: &mut Criterion) {
    c.bench_function("chip/hammer_pair_10k", |b| {
        let mut m = DramModule::new(ModuleSpec::sk_hynix_4gb(3));
        b.iter(|| m.hammer_pair(BankId(0), RowId(99), RowId(101), black_box(10_000)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_act_pre, bench_hira_op, bench_coverage_probe, bench_hammer
}
criterion_main!(benches);
