//! Criterion benches + ablations for HiRA-MC's decision structures: the
//! Case-1 finder query (which must beat tRP = 14.25 ns in hardware; here we
//! measure the model), the deadline watchdog, and the security solver.

use criterion::{criterion_group, criterion_main, Criterion};
use hira_core::config::HiraConfig;
use hira_core::finder::{HiraMc, HiraMcParams};
use hira_core::security::{solve_pth, SecurityParams};
use hira_dram::addr::{BankId, RowId};
use std::hint::black_box;

fn loaded_mc(n: u32) -> HiraMc {
    let mut mc = HiraMc::new(HiraMcParams::table3(64 * 1024, HiraConfig::hira_n(n)));
    mc.tick(400.0); // a few queued requests
    mc
}

fn bench_case1(c: &mut Criterion) {
    c.bench_function("mc/case1_demand_act_query", |b| {
        let mut mc = loaded_mc(8);
        let mut row = 0u32;
        b.iter(|| {
            row = (row + 4097) % 65536;
            black_box(mc.on_demand_act(500.0, BankId(0), RowId(row)))
        });
    });
}

fn bench_case2(c: &mut Criterion) {
    c.bench_function("mc/case2_deadline_cycle", |b| {
        let mut mc = loaded_mc(0);
        let mut now = 1_000.0;
        b.iter(|| {
            mc.tick(now);
            while let Some(w) = mc.deadline_work(now) {
                black_box(w);
            }
            now += 100.0;
        });
    });
}

fn bench_security_solver(c: &mut Criterion) {
    c.bench_function("security/solve_pth_nrh128", |b| {
        let p = SecurityParams::paper_defaults(4);
        b.iter(|| solve_pth(&p, black_box(128)));
    });
}

fn bench_spt_modes(c: &mut Criterion) {
    // Ablation: probabilistic SPT vs full isolation-map SPT lookup cost.
    let spt_p = hira_core::spt::Spt::probabilistic(1, 0.32, 512);
    let map = hira_dram::isolation::IsolationMap::new(1, 64 * 1024, 512, 0.32, 0.02);
    let spt_m = hira_core::spt::Spt::from_map(map);
    c.bench_function("mc/spt_probabilistic_lookup", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2011);
            black_box(spt_p.compatible(RowId(i % 65536), RowId((i * 7) % 65536)))
        });
    });
    c.bench_function("mc/spt_map_lookup", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2011);
            black_box(spt_m.compatible(RowId(i % 32768), RowId((i * 7) % 32768)))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_case1, bench_case2, bench_security_solver, bench_spt_modes
}
criterion_main!(benches);
