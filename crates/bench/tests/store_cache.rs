//! End-to-end contract of the sweep cache at the bench API surface, with
//! real system configurations: caching changes nothing, warm stores run
//! nothing, and tasks measuring different metric sets never share keys.

use hira_bench::{
    run_ws_as_configured_cached, run_ws_with_stats_cached, CacheSpec, ProbeSpec, Scale,
};
use hira_engine::{Executor, Sweep};
use hira_sim::config::SystemConfig;
use hira_sim::policy;

fn tiny_scale() -> Scale {
    Scale {
        mixes: 1,
        insts: 2_000,
        warmup: 400,
        rows: 16,
    }
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hira-store-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mk_sweep(name: &str) -> Sweep<SystemConfig> {
    Sweep::new(name).axis(
        "policy",
        [
            ("noref", policy::noref()),
            ("baseline", policy::baseline()),
            ("hira4", policy::hira(4)),
        ],
        |_, p| SystemConfig::table3(8.0, p.clone()),
    )
}

fn shard_lines(dir: &std::path::Path, sweep: &str) -> usize {
    let body = std::fs::read_to_string(dir.join(format!("{sweep}.jsonl")))
        .unwrap_or_else(|e| panic!("shard for `{sweep}` missing: {e}"));
    body.lines().count()
}

/// Cached and uncached runs agree bit-for-bit, whatever the executor width
/// and however hits and misses interleave across passes.
#[test]
fn cached_runs_are_bit_identical_across_thread_counts() {
    let dir = scratch("threads");
    let scale = tiny_scale();
    let probes = ProbeSpec::default();
    let reference = run_ws_as_configured_cached(
        &Executor::with_threads(1),
        mk_sweep("it_threads"),
        scale,
        &probes,
        &CacheSpec::disabled(),
    );
    // Cold pass at 8 threads populates the store.
    let spec = CacheSpec::at(&dir);
    let cold = run_ws_as_configured_cached(
        &Executor::with_threads(8),
        mk_sweep("it_threads"),
        scale,
        &probes,
        &spec,
    );
    assert_eq!(reference.run.canonical_json(), cold.run.canonical_json());
    // Warm pass at 8 threads replays everything, wall times included.
    let warm = run_ws_as_configured_cached(
        &Executor::with_threads(8),
        mk_sweep("it_threads"),
        scale,
        &probes,
        &spec,
    );
    assert_eq!(cold.run.bench_json(), warm.run.bench_json());
    assert_eq!(
        shard_lines(&dir, "it_threads"),
        3,
        "the warm pass must not have appended anything"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `ws` and `ws+stats` tasks measure different metric sets over the
/// same configurations; the task tag in the canonical string keeps them
/// from replaying each other's records.
#[test]
fn ws_and_ws_with_stats_never_share_cache_keys() {
    let dir = scratch("tasks");
    let scale = tiny_scale();
    let probes = ProbeSpec::default();
    let spec = CacheSpec::at(&dir);
    let plain = run_ws_as_configured_cached(
        &Executor::with_threads(2),
        mk_sweep("it_tasks"),
        scale,
        &probes,
        &spec,
    );
    assert_eq!(shard_lines(&dir, "it_tasks"), 3);
    // Identical configurations, richer task: every point must MISS — a hit
    // would replay a record set without the channel metrics.
    let stats = run_ws_with_stats_cached(
        &Executor::with_threads(2),
        mk_sweep("it_tasks"),
        scale,
        &probes,
        &spec,
    );
    assert_eq!(
        shard_lines(&dir, "it_tasks"),
        6,
        "the ws+stats pass must have appended its own three points"
    );
    assert!(stats.run.records.iter().any(|r| r.metric == "read_lat"));
    assert!(
        plain.run.records.iter().all(|r| r.metric == "ws"),
        "the plain task stays plain"
    );
    // And the richer records really were cached under their own keys.
    let warm = run_ws_with_stats_cached(
        &Executor::with_threads(2),
        mk_sweep("it_tasks"),
        scale,
        &probes,
        &spec,
    );
    assert_eq!(stats.run.bench_json(), warm.run.bench_json());
    assert_eq!(shard_lines(&dir, "it_tasks"), 6);
    let _ = std::fs::remove_dir_all(&dir);
}
