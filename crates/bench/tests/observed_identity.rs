//! The observability contract at the bench API surface: with tracing,
//! metrics and progress fully attached, canonical results are
//! byte-identical to an unobserved run — at any thread count, and whether
//! points are computed or replayed from the cache.

use hira_bench::{run_ws_observed, CacheSpec, ObsSpec, ProbeSpec, Scale, SLOW_POINT_FACTOR};
use hira_engine::{Executor, Sweep};
use hira_obs::parse_prometheus;
use hira_sim::config::SystemConfig;
use hira_sim::policy;

fn tiny_scale() -> Scale {
    Scale {
        mixes: 2,
        insts: 2_000,
        warmup: 400,
        rows: 16,
    }
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hira-obs-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mk_sweep(name: &str) -> Sweep<SystemConfig> {
    Sweep::new(name).axis(
        "policy",
        [
            ("noref", policy::noref()),
            ("baseline", policy::baseline()),
            ("hira4", policy::hira(4)),
        ],
        |_, p| SystemConfig::table3(8.0, p.clone()),
    )
}

/// One JSONL line: every `point` event carries the full phase split and
/// every line is an object with `t_us`/`level`/`event`.
fn check_trace_line(line: &str) {
    let v = hira_engine::json::parse(line).unwrap_or_else(|e| panic!("bad trace line {line}: {e}"));
    assert!(v.get("t_us").and_then(|t| t.as_u64()).is_some(), "{line}");
    assert!(v.get("level").and_then(|l| l.as_str()).is_some(), "{line}");
    assert!(v.get("event").and_then(|e| e.as_str()).is_some(), "{line}");
    if v.get("event").and_then(|e| e.as_str()) == Some("point") {
        for f in [
            "point",
            "queue_wait_ms",
            "warmup_ms",
            "measure_ms",
            "serialize_ms",
            "wall_ms",
        ] {
            assert!(v.get(f).is_some(), "point event lacks `{f}`: {line}");
        }
    }
}

#[test]
fn fully_observed_runs_are_byte_identical_to_unobserved() {
    let dir = scratch("identity");
    let scale = tiny_scale();
    let probes = ProbeSpec::default();
    let reference = run_ws_observed(
        &Executor::with_threads(1),
        mk_sweep("obs_identity"),
        scale,
        &probes,
        &CacheSpec::disabled(),
        &ObsSpec::disabled(),
    );
    let canonical = reference.run.canonical_json();

    // Cold at 1 thread, then cold+warm at 8 threads against one store —
    // each pass fully observed (trace + metrics + progress) into its own
    // output directory.
    let store = dir.join("store");
    for (pass, threads, cache) in [
        ("cold1", 1, CacheSpec::disabled()),
        ("cold8", 8, CacheSpec::at(&store)),
        ("warm8", 8, CacheSpec::at(&store)),
    ] {
        let out = dir.join(pass);
        let obs = ObsSpec::disabled()
            .with_trace(&out)
            .with_metrics(&out)
            .with_progress();
        let observed = run_ws_observed(
            &Executor::with_threads(threads),
            mk_sweep("obs_identity"),
            scale,
            &probes,
            &cache,
            &obs,
        );
        assert_eq!(
            canonical,
            observed.run.canonical_json(),
            "{pass}: observation must not perturb canonical results"
        );

        // The trace is real JSONL with one point event per point.
        let trace = std::fs::read_to_string(out.join("obs_identity.trace.jsonl"))
            .unwrap_or_else(|e| panic!("{pass}: trace missing: {e}"));
        let lines: Vec<&str> = trace.lines().collect();
        for line in &lines {
            check_trace_line(line);
        }
        let points = lines
            .iter()
            .filter(|l| l.contains("\"event\":\"point\""))
            .count();
        assert_eq!(
            points, 6,
            "{pass}: one point event per sweep point (3 policies x 2 mixes)"
        );
        assert!(trace.contains("\"event\":\"sweep_done\""), "{pass}");

        // The metrics dump parses as strict Prometheus text and accounts
        // for every point.
        let prom = std::fs::read_to_string(out.join("obs_identity.prom"))
            .unwrap_or_else(|e| panic!("{pass}: metrics missing: {e}"));
        let samples = parse_prometheus(&prom).unwrap_or_else(|e| panic!("{pass}: {e}"));
        let value = |name: &str, label: Option<(&str, &str)>| -> f64 {
            samples
                .iter()
                .find(|s| {
                    s.name == name
                        && label
                            .is_none_or(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
                })
                .unwrap_or_else(|| panic!("{pass}: no sample {name}"))
                .value
        };
        let computed = value("hira_points_total", Some(("result", "computed")));
        let replayed = value("hira_points_total", Some(("result", "replayed")));
        assert_eq!(computed + replayed, 6.0, "{pass}");
        match pass {
            "warm8" => {
                assert_eq!(replayed, 6.0, "{pass}: warm pass replays everything");
                assert_eq!(value("hira_cache_hits_total", None), 6.0, "{pass}");
            }
            "cold8" => {
                assert_eq!(value("hira_cache_misses_total", None), 6.0, "{pass}");
                assert_eq!(value("hira_cache_appended_total", None), 6.0, "{pass}");
            }
            _ => assert_eq!(computed, 6.0, "{pass}"),
        }
        assert!(
            value("hira_kernel_events_total", None) > 0.0,
            "{pass}: kernel telemetry reaches the metrics"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_point_report_flags_outliers_against_the_median() {
    use hira_engine::{RunRecord, RunSet, ScenarioKey};
    let rec = |tag: &str, wall: f64| RunRecord {
        key: ScenarioKey::root().with("p", tag),
        metric: "ws".to_owned(),
        value: 1.0,
        wall_ms: wall,
        telemetry: None,
    };
    let run = RunSet {
        sweep: "slow".to_owned(),
        threads: 1,
        wall_ms: 117.0,
        records: vec![rec("a", 1.0), rec("b", 2.0), rec("c", 3.0), rec("d", 100.0)],
    };
    let (median, slow) = hira_bench::slow_points(&run, SLOW_POINT_FACTOR);
    assert_eq!(median, 2.5);
    assert_eq!(slow.len(), 1);
    assert_eq!(slow[0].0.to_string(), "p=d");
    assert_eq!(slow[0].1, 100.0);
}
