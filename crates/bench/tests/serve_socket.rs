//! The serve binary's Unix-socket transport under adversity: a client
//! that disconnects mid-stream must not take the server down, and the
//! next client gets a fully working session (stats, Prometheus metrics,
//! graceful shutdown).

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

fn connect(path: &std::path::Path) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => {
                s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                return s;
            }
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "serve socket never came up at {}: {e}",
                    path.display()
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn field(event: &str, key: &str) -> String {
    let needle = format!("\"{key}\":");
    let at = event
        .find(&needle)
        .unwrap_or_else(|| panic!("event {event} has no `{key}` field"))
        + needle.len();
    let rest = &event[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].to_owned()
}

#[test]
fn socket_server_survives_mid_stream_disconnect() {
    let tmp = std::env::temp_dir().join(format!("hira-serve-sock-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let socket = tmp.join("serve.sock");

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_serve"))
        .arg(format!("--socket={}", socket.display()))
        .env("HIRA_MIXES", "2")
        .env("HIRA_INSTS", "2000")
        .env("HIRA_ROWS", "16")
        .env("HIRA_THREADS", "2")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve");

    // Client 1: request a sweep, read only the `accepted` event, then
    // vanish while records and progress are still streaming.
    {
        let mut stream = connect(&socket);
        writeln!(
            stream,
            "{{\"op\":\"sweep\",\"id\":\"gone\",\"policies\":[\"noref\",\"baseline\"],\
             \"workloads\":[\"stream\"]}}"
        )
        .unwrap();
        let mut first = String::new();
        BufReader::new(&stream).read_line(&mut first).unwrap();
        assert_eq!(field(&first, "event"), "\"accepted\"");
        // Drop: mid-stream disconnect. The server's writes hit a broken
        // pipe and must be swallowed.
    }

    // Client 2: a full session on the same server.
    let mut stream = connect(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut request = |line: &str| -> String {
        writeln!(stream, "{line}").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(!reply.is_empty(), "server hung up early");
        reply
    };

    let stats = request("{\"op\":\"stats\"}");
    assert_eq!(field(&stats, "event"), "\"stats\"");
    // The abandoned sweep still ran to completion on the server side.
    assert_eq!(field(&stats, "sweeps"), "1");
    assert_eq!(field(&stats, "sweeps_accepted"), "1");
    assert_eq!(field(&stats, "points_streamed"), "2");

    let metrics = request("{\"op\":\"metrics\"}");
    assert_eq!(field(&metrics, "event"), "\"metrics\"");
    let text = hira_engine::json::parse(&metrics)
        .unwrap()
        .get("text")
        .and_then(|t| t.as_str().map(str::to_owned))
        .expect("metrics event carries text");
    let samples = hira_obs::parse_prometheus(&text).expect("strict Prometheus text");
    let total: f64 = samples
        .iter()
        .filter(|s| s.name == "hira_points_total")
        .map(|s| s.value)
        .sum();
    assert_eq!(total, 2.0);

    let bye = request("{\"op\":\"shutdown\"}");
    assert_eq!(field(&bye, "event"), "\"bye\"");

    let status = child.wait().expect("serve exits after shutdown");
    assert!(status.success());
    let _ = std::fs::remove_dir_all(&tmp);
}
