//! The Refresh Table (§5, Fig. 7 component 3; sized in §6).
//!
//! Stores every generated-but-not-yet-performed refresh request with its
//! deadline, target bank and type. Sized for the worst case at
//! `tRefSlack = 4·tRC`: 4 periodic requests per rank plus 4 preventive
//! requests per bank (68 entries for a 16-bank rank).

use hira_dram::addr::{BankId, RowId};

/// The type of a queued refresh request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshKind {
    /// Periodic (data-retention) refresh; the row is chosen at issue time
    /// from the RefPtr Table.
    Periodic,
    /// RowHammer-preventive refresh of a specific victim row (the row lives
    /// in the PR-FIFO; the entry carries it for convenience).
    Preventive,
}

/// One Refresh Table entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshEntry {
    /// Absolute deadline (ns) by which the refresh must be performed.
    pub deadline: f64,
    /// Target bank.
    pub bank: BankId,
    /// Periodic or preventive.
    pub kind: RefreshKind,
    /// Victim row for preventive entries.
    pub victim: Option<RowId>,
}

/// A fixed-capacity refresh request table.
#[derive(Debug, Clone)]
pub struct RefreshTable {
    entries: Vec<RefreshEntry>,
    capacity: usize,
}

impl RefreshTable {
    /// The paper's sizing for a 16-bank rank at `tRefSlack = 4·tRC`.
    pub const PAPER_CAPACITY: usize = 68;

    /// An empty table with the given capacity.
    pub fn new(capacity: usize) -> Self {
        RefreshTable {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when the table cannot accept another request.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Inserts a request. Returns `false` (dropping nothing) when full — the
    /// caller must then force-serve a request first.
    #[must_use]
    pub fn insert(&mut self, entry: RefreshEntry) -> bool {
        if self.is_full() {
            return false;
        }
        self.entries.push(entry);
        true
    }

    /// The queued entry with the earliest deadline, if any.
    pub fn earliest(&self) -> Option<&RefreshEntry> {
        self.entries
            .iter()
            .min_by(|a, b| a.deadline.total_cmp(&b.deadline))
    }

    /// The earliest-deadline entry targeting `bank` (the Case-1 search order:
    /// iterate in increasing deadline, §5.1.3).
    pub fn earliest_for_bank(&self, bank: BankId) -> Option<&RefreshEntry> {
        self.entries
            .iter()
            .filter(|e| e.bank == bank)
            .min_by(|a, b| a.deadline.total_cmp(&b.deadline))
    }

    /// Removes and returns the entry equal to `entry` (after it is served).
    pub fn remove(&mut self, entry: &RefreshEntry) -> Option<RefreshEntry> {
        let idx = self.entries.iter().position(|e| e == entry)?;
        Some(self.entries.swap_remove(idx))
    }

    /// Removes and returns the earliest-deadline entry whose deadline falls
    /// at or before `horizon` (the Case-2 deadline watch).
    pub fn pop_due(&mut self, horizon: f64) -> Option<RefreshEntry> {
        let idx = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.deadline <= horizon)
            .min_by(|(_, a), (_, b)| a.deadline.total_cmp(&b.deadline))
            .map(|(i, _)| i)?;
        Some(self.entries.swap_remove(idx))
    }

    /// Removes and returns the earliest entry for `bank`, regardless of
    /// deadline (used when pairing a second refresh into a HiRA op).
    pub fn pop_for_bank(&mut self, bank: BankId) -> Option<RefreshEntry> {
        let idx = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.bank == bank)
            .min_by(|(_, a), (_, b)| a.deadline.total_cmp(&b.deadline))
            .map(|(i, _)| i)?;
        Some(self.entries.swap_remove(idx))
    }

    /// Iterates entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &RefreshEntry> {
        self.entries.iter()
    }
}

impl Default for RefreshTable {
    fn default() -> Self {
        Self::new(Self::PAPER_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(deadline: f64, bank: u16, kind: RefreshKind) -> RefreshEntry {
        RefreshEntry {
            deadline,
            bank: BankId(bank),
            kind,
            victim: None,
        }
    }

    #[test]
    fn insert_and_capacity() {
        let mut t = RefreshTable::new(2);
        assert!(t.insert(entry(10.0, 0, RefreshKind::Periodic)));
        assert!(t.insert(entry(20.0, 1, RefreshKind::Preventive)));
        assert!(t.is_full());
        assert!(!t.insert(entry(30.0, 2, RefreshKind::Periodic)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn earliest_respects_deadlines() {
        let mut t = RefreshTable::default();
        let _ = t.insert(entry(30.0, 0, RefreshKind::Periodic));
        let _ = t.insert(entry(10.0, 1, RefreshKind::Preventive));
        let _ = t.insert(entry(20.0, 0, RefreshKind::Periodic));
        assert_eq!(t.earliest().unwrap().deadline, 10.0);
        assert_eq!(t.earliest_for_bank(BankId(0)).unwrap().deadline, 20.0);
        assert!(t.earliest_for_bank(BankId(9)).is_none());
    }

    #[test]
    fn pop_due_returns_only_expiring_entries() {
        let mut t = RefreshTable::default();
        let _ = t.insert(entry(100.0, 0, RefreshKind::Periodic));
        let _ = t.insert(entry(50.0, 1, RefreshKind::Periodic));
        assert!(t.pop_due(40.0).is_none());
        let e = t.pop_due(60.0).unwrap();
        assert_eq!(e.deadline, 50.0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_specific_entry() {
        let mut t = RefreshTable::default();
        let e = entry(10.0, 3, RefreshKind::Preventive);
        let _ = t.insert(e);
        assert_eq!(t.remove(&e), Some(e));
        assert!(t.remove(&e).is_none());
    }

    #[test]
    fn pop_for_bank_picks_earliest_in_bank() {
        let mut t = RefreshTable::default();
        let _ = t.insert(entry(30.0, 2, RefreshKind::Periodic));
        let _ = t.insert(entry(10.0, 2, RefreshKind::Periodic));
        let _ = t.insert(entry(5.0, 1, RefreshKind::Periodic));
        assert_eq!(t.pop_for_bank(BankId(2)).unwrap().deadline, 10.0);
    }

    #[test]
    fn paper_capacity_is_68() {
        assert_eq!(RefreshTable::default().capacity, 68);
    }
}
