//! §6: hardware complexity of HiRA-MC (Table 2).
//!
//! The paper models the four SRAM structures with CACTI 7.0 at 22 nm. CACTI
//! is a closed C++ tool; we substitute a small analytic SRAM macro model —
//! bit-cell array area plus periphery (decoder/sense/IO) overhead, and a
//! `c0 + c1·√bits` access-time term — with constants calibrated once against
//! the Table 2 data points. The §6.2 latency composition (68 pipelined
//! Refresh-Table+SPT iterations inside one `tRP`, plus one RefPtr access) is
//! reproduced arithmetically.

/// Analytic SRAM macro model at a given technology node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramModel {
    /// Area of one bit cell in mm² (22 nm high-density SRAM ≈ 0.092 µm²
    /// times an array-efficiency factor).
    pub bit_area_mm2: f64,
    /// Fixed periphery area per macro in mm² (decoders, sense amps, IO).
    pub periphery_mm2: f64,
    /// Fixed access-time component in ns.
    pub access_base_ns: f64,
    /// Wire/decode access-time slope in ns per √bit.
    pub access_slope_ns: f64,
}

impl SramModel {
    /// Constants calibrated against the paper's CACTI 7.0 @ 22 nm numbers.
    pub fn cacti_22nm() -> Self {
        SramModel {
            bit_area_mm2: 3.2e-7,
            periphery_mm2: 2.2e-5,
            access_base_ns: 0.055,
            access_slope_ns: 4.5e-4,
        }
    }

    /// Macro area in mm² for a structure holding `bits`.
    pub fn area_mm2(&self, bits: u64) -> f64 {
        self.periphery_mm2 + self.bit_area_mm2 * bits as f64
    }

    /// Access latency in ns for a structure holding `bits`.
    pub fn access_ns(&self, bits: u64) -> f64 {
        self.access_base_ns + self.access_slope_ns * (bits as f64).sqrt()
    }
}

/// One HiRA-MC structure with its Table 2 accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureReport {
    /// Structure name as in Table 2.
    pub name: &'static str,
    /// Storage bits per rank.
    pub bits: u64,
    /// Area in mm² per rank.
    pub area_mm2: f64,
    /// Access latency in ns.
    pub access_ns: f64,
}

/// The full Table 2 evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    /// Per-structure rows of Table 2.
    pub structures: Vec<StructureReport>,
    /// Total area per rank in mm².
    pub total_mm2: f64,
    /// Fraction of a 22 nm Intel processor die (177 mm², ref \[172\]).
    pub die_fraction: f64,
    /// §6.2 worst-case search latency in ns.
    pub worst_case_search_ns: f64,
}

/// Reference die area of the 22 nm comparison processor (Core i7-5960X).
pub const REFERENCE_DIE_MM2: f64 = 400.0;

/// Sizing of the HiRA-MC structures (per rank), as derived in §6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructureSizing {
    /// Refresh Table entries (68 = 4 periodic + 64 preventive at 4·tRC).
    pub refresh_table_entries: u64,
    /// Bits per Refresh Table entry (10 deadline + 4 bank + 2 type).
    pub refresh_table_entry_bits: u64,
    /// RefPtr entries (128 subarrays × 16 banks).
    pub refptr_entries: u64,
    /// Bits per RefPtr entry (10-bit row pointer).
    pub refptr_entry_bits: u64,
    /// PR-FIFO entries (4 per bank × 16 banks).
    pub prfifo_entries: u64,
    /// Bits per PR-FIFO entry (17-bit row + 7-bit subarray id).
    pub prfifo_entry_bits: u64,
    /// SPT entries (one per subarray).
    pub spt_entries: u64,
    /// Bits per SPT entry (compact 40-bit isolated-group descriptor).
    pub spt_entry_bits: u64,
}

impl Default for StructureSizing {
    fn default() -> Self {
        StructureSizing {
            refresh_table_entries: 68,
            refresh_table_entry_bits: 16,
            refptr_entries: 2048,
            refptr_entry_bits: 10,
            prfifo_entries: 64,
            prfifo_entry_bits: 12,
            spt_entries: 128,
            spt_entry_bits: 42,
        }
    }
}

/// Number of Refresh-Table/SPT iterations of the worst-case Case-1 search
/// (§6.2: one per Refresh Table entry).
pub const SEARCH_ITERATIONS: u64 = 68;

/// Evaluates Table 2 for the given model and sizing.
pub fn table2(model: &SramModel, sizing: &StructureSizing) -> AreaReport {
    let entries = [
        (
            "Refresh Table",
            sizing.refresh_table_entries * sizing.refresh_table_entry_bits,
        ),
        (
            "RefPtr Table",
            sizing.refptr_entries * sizing.refptr_entry_bits,
        ),
        ("PR-FIFO", sizing.prfifo_entries * sizing.prfifo_entry_bits),
        (
            "Subarray Pairs Table (SPT)",
            sizing.spt_entries * sizing.spt_entry_bits,
        ),
    ];
    let structures: Vec<StructureReport> = entries
        .iter()
        .map(|&(name, bits)| StructureReport {
            name,
            bits,
            area_mm2: model.area_mm2(bits),
            access_ns: model.access_ns(bits),
        })
        .collect();
    let total_mm2 = structures.iter().map(|s| s.area_mm2).sum();

    // §6.2: the Refresh Table and SPT are walked 68 times in a pipeline whose
    // stage time is the slower of the two accesses; a hit then costs one
    // RefPtr (periodic) or PR-FIFO (preventive) access — take the larger.
    let rt = structures[0].access_ns;
    let spt = structures[3].access_ns;
    let refptr = structures[1].access_ns;
    let stage = rt.max(spt);
    let worst_case_search_ns = stage * SEARCH_ITERATIONS as f64 + refptr;

    AreaReport {
        total_mm2,
        die_fraction: total_mm2 / REFERENCE_DIE_MM2,
        worst_case_search_ns,
        structures,
    }
}

/// Convenience: the paper-default Table 2.
pub fn table2_default() -> AreaReport {
    table2(&SramModel::cacti_22nm(), &StructureSizing::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_structure_areas_track_table2() {
        let r = table2_default();
        let by_name = |n: &str| r.structures.iter().find(|s| s.name == n).unwrap();
        // Table 2: Refresh Table 0.00031, RefPtr 0.00683, PR-FIFO 0.00029,
        // SPT 0.00180 mm². Accept ±50% — the shape (ordering and magnitude)
        // is what the analytic substitution must preserve.
        let rt = by_name("Refresh Table").area_mm2;
        let rp = by_name("RefPtr Table").area_mm2;
        let pf = by_name("PR-FIFO").area_mm2;
        let spt = by_name("Subarray Pairs Table (SPT)").area_mm2;
        assert!((0.00015..0.0006).contains(&rt), "refresh table {rt}");
        assert!((0.004..0.010).contains(&rp), "refptr {rp}");
        assert!((0.00015..0.0006).contains(&pf), "pr-fifo {pf}");
        assert!((0.0009..0.0036).contains(&spt), "spt {spt}");
        assert!(rp > spt && spt > rt, "ordering violated");
    }

    #[test]
    fn total_area_is_tiny_like_the_paper() {
        // Table 2 total: 0.00923 mm², 0.0023% of the reference die.
        let r = table2_default();
        assert!(
            (0.006..0.013).contains(&r.total_mm2),
            "total {}",
            r.total_mm2
        );
        assert!(r.die_fraction < 1e-4, "fraction {}", r.die_fraction);
    }

    #[test]
    fn worst_case_search_fits_in_trp() {
        // §6.2: 6.31 ns worst case, well under tRP = 14.25 ns.
        let r = table2_default();
        assert!(
            (5.0..9.0).contains(&r.worst_case_search_ns),
            "search {} ns",
            r.worst_case_search_ns
        );
        assert!(r.worst_case_search_ns < 14.25);
    }

    #[test]
    fn access_latency_grows_with_bits() {
        let m = SramModel::cacti_22nm();
        assert!(m.access_ns(20_480) > m.access_ns(1_088));
        assert!(m.area_mm2(20_480) > m.area_mm2(1_088));
    }

    #[test]
    fn per_structure_latencies_are_sub_ns() {
        // Table 2: 0.07-0.12 ns per access.
        for s in table2_default().structures {
            assert!(s.access_ns < 0.3, "{} latency {}", s.name, s.access_ns);
        }
    }
}
