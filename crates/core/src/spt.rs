//! The Subarray Pairs Table (§5.1.4).
//!
//! The memory controller must know whether two rows can be HiRA-activated
//! concurrently. The paper proposes learning the isolation structure either
//! by one-time reverse engineering (running §4.2's coverage test) or from
//! manufacturer-provided mode status registers. The SPT caches that
//! knowledge on-chip.
//!
//! Two fidelity levels are provided:
//!
//! * [`Spt::from_map`] — "MSR" mode: the full row-pair predicate (what a
//!   manufacturer could expose); exact.
//! * [`Spt::probabilistic`] — a synthetic predicate with a given
//!   compatibility fraction, for simulator configurations whose geometry has
//!   no characterized module (e.g. projected 128 Gb chips). The paper's
//!   evaluation assumes exactly this: "a refresh to a DRAM row can be served
//!   concurrently with a refresh or an access to 32 % of the rows within the
//!   same DRAM bank" (§7).

use hira_dram::addr::RowId;
use hira_dram::isolation::IsolationMap;

/// The controller's isolation knowledge.
#[derive(Debug, Clone)]
pub struct Spt {
    source: Source,
}

#[derive(Debug, Clone)]
enum Source {
    Map(IsolationMap),
    Probabilistic {
        seed: u64,
        fraction: f64,
        rows_per_subarray: u32,
    },
}

impl Spt {
    /// Builds the SPT from a characterized module's isolation map.
    pub fn from_map(map: IsolationMap) -> Self {
        Spt {
            source: Source::Map(map),
        }
    }

    /// Builds a synthetic SPT where a row pair is compatible with the given
    /// probability (§7's 32 % evaluation assumption), except within the same
    /// or adjacent subarrays.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1)`.
    pub fn probabilistic(seed: u64, fraction: f64, rows_per_subarray: u32) -> Self {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0,1)"
        );
        assert!(rows_per_subarray > 0);
        Spt {
            source: Source::Probabilistic {
                seed,
                fraction,
                rows_per_subarray,
            },
        }
    }

    /// Whether `a` and `b` can be concurrently activated by HiRA.
    pub fn compatible(&self, a: RowId, b: RowId) -> bool {
        match &self.source {
            Source::Map(map) => map.isolated(a, b),
            Source::Probabilistic {
                seed,
                fraction,
                rows_per_subarray,
            } => {
                let sa = a.0 / rows_per_subarray;
                let sb = b.0 / rows_per_subarray;
                if sa.abs_diff(sb) <= 1 {
                    return false;
                }
                let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
                hira_dram::rng::unit_at(&[*seed, 0x5054, u64::from(lo), u64::from(hi)]) < *fraction
            }
        }
    }

    /// The average compatibility fraction the SPT encodes (diagnostics).
    pub fn nominal_fraction(&self) -> f64 {
        match &self.source {
            Source::Map(map) => map.target(),
            Source::Probabilistic { fraction, .. } => *fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_mode_mirrors_the_module() {
        let map = IsolationMap::new(9, 32 * 1024, 512, 0.32, 0.02);
        let spt = Spt::from_map(map.clone());
        for i in 0..500u32 {
            let a = RowId(i * 37 % 32768);
            let b = RowId(i * 8191 % 32768);
            assert_eq!(spt.compatible(a, b), map.isolated(a, b));
        }
    }

    #[test]
    fn probabilistic_mode_tracks_fraction() {
        let spt = Spt::probabilistic(3, 0.32, 512);
        let mut hits = 0;
        let mut probes = 0;
        for i in 0..4000u32 {
            let a = RowId(i * 131 % 65536);
            let b = RowId((i * 52_711 + 9000) % 65536);
            if (a.0 / 512).abs_diff(b.0 / 512) <= 1 {
                continue;
            }
            probes += 1;
            if spt.compatible(a, b) {
                hits += 1;
            }
        }
        let frac = f64::from(hits) / f64::from(probes);
        assert!((frac - 0.32).abs() < 0.03, "fraction {frac}");
    }

    #[test]
    fn probabilistic_mode_excludes_neighbor_subarrays() {
        let spt = Spt::probabilistic(3, 0.9, 512);
        assert!(!spt.compatible(RowId(0), RowId(100)));
        assert!(!spt.compatible(RowId(0), RowId(600)));
    }

    #[test]
    fn probabilistic_is_symmetric() {
        let spt = Spt::probabilistic(11, 0.32, 512);
        for i in 0..200u32 {
            let a = RowId(i * 977 % 65536);
            let b = RowId(i * 3457 % 65536);
            assert_eq!(spt.compatible(a, b), spt.compatible(b, a));
        }
    }
}
