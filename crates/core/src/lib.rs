//! # hira-core — the HiRA operation and the HiRA Memory Controller
//!
//! This crate implements the paper's contribution proper:
//!
//! * [`hira_op`] — the Hidden Row Activation operation (§3): the
//!   `ACT — t1 — PRE — t2 — ACT` command sequence, its latency arithmetic
//!   (38 ns vs 78.25 ns for two refreshes, −51.4 %) and its expansion into
//!   controller-schedulable commands,
//! * [`config`] — the HiRA-N configurations (`tRefSlack = N × tRC`),
//! * [`refresh_table`] — the Refresh Table (68 entries/rank: deadline, bank,
//!   type; §5/§6),
//! * [`refptr`] — the RefPtr Table (per-subarray next-row pointers with
//!   balanced advancement; §5.1.1/§5.1.3),
//! * [`prfifo`] — the PR-FIFO of queued preventive refreshes (§5.1.2),
//! * [`spt`] — the Subarray Pairs Table (§5.1.4),
//! * [`para`] — PARA \[84\] and the preventive-refresh flow
//!   with `tRefSlack`-aware aggressiveness (folded into [`finder`]),
//! * [`periodic`] — the Periodic Refresh Controller (per-bank staggered
//!   request generation),
//! * [`finder`] — the Concurrent Refresh Finder: refresh-access pairing on
//!   demand activations (Case 1) and deadline-driven refresh-refresh pairing
//!   (Case 2),
//! * [`security`] — §9.1's revisited PARA analysis (Expressions 2-9,
//!   `p_th` solving for a 1e-15 RowHammer success probability, Fig. 11),
//! * [`area`] — the analytic SRAM area/latency model behind Table 2 and
//!   §6.2's 6.31 ns worst-case search latency.
//!
//! The crate is simulator-agnostic: `hira-sim` drives [`finder::HiraMc`]
//! through plain method calls with nanosecond timestamps, and the
//! characterization flow can execute the same decisions against the
//! behavioural chip model.

pub mod area;
pub mod config;
pub mod finder;
pub mod hira_op;
pub mod para;
pub mod periodic;
pub mod prfifo;
pub mod refptr;
pub mod refresh_table;
pub mod security;
pub mod spt;

pub use config::HiraConfig;
pub use finder::HiraMc;
pub use hira_op::HiraOperation;
pub use security::SecurityParams;
