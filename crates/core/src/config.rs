//! HiRA-MC configuration (the HiRA-N notation of §8/§9).

use crate::hira_op::HiraOperation;
use hira_dram::timing::TimingParams;

/// Configuration of one HiRA-MC instance (per rank).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HiraConfig {
    /// The HiRA operation (its `t1`/`t2`).
    pub op: HiraOperation,
    /// `tRefSlack` in units of `tRC` — the `N` of HiRA-N. A refresh request
    /// generated at time `g` must be performed by `g + N × tRC`.
    pub slack_acts: u32,
    /// Enable Case-1 refresh-access parallelization (§5.1.3). Disabling it
    /// is the ablation of the headline mechanism.
    pub refresh_access: bool,
    /// Enable Case-2 refresh-refresh parallelization.
    pub refresh_refresh: bool,
}

impl HiraConfig {
    /// The HiRA-N configuration of the paper's sweeps (`N ∈ {0, 2, 4, 8}`).
    pub fn hira_n(n: u32) -> Self {
        HiraConfig {
            op: HiraOperation::nominal(),
            slack_acts: n,
            refresh_access: true,
            refresh_refresh: true,
        }
    }

    /// `tRefSlack` in ns for the given timing parameters.
    pub fn slack_ns(&self, t: &TimingParams) -> f64 {
        f64::from(self.slack_acts) * t.t_rc
    }

    /// Disables refresh-access pairing (ablation).
    pub fn without_refresh_access(mut self) -> Self {
        self.refresh_access = false;
        self
    }

    /// Disables refresh-refresh pairing (ablation).
    pub fn without_refresh_refresh(mut self) -> Self {
        self.refresh_refresh = false;
        self
    }
}

impl Default for HiraConfig {
    fn default() -> Self {
        // HiRA-4: the paper's hardware-sizing default (§6).
        Self::hira_n(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hira_n_slack_scales_with_trc() {
        let t = TimingParams::ddr4_2400();
        assert_eq!(HiraConfig::hira_n(0).slack_ns(&t), 0.0);
        assert!((HiraConfig::hira_n(4).slack_ns(&t) - 185.0).abs() < 1e-9);
        assert!((HiraConfig::hira_n(8).slack_ns(&t) - 370.0).abs() < 1e-9);
    }

    #[test]
    fn ablations_toggle_mechanisms() {
        let c = HiraConfig::hira_n(2).without_refresh_access();
        assert!(!c.refresh_access && c.refresh_refresh);
        let c = HiraConfig::hira_n(2).without_refresh_refresh();
        assert!(c.refresh_access && !c.refresh_refresh);
    }
}
