//! The Concurrent Refresh Finder and the assembled HiRA-MC (§5, Fig. 7/8).
//!
//! [`HiraMc`] owns the four hardware structures (Refresh Table, RefPtr
//! Table, PR-FIFOs, SPT) plus the two request generators (PeriodicRC and the
//! PARA-hosting preventive flow) and makes the paper's scheduling decisions:
//!
//! * **Case 1** (`on_demand_act`): when the memory request scheduler is about
//!   to activate a row, search the Refresh Table (deadline order) for a
//!   refresh of the same bank that the SPT allows to ride along; if found,
//!   the `ACT` becomes a HiRA operation whose first activation performs the
//!   refresh (refresh-access parallelization).
//! * **Case 2** (`deadline_work`): a watchdog serves any request whose
//!   deadline falls within the next `tRC`, pairing it with a second queued
//!   refresh when the SPT allows (refresh-refresh parallelization) and
//!   falling back to a conventional single-row refresh otherwise.
//!
//! The host simulator drives the controller with nanosecond timestamps and
//! executes the returned actions on its DRAM timing model; it reports every
//! executed activation back via [`HiraMc::on_row_activated`] so PARA sees
//! preventive refreshes as activations too (they are).

use crate::config::HiraConfig;
use crate::para::Para;
use crate::periodic::PeriodicRc;
use crate::prfifo::PrFifo;
use crate::refptr::RefPtrTable;
use crate::refresh_table::{RefreshEntry, RefreshKind, RefreshTable};
use crate::spt::Spt;
use hira_dram::addr::{BankId, RowId, SubarrayId};
use hira_dram::timing::TimingParams;
use std::collections::VecDeque;

/// Construction parameters for one per-rank HiRA-MC instance.
#[derive(Debug, Clone)]
pub struct HiraMcParams {
    /// Banks in the rank.
    pub banks: u16,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Rows per subarray.
    pub rows_per_subarray: u32,
    /// Refresh window in ns.
    pub t_refw_ns: f64,
    /// DDR timing parameters.
    pub timing: TimingParams,
    /// HiRA-N configuration.
    pub config: HiraConfig,
    /// Perform periodic refresh through HiRA operations (§8). When false the
    /// host uses conventional rank-level `REF` and HiRA-MC only handles
    /// preventive refreshes (§9).
    pub periodic_via_hira: bool,
    /// PARA probability threshold; `None` disables preventive refreshes.
    pub para_pth: Option<f64>,
    /// Fraction of row pairs the SPT reports compatible (§7: 32 %).
    pub spt_fraction: f64,
    /// Seed for the SPT predicate and PARA.
    pub seed: u64,
}

impl HiraMcParams {
    /// The paper's Table 3 system: 16 banks, 64 ms window, DDR4-2400.
    pub fn table3(rows_per_bank: u32, config: HiraConfig) -> Self {
        HiraMcParams {
            banks: 16,
            rows_per_bank,
            rows_per_subarray: 512,
            t_refw_ns: 64.0e6,
            timing: TimingParams::ddr4_2400(),
            config,
            periodic_via_hira: true,
            para_pth: None,
            spt_fraction: 0.32,
            seed: 0x4849_5241,
        }
    }
}

/// Case-1 decision for a demand activation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum McAction {
    /// Issue a plain `ACT` for the demand row.
    Plain,
    /// Issue a HiRA operation: first `ACT` refreshes `refresh_row`, second
    /// `ACT` opens the demand row (costs `t1 + t2` extra lead time and a
    /// second activation toward `tFAW`).
    Hira {
        /// Row refreshed by the hidden activation.
        refresh_row: RowId,
        /// Bookkeeping: what kind of refresh rode along.
        kind: RefreshKind,
    },
}

/// Case-2 work item the host must execute now.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeadlineWork {
    /// One HiRA op refreshing both rows (`t1+t2+tRAS+tRP` bank-busy).
    Pair {
        /// Target bank.
        bank: BankId,
        /// First refreshed row.
        first: RowId,
        /// Second refreshed row.
        second: RowId,
    },
    /// A conventional single-row refresh (`tRAS+tRP` bank-busy).
    Single {
        /// Target bank.
        bank: BankId,
        /// Refreshed row.
        row: RowId,
    },
}

impl DeadlineWork {
    /// The bank the work occupies.
    pub fn bank(&self) -> BankId {
        match *self {
            DeadlineWork::Pair { bank, .. } | DeadlineWork::Single { bank, .. } => bank,
        }
    }
}

/// Controller statistics (observed by the benches and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct McStats {
    /// Periodic refresh requests generated.
    pub periodic_generated: u64,
    /// Preventive refresh requests generated (PARA triggers).
    pub preventive_generated: u64,
    /// Refreshes performed by riding a demand activation (Case 1).
    pub refresh_access: u64,
    /// Refreshes performed inside refresh-refresh pairs (counts rows).
    pub refresh_refresh: u64,
    /// Refreshes performed as conventional singles.
    pub singles: u64,
    /// Requests that overflowed a full structure and were force-served.
    pub overflows: u64,
    /// Worst observed service lateness past a deadline, ns.
    pub max_lateness_ns: f64,
    /// Refresh windows completed (per rank).
    pub windows_completed: u64,
    /// Largest per-window deficit of rows refreshed vs rows required.
    pub worst_window_deficit: i64,
}

/// The per-rank HiRA Memory Controller.
#[derive(Debug, Clone)]
pub struct HiraMc {
    params: HiraMcParams,
    spt: Spt,
    table: RefreshTable,
    refptr: RefPtrTable,
    prfifo: Vec<PrFifo>,
    periodic: Option<PeriodicRc>,
    para: Option<Para>,
    /// Requests that could not be queued (structure full): served first.
    overflow: VecDeque<RefreshEntry>,
    window_end: f64,
    stats: McStats,
}

impl HiraMc {
    /// Builds the controller with a synthetic (probabilistic) SPT.
    pub fn new(params: HiraMcParams) -> Self {
        let spt = Spt::probabilistic(params.seed, params.spt_fraction, params.rows_per_subarray);
        Self::with_spt(params, spt)
    }

    /// Builds the controller around an explicit SPT (e.g. one learned from a
    /// characterized module's isolation map).
    ///
    /// HiRA-0 (`slack_acts == 0`) performs every refresh immediately after
    /// generation (§8), which leaves no window for refresh-access or
    /// refresh-refresh pairing; both are disabled in that configuration.
    pub fn with_spt(mut params: HiraMcParams, spt: Spt) -> Self {
        if params.config.slack_acts == 0 {
            params.config.refresh_access = false;
            params.config.refresh_refresh = false;
        }
        let periodic = params
            .periodic_via_hira
            .then(|| PeriodicRc::new(params.t_refw_ns, params.rows_per_bank, params.banks));
        let para = params
            .para_pth
            .map(|pth| Para::new(pth, params.seed ^ 0xACE));
        // Refresh Table sizing (§6 generalized): enough for the periodic
        // requests generated within tRefSlack at this capacity's rate, plus
        // one PR-FIFO's worth of preventive entries per bank. The paper's
        // 64K-row / 4·tRC point yields the published 68 entries.
        let per_rank_period_ns =
            params.t_refw_ns / (f64::from(params.rows_per_bank) * f64::from(params.banks));
        let slack_ns = params.config.slack_ns(&params.timing);
        let periodic_entries = (slack_ns / per_rank_period_ns).ceil() as usize + 4;
        let capacity = periodic_entries + PrFifo::PAPER_CAPACITY * params.banks as usize;
        HiraMc {
            spt,
            table: RefreshTable::new(capacity.max(RefreshTable::PAPER_CAPACITY)),
            refptr: RefPtrTable::new(params.banks, params.rows_per_bank, params.rows_per_subarray),
            prfifo: (0..params.banks).map(|_| PrFifo::default()).collect(),
            periodic,
            para,
            overflow: VecDeque::new(),
            window_end: params.t_refw_ns,
            stats: McStats::default(),
            params,
        }
    }

    /// Controller configuration.
    pub fn config(&self) -> &HiraConfig {
        &self.params.config
    }

    /// Full construction parameters (hosts size analytic budgets off them).
    pub fn params(&self) -> &HiraMcParams {
        &self.params
    }

    /// Enables the PARA preventive-request generator on an existing
    /// controller — the hook refresh-policy layers use to fold a preventive
    /// layer into a HiRA-MC that already performs periodic refresh, instead
    /// of instantiating a second controller per rank.
    pub fn enable_para(&mut self, pth: f64) {
        self.params.para_pth = Some(pth);
        self.para = Some(Para::new(pth, self.params.seed ^ 0xACE));
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> McStats {
        self.stats
    }

    /// Advances request generation to `now`. Call at least once per `tRC`.
    pub fn tick(&mut self, now: f64) {
        // Window rollover accounting (refresh-completeness verification).
        while now >= self.window_end {
            for b in 0..self.params.banks {
                let refreshed = self.refptr.roll_window(BankId(b));
                let deficit = i64::from(self.params.rows_per_bank) - i64::from(refreshed);
                self.stats.worst_window_deficit = self.stats.worst_window_deficit.max(deficit);
            }
            self.stats.windows_completed += 1;
            self.window_end += self.params.t_refw_ns;
        }
        let slack = self.params.config.slack_ns(&self.params.timing);
        if let Some(periodic) = &mut self.periodic {
            for (gen_t, bank) in periodic.tick(now) {
                self.stats.periodic_generated += 1;
                let entry = RefreshEntry {
                    deadline: gen_t + slack,
                    bank,
                    kind: RefreshKind::Periodic,
                    victim: None,
                };
                if !self.table.insert(entry) {
                    self.stats.overflows += 1;
                    self.overflow.push_back(entry);
                }
            }
        }
    }

    /// PARA hook: the host reports **every** executed row activation —
    /// demand rows, HiRA hidden rows, and preventive-refresh rows alike.
    pub fn on_row_activated(&mut self, now: f64, bank: BankId, row: RowId) {
        let Some(para) = &mut self.para else { return };
        let Some(side) = para.on_activate() else {
            return;
        };
        self.stats.preventive_generated += 1;
        let victim = Para::victim(row, side, self.params.rows_per_bank);
        let slack = self.params.config.slack_ns(&self.params.timing);
        let entry = RefreshEntry {
            deadline: now + slack,
            bank,
            kind: RefreshKind::Preventive,
            victim: Some(victim),
        };
        let fits = !self.prfifo[bank.index()].is_full() && !self.table.is_full();
        if fits {
            let pushed = self.prfifo[bank.index()].push(victim);
            debug_assert!(pushed);
            let inserted = self.table.insert(entry);
            debug_assert!(inserted);
        } else {
            self.stats.overflows += 1;
            self.overflow.push_back(entry);
        }
    }

    /// Case 1: the scheduler is about to activate `demand_row` in `bank`.
    pub fn on_demand_act(&mut self, now: f64, bank: BankId, demand_row: RowId) -> McAction {
        if !self.params.config.refresh_access {
            return McAction::Plain;
        }
        // Walk this bank's queued requests in deadline order (§5.1.3 a).
        let mut candidates: Vec<RefreshEntry> = self
            .table
            .iter()
            .filter(|e| e.bank == bank)
            .copied()
            .collect();
        candidates.sort_by(|a, b| a.deadline.total_cmp(&b.deadline));
        for entry in candidates {
            match entry.kind {
                RefreshKind::Periodic => {
                    // Find a compatible subarray with the least progress.
                    let pick = self.refptr.select(bank, |row| {
                        row != demand_row && self.spt.compatible(row, demand_row)
                    });
                    if let Some((sa, row)) = pick {
                        self.consume(now, &entry);
                        self.refptr.advance(bank, sa);
                        self.stats.refresh_access += 1;
                        return McAction::Hira {
                            refresh_row: row,
                            kind: RefreshKind::Periodic,
                        };
                    }
                }
                RefreshKind::Preventive => {
                    // Only the PR-FIFO head may be served (§5.1.3 c).
                    let Some(head) = self.prfifo[bank.index()].head() else {
                        continue;
                    };
                    if entry.victim == Some(head)
                        && head != demand_row
                        && self.spt.compatible(head, demand_row)
                    {
                        self.consume(now, &entry);
                        self.prfifo[bank.index()].pop();
                        self.stats.refresh_access += 1;
                        return McAction::Hira {
                            refresh_row: head,
                            kind: RefreshKind::Preventive,
                        };
                    }
                }
            }
        }
        McAction::Plain
    }

    /// Case 2: returns refresh work whose deadline falls within the next
    /// `tRC` (call repeatedly until `None`).
    pub fn deadline_work(&mut self, now: f64) -> Option<DeadlineWork> {
        let horizon = now + self.params.timing.t_rc;
        let entry = if let Some(e) = self.overflow.pop_front() {
            e
        } else {
            self.table.pop_due(horizon)?
        };
        self.note_lateness(now, &entry);
        let bank = entry.bank;
        let first = self.resolve_row(&entry);

        // Refresh-refresh pairing (§5.1.3 case 2, step 7-8).
        if self.params.config.refresh_refresh {
            if let Some(second) = self.pair_partner(bank, first) {
                self.stats.refresh_refresh += 2;
                return Some(DeadlineWork::Pair {
                    bank,
                    first,
                    second,
                });
            }
        }
        self.stats.singles += 1;
        Some(DeadlineWork::Single { bank, row: first })
    }

    /// Whether any queued request's deadline falls within the next `tRC`
    /// (lets the host prioritize the watchdog without popping work).
    pub fn deadline_pending(&self, now: f64) -> bool {
        if !self.overflow.is_empty() {
            return true;
        }
        let horizon = now + self.params.timing.t_rc;
        self.table.iter().any(|e| e.deadline <= horizon)
    }

    /// Opportunistic service (Case 2 extension): when `bank` is idle and has
    /// no queued demand, serve its earliest queued refresh *before* the
    /// deadline. This trades a (no-longer-possible) refresh-access pairing
    /// for zero-interference service — the behaviour a deadline-driven
    /// scheduler converges to on idle banks.
    pub fn opportunistic_work(&mut self, now: f64, bank: BankId) -> Option<DeadlineWork> {
        let entry = self.table.pop_for_bank(bank)?;
        self.note_lateness(now, &entry);
        let first = self.resolve_row(&entry);
        if self.params.config.refresh_refresh {
            if let Some(second) = self.pair_partner(bank, first) {
                self.stats.refresh_refresh += 2;
                return Some(DeadlineWork::Pair {
                    bank,
                    first,
                    second,
                });
            }
        }
        self.stats.singles += 1;
        Some(DeadlineWork::Single { bank, row: first })
    }

    /// Whether any request is queued for `bank` (any deadline).
    pub fn has_queued(&self, bank: BankId) -> bool {
        self.table.iter().any(|e| e.bank == bank)
    }

    /// The bank of the next work item [`HiraMc::deadline_work`] would return
    /// at `now`, without popping it (lets hosts pace refresh issue per bank).
    pub fn next_due_bank(&self, now: f64) -> Option<BankId> {
        if let Some(e) = self.overflow.front() {
            return Some(e.bank);
        }
        let horizon = now + self.params.timing.t_rc;
        self.table
            .iter()
            .filter(|e| e.deadline <= horizon)
            .min_by(|a, b| a.deadline.total_cmp(&b.deadline))
            .map(|e| e.bank)
    }

    /// The next instant (ns) at which this controller may need attention:
    /// before it, [`HiraMc::tick`] is a no-op, [`HiraMc::deadline_work`] /
    /// [`HiraMc::opportunistic_work`] have nothing to serve, and
    /// [`HiraMc::on_demand_act`] returns [`McAction::Plain`] without
    /// mutating state — so a time-skipping host may safely not call them.
    ///
    /// With requests queued (or overflowed) the answer is `now`: service
    /// opportunities depend on bank state the controller cannot see, so
    /// the host must keep polling every tick. With the queues empty the
    /// wake is the earliest of the next periodic generation instant and
    /// the window-rollover accounting point.
    pub fn next_wake(&self, now: f64) -> f64 {
        if !self.table.is_empty() || !self.overflow.is_empty() {
            return now;
        }
        let gen = self
            .periodic
            .as_ref()
            .map_or(f64::INFINITY, PeriodicRc::next_due);
        gen.min(self.window_end)
    }

    /// Earliest queued deadline (scheduling hint).
    pub fn earliest_deadline(&self) -> Option<f64> {
        let table = self.table.earliest().map(|e| e.deadline);
        let overflow = self.overflow.front().map(|e| e.deadline);
        match (table, overflow) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn consume(&mut self, now: f64, entry: &RefreshEntry) {
        self.note_lateness(now, entry);
        self.table.remove(entry);
    }

    fn note_lateness(&mut self, now: f64, entry: &RefreshEntry) {
        let lateness = now - entry.deadline;
        if lateness > self.stats.max_lateness_ns {
            self.stats.max_lateness_ns = lateness;
        }
    }

    /// Resolves the row an entry refreshes (RefPtr for periodic, the queued
    /// victim for preventive) and advances the bookkeeping.
    fn resolve_row(&mut self, entry: &RefreshEntry) -> RowId {
        match entry.kind {
            RefreshKind::Periodic => {
                let (sa, row) = self.refptr.select_any(entry.bank);
                self.refptr.advance(entry.bank, sa);
                row
            }
            RefreshKind::Preventive => {
                // The victim may not be the FIFO head if overflow reordered
                // things; remove it wherever it is (hardware would drain in
                // order — the distinction does not affect timing).
                let fifo = &mut self.prfifo[entry.bank.index()];
                match entry.victim {
                    Some(v) => {
                        if fifo.head() == Some(v) {
                            fifo.pop();
                        }
                        v
                    }
                    None => fifo.pop().unwrap_or(RowId(0)),
                }
            }
        }
    }

    /// Finds a second refresh for `bank` compatible with `first`.
    fn pair_partner(&mut self, bank: BankId, first: RowId) -> Option<RowId> {
        let candidates: Vec<RefreshEntry> = {
            let mut v: Vec<RefreshEntry> = self
                .table
                .iter()
                .filter(|e| e.bank == bank)
                .copied()
                .collect();
            v.sort_by(|a, b| a.deadline.total_cmp(&b.deadline));
            v
        };
        for entry in candidates {
            match entry.kind {
                RefreshKind::Periodic => {
                    let pick = self
                        .refptr
                        .select(bank, |row| row != first && self.spt.compatible(row, first));
                    if let Some((sa, row)) = pick {
                        self.table.remove(&entry);
                        self.refptr.advance(bank, sa);
                        return Some(row);
                    }
                }
                RefreshKind::Preventive => {
                    let Some(head) = self.prfifo[bank.index()].head() else {
                        continue;
                    };
                    if entry.victim == Some(head)
                        && head != first
                        && self.spt.compatible(head, first)
                    {
                        self.table.remove(&entry);
                        self.prfifo[bank.index()].pop();
                        return Some(head);
                    }
                }
            }
        }
        None
    }

    /// Periodic-refresh progress of `bank` within the current window.
    pub fn window_progress(&self, bank: BankId) -> u32 {
        self.refptr.window_progress(bank)
    }

    /// The subarray a row belongs to (convenience for hosts).
    pub fn subarray_of(&self, row: RowId) -> SubarrayId {
        SubarrayId((row.0 / self.params.rows_per_subarray) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: u32) -> HiraMcParams {
        HiraMcParams::table3(64 * 1024, HiraConfig::hira_n(n))
    }

    #[test]
    fn periodic_requests_flow_into_the_table() {
        let mut mc = HiraMc::new(params(4));
        mc.tick(200.0);
        // 200 ns / (976 ns / 16 banks) ≈ 3-4 staggered requests.
        let s = mc.stats();
        assert!(
            s.periodic_generated >= 3 && s.periodic_generated <= 5,
            "{s:?}"
        );
    }

    #[test]
    fn case1_pairs_a_periodic_refresh_with_an_access() {
        let mut mc = HiraMc::new(params(4));
        mc.tick(200.0);
        // Demand ACT to bank 0 (which received the first request at t=0).
        let action = mc.on_demand_act(210.0, BankId(0), RowId(40_000));
        match action {
            McAction::Hira { refresh_row, kind } => {
                assert_eq!(kind, RefreshKind::Periodic);
                assert!(mc.spt.compatible(refresh_row, RowId(40_000)));
            }
            McAction::Plain => panic!("expected a refresh-access pairing"),
        }
        assert_eq!(mc.stats().refresh_access, 1);
        // The request is consumed: nothing due for bank 0 now.
        assert!(mc.on_demand_act(211.0, BankId(0), RowId(40_000)) == McAction::Plain);
    }

    #[test]
    fn case1_respects_the_ablation_flag() {
        let p = HiraMcParams::table3(64 * 1024, HiraConfig::hira_n(4).without_refresh_access());
        let mut mc = HiraMc::new(p);
        mc.tick(200.0);
        assert_eq!(
            mc.on_demand_act(210.0, BankId(0), RowId(40_000)),
            McAction::Plain
        );
    }

    #[test]
    fn case2_serves_due_requests_and_pairs_when_possible() {
        // Slack 2 with a stalled service: several requests per bank become
        // simultaneously due and must pair.
        let mut mc = HiraMc::new(params(2));
        mc.tick(4_000.0);
        let mut singles = 0;
        let mut paired = 0;
        while let Some(w) = mc.deadline_work(4_000.0) {
            match w {
                DeadlineWork::Pair { first, second, .. } => {
                    assert_ne!(first, second);
                    paired += 2;
                }
                DeadlineWork::Single { .. } => singles += 1,
            }
        }
        let total = singles + paired;
        assert!(total >= 30, "served {total}");
        assert!(paired > 0, "expected at least one refresh-refresh pair");
    }

    #[test]
    fn hira_0_never_pairs() {
        let mut mc = HiraMc::new(params(0)); // immediate service: no pairing
        mc.tick(4_000.0);
        while let Some(w) = mc.deadline_work(4_000.0) {
            assert!(
                matches!(w, DeadlineWork::Single { .. }),
                "HiRA-0 paired: {w:?}"
            );
        }
        assert_eq!(mc.stats().refresh_refresh, 0);
        // And Case 1 is inert too.
        mc.tick(5_000.0);
        assert_eq!(
            mc.on_demand_act(5_000.0, BankId(0), RowId(40_000)),
            McAction::Plain
        );
    }

    #[test]
    fn deadline_work_respects_the_horizon() {
        let mut mc = HiraMc::new(params(8)); // slack = 370 ns
        mc.tick(10.0);
        // Deadline of the first request is ~370 ns; at now=10 the horizon is
        // 10+46.25 — nothing due yet.
        assert!(mc.deadline_work(10.0).is_none());
        assert!(mc.deadline_work(330.0).is_some());
    }

    #[test]
    fn para_triggers_enqueue_preventive_refreshes() {
        let mut p = params(4);
        p.para_pth = Some(1.0); // always trigger
        p.periodic_via_hira = false;
        let mut mc = HiraMc::new(p);
        mc.on_row_activated(100.0, BankId(3), RowId(500));
        assert_eq!(mc.stats().preventive_generated, 1);
        // The victim is adjacent to the activated row.
        let w = mc.deadline_work(300.0).expect("preventive refresh due");
        match w {
            DeadlineWork::Single { bank, row } => {
                assert_eq!(bank, BankId(3));
                assert!(row.0.abs_diff(500) == 1, "victim {row}");
            }
            DeadlineWork::Pair { .. } => panic!("single victim cannot pair"),
        }
    }

    #[test]
    fn preventive_overflow_is_force_served() {
        let mut p = params(8);
        p.para_pth = Some(1.0);
        p.periodic_via_hira = false;
        let mut mc = HiraMc::new(p);
        // 6 triggers into a 4-deep FIFO: 2 overflows.
        for i in 0..6 {
            mc.on_row_activated(f64::from(i), BankId(0), RowId(1000 + i * 2));
        }
        assert_eq!(mc.stats().overflows, 2);
        // Overflow work is available immediately despite the 8·tRC slack.
        assert!(mc.deadline_work(6.0).is_some());
    }

    #[test]
    fn window_accounting_reports_deficits() {
        // A controller that never gets服务 would show a full-window deficit;
        // serve everything through case 2 and the deficit stays ~zero.
        let rows = 2_048u32;
        let mut p = params(0);
        p.rows_per_bank = rows;
        p.t_refw_ns = 1.0e6; // small window for a fast test
        let mut mc = HiraMc::new(p);
        let mut now = 0.0;
        while now < 1.0e6 {
            mc.tick(now);
            while let Some(_w) = mc.deadline_work(now) {}
            now += 400.0;
        }
        mc.tick(1.0e6 + 1.0);
        let s = mc.stats();
        assert_eq!(s.windows_completed, 1);
        assert!(
            s.worst_window_deficit <= 64,
            "deficit {} (of {} rows)",
            s.worst_window_deficit,
            rows
        );
    }

    #[test]
    fn lateness_is_tracked() {
        let mut mc = HiraMc::new(params(0));
        mc.tick(10.0);
        let _ = mc.deadline_work(500.0);
        assert!(mc.stats().max_lateness_ns > 0.0);
    }

    #[test]
    fn next_wake_is_the_generation_instant_when_idle_and_now_when_loaded() {
        let mut mc = HiraMc::new(params(4));
        // Fresh controller: nothing queued, first generation at t = 0.
        assert_eq!(mc.next_wake(0.0), 0.0);
        // Generate: queued requests demand per-tick polls.
        mc.tick(200.0);
        assert_eq!(mc.next_wake(200.0), 200.0);
        // Drain every queued request (opportunistic service ignores
        // deadlines): the wake jumps to the next generation instant.
        for b in 0..16 {
            while mc.opportunistic_work(200.0, BankId(b)).is_some() {}
        }
        let wake = mc.next_wake(200.0);
        assert!(wake > 200.0, "drained controller must sleep ({wake})");
        // The declared wake really is the next generation instant: a tick
        // just before it generates nothing, a tick at it does.
        let before = mc.stats().periodic_generated;
        mc.tick(wake - 1.0);
        assert_eq!(mc.stats().periodic_generated, before);
        mc.tick(wake);
        assert!(mc.stats().periodic_generated > before);
    }
}
