//! PARA — Probabilistic Adjacent Row Activation \[84\] (§9).
//!
//! Stateless RowHammer defense: on every row activation, with probability
//! `p_th`, refresh one of the two physically adjacent rows (each side with
//! `p_th/2`). HiRA-MC hosts PARA inside the Preventive Refresh Controller
//! with `p_th` raised per §9.1 to absorb the queueing slack.

use hira_dram::addr::RowId;
use hira_dram::rng::Stream;

/// Which neighbour of the activated row to refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The row below (`row − 1`).
    Below,
    /// The row above (`row + 1`).
    Above,
}

/// A configured PARA instance.
#[derive(Debug, Clone)]
pub struct Para {
    pth: f64,
    stream: Stream,
    triggers: u64,
    activations: u64,
}

impl Para {
    /// Builds PARA with the given probability threshold and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `pth` is not a probability.
    pub fn new(pth: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&pth), "p_th must be in [0,1]");
        Para {
            pth,
            stream: Stream::from_words(&[seed, 0x5041_5241]),
            triggers: 0,
            activations: 0,
        }
    }

    /// The configured probability threshold.
    pub fn pth(&self) -> f64 {
        self.pth
    }

    /// Called on every row activation (demand *and* preventive — a
    /// preventive refresh is itself an activation that disturbs its own
    /// neighbours). Returns the side to refresh when PARA triggers.
    pub fn on_activate(&mut self) -> Option<Side> {
        self.activations += 1;
        if !self.stream.next_bool(self.pth) {
            return None;
        }
        self.triggers += 1;
        Some(if self.stream.next_bool(0.5) {
            Side::Below
        } else {
            Side::Above
        })
    }

    /// Resolves the victim row for a trigger, clamped to the bank.
    pub fn victim(row: RowId, side: Side, rows_per_bank: u32) -> RowId {
        match side {
            Side::Below if row.0 > 0 => RowId(row.0 - 1),
            Side::Below => RowId(row.0 + 1),
            Side::Above if row.0 + 1 < rows_per_bank => RowId(row.0 + 1),
            Side::Above => RowId(row.0 - 1),
        }
    }

    /// `(activations seen, preventive refreshes triggered)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.activations, self.triggers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_rate_matches_pth() {
        let mut p = Para::new(0.25, 7);
        let n = 40_000u32;
        let hits = (0..n).filter(|_| p.on_activate().is_some()).count();
        let rate = hits as f64 / f64::from(n);
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        let (acts, trig) = p.stats();
        assert_eq!(acts, u64::from(n));
        assert_eq!(trig, hits as u64);
    }

    #[test]
    fn sides_are_balanced() {
        let mut p = Para::new(1.0, 9);
        let n = 20_000u32;
        let below = (0..n)
            .filter(|_| matches!(p.on_activate(), Some(Side::Below)))
            .count();
        let frac = below as f64 / f64::from(n);
        assert!((frac - 0.5).abs() < 0.02, "below fraction {frac}");
    }

    #[test]
    fn victims_stay_in_the_bank() {
        assert_eq!(Para::victim(RowId(0), Side::Below, 100), RowId(1));
        assert_eq!(Para::victim(RowId(99), Side::Above, 100), RowId(98));
        assert_eq!(Para::victim(RowId(50), Side::Below, 100), RowId(49));
        assert_eq!(Para::victim(RowId(50), Side::Above, 100), RowId(51));
    }

    #[test]
    fn zero_pth_never_triggers() {
        let mut p = Para::new(0.0, 1);
        assert!((0..1000).all(|_| p.on_activate().is_none()));
    }
}
