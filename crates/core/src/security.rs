//! §9.1: the revisited PARA security analysis (Expressions 2-9, Fig. 11).
//!
//! PARA refreshes one of the two neighbours of every activated row with
//! probability `p_th`. The legacy configuration (Kim et al. \[84\]) assumes an
//! attacker hammers exactly `N_RH` times; the paper shows that at modern
//! thresholds an attacker can retry many times within a refresh window, and
//! derives the exact success probability over *all* access patterns:
//!
//! ```text
//! p_RH = Σ_{Nf=0}^{Nf_max} (1 − p_th/2)^{Nf + N_RH − N_RefSlack} · (p_th/2)^{Nf}     (Exp. 8)
//! Nf_max = (t_REFW/t_RC − N_RH − N_RefSlack) / 2                                     (Exp. 7)
//! ```
//!
//! where `N_RefSlack = t_RefSlack/t_RC` accounts for HiRA-MC's queueing slack
//! (the attacker can keep hammering while a preventive refresh waits). The
//! solver inverts Exp. 8 for a target `p_RH` (the paper uses the consumer
//! memory reliability target 1e-15).

/// System parameters entering the analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecurityParams {
    /// Refresh window in ns (64 ms for DDR4).
    pub t_refw_ns: f64,
    /// Row cycle time in ns (46.25 ns at DDR4-2400).
    pub t_rc_ns: f64,
    /// Queueing slack of preventive refreshes, in row-activation units
    /// (`N` of HiRA-N): `N_RefSlack = t_RefSlack / t_RC`.
    pub slack_acts: u32,
    /// Target overall RowHammer success probability (1e-15 in the paper).
    pub target_p_rh: f64,
}

impl SecurityParams {
    /// The paper's defaults: `tREFW = 64 ms`, `tRC = 46.25 ns`, target 1e-15.
    pub fn paper_defaults(slack_acts: u32) -> Self {
        SecurityParams {
            t_refw_ns: 64.0e6,
            t_rc_ns: 46.25,
            slack_acts,
            target_p_rh: 1e-15,
        }
    }

    /// Maximum activations an attacker fits in one refresh window.
    pub fn max_activations(&self) -> f64 {
        self.t_refw_ns / self.t_rc_ns
    }

    /// Expression 7: the maximum number of failed attempts.
    pub fn nf_max(&self, nrh: u32) -> f64 {
        ((self.max_activations() - f64::from(nrh) - f64::from(self.slack_acts)) / 2.0).max(0.0)
    }
}

/// Expression 8: the overall RowHammer success probability for a given
/// PARA probability threshold `p_th`.
///
/// Computed in log space; the geometric series converges long before
/// `Nf_max`, so summation stops once terms become negligible.
pub fn p_rh(params: &SecurityParams, nrh: u32, pth: f64) -> f64 {
    assert!((0.0..=1.0).contains(&pth), "p_th must be a probability");
    if pth == 0.0 {
        return 1.0;
    }
    let q = pth / 2.0;
    let exponent = f64::from(nrh) - f64::from(self_slack(params, nrh));
    // (1-q)^(NRH - NRefSlack) in log space to survive NRH up to millions.
    let log_base = exponent * (1.0 - q).ln();
    // Σ_{Nf=0}^{Nfmax} (q(1-q))^{Nf}: geometric series with ratio r < 1/4.
    let r = q * (1.0 - q);
    let nf_max = params.nf_max(nrh);
    let series = if nf_max <= 0.0 {
        1.0
    } else {
        // Closed form of the truncated geometric series.
        (1.0 - r.powf(nf_max + 1.0)) / (1.0 - r)
    };
    (log_base + series.ln()).exp().min(1.0)
}

fn self_slack(params: &SecurityParams, nrh: u32) -> u32 {
    // The slack cannot exceed the threshold itself.
    params.slack_acts.min(nrh.saturating_sub(1))
}

/// PARA-Legacy's threshold: solves `(1 − p_th/2)^{N_RH} = target`
/// (the original configuration methodology of Kim et al. \[84\]).
pub fn legacy_pth(nrh: u32, target_p_rh: f64) -> f64 {
    assert!(nrh > 0, "threshold must be positive");
    assert!(target_p_rh > 0.0 && target_p_rh < 1.0);
    2.0 * (1.0 - target_p_rh.powf(1.0 / f64::from(nrh)))
}

/// PARA-Legacy's success probability for a given `p_th` (the dashed curves of
/// Fig. 11): `(1 − p_th/2)^{N_RH}`.
pub fn legacy_p_rh(nrh: u32, pth: f64) -> f64 {
    (f64::from(nrh) * (1.0 - pth / 2.0).ln()).exp()
}

/// Expression 9's `k` factor: `p_RH = k × p_RH_legacy`.
pub fn k_factor(params: &SecurityParams, nrh: u32, pth: f64) -> f64 {
    p_rh(params, nrh, pth) / legacy_p_rh(nrh, pth)
}

/// Solves Expression 8 for `p_th` at the configured target (bisection; the
/// expression is monotone decreasing in `p_th`).
pub fn solve_pth(params: &SecurityParams, nrh: u32) -> f64 {
    assert!(nrh > 0, "threshold must be positive");
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    // 80 bisection steps: far below f64 resolution of the bracket.
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if p_rh(params, nrh, mid) > params.target_p_rh {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// One row of the Fig. 11 data: thresholds and probabilities for a given
/// `N_RH` across slack configurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig11Point {
    /// RowHammer threshold.
    pub nrh: u32,
    /// Slack in activations (HiRA-N's N).
    pub slack_acts: u32,
    /// Our `p_th` from Exp. 8.
    pub pth: f64,
    /// PARA-Legacy's `p_th`.
    pub pth_legacy: f64,
    /// Our `p_RH` evaluated at `pth` (should sit at the target).
    pub p_rh: f64,
    /// The true `p_RH` an attacker achieves against PARA-Legacy's `p_th`.
    pub p_rh_of_legacy: f64,
}

/// Computes the Fig. 11a/11b series for the paper's `N_RH` sweep.
pub fn figure11(nrh_values: &[u32], slacks: &[u32], target: f64) -> Vec<Fig11Point> {
    let mut out = Vec::new();
    for &nrh in nrh_values {
        for &slack in slacks {
            let params = SecurityParams {
                target_p_rh: target,
                ..SecurityParams::paper_defaults(slack)
            };
            let pth = solve_pth(&params, nrh);
            let pth_legacy = legacy_pth(nrh, target);
            out.push(Fig11Point {
                nrh,
                slack_acts: slack,
                pth,
                pth_legacy,
                p_rh: p_rh(&params, nrh, pth),
                p_rh_of_legacy: p_rh(&params, nrh, pth_legacy),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(slack: u32) -> SecurityParams {
        SecurityParams::paper_defaults(slack)
    }

    #[test]
    fn legacy_pth_matches_paper_examples() {
        // §9.1.3: legacy pth ≈ 0.068 at NRH=1024 and ≈ 0.834 at NRH=64.
        let p1024 = legacy_pth(1024, 1e-15);
        let p64 = legacy_pth(64, 1e-15);
        assert!((p1024 - 0.066).abs() < 0.004, "pth(1024) = {p1024}");
        assert!((p64 - 0.834).abs() < 0.01, "pth(64) = {p64}");
    }

    #[test]
    fn k_factor_matches_paper_numbers() {
        // §9.1.3: k = 1.0331 at NRH=1024 and 1.3212 at NRH=64 (legacy pth).
        let k1024 = k_factor(&params(0), 1024, legacy_pth(1024, 1e-15));
        let k64 = k_factor(&params(0), 64, legacy_pth(64, 1e-15));
        assert!((k1024 - 1.0331).abs() < 0.002, "k(1024) = {k1024}");
        assert!((k64 - 1.3212).abs() < 0.005, "k(64) = {k64}");
    }

    #[test]
    fn legacy_prh_exceeds_target_as_in_fig11b() {
        // Fig. 11b: 1.03e-15 at NRH=1024, 1.32e-15 at NRH=64.
        let p = p_rh(&params(0), 1024, legacy_pth(1024, 1e-15));
        assert!((p / 1e-15 - 1.033).abs() < 0.01, "p_rh = {p:e}");
        let p = p_rh(&params(0), 64, legacy_pth(64, 1e-15));
        assert!((p / 1e-15 - 1.321).abs() < 0.01, "p_rh = {p:e}");
    }

    #[test]
    fn solved_pth_holds_the_target() {
        for nrh in [64u32, 128, 256, 512, 1024] {
            for slack in [0u32, 2, 4, 8] {
                let p = params(slack);
                let pth = solve_pth(&p, nrh);
                let achieved = p_rh(&p, nrh, pth);
                assert!(
                    (achieved / 1e-15 - 1.0).abs() < 1e-6,
                    "NRH={nrh} slack={slack}: p_rh {achieved:e}"
                );
            }
        }
    }

    #[test]
    fn pth_increases_as_threshold_falls() {
        // Fig. 11a: pth rises from ~0.07 (NRH=1024) to ~0.84 (NRH=64).
        let p = params(0);
        let p1024 = solve_pth(&p, 1024);
        let p64 = solve_pth(&p, 64);
        assert!(p1024 < 0.08, "pth(1024) = {p1024}");
        assert!(p64 > 0.80, "pth(64) = {p64}");
        assert!(p64 > p1024);
    }

    #[test]
    fn pth_increases_with_slack() {
        // §9.1.3: at NRH=128, pth ≈ 0.48 / 0.49 / 0.50 / 0.52 for slack
        // 0 / 2 / 4 / 8 tRC.
        let values: Vec<f64> = [0u32, 2, 4, 8]
            .iter()
            .map(|&s| solve_pth(&params(s), 128))
            .collect();
        assert!((values[0] - 0.48).abs() < 0.02, "slack 0: {}", values[0]);
        assert!(
            values.windows(2).all(|w| w[1] >= w[0]),
            "not monotone: {values:?}"
        );
        assert!((values[3] - 0.52).abs() < 0.03, "slack 8: {}", values[3]);
    }

    #[test]
    fn prh_is_monotone_decreasing_in_pth() {
        let p = params(0);
        let mut last = f64::INFINITY;
        for i in 1..20 {
            let pth = f64::from(i) / 20.0;
            let v = p_rh(&p, 256, pth);
            assert!(v <= last + 1e-18, "non-monotone at pth={pth}");
            last = v;
        }
    }

    #[test]
    fn figure11_series_is_complete() {
        let pts = figure11(&[64, 128, 256, 512, 1024], &[0, 2, 4, 8], 1e-15);
        assert_eq!(pts.len(), 20);
        for p in &pts {
            assert!((p.p_rh / 1e-15 - 1.0).abs() < 1e-6);
            assert!(p.p_rh_of_legacy >= p.p_rh * 0.999);
        }
    }

    #[test]
    fn old_chips_see_negligible_correction() {
        // §9.1.3: for 2010-2013 chips (NRH = 50K, pth = 0.001), k ≈ 1.0005.
        let k = k_factor(&params(0), 50_000, 0.001);
        assert!((k - 1.0005).abs() < 0.0005, "k = {k}");
    }
}
