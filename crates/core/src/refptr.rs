//! The RefPtr Table (§5.1.1, §5.1.3): per-subarray next-row pointers.
//!
//! To exploit HiRA's subarray-level parallelism, the Periodic Refresh
//! Controller keeps, for every subarray of every bank, a pointer to the next
//! row to refresh, and advances all subarrays in a *balanced* manner (the
//! Case-1 selection picks the compatible subarray with the least progress in
//! the current refresh window).

use hira_dram::addr::{BankId, RowId, SubarrayId};

/// Per-bank slice of the RefPtr Table.
#[derive(Debug, Clone)]
struct BankPtrs {
    /// Next row offset within each subarray.
    next: Vec<u32>,
    /// Rows refreshed per subarray in the current window.
    done: Vec<u32>,
}

/// The RefPtr Table for one rank.
#[derive(Debug, Clone)]
pub struct RefPtrTable {
    banks: Vec<BankPtrs>,
    subarrays: u32,
    rows_per_subarray: u32,
    rows_per_bank: u32,
}

impl RefPtrTable {
    /// Builds the table for `banks` banks of `rows_per_bank` rows split into
    /// subarrays of `rows_per_subarray`.
    pub fn new(banks: u16, rows_per_bank: u32, rows_per_subarray: u32) -> Self {
        assert!(rows_per_subarray > 0 && rows_per_bank.is_multiple_of(rows_per_subarray));
        let subarrays = rows_per_bank / rows_per_subarray;
        RefPtrTable {
            banks: (0..banks)
                .map(|_| BankPtrs {
                    next: vec![0; subarrays as usize],
                    done: vec![0; subarrays as usize],
                })
                .collect(),
            subarrays,
            rows_per_subarray,
            rows_per_bank,
        }
    }

    /// Number of subarrays per bank.
    pub fn subarrays(&self) -> u32 {
        self.subarrays
    }

    /// The row the pointer of `(bank, subarray)` currently designates.
    pub fn peek(&self, bank: BankId, sa: SubarrayId) -> RowId {
        let b = &self.banks[bank.index()];
        RowId(u32::from(sa.0) * self.rows_per_subarray + b.next[sa.index()])
    }

    /// Picks the least-advanced subarray of `bank` whose *candidate row*
    /// satisfies `compatible`, returning `(subarray, row)` without advancing.
    ///
    /// Iterating subarrays in least-progress-first order implements §5.1.3's
    /// balanced advancement.
    pub fn select<F>(&self, bank: BankId, mut compatible: F) -> Option<(SubarrayId, RowId)>
    where
        F: FnMut(RowId) -> bool,
    {
        let b = &self.banks[bank.index()];
        let mut order: Vec<u32> = (0..self.subarrays).collect();
        order.sort_by_key(|&sa| b.done[sa as usize]);
        for sa in order {
            let row = self.peek(bank, SubarrayId(sa as u16));
            if compatible(row) {
                return Some((SubarrayId(sa as u16), row));
            }
        }
        None
    }

    /// The globally least-advanced subarray's candidate row (deadline path:
    /// no compatibility constraint).
    pub fn select_any(&self, bank: BankId) -> (SubarrayId, RowId) {
        self.select(bank, |_| true)
            .expect("at least one subarray exists")
    }

    /// Advances the pointer of `(bank, subarray)` after its row is refreshed.
    pub fn advance(&mut self, bank: BankId, sa: SubarrayId) {
        let rows = self.rows_per_subarray;
        let b = &mut self.banks[bank.index()];
        let n = &mut b.next[sa.index()];
        *n = (*n + 1) % rows;
        b.done[sa.index()] += 1;
    }

    /// Total rows refreshed in `bank` during the current window.
    pub fn window_progress(&self, bank: BankId) -> u32 {
        self.banks[bank.index()].done.iter().sum()
    }

    /// Spread between the most- and least-advanced subarrays of `bank`
    /// (refresh-balance diagnostic).
    pub fn progress_imbalance(&self, bank: BankId) -> u32 {
        let done = &self.banks[bank.index()].done;
        done.iter().max().unwrap() - done.iter().min().unwrap()
    }

    /// Closes a refresh window for `bank`: progress counters carry over any
    /// overshoot so multi-window accounting stays exact. Returns the number
    /// of rows refreshed in the closed window.
    pub fn roll_window(&mut self, bank: BankId) -> u32 {
        let b = &mut self.banks[bank.index()];
        let total: u32 = b.done.iter().sum();
        for d in &mut b.done {
            *d = d.saturating_sub(self.rows_per_subarray);
        }
        total
    }

    /// Rows per bank covered by this table.
    pub fn rows_per_bank(&self) -> u32 {
        self.rows_per_bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RefPtrTable {
        RefPtrTable::new(2, 4096, 512) // 8 subarrays per bank
    }

    #[test]
    fn peek_and_advance_walk_the_subarray() {
        let mut t = table();
        let bank = BankId(0);
        assert_eq!(t.peek(bank, SubarrayId(3)), RowId(3 * 512));
        t.advance(bank, SubarrayId(3));
        assert_eq!(t.peek(bank, SubarrayId(3)), RowId(3 * 512 + 1));
        // Wrap-around after a full subarray.
        for _ in 1..512 {
            t.advance(bank, SubarrayId(3));
        }
        assert_eq!(t.peek(bank, SubarrayId(3)), RowId(3 * 512));
    }

    #[test]
    fn select_prefers_least_advanced_subarray() {
        let mut t = table();
        let bank = BankId(0);
        t.advance(bank, SubarrayId(0));
        t.advance(bank, SubarrayId(0));
        t.advance(bank, SubarrayId(1));
        let (sa, _) = t.select(bank, |_| true).unwrap();
        assert!(sa.0 >= 2, "selected already-advanced subarray {sa}");
    }

    #[test]
    fn select_respects_compatibility_filter() {
        let t = table();
        let bank = BankId(0);
        // Only rows in subarray 5 are "compatible".
        let got = t.select(bank, |row| row.0 / 512 == 5).unwrap();
        assert_eq!(got.0, SubarrayId(5));
        assert!(t.select(bank, |_| false).is_none());
    }

    #[test]
    fn balanced_advancement_keeps_imbalance_at_one() {
        let mut t = table();
        let bank = BankId(1);
        for _ in 0..1000 {
            let (sa, _) = t.select(bank, |_| true).unwrap();
            t.advance(bank, sa);
        }
        assert!(t.progress_imbalance(bank) <= 1);
        assert_eq!(t.window_progress(bank), 1000);
    }

    #[test]
    fn roll_window_carries_overshoot() {
        let mut t = RefPtrTable::new(1, 1024, 512); // 2 subarrays
        let bank = BankId(0);
        for _ in 0..512 {
            t.advance(bank, SubarrayId(0));
        }
        for _ in 0..513 {
            t.advance(bank, SubarrayId(1));
        }
        assert_eq!(t.roll_window(bank), 1025);
        // Subarray 1 overshot by one; the carry keeps it ahead.
        assert_eq!(t.window_progress(bank), 1);
    }

    #[test]
    fn banks_are_independent() {
        let mut t = table();
        t.advance(BankId(0), SubarrayId(0));
        assert_eq!(t.window_progress(BankId(0)), 1);
        assert_eq!(t.window_progress(BankId(1)), 0);
    }
}
