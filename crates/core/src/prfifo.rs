//! The PR-FIFO (§5.1.2): queued preventive refreshes, one FIFO per bank.
//!
//! Sized at 4 entries per bank for the worst case where the RowHammer
//! defense generates a preventive refresh on every activation within the
//! `4·tRC` slack window (§6).

use hira_dram::addr::RowId;
use std::collections::VecDeque;

/// A bounded FIFO of victim rows awaiting preventive refresh in one bank.
#[derive(Debug, Clone)]
pub struct PrFifo {
    queue: VecDeque<RowId>,
    capacity: usize,
}

impl PrFifo {
    /// The paper's per-bank sizing.
    pub const PAPER_CAPACITY: usize = 4;

    /// An empty FIFO with the given capacity.
    pub fn new(capacity: usize) -> Self {
        PrFifo {
            queue: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Queued victim count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True when the FIFO cannot accept another victim.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Enqueues a victim; returns `false` when full (caller must drain).
    #[must_use]
    pub fn push(&mut self, victim: RowId) -> bool {
        if self.is_full() {
            return false;
        }
        self.queue.push_back(victim);
        true
    }

    /// The victim at the head (next to be refreshed), without removing it.
    pub fn head(&self) -> Option<RowId> {
        self.queue.front().copied()
    }

    /// Removes and returns the head victim.
    pub fn pop(&mut self) -> Option<RowId> {
        self.queue.pop_front()
    }
}

impl Default for PrFifo {
    fn default() -> Self {
        Self::new(Self::PAPER_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut f = PrFifo::default();
        assert!(f.push(RowId(1)));
        assert!(f.push(RowId(2)));
        assert_eq!(f.head(), Some(RowId(1)));
        assert_eq!(f.pop(), Some(RowId(1)));
        assert_eq!(f.pop(), Some(RowId(2)));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut f = PrFifo::default();
        for i in 0..4 {
            assert!(f.push(RowId(i)));
        }
        assert!(f.is_full());
        assert!(!f.push(RowId(99)));
        assert_eq!(f.len(), 4);
    }
}
