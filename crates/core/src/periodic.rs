//! The Periodic Refresh Controller (§5.1.1).
//!
//! To match the baseline refresh rate, every row of every bank must be
//! refreshed once per `tREFW`, i.e. one HiRA refresh per bank every
//! `tREFW / rows_per_bank` (975 ns for 64 K rows). To avoid bursts on the
//! command bus, the per-bank generators run at the same period but offset in
//! time (`period / banks` apart — 61 ns for 16 banks).

use hira_dram::addr::BankId;

/// Generates per-bank periodic refresh requests at the required rate.
#[derive(Debug, Clone)]
pub struct PeriodicRc {
    period_ns: f64,
    banks: u16,
    /// Next generation time per bank.
    next_gen: Vec<f64>,
    generated: u64,
}

impl PeriodicRc {
    /// Builds the generator.
    ///
    /// * `t_refw_ns` — refresh window (64 ms),
    /// * `rows_per_bank` — rows each bank must refresh per window,
    /// * `banks` — banks per rank (stagger width).
    pub fn new(t_refw_ns: f64, rows_per_bank: u32, banks: u16) -> Self {
        assert!(t_refw_ns > 0.0 && rows_per_bank > 0 && banks > 0);
        let period_ns = t_refw_ns / f64::from(rows_per_bank);
        let stagger = period_ns / f64::from(banks);
        PeriodicRc {
            period_ns,
            banks,
            next_gen: (0..banks).map(|b| f64::from(b) * stagger).collect(),
            generated: 0,
        }
    }

    /// Per-bank generation period in ns (975 ns for 64 K rows / 64 ms).
    pub fn period_ns(&self) -> f64 {
        self.period_ns
    }

    /// Emits every `(generation_time, bank)` due by `now`, in time order.
    pub fn tick(&mut self, now: f64) -> Vec<(f64, BankId)> {
        let mut due = Vec::new();
        for b in 0..self.banks {
            let t = &mut self.next_gen[b as usize];
            while *t <= now {
                due.push((*t, BankId(b)));
                *t += self.period_ns;
                self.generated += 1;
            }
        }
        due.sort_by(|a, b| a.0.total_cmp(&b.0));
        due
    }

    /// The next generation instant across all banks.
    pub fn next_due(&self) -> f64 {
        self.next_gen.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Total requests generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_matches_paper_example() {
        // §5.1.1: 64K rows in 64 ms ⇒ one refresh per bank per 975 ns, one
        // request per rank every ~61 ns across 16 banks.
        let rc = PeriodicRc::new(64.0e6, 64 * 1024, 16);
        assert!(
            (rc.period_ns() - 976.56).abs() < 1.0,
            "period {}",
            rc.period_ns()
        );
    }

    #[test]
    fn generation_rate_covers_all_rows() {
        let rows = 1024u32;
        let mut rc = PeriodicRc::new(1.0e6, rows, 16);
        let due = rc.tick(1.0e6 - 1e-9);
        // One full window: every bank generated exactly `rows` requests.
        assert_eq!(due.len(), rows as usize * 16);
        for b in 0..16u16 {
            let count = due.iter().filter(|&&(_, bank)| bank == BankId(b)).count();
            assert_eq!(count as u32, rows, "bank {b}");
        }
    }

    #[test]
    fn banks_are_staggered() {
        let mut rc = PeriodicRc::new(64.0e6, 64 * 1024, 16);
        let due = rc.tick(975.0);
        // Within one period, each bank fires once, at distinct times.
        assert_eq!(due.len(), 16);
        let times: Vec<f64> = due.iter().map(|&(t, _)| t).collect();
        assert!(times.windows(2).all(|w| w[1] > w[0]));
        let gap = times[1] - times[0];
        assert!((gap - 61.0).abs() < 1.0, "stagger gap {gap}");
    }

    #[test]
    fn tick_is_incremental() {
        let mut rc = PeriodicRc::new(1.0e6, 64, 4);
        let first = rc.tick(500_000.0).len();
        let second = rc.tick(1_000_000.0 - 1e-9).len();
        assert_eq!(first + second, 64 * 4);
        assert!(rc.next_due() >= 1.0e6 - 1.0);
    }
}
