//! The Hidden Row Activation operation (§3).
//!
//! A HiRA operation is the timed command triple `ACT RowA — t1 — PRE — t2 —
//! ACT RowB`. Its first activation refreshes `RowA`; its second activation
//! refreshes `RowB` *and* opens it for column access. This module captures
//! the operation's timing arithmetic and expands it into the scheduled
//! command list a memory controller issues.

use hira_dram::addr::{BankId, RowId};
use hira_dram::command::DramCommand;
use hira_dram::timing::{HiraTimings, TimingParams};

/// A fully-specified HiRA operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HiraOperation {
    /// The custom `t1`/`t2` timings.
    pub timings: HiraTimings,
}

/// One command of an expanded operation, offset in ns from the first `ACT`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledCommand {
    /// Offset from the start of the operation, ns.
    pub offset_ns: f64,
    /// The DDR4 command to issue.
    pub command: DramCommand,
}

impl HiraOperation {
    /// The best experimentally-validated configuration (`t1 = t2 = 3 ns`).
    pub fn nominal() -> Self {
        HiraOperation {
            timings: HiraTimings::nominal(),
        }
    }

    /// Builds an operation with explicit timings.
    pub fn with_timings(timings: HiraTimings) -> Self {
        HiraOperation { timings }
    }

    /// Added lead latency before the second row's activation starts
    /// (`t1 + t2` — as small as 6 ns, §3).
    pub fn lead_ns(&self) -> f64 {
        self.timings.lead_ns()
    }

    /// Latency of refreshing two rows with this operation:
    /// `t1 + t2 + tRAS` (38 ns nominally vs 78.25 ns conventional, §4.2).
    pub fn two_row_refresh_ns(&self, t: &TimingParams) -> f64 {
        self.timings.two_row_refresh_ns(t)
    }

    /// Latency reduction over two conventional back-to-back refreshes
    /// (51.4 % at nominal timings).
    pub fn refresh_latency_reduction(&self, t: &TimingParams) -> f64 {
        1.0 - self.two_row_refresh_ns(t) / t.two_row_refresh_ns()
    }

    /// Expands a **refresh-access** parallelization: `refresh_row` is
    /// refreshed by the first `ACT` while `access_row` is opened by the
    /// second. Column commands may follow `tRCD` after the second `ACT`.
    pub fn refresh_access(
        &self,
        bank: BankId,
        refresh_row: RowId,
        access_row: RowId,
    ) -> [ScheduledCommand; 3] {
        [
            ScheduledCommand {
                offset_ns: 0.0,
                command: DramCommand::Act {
                    bank,
                    row: refresh_row,
                },
            },
            ScheduledCommand {
                offset_ns: self.timings.t1,
                command: DramCommand::Pre { bank },
            },
            ScheduledCommand {
                offset_ns: self.timings.t1 + self.timings.t2,
                command: DramCommand::Act {
                    bank,
                    row: access_row,
                },
            },
        ]
    }

    /// Expands a **refresh-refresh** parallelization: both rows are refreshed
    /// and the bank is closed again with the trailing `PRE` once `tRAS` after
    /// the second `ACT` has elapsed (footnote 1: one `PRE` closes both).
    pub fn refresh_refresh(
        &self,
        bank: BankId,
        row_c: RowId,
        row_d: RowId,
        t: &TimingParams,
    ) -> [ScheduledCommand; 4] {
        let second_act = self.timings.t1 + self.timings.t2;
        [
            ScheduledCommand {
                offset_ns: 0.0,
                command: DramCommand::Act { bank, row: row_c },
            },
            ScheduledCommand {
                offset_ns: self.timings.t1,
                command: DramCommand::Pre { bank },
            },
            ScheduledCommand {
                offset_ns: second_act,
                command: DramCommand::Act { bank, row: row_d },
            },
            ScheduledCommand {
                offset_ns: second_act + t.t_ras,
                command: DramCommand::Pre { bank },
            },
        ]
    }

    /// Bank-busy time of a standalone refresh-refresh operation, including
    /// the trailing precharge: `t1 + t2 + tRAS + tRP`.
    pub fn refresh_refresh_busy_ns(&self, t: &TimingParams) -> f64 {
        self.two_row_refresh_ns(t) + t.t_rp
    }

    /// Bank-busy time of a conventional single-row refresh: `tRAS + tRP`.
    pub fn single_refresh_busy_ns(t: &TimingParams) -> f64 {
        t.t_ras + t.t_rp
    }
}

impl Default for HiraOperation {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_latency_numbers() {
        let t = TimingParams::ddr4_2400();
        let op = HiraOperation::nominal();
        assert!((op.two_row_refresh_ns(&t) - 38.0).abs() < 1e-9);
        assert!((op.refresh_latency_reduction(&t) - 0.514) < 0.002);
        assert!((op.lead_ns() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn refresh_access_expansion_is_ordered() {
        let op = HiraOperation::nominal();
        let cmds = op.refresh_access(BankId(2), RowId(10), RowId(900));
        assert_eq!(cmds.len(), 3);
        assert!(cmds.windows(2).all(|w| w[0].offset_ns < w[1].offset_ns));
        assert!(matches!(
            cmds[0].command,
            DramCommand::Act { row: RowId(10), .. }
        ));
        assert!(matches!(cmds[1].command, DramCommand::Pre { .. }));
        assert!(matches!(
            cmds[2].command,
            DramCommand::Act {
                row: RowId(900),
                ..
            }
        ));
    }

    #[test]
    fn refresh_refresh_expansion_closes_the_bank() {
        let t = TimingParams::ddr4_2400();
        let op = HiraOperation::nominal();
        let cmds = op.refresh_refresh(BankId(0), RowId(1), RowId(800), &t);
        assert_eq!(cmds.len(), 4);
        assert!(matches!(cmds[3].command, DramCommand::Pre { .. }));
        assert!((cmds[3].offset_ns - 38.0).abs() < 1e-9);
    }

    #[test]
    fn busy_time_accounting() {
        let t = TimingParams::ddr4_2400();
        let op = HiraOperation::nominal();
        // 38 + 14.25 = 52.25 ns for two rows vs 2 × 46.25 = 92.5 ns.
        assert!((op.refresh_refresh_busy_ns(&t) - 52.25).abs() < 1e-9);
        assert!((HiraOperation::single_refresh_busy_ns(&t) - 46.25).abs() < 1e-9);
        assert!(op.refresh_refresh_busy_ns(&t) < 2.0 * HiraOperation::single_refresh_busy_ns(&t));
    }
}
