//! The append-only on-disk result store.
//!
//! A [`SweepStore`] is a directory of JSONL shards, one per sweep name
//! (`<dir>/<sanitized sweep>.jsonl`), plus an in-memory index over every
//! point in every shard. Each line is one completed sweep point:
//!
//! ```json
//! {"v":1,"hash":"<64 hex>","sweep":"policy_matrix",
//!  "key":{"policy":"hira4","cap":"8"},"wall_ms":12.5,
//!  "telemetry":{"events":8123,"peak_queue":4},
//!  "metrics":[{"metric":"ws","value":6.25}]}
//! ```
//!
//! * `hash` — the content-addressed identity ([`crate::point_key`]): the
//!   canonical scenario config, the point's deterministic seed, and the
//!   code-version salt. Lookups go through the hash alone; the `key` /
//!   `sweep` fields are provenance for humans and tooling.
//! * `wall_ms` / `telemetry` — the *original computation's* cost, replayed
//!   verbatim on cache hits so a warm sweep emits a byte-identical
//!   `BENCH_*.json` (the executor-facing layer sums per-point walls).
//! * `metrics` — the task's measurements, in emission order; values
//!   round-trip bit-exactly through the shortest-decimal JSON writer.
//!
//! The store is strictly append-only: writers only ever `O_APPEND` whole
//! lines, so a crash can at worst leave one truncated line at the tail of
//! one shard. [`SweepStore::open`] detects that case, drops the partial
//! line, and truncates the shard back to its last intact line (reported
//! through [`SweepStore::recovered_lines`]); corruption anywhere *before*
//! the tail is not a crash signature and fails the open loudly.

use crate::hash;
use hira_engine::json;
use hira_engine::{sanitize_component, Metric, PointTelemetry, ScenarioKey};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// One completed sweep point, as persisted in (and recalled from) a shard.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredPoint {
    /// Content hash ([`crate::point_key`]), 64 lowercase hex chars.
    pub hash: String,
    /// The sweep the point was first computed under (shard selector).
    pub sweep: String,
    /// The point's scenario coordinates at computation time (provenance;
    /// lookups key on `hash`, and replayed records carry the *querying*
    /// sweep's key).
    pub key: ScenarioKey,
    /// Wall time of the original computation in milliseconds.
    pub wall_ms: f64,
    /// Run telemetry of the original computation, when reported.
    pub telemetry: Option<PointTelemetry>,
    /// The task's metrics, in emission order.
    pub metrics: Vec<Metric>,
}

impl StoredPoint {
    /// Serializes the point as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut key_json = String::new();
        json::write_object(
            &mut key_json,
            self.key.axes().map(|(a, v)| {
                let mut s = String::new();
                json::write_str(&mut s, v);
                (a, s)
            }),
        );
        let mut sweep = String::new();
        json::write_str(&mut sweep, &self.sweep);
        let mut hash_json = String::new();
        json::write_str(&mut hash_json, &self.hash);
        let mut wall = String::new();
        json::write_f64(&mut wall, self.wall_ms);
        let mut metrics = String::from("[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                metrics.push(',');
            }
            let mut name = String::new();
            json::write_str(&mut name, &m.name);
            let mut value = String::new();
            json::write_f64(&mut value, m.value);
            let mut obj = String::new();
            json::write_object(&mut obj, [("metric", name), ("value", value)]);
            metrics.push_str(&obj);
        }
        metrics.push(']');
        let mut entries = vec![
            ("v", crate::CACHE_SCHEMA_VERSION.to_string()),
            ("hash", hash_json),
            ("sweep", sweep),
            ("key", key_json),
            ("wall_ms", wall),
        ];
        if let Some(t) = self.telemetry {
            let mut tel = String::new();
            json::write_object(
                &mut tel,
                [
                    ("events", t.events.to_string()),
                    ("peak_queue", t.peak_queue.to_string()),
                ],
            );
            entries.push(("telemetry", tel));
        }
        entries.push(("metrics", metrics));
        let mut out = String::new();
        json::write_object(&mut out, entries);
        out
    }

    /// Parses one JSONL line back into a point. `None` when the line is not
    /// a structurally complete stored point (the corrupt-tail signature).
    pub fn from_json_line(line: &str) -> Option<Self> {
        let v = json::parse(line).ok()?;
        let hash = v.get("hash")?.as_str()?.to_string();
        let sweep = v.get("sweep")?.as_str()?.to_string();
        let mut key = ScenarioKey::root();
        for (axis, value) in v.get("key")?.as_obj()? {
            key = key.with(axis, value.as_str()?);
        }
        let wall_entry = v.get("wall_ms")?;
        // The writer renders non-finite floats as null; recall them as NaN.
        let wall_ms = if wall_entry.is_null() {
            f64::NAN
        } else {
            wall_entry.as_f64()?
        };
        let telemetry = match v.get("telemetry") {
            None => None,
            Some(t) => Some(PointTelemetry {
                events: t.get("events")?.as_u64()?,
                peak_queue: t.get("peak_queue")?.as_u64()?,
            }),
        };
        let mut metrics = Vec::new();
        for m in v.get("metrics")?.as_arr()? {
            let value_entry = m.get("value")?;
            metrics.push(Metric {
                name: m.get("metric")?.as_str()?.to_string(),
                value: if value_entry.is_null() {
                    f64::NAN
                } else {
                    value_entry.as_f64()?
                },
            });
        }
        Some(StoredPoint {
            hash,
            sweep,
            key,
            wall_ms,
            telemetry,
            metrics,
        })
    }
}

/// The open store: shard directory + in-memory index over every point.
#[derive(Debug)]
pub struct SweepStore {
    dir: PathBuf,
    index: HashMap<String, StoredPoint>,
    recovered: usize,
}

impl SweepStore {
    /// Opens (creating if necessary) the store at `dir`, loading every
    /// `*.jsonl` shard into the index. A truncated final line in a shard —
    /// the only state an interrupted append can leave behind — is dropped
    /// and the shard is truncated back to its last intact line.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors, and fails with `InvalidData` when a
    /// shard is corrupt *before* its final line (that is damage, not an
    /// interrupted append — refusing beats silently dropping results).
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut shards: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
            .collect();
        // Deterministic load order (ties between duplicate hashes resolve
        // the same way in every process).
        shards.sort();
        let mut store = SweepStore {
            dir,
            index: HashMap::new(),
            recovered: 0,
        };
        for shard in shards {
            store.load_shard(&shard)?;
        }
        Ok(store)
    }

    fn load_shard(&mut self, path: &Path) -> io::Result<()> {
        let mut body = String::new();
        File::open(path)?.read_to_string(&mut body)?;
        let mut good_bytes = 0usize;
        let mut pending: Option<(usize, usize)> = None; // (line_no, byte_end) of first bad line
        for (line_no, line) in body.split_inclusive('\n').enumerate() {
            let end = good_bytes + pending.map_or(0, |_| 0) + line.len();
            let text = line.trim_end_matches('\n');
            if text.is_empty() {
                // A bare trailing newline (or blank line) is harmless.
                if pending.is_none() {
                    good_bytes = end;
                }
                continue;
            }
            match StoredPoint::from_json_line(text) {
                Some(point) if pending.is_none() => {
                    self.index.entry(point.hash.clone()).or_insert(point);
                    good_bytes = end;
                }
                // A parseable line after a bad one: mid-file corruption.
                Some(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "store shard {} is corrupt before its tail (line {}): \
                             refusing to open — delete or repair the shard",
                            path.display(),
                            pending.expect("pending set").0 + 1,
                        ),
                    ));
                }
                None => {
                    if pending.is_none() {
                        pending = Some((line_no, end));
                    }
                }
            }
        }
        if pending.is_some() {
            // Exactly one unparseable run at the tail: an interrupted
            // append. Drop it and truncate the shard to the intact prefix.
            OpenOptions::new()
                .write(true)
                .open(path)?
                .set_len(good_bytes as u64)?;
            self.recovered += 1;
        }
        Ok(())
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the store holds no points.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of shards whose truncated tail was dropped at open time.
    pub fn recovered_lines(&self) -> usize {
        self.recovered
    }

    /// Looks a point up by content hash.
    pub fn get(&self, hash: &str) -> Option<&StoredPoint> {
        self.index.get(hash)
    }

    /// The shard path a sweep name maps to.
    pub fn shard_path(&self, sweep: &str) -> PathBuf {
        let name = sanitize_component(sweep);
        let name = if name.is_empty() {
            "unnamed".to_string()
        } else {
            name
        };
        self.dir.join(format!("{name}.jsonl"))
    }

    /// Appends `points` (grouped by sweep into their shards), skipping
    /// hashes already present, and indexes them. Returns how many points
    /// were actually written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors. Writes are whole buffered lines to an
    /// append-mode file, so an interrupted append leaves at most one
    /// truncated tail line — exactly the case [`SweepStore::open`] recovers.
    pub fn append(&mut self, points: Vec<StoredPoint>) -> io::Result<usize> {
        let mut by_shard: Vec<(PathBuf, String, Vec<StoredPoint>)> = Vec::new();
        let mut appended = 0;
        for p in points {
            if self.index.contains_key(&p.hash) {
                continue;
            }
            let path = self.shard_path(&p.sweep);
            match by_shard.iter_mut().find(|(s, _, _)| *s == path) {
                Some((_, buf, batch)) => {
                    buf.push_str(&p.to_json_line());
                    buf.push('\n');
                    batch.push(p);
                }
                None => {
                    let mut buf = p.to_json_line();
                    buf.push('\n');
                    by_shard.push((path, buf, vec![p]));
                }
            }
        }
        for (path, buf, batch) in by_shard {
            let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
            file.write_all(buf.as_bytes())?;
            file.flush()?;
            for p in batch {
                self.index.insert(p.hash.clone(), p);
                appended += 1;
            }
        }
        Ok(appended)
    }
}

/// Re-exported for key construction convenience.
pub use hash::point_key;

#[cfg(test)]
mod tests {
    use super::*;
    use hira_engine::metric;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hira-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample(hash: &str, sweep: &str) -> StoredPoint {
        StoredPoint {
            hash: hash.to_string(),
            sweep: sweep.to_string(),
            key: ScenarioKey::root().with("policy", "hira4").with("mix", "0"),
            wall_ms: 12.5,
            telemetry: Some(PointTelemetry {
                events: 8123,
                peak_queue: 4,
            }),
            metrics: vec![metric("ws", 6.25), metric("ipc", 0.1 + 0.2)],
        }
    }

    #[test]
    fn points_round_trip_through_their_json_line() {
        let p = sample("ab12", "policy_matrix");
        let line = p.to_json_line();
        assert!(!line.contains('\n'));
        assert_eq!(StoredPoint::from_json_line(&line), Some(p));
        // Telemetry-free points omit the field and still round-trip.
        let mut bare = sample("cd34", "policy_matrix");
        bare.telemetry = None;
        assert_eq!(
            StoredPoint::from_json_line(&bare.to_json_line()),
            Some(bare)
        );
        // Structurally incomplete lines are rejected, not half-parsed.
        assert_eq!(StoredPoint::from_json_line("{\"v\":1}"), None);
        assert_eq!(StoredPoint::from_json_line("{\"hash\""), None);
    }

    #[test]
    fn append_reopen_round_trips_and_dedups() {
        let dir = tmp_dir("roundtrip");
        let mut store = SweepStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let a = sample("aa", "policy_matrix");
        let b = sample("bb", "workload_matrix");
        assert_eq!(store.append(vec![a.clone(), b.clone()]).unwrap(), 2);
        // Re-appending known hashes writes nothing.
        assert_eq!(store.append(vec![a.clone()]).unwrap(), 0);
        assert_eq!(store.len(), 2);
        drop(store);
        let store = SweepStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get("aa"), Some(&a));
        assert_eq!(store.get("bb"), Some(&b));
        assert_eq!(store.recovered_lines(), 0);
        assert!(store.shard_path("policy_matrix").exists());
        assert!(store.shard_path("workload_matrix").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_tail_is_dropped_and_the_shard_repaired() {
        let dir = tmp_dir("tail");
        let mut store = SweepStore::open(&dir).unwrap();
        store
            .append(vec![sample("aa", "s"), sample("bb", "s")])
            .unwrap();
        drop(store);
        // Simulate an interrupted append: half a line at the tail.
        let shard = dir.join("s.jsonl");
        let mut file = OpenOptions::new().append(true).open(&shard).unwrap();
        file.write_all(b"{\"v\":1,\"hash\":\"cc\",\"swe").unwrap();
        drop(file);
        let store = SweepStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2, "intact points survive");
        assert_eq!(store.recovered_lines(), 1);
        assert!(store.get("cc").is_none());
        // The shard was physically repaired: a fresh open sees no damage…
        let store2 = SweepStore::open(&dir).unwrap();
        assert_eq!(store2.recovered_lines(), 0);
        // …and appending after recovery yields a fully valid shard.
        let mut store2 = store2;
        store2.append(vec![sample("dd", "s")]).unwrap();
        let store3 = SweepStore::open(&dir).unwrap();
        assert_eq!(store3.len(), 3);
        assert_eq!(store3.recovered_lines(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_file_corruption_fails_the_open_loudly() {
        let dir = tmp_dir("midfile");
        let mut store = SweepStore::open(&dir).unwrap();
        store
            .append(vec![sample("aa", "s"), sample("bb", "s")])
            .unwrap();
        drop(store);
        let shard = dir.join("s.jsonl");
        let body = std::fs::read_to_string(&shard).unwrap();
        let mut lines: Vec<&str> = body.lines().collect();
        lines[0] = "{\"v\":1,\"hash\":\"aa\",garbage";
        std::fs::write(&shard, format!("{}\n", lines.join("\n"))).unwrap();
        let err = SweepStore::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("corrupt before its tail"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_paths_are_sanitized_per_sweep() {
        let dir = tmp_dir("shards");
        let store = SweepStore::open(&dir).unwrap();
        assert!(store
            .shard_path("policy_matrix")
            .ends_with("policy_matrix.jsonl"));
        assert!(store
            .shard_path("serve: weird/sweep")
            .ends_with("serve--weird-sweep.jsonl"));
        assert!(store.shard_path("").ends_with("unnamed.jsonl"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
