//! Content addressing: SHA-256, point keys, and the code-version salt.
//!
//! A cached result is only reusable while the *code* that produced it is
//! equivalent, so every point key folds in a salt derived from
//! [`crate::CACHE_SCHEMA_VERSION`] and the registry fingerprints of the
//! process (which policies/workloads/devices/probes exist, under which
//! names). Renaming or adding a registered handle changes the salt and
//! thereby invalidates the whole store — conservative on purpose: names
//! are the identity the cache keys configurations by, so a registry
//! change is a semantics change until proven otherwise.

use std::fmt::Write as _;

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 (FIPS 180-4). Hand-rolled because the workspace
/// builds offline with the standard library only; validated against the
/// published test vectors below.
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher in the standard initial state.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len < 64 {
                // `data` fitted entirely into the partial buffer; falling
                // through would clobber `buf_len` with the now-empty rest.
                return;
            }
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            data = rest;
        }
        self.buf[..data.len()].copy_from_slice(data);
        self.buf_len = data.len();
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finish(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual length append: `update` would recount these 8 bytes.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte word"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// SHA-256 of `data`, rendered as 64 lowercase hex characters.
pub fn sha256_hex(data: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(data);
    let digest = h.finish();
    let mut out = String::with_capacity(64);
    for b in digest {
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// The content-addressed identity of one sweep point: SHA-256 over the
/// canonical scenario configuration, the point's deterministic seed, and
/// the process's code-version [`code_version_salt`]. Stable across runs,
/// platforms and thread counts; any change to what the point *means*
/// (config, seed, schema version, registry contents) moves the key.
pub fn point_key(canonical_config: &str, seed: u64, salt: u64) -> String {
    let mut h = Sha256::new();
    h.update(b"hira-store/point\x1e");
    h.update(&salt.to_le_bytes());
    h.update(&seed.to_le_bytes());
    h.update(canonical_config.as_bytes());
    let digest = h.finish();
    let mut out = String::with_capacity(64);
    for b in digest {
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// [`code_version_salt`] with an explicit schema version — the testable
/// core: bumping the version or changing any section's entries changes the
/// salt; identical inputs (e.g. the same registries in two processes)
/// yield the identical salt.
pub fn salt_with_version<'a>(
    version: u32,
    sections: impl IntoIterator<Item = (&'a str, Vec<String>)>,
) -> u64 {
    let mut h = Sha256::new();
    h.update(b"hira-store/salt\x1e");
    h.update(&version.to_le_bytes());
    for (name, entries) in sections {
        h.update(name.as_bytes());
        h.update(&[0x1f]); // unit separator: section name vs entries
        for e in entries {
            h.update(e.as_bytes());
            h.update(&[0x1f]);
        }
        h.update(&[0x1e]); // record separator between sections
    }
    u64::from_le_bytes(h.finish()[..8].try_into().expect("8 digest bytes"))
}

/// The code-version salt for the current [`crate::CACHE_SCHEMA_VERSION`]
/// and the given registry fingerprint sections (section name → registered
/// handle names, in registry order). Callers pass every registry whose
/// contents a cached result could depend on — `hira-bench` passes
/// policies, workloads, devices and probe forms.
pub fn code_version_salt<'a>(sections: impl IntoIterator<Item = (&'a str, Vec<String>)>) -> u64 {
    salt_with_version(crate::CACHE_SCHEMA_VERSION, sections)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_matches_published_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // A multi-block message exercising the buffering path.
        let million_a = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256_hex(&million_a),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_and_one_shot_digests_agree() {
        let data = b"the quick brown fox jumps over the lazy dog, repeatedly";
        let one_shot = sha256_hex(data);
        for split in [0, 1, 7, 32, data.len()] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            let mut hex = String::new();
            for b in h.finish() {
                let _ = write!(hex, "{b:02x}");
            }
            assert_eq!(hex, one_shot, "split at {split}");
        }
    }

    #[test]
    fn point_keys_separate_config_seed_and_salt() {
        let base = point_key("cfg", 1, 2);
        assert_eq!(base.len(), 64);
        assert_eq!(base, point_key("cfg", 1, 2), "deterministic");
        assert_ne!(base, point_key("cfg2", 1, 2));
        assert_ne!(base, point_key("cfg", 3, 2));
        assert_ne!(base, point_key("cfg", 1, 4));
    }

    fn sections(names: &[&str]) -> Vec<(&'static str, Vec<String>)> {
        vec![("policy", names.iter().map(|s| s.to_string()).collect())]
    }

    #[test]
    fn salt_changes_with_schema_version_and_registry_contents() {
        let a = salt_with_version(1, sections(&["noref", "baseline"]));
        // Identical registries across processes: identical salt.
        assert_eq!(a, salt_with_version(1, sections(&["noref", "baseline"])));
        // Bumping CACHE_SCHEMA_VERSION invalidates everything.
        assert_ne!(a, salt_with_version(2, sections(&["noref", "baseline"])));
        // Adding a handle invalidates.
        assert_ne!(
            a,
            salt_with_version(1, sections(&["noref", "baseline", "hira4"]))
        );
        // Renaming a handle invalidates.
        assert_ne!(a, salt_with_version(1, sections(&["noref", "base-line"])));
        // Moving a name across section boundaries is not a collision.
        let split = salt_with_version(
            1,
            vec![
                ("policy", vec!["noref".to_string()]),
                ("workload", vec!["baseline".to_string()]),
            ],
        );
        assert_ne!(a, split);
        // Section names themselves matter.
        assert_ne!(
            salt_with_version(1, vec![("policy", vec![])]),
            salt_with_version(1, vec![("workload", vec![])]),
        );
    }

    #[test]
    fn code_version_salt_uses_the_crate_schema_version() {
        let here = code_version_salt(sections(&["noref"]));
        assert_eq!(
            here,
            salt_with_version(crate::CACHE_SCHEMA_VERSION, sections(&["noref"]))
        );
    }
}
