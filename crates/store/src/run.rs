//! The cache-aware executor path: plan a sweep against the store, run only
//! the misses, replay the hits.
//!
//! The contract is **bit-identity with the uncached path**: for any thread
//! count and any hit/miss interleaving, the [`RunSet`] a cached run
//! assembles is identical — canonical *and* bench serialization — to the
//! run set the same sweep would produce cold through this module. That
//! works because:
//!
//! * tasks are deterministic functions of their [`Scenario`] (key, seed,
//!   params), the executor's own contract, so a replayed result *is* the
//!   result the task would recompute;
//! * per-point wall times and telemetry are persisted at computation time
//!   and replayed verbatim on hits, and the run set's total wall is
//!   defined as the **sum of per-point walls** — a quantity invariant
//!   under caching, unlike elapsed time;
//! * the reported thread count is the worker count the executor *would*
//!   use for the full sweep (`threads.min(points)`), independent of how
//!   many points actually missed.
//!
//! Usage is two-phase — [`SweepPlan::compute`] classifies every point as
//! hit or miss without running anything, so callers can scope side work
//! (e.g. alone-IPC warmup) to the misses; then
//! [`CacheExecutorExt::run_cached`] executes the plan.

use crate::store::{StoredPoint, SweepStore};
use hira_engine::{Executor, Metric, PointTelemetry, RunRecord, RunSet, Scenario, Sweep};
use std::io;
use std::time::Instant;

/// A sweep classified against the store: per-point content hashes plus the
/// cached results of every hit. Computing a plan runs nothing.
#[derive(Debug)]
pub struct SweepPlan {
    hashes: Vec<String>,
    hits: Vec<Option<StoredPoint>>,
}

impl SweepPlan {
    /// Classifies every point of `sweep` against `store`. `canon` renders a
    /// point's canonical configuration string — everything its result
    /// depends on besides the seed (which the scenario carries) and the
    /// code version (which `salt` carries). Callers whose tasks measure
    /// different things for the same configuration must bake a task tag
    /// into the canonical string, or their keys collide.
    pub fn compute<P>(
        store: &SweepStore,
        sweep: &Sweep<P>,
        salt: u64,
        canon: impl Fn(Scenario<'_, P>) -> String,
    ) -> Self {
        let mut hashes = Vec::with_capacity(sweep.len());
        let mut hits = Vec::with_capacity(sweep.len());
        for i in 0..sweep.len() {
            let sc = sweep.scenario(i);
            let seed = sc.seed;
            let hash = crate::point_key(&canon(sc), seed, salt);
            hits.push(store.get(&hash).cloned());
            hashes.push(hash);
        }
        SweepPlan { hashes, hits }
    }

    /// Number of planned points.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Whether the plan covers no points.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Number of points the store already holds.
    pub fn hits(&self) -> usize {
        self.hits.iter().filter(|h| h.is_some()).count()
    }

    /// Number of points that must be computed.
    pub fn misses(&self) -> usize {
        self.len() - self.hits()
    }

    /// Whether every point is a hit — a warm run performs zero simulations.
    pub fn is_warm(&self) -> bool {
        self.misses() == 0
    }

    /// The point indices that must be computed, in point order.
    pub fn miss_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.hits
            .iter()
            .enumerate()
            .filter(|(_, h)| h.is_none())
            .map(|(i, _)| i)
    }

    /// The content hash of point `i`.
    pub fn hash(&self, i: usize) -> &str {
        &self.hashes[i]
    }
}

/// Hit/miss accounting of one cached run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Points in the sweep.
    pub points: usize,
    /// Points replayed from the store.
    pub hits: usize,
    /// Points computed this run.
    pub misses: usize,
    /// Points newly persisted (≤ misses: duplicate hashes within one sweep
    /// collapse to a single stored point).
    pub appended: usize,
}

/// One finished point, streamed to [`CacheExecutorExt::run_cached`]'s
/// `on_point` observer as it lands: hits first in point order (replayed in
/// microseconds), then misses in completion order from worker threads —
/// observers that write shared state must synchronize.
#[derive(Debug)]
pub struct PointOutcome<'a> {
    /// The point's index in the sweep.
    pub index: usize,
    /// Whether the point was replayed from the store.
    pub cached: bool,
    /// Milliseconds the point sat queued before a worker picked it up
    /// (0 for replayed hits — they never enter the work queue). Purely
    /// observational: never persisted, never part of the run set.
    pub queue_wait_ms: f64,
    /// The point's result (stored form).
    pub point: &'a StoredPoint,
}

/// A streamed-point observer.
pub type OnPoint<'a> = &'a (dyn Fn(PointOutcome<'_>) + Sync);

/// The cache-aware run path, as an extension of the engine's [`Executor`].
pub trait CacheExecutorExt {
    /// Executes `plan`: replays every hit from `store`, schedules only the
    /// misses on the executor's work queue, persists the new results, and
    /// assembles the full [`RunSet`] in point order — bit-identical to the
    /// run set an uncached execution of `sweep` would produce, for any
    /// thread count and any hit/miss split.
    ///
    /// `task` is the uncached per-point computation (metrics + optional
    /// telemetry); it is invoked **only for misses**. `on_point` observes
    /// every finished point (see [`PointOutcome`]).
    ///
    /// # Errors
    ///
    /// Propagates store append failures (the computed results are lost with
    /// the error — callers should treat this as fatal).
    ///
    /// # Panics
    ///
    /// Panics if `plan` was computed for a different sweep (length
    /// mismatch), and propagates task panics.
    fn run_cached<P, F>(
        &self,
        store: &mut SweepStore,
        sweep: &Sweep<P>,
        plan: &SweepPlan,
        task: F,
        on_point: Option<OnPoint<'_>>,
    ) -> io::Result<(RunSet, CacheStats)>
    where
        P: Sync,
        F: Fn(Scenario<'_, P>) -> (Vec<Metric>, Option<PointTelemetry>) + Sync;
}

impl CacheExecutorExt for Executor {
    fn run_cached<P, F>(
        &self,
        store: &mut SweepStore,
        sweep: &Sweep<P>,
        plan: &SweepPlan,
        task: F,
        on_point: Option<OnPoint<'_>>,
    ) -> io::Result<(RunSet, CacheStats)>
    where
        P: Sync,
        F: Fn(Scenario<'_, P>) -> (Vec<Metric>, Option<PointTelemetry>) + Sync,
    {
        let n = sweep.len();
        assert_eq!(
            plan.len(),
            n,
            "plan covers {} points but sweep `{}` has {n}",
            plan.len(),
            sweep.name()
        );

        // Hits stream immediately, in point order.
        if let Some(cb) = on_point {
            for (i, hit) in plan.hits.iter().enumerate() {
                if let Some(point) = hit {
                    cb(PointOutcome {
                        index: i,
                        cached: true,
                        queue_wait_ms: 0.0,
                        point,
                    });
                }
            }
        }

        // Only the misses enter the work queue. The miss sweep's payload is
        // the original point index; the task runs against the *original*
        // scenario view, so keys, seeds and params are exactly those of an
        // uncached run.
        let miss_indices: Vec<usize> = plan.miss_indices().collect();
        let miss_sweep = Sweep::from_points(
            sweep.name(),
            sweep.base_seed(),
            miss_indices
                .iter()
                .map(|&i| (sweep.points()[i].0.clone(), i))
                .collect(),
        );
        let t_queue = Instant::now();
        let computed: Vec<StoredPoint> = self.map(&miss_sweep, |sc| {
            let queue_wait_ms = t_queue.elapsed().as_secs_f64() * 1e3;
            let i = *sc.params;
            let orig = sweep.scenario(i);
            let key = orig.key.clone();
            let t0 = Instant::now();
            let (metrics, telemetry) = task(orig);
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let point = StoredPoint {
                hash: plan.hashes[i].clone(),
                sweep: sweep.name().to_string(),
                key,
                wall_ms,
                telemetry,
                metrics,
            };
            if let Some(cb) = on_point {
                cb(PointOutcome {
                    index: i,
                    cached: false,
                    queue_wait_ms,
                    point: &point,
                });
            }
            point
        });
        let appended = store.append(computed.clone())?;

        // Assemble the full run set in point order. Replayed records carry
        // the querying sweep's key (stored keys are provenance, and a result
        // may have been computed under another sweep's coordinates).
        let mut by_index: Vec<Option<&StoredPoint>> =
            plan.hits.iter().map(|h| h.as_ref()).collect();
        for (&i, point) in miss_indices.iter().zip(&computed) {
            by_index[i] = Some(point);
        }
        let mut records = Vec::new();
        let mut wall_ms = 0.0;
        for (i, point) in by_index.iter().enumerate() {
            let point = point.expect("every point is a hit or was computed");
            wall_ms += point.wall_ms;
            for m in &point.metrics {
                records.push(RunRecord {
                    key: sweep.points()[i].0.clone(),
                    metric: m.name.clone(),
                    value: m.value,
                    wall_ms: point.wall_ms,
                    telemetry: point.telemetry,
                });
            }
        }
        let run = RunSet {
            sweep: sweep.name().to_string(),
            threads: self.threads().min(n.max(1)),
            wall_ms,
            records,
        };
        let stats = CacheStats {
            points: n,
            hits: n - miss_indices.len(),
            misses: miss_indices.len(),
            appended,
        };
        Ok((run, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hira_engine::metric;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hira-run-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn demo_sweep(n: u32) -> Sweep<u32> {
        Sweep::new("cache_demo").axis("i", (0..n).map(|i| (i.to_string(), i)), |_, &i| i)
    }

    fn canon(sc: Scenario<'_, u32>) -> String {
        format!("task=demo;x={}", sc.params)
    }

    /// A deterministic pseudo-measurement: pure in the scenario.
    fn demo_task(sc: Scenario<'_, u32>) -> (Vec<Metric>, Option<PointTelemetry>) {
        let x = sc.seed.wrapping_mul(0x2545_F491_4F6C_DD1D);
        (
            vec![
                metric("m", (x >> 11) as f64),
                metric("twice", f64::from(*sc.params) * 2.0),
            ],
            Some(PointTelemetry {
                events: u64::from(*sc.params) * 10,
                peak_queue: 3,
            }),
        )
    }

    #[test]
    fn plans_classify_without_running_and_warm_runs_simulate_nothing() {
        let dir = tmp_dir("warm");
        let mut store = SweepStore::open(&dir).unwrap();
        let sweep = demo_sweep(9);
        let ex = Executor::with_threads(4);
        let calls = AtomicUsize::new(0);
        let task = |sc: Scenario<'_, u32>| {
            calls.fetch_add(1, Ordering::Relaxed);
            demo_task(sc)
        };

        let plan = SweepPlan::compute(&store, &sweep, 7, canon);
        assert_eq!((plan.hits(), plan.misses()), (0, 9));
        assert_eq!(calls.load(Ordering::Relaxed), 0, "planning runs nothing");

        let (cold, stats) = ex
            .run_cached(&mut store, &sweep, &plan, task, None)
            .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 9);
        assert_eq!(
            stats,
            CacheStats {
                points: 9,
                hits: 0,
                misses: 9,
                appended: 9
            }
        );

        let plan = SweepPlan::compute(&store, &sweep, 7, canon);
        assert!(plan.is_warm());
        let (warm, stats) = ex
            .run_cached(&mut store, &sweep, &plan, task, None)
            .unwrap();
        assert_eq!(
            calls.load(Ordering::Relaxed),
            9,
            "warm run computes nothing"
        );
        assert_eq!(stats.hits, 9);
        // Bit-identity: canonical AND bench serializations match the cold run.
        assert_eq!(warm.canonical_json(), cold.canonical_json());
        assert_eq!(warm.bench_json(), cold.bench_json());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cached_runs_are_bit_identical_for_any_thread_count_and_split() {
        let dir = tmp_dir("splits");
        let mut seed_store = SweepStore::open(&dir).unwrap();
        let sweep = demo_sweep(12);
        // Reference: a cold run through the cached path at 1 thread.
        let plan = SweepPlan::compute(&seed_store, &sweep, 7, canon);
        let (reference, _) = Executor::with_threads(1)
            .run_cached(&mut seed_store, &sweep, &plan, demo_task, None)
            .unwrap();
        // And the engine's plain uncached path agrees on the canonical form.
        let plain = Executor::with_threads(1).run_instrumented(&sweep, |sc| {
            let (m, t) = demo_task(sc);
            ((), m, t)
        });
        assert_eq!(reference.canonical_json(), plain.1.canonical_json());
        std::fs::remove_dir_all(&dir).ok();

        // Partial prewarms at several thread counts: seed a store with a
        // subset sweep, then run the full sweep over the mixed store.
        for (threads, prewarm) in [(1usize, 5u32), (8, 5), (8, 0), (8, 12), (3, 11)] {
            let dir = tmp_dir(&format!("split-{threads}-{prewarm}"));
            let mut store = SweepStore::open(&dir).unwrap();
            let subset = demo_sweep(prewarm);
            let plan = SweepPlan::compute(&store, &subset, 7, canon);
            Executor::with_threads(threads)
                .run_cached(&mut store, &subset, &plan, demo_task, None)
                .unwrap();
            let plan = SweepPlan::compute(&store, &sweep, 7, canon);
            assert_eq!(plan.hits(), prewarm as usize);
            let (run, stats) = Executor::with_threads(threads)
                .run_cached(&mut store, &sweep, &plan, demo_task, None)
                .unwrap();
            assert_eq!(stats.misses, 12 - prewarm as usize);
            assert_eq!(
                run.canonical_json(),
                reference.canonical_json(),
                "threads={threads} prewarm={prewarm}"
            );
            assert_eq!(
                run.threads,
                Executor::with_threads(threads).threads().min(12)
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn on_point_streams_hits_in_order_then_misses_as_computed() {
        let dir = tmp_dir("stream");
        let mut store = SweepStore::open(&dir).unwrap();
        let sweep = demo_sweep(6);
        let ex = Executor::with_threads(2);
        // Prewarm points 0..3 via a subset sweep.
        let subset = demo_sweep(3);
        let plan = SweepPlan::compute(&store, &subset, 7, canon);
        ex.run_cached(&mut store, &subset, &plan, demo_task, None)
            .unwrap();

        let seen: Mutex<Vec<(usize, bool)>> = Mutex::new(Vec::new());
        let observer = |o: PointOutcome<'_>| {
            assert_eq!(o.point.hash.len(), 64);
            if o.cached {
                assert_eq!(o.queue_wait_ms, 0.0, "replays never queue");
            } else {
                assert!(o.queue_wait_ms >= 0.0);
            }
            seen.lock().unwrap().push((o.index, o.cached));
        };
        let plan = SweepPlan::compute(&store, &sweep, 7, canon);
        let (_, stats) = ex
            .run_cached(&mut store, &sweep, &plan, demo_task, Some(&observer))
            .unwrap();
        assert_eq!(
            stats,
            CacheStats {
                points: 6,
                hits: 3,
                misses: 3,
                appended: 3
            }
        );
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 6, "every point is observed exactly once");
        // Hits arrive first, in point order.
        assert_eq!(&seen[..3], &[(0, true), (1, true), (2, true)]);
        // Misses follow in some completion order, flagged uncached.
        let mut missed: Vec<usize> = seen[3..]
            .iter()
            .map(|&(i, c)| {
                assert!(!c);
                i
            })
            .collect();
        missed.sort_unstable();
        assert_eq!(missed, vec![3, 4, 5]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn changing_the_salt_invalidates_every_point() {
        let dir = tmp_dir("salt");
        let mut store = SweepStore::open(&dir).unwrap();
        let sweep = demo_sweep(4);
        let ex = Executor::with_threads(2);
        let plan = SweepPlan::compute(&store, &sweep, 7, canon);
        ex.run_cached(&mut store, &sweep, &plan, demo_task, None)
            .unwrap();
        assert!(SweepPlan::compute(&store, &sweep, 7, canon).is_warm());
        let other = SweepPlan::compute(&store, &sweep, 8, canon);
        assert_eq!(other.misses(), 4, "new salt, cold cache");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "plan covers")]
    fn plans_must_match_their_sweep() {
        let dir = tmp_dir("mismatch");
        let mut store = SweepStore::open(&dir).unwrap();
        let plan = SweepPlan::compute(&store, &demo_sweep(2), 7, canon);
        let _ = Executor::with_threads(1).run_cached(
            &mut store,
            &demo_sweep(3),
            &plan,
            demo_task,
            None,
        );
    }
}
