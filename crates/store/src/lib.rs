//! # hira-store — content-addressed sweep-result cache
//!
//! Re-running a figure binary recomputes every sweep point from scratch,
//! even though the points are deterministic functions of (configuration,
//! seed, code version). This crate makes completed points durable and
//! addressable:
//!
//! * [`point_key`] — the content address: SHA-256 over a canonical
//!   configuration string, the point's deterministic seed, and a
//!   code-version salt ([`code_version_salt`]) derived from
//!   [`CACHE_SCHEMA_VERSION`] plus the process's registry fingerprints.
//!   Registry changes (a policy added, a workload renamed) move the salt
//!   and conservatively invalidate the whole store.
//! * [`SweepStore`] — an append-only on-disk store (one JSONL shard per
//!   sweep, in-memory index over all shards) with truncated-tail crash
//!   recovery.
//! * [`SweepPlan`] / [`CacheExecutorExt::run_cached`] — the cache-aware
//!   executor path: plan a sweep (classify hits/misses, running nothing),
//!   then execute — hits replay from the store in microseconds, only
//!   misses enter the work queue, and the assembled
//!   [`RunSet`](hira_engine::RunSet) is
//!   **bit-identical** to an uncached run for any thread count and any
//!   hit/miss interleaving (see `run` module docs for why).
//!
//! ## Example
//!
//! ```rust
//! use hira_engine::{metric, Executor, Sweep};
//! use hira_store::{code_version_salt, CacheExecutorExt, SweepPlan, SweepStore};
//!
//! let dir = std::env::temp_dir().join(format!("hira-store-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut store = SweepStore::open(&dir)?;
//!
//! // The salt folds in the schema version and the registries the results
//! // depend on; identical registries in another process → identical salt.
//! let salt = code_version_salt([("policy", vec!["noref".to_string(), "hira4".to_string()])]);
//!
//! let sweep = Sweep::new("doc_demo").axis("n", [("1", 1u32), ("2", 2)], |_, &n| n);
//! // `canon` must capture everything the result depends on besides seed
//! // and code version — including a task tag when several tasks measure
//! // different things for the same configuration.
//! let canon = |sc: hira_engine::Scenario<'_, u32>| format!("task=doc;n={}", sc.params);
//! let task = |sc: hira_engine::Scenario<'_, u32>| {
//!     (vec![metric("value", f64::from(*sc.params) * 10.0)], None)
//! };
//!
//! let ex = Executor::with_threads(2);
//! let plan = SweepPlan::compute(&store, &sweep, salt, canon);
//! assert_eq!(plan.misses(), 2); // cold cache
//! let (cold, _) = ex.run_cached(&mut store, &sweep, &plan, task, None)?;
//!
//! let plan = SweepPlan::compute(&store, &sweep, salt, canon);
//! assert!(plan.is_warm()); // every point is now a hit…
//! let (warm, stats) = ex.run_cached(&mut store, &sweep, &plan, task, None)?;
//! assert_eq!((stats.hits, stats.misses), (2, 0)); // …so nothing is computed
//! assert_eq!(warm.bench_json(), cold.bench_json()); // byte-identical replay
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod hash;
pub mod run;
pub mod store;

/// The cache schema version. Bump whenever the meaning of a stored result
/// changes — the canonical configuration grammar, the metric semantics, the
/// JSONL schema — and every existing store invalidates itself.
pub const CACHE_SCHEMA_VERSION: u32 = 1;

pub use hash::{code_version_salt, point_key, salt_with_version, sha256_hex, Sha256};
pub use run::{CacheExecutorExt, CacheStats, OnPoint, PointOutcome, SweepPlan};
pub use store::{StoredPoint, SweepStore};
