//! Live sweep progress: done/total, points/sec and an ETA.
//!
//! A [`Progress`] is a cheap shared ticker: workers call
//! [`Progress::point_done`] as points complete (from any thread) and get
//! back a [`ProgressSnapshot`] — a consistent view the caller can render
//! ([`ProgressSnapshot::render`]), stream as a `progress` event, or feed
//! to a metrics gauge. The rate and ETA count only *computed* points:
//! cache replays land in microseconds and would otherwise make the ETA
//! for the remaining real work wildly optimistic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct ProgressInner {
    total: usize,
    done: AtomicUsize,
    cached: AtomicUsize,
    epoch: Instant,
}

/// A shared done/total ticker for one sweep (see module docs). Cloning is
/// cheap and clones share the count.
#[derive(Clone)]
pub struct Progress {
    inner: Arc<ProgressInner>,
}

impl Progress {
    /// A ticker expecting `total` points, with the clock starting now.
    pub fn new(total: usize) -> Progress {
        Progress {
            inner: Arc::new(ProgressInner {
                total,
                done: AtomicUsize::new(0),
                cached: AtomicUsize::new(0),
                epoch: Instant::now(),
            }),
        }
    }

    /// Records one finished point (`cached` when it was a cache replay)
    /// and returns the snapshot that includes it.
    pub fn point_done(&self, cached: bool) -> ProgressSnapshot {
        if cached {
            self.inner.cached.fetch_add(1, Ordering::Relaxed);
        }
        let done = self.inner.done.fetch_add(1, Ordering::Relaxed) + 1;
        self.snapshot_at(done)
    }

    /// The current state without recording anything.
    pub fn snapshot(&self) -> ProgressSnapshot {
        self.snapshot_at(self.inner.done.load(Ordering::Relaxed))
    }

    fn snapshot_at(&self, done: usize) -> ProgressSnapshot {
        let cached = self.inner.cached.load(Ordering::Relaxed).min(done);
        let elapsed_ms = self.inner.epoch.elapsed().as_secs_f64() * 1e3;
        let computed = done - cached;
        let remaining = self.inner.total.saturating_sub(done);
        let points_per_sec = if computed > 0 && elapsed_ms > 0.0 {
            computed as f64 / (elapsed_ms / 1e3)
        } else {
            0.0
        };
        let eta_ms = if remaining == 0 {
            Some(0.0)
        } else if points_per_sec > 0.0 {
            Some(remaining as f64 / points_per_sec * 1e3)
        } else {
            None
        };
        ProgressSnapshot {
            done,
            total: self.inner.total,
            cached,
            elapsed_ms,
            points_per_sec,
            eta_ms,
        }
    }
}

impl std::fmt::Debug for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Progress")
            .field("done", &s.done)
            .field("total", &s.total)
            .finish()
    }
}

/// One consistent view of a [`Progress`] ticker.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// Points finished so far (replays included).
    pub done: usize,
    /// Points the sweep will run in total.
    pub total: usize,
    /// How many of `done` were cache replays.
    pub cached: usize,
    /// Milliseconds since the ticker started.
    pub elapsed_ms: f64,
    /// Computed (non-replay) points per second; 0 until one completes.
    pub points_per_sec: f64,
    /// Estimated milliseconds to finish: `Some(0)` when done, `None`
    /// while no computed point has landed to calibrate a rate.
    pub eta_ms: Option<f64>,
}

impl ProgressSnapshot {
    /// A one-line human rendering: `7/24 points (2 cached) 3.1/s eta 5s`.
    pub fn render(&self) -> String {
        let mut out = format!("{}/{} points", self.done, self.total);
        if self.cached > 0 {
            out.push_str(&format!(" ({} cached)", self.cached));
        }
        if self.points_per_sec > 0.0 {
            out.push_str(&format!(" {:.1}/s", self.points_per_sec));
        }
        match self.eta_ms {
            Some(eta) if self.done < self.total => {
                out.push_str(&format!(" eta {:.0}s", eta / 1e3));
            }
            _ => {}
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_points_and_separates_replays() {
        let p = Progress::new(4);
        let s1 = p.point_done(true);
        assert_eq!((s1.done, s1.cached), (1, 1));
        assert_eq!(s1.points_per_sec, 0.0, "replays do not set a rate");
        assert!(s1.eta_ms.is_none(), "no rate, no ETA");
        let s2 = p.point_done(false);
        assert_eq!((s2.done, s2.cached), (2, 1));
        assert!(s2.points_per_sec > 0.0);
        let eta = s2.eta_ms.expect("rate known -> ETA known");
        assert!(eta >= 0.0);
        p.point_done(false);
        let s4 = p.point_done(false);
        assert_eq!((s4.done, s4.total), (4, 4));
        assert_eq!(s4.eta_ms, Some(0.0), "finished sweeps have zero ETA");
    }

    #[test]
    fn clones_share_one_ticker_across_threads() {
        let p = Progress::new(100);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let p = p.clone();
                scope.spawn(move || {
                    for i in 0..25 {
                        p.point_done(i % 2 == 0);
                    }
                });
            }
        });
        let s = p.snapshot();
        assert_eq!((s.done, s.cached), (100, 52));
    }

    #[test]
    fn render_is_compact_and_complete() {
        let p = Progress::new(10);
        p.point_done(true);
        let line = p.point_done(false).render();
        assert!(line.starts_with("2/10 points (1 cached)"), "{line}");
        assert!(line.contains("/s"), "{line}");
        assert!(line.contains("eta"), "{line}");
    }
}
