//! The span/event tracing core: structured JSONL with monotonic
//! timestamps.
//!
//! A [`TraceSink`] is a shared, append-only destination for trace lines —
//! a file on disk or an in-memory buffer for tests. Every line is one JSON
//! object:
//!
//! * `t_us` — microseconds since the sink was opened (monotonic clock,
//!   never wall time, so lines always sort by emission order),
//! * `level` — `error|warn|info|debug|trace` (see [`Level`]),
//! * `event` — the event (or span) name,
//! * free-form scalar fields the caller attached ([`Field`]),
//! * spans additionally carry `span` (a per-sink unique id) and `dur_us`
//!   (the span's duration) — a [`Span`] writes its single line when it
//!   finishes, so a span line *is* its own close record.
//!
//! Events above the sink's configured [`Level`] are dropped before any
//! formatting happens, and a filtered [`Span`] is an inert value — tracing
//! an untraced run costs a branch.
//!
//! File sinks derive per-sweep names through the engine's shared
//! [`pathkey`](hira_engine::sanitize_component) sanitizer
//! ([`TraceSink::for_sweep`]), the same naming the sweep store uses for
//! its shards.

use crate::level::Level;
use hira_engine::json;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One named scalar attached to an event or span.
#[derive(Debug, Clone)]
pub struct Field {
    name: String,
    /// The value, pre-rendered as JSON.
    json: String,
}

/// A field value: one JSON scalar.
#[derive(Debug, Clone)]
pub enum FieldValue {
    /// A JSON string.
    Str(String),
    /// A JSON non-negative integer.
    U64(u64),
    /// A JSON number (non-finite values serialize as `null`).
    F64(f64),
    /// A JSON boolean.
    Bool(bool),
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// Shorthand constructor for a [`Field`].
pub fn field(name: impl Into<String>, value: impl Into<FieldValue>) -> Field {
    let mut json = String::new();
    match value.into() {
        FieldValue::Str(s) => json::write_str(&mut json, &s),
        FieldValue::U64(v) => json.push_str(&v.to_string()),
        FieldValue::F64(v) => json::write_f64(&mut json, v),
        FieldValue::Bool(v) => json.push_str(if v { "true" } else { "false" }),
    }
    Field {
        name: name.into(),
        json,
    }
}

enum Out {
    File(BufWriter<std::fs::File>),
    Memory(Vec<String>),
}

struct SinkInner {
    level: Level,
    epoch: Instant,
    next_span: AtomicU64,
    lines_written: AtomicU64,
    path: Option<PathBuf>,
    out: Mutex<Out>,
}

/// A shared, append-only JSONL trace destination (see module docs).
/// Cloning is cheap and clones share the sink.
#[derive(Clone)]
pub struct TraceSink {
    inner: Arc<SinkInner>,
}

impl TraceSink {
    fn new(level: Level, path: Option<PathBuf>, out: Out) -> TraceSink {
        TraceSink {
            inner: Arc::new(SinkInner {
                level,
                epoch: Instant::now(),
                next_span: AtomicU64::new(1),
                lines_written: AtomicU64::new(0),
                path,
                out: Mutex::new(out),
            }),
        }
    }

    /// An append-mode file sink at `path` (parent directories are created).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn to_path(path: impl AsRef<Path>, level: Level) -> std::io::Result<TraceSink> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(TraceSink::new(
            level,
            Some(path.to_path_buf()),
            Out::File(BufWriter::new(file)),
        ))
    }

    /// [`TraceSink::to_path`] at `dir/<sweep>.trace.jsonl`, with the sweep
    /// name passed through the engine's shared path sanitizer — the same
    /// naming the sweep store uses for its shards.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn for_sweep(
        dir: impl AsRef<Path>,
        sweep: &str,
        level: Level,
    ) -> std::io::Result<TraceSink> {
        let name = format!("{}.trace.jsonl", hira_engine::sanitize_component(sweep));
        TraceSink::to_path(dir.as_ref().join(name), level)
    }

    /// An in-memory sink, for tests and embedding ([`TraceSink::lines`]
    /// reads it back).
    pub fn in_memory(level: Level) -> TraceSink {
        TraceSink::new(level, None, Out::Memory(Vec::new()))
    }

    /// The sink's configured level.
    pub fn level(&self) -> Level {
        self.inner.level
    }

    /// The file path, for file sinks.
    pub fn path(&self) -> Option<&Path> {
        self.inner.path.as_deref()
    }

    /// Whether an event at `level` would be recorded.
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.inner.level
    }

    /// Lines written so far (post-filtering).
    pub fn lines_written(&self) -> u64 {
        self.inner.lines_written.load(Ordering::Relaxed)
    }

    /// Records one instantaneous event.
    pub fn event(&self, level: Level, name: &str, fields: &[Field]) {
        if !self.enabled(level) {
            return;
        }
        self.write_line(level, name, fields, None);
    }

    /// Opens a span: the returned guard writes one line — with the span id,
    /// the given fields, any fields added later, and the measured `dur_us`
    /// — when it finishes (explicitly or by drop). A filtered span is
    /// inert.
    pub fn span(&self, level: Level, name: &str, fields: Vec<Field>) -> Span {
        if !self.enabled(level) {
            return Span {
                sink: None,
                level,
                name: String::new(),
                fields: Vec::new(),
                id: 0,
                start: Instant::now(),
            };
        }
        let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
        Span {
            sink: Some(self.clone()),
            level,
            name: name.to_owned(),
            fields,
            id,
            start: Instant::now(),
        }
    }

    /// Flushes buffered lines (file sinks).
    pub fn flush(&self) {
        if let Out::File(w) = &mut *self.inner.out.lock().expect("trace sink") {
            let _ = w.flush();
        }
    }

    /// The recorded lines: the buffer of an in-memory sink, or a file
    /// sink's content read back from disk (flushed first). Unreadable
    /// files yield no lines.
    pub fn lines(&self) -> Vec<String> {
        self.flush();
        match &*self.inner.out.lock().expect("trace sink") {
            Out::Memory(lines) => lines.clone(),
            Out::File(_) => self
                .inner
                .path
                .as_ref()
                .and_then(|p| std::fs::read_to_string(p).ok())
                .map(|body| body.lines().map(str::to_owned).collect())
                .unwrap_or_default(),
        }
    }

    fn write_line(&self, level: Level, name: &str, fields: &[Field], span: Option<(u64, u64)>) {
        let t_us = self.inner.epoch.elapsed().as_micros() as u64;
        let mut line = String::with_capacity(96);
        line.push_str("{\"t_us\":");
        line.push_str(&t_us.to_string());
        line.push_str(",\"level\":\"");
        line.push_str(level.as_str());
        line.push_str("\",\"event\":");
        json::write_str(&mut line, name);
        for f in fields {
            line.push(',');
            json::write_str(&mut line, &f.name);
            line.push(':');
            line.push_str(&f.json);
        }
        if let Some((id, dur_us)) = span {
            line.push_str(",\"span\":");
            line.push_str(&id.to_string());
            line.push_str(",\"dur_us\":");
            line.push_str(&dur_us.to_string());
        }
        line.push('}');
        self.inner.lines_written.fetch_add(1, Ordering::Relaxed);
        match &mut *self.inner.out.lock().expect("trace sink") {
            Out::File(w) => {
                let _ = writeln!(w, "{line}");
            }
            Out::Memory(lines) => lines.push(line),
        }
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("level", &self.inner.level)
            .field("path", &self.inner.path)
            .field("lines_written", &self.lines_written())
            .finish()
    }
}

/// An open span (see [`TraceSink::span`]): holds its fields and start
/// time, writes its single trace line on finish/drop.
#[derive(Debug)]
pub struct Span {
    sink: Option<TraceSink>,
    level: Level,
    name: String,
    fields: Vec<Field>,
    id: u64,
    start: Instant,
}

impl Span {
    /// The span's per-sink unique id (0 when the span was filtered out).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the span records anything (false when level-filtered).
    pub fn is_recording(&self) -> bool {
        self.sink.is_some()
    }

    /// Attaches one more field to the span's close line.
    pub fn add_field(&mut self, f: Field) {
        if self.sink.is_some() {
            self.fields.push(f);
        }
    }

    /// Finishes the span now (drop does the same).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(sink) = self.sink.take() {
            let dur_us = self.start.elapsed().as_micros() as u64;
            sink.write_line(
                self.level,
                &self.name,
                &self.fields,
                Some((self.id, dur_us)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(line: &str) -> hira_engine::json::Value {
        hira_engine::json::parse(line).expect("trace lines are valid JSON")
    }

    #[test]
    fn events_carry_timestamp_level_name_and_fields() {
        let sink = TraceSink::in_memory(Level::Info);
        sink.event(
            Level::Info,
            "point",
            &[field("key", "policy=hira4"), field("wall_ms", 1.5)],
        );
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        let v = parsed(&lines[0]);
        assert!(v.get("t_us").and_then(|t| t.as_u64()).is_some());
        assert_eq!(v.get("level").and_then(|l| l.as_str()), Some("info"));
        assert_eq!(v.get("event").and_then(|e| e.as_str()), Some("point"));
        assert_eq!(v.get("key").and_then(|k| k.as_str()), Some("policy=hira4"));
        assert_eq!(v.get("wall_ms").and_then(|w| w.as_f64()), Some(1.5));
        assert!(v.get("span").is_none(), "plain events are not spans");
    }

    #[test]
    fn level_filtering_drops_verbose_events_before_formatting() {
        let sink = TraceSink::in_memory(Level::Warn);
        sink.event(Level::Error, "boom", &[]);
        sink.event(Level::Info, "ignored", &[]);
        sink.event(Level::Debug, "ignored", &[]);
        assert_eq!(sink.lines().len(), 1);
        assert_eq!(sink.lines_written(), 1);
        assert!(sink.enabled(Level::Warn));
        assert!(!sink.enabled(Level::Info));
    }

    #[test]
    fn spans_write_one_line_with_id_and_duration_on_finish() {
        let sink = TraceSink::in_memory(Level::Info);
        let mut span = sink.span(Level::Info, "sweep", vec![field("points", 4usize)]);
        assert!(span.is_recording());
        assert!(span.id() >= 1);
        assert!(sink.lines().is_empty(), "spans write on finish, not open");
        span.add_field(field("hits", 2usize));
        span.finish();
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        let v = parsed(&lines[0]);
        assert_eq!(v.get("event").and_then(|e| e.as_str()), Some("sweep"));
        assert_eq!(v.get("points").and_then(|p| p.as_u64()), Some(4));
        assert_eq!(v.get("hits").and_then(|p| p.as_u64()), Some(2));
        assert!(v.get("span").and_then(|s| s.as_u64()).is_some());
        assert!(v.get("dur_us").and_then(|d| d.as_u64()).is_some());
        // Filtered spans are inert: no id, no line.
        let quiet = sink.span(Level::Trace, "noise", vec![]);
        assert!(!quiet.is_recording());
        assert_eq!(quiet.id(), 0);
        drop(quiet);
        assert_eq!(sink.lines().len(), 1);
    }

    #[test]
    fn span_ids_are_unique_and_timestamps_monotonic() {
        let sink = TraceSink::in_memory(Level::Info);
        let a = sink.span(Level::Info, "a", vec![]);
        let b = sink.span(Level::Info, "b", vec![]);
        assert_ne!(a.id(), b.id());
        drop(a);
        drop(b);
        sink.event(Level::Info, "after", &[]);
        let ts: Vec<u64> = sink
            .lines()
            .iter()
            .map(|l| parsed(l).get("t_us").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(ts.len(), 3);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn file_sinks_append_and_read_back_via_pathkey_naming() {
        let dir = std::env::temp_dir().join(format!("hira-obs-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sink = TraceSink::for_sweep(&dir, "policy matrix/8", Level::Info).unwrap();
        let path = sink.path().unwrap().to_path_buf();
        assert!(path.ends_with("policy-matrix-8.trace.jsonl"));
        sink.event(Level::Info, "one", &[]);
        assert_eq!(sink.lines().len(), 1);
        drop(sink);
        // Reopening appends — the sink never truncates an existing log.
        let again = TraceSink::to_path(&path, Level::Info).unwrap();
        again.event(Level::Info, "two", &[]);
        let lines = again.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"one\"") && lines[1].contains("\"two\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fields_render_every_scalar_shape() {
        let sink = TraceSink::in_memory(Level::Info);
        sink.event(
            Level::Info,
            "shapes",
            &[
                field("s", "a\"b"),
                field("u", 7u64),
                field("n", 42usize),
                field("f", 0.25),
                field("b", true),
                field("nan", f64::NAN),
            ],
        );
        let line = &sink.lines()[0];
        let v = parsed(line);
        assert_eq!(v.get("s").and_then(|s| s.as_str()), Some("a\"b"));
        assert_eq!(v.get("u").and_then(|s| s.as_u64()), Some(7));
        assert_eq!(v.get("n").and_then(|s| s.as_u64()), Some(42));
        assert_eq!(v.get("f").and_then(|s| s.as_f64()), Some(0.25));
        assert!(line.contains("\"b\":true"));
        assert!(line.contains("\"nan\":null"), "non-finite -> null: {line}");
    }
}
