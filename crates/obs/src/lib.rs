//! `hira-obs` — structured tracing, metrics and live progress for the
//! HiRA engine and services.
//!
//! The simulator already reports deep per-run telemetry (probes, command
//! traces, latency histograms); this crate observes the layer *around* it
//! — executors, caches, services — without ever touching a result:
//! everything here rides beside `PointTelemetry`, never inside the
//! canonical JSON, so tracing a run changes nothing about its output.
//! Std-only, like the rest of the workspace.
//!
//! Three pieces:
//!
//! * [`TraceSink`] / [`Span`] — append-only JSONL tracing with monotonic
//!   timestamps and [`Level`] filtering (shared `--log-level=` /
//!   `HIRA_LOG` knob, `hira_engine::pathkey` file naming),
//! * [`MetricsRegistry`] — named [`Counter`]s / [`Gauge`]s / log2
//!   [`Histogram`]s with Prometheus text exposition ([`parse_prometheus`]
//!   is the matching strict checker),
//! * [`Progress`] — a done/total ticker yielding points/sec and an ETA
//!   per completed point.
//!
//! # Example: trace a sweep and read back the span log
//!
//! ```
//! use hira_engine::{metric, Executor, Sweep};
//! use hira_obs::{field, parse_prometheus, Level, MetricsRegistry, TraceSink};
//!
//! // One span per point, one counter for completions — both shareable
//! // across the executor's worker threads.
//! let sink = TraceSink::in_memory(Level::Info);
//! let registry = MetricsRegistry::new();
//! let points = registry.counter("hira_points_total", "points completed");
//!
//! let sweep = Sweep::new("demo").axis("cap", [("8", 8.0f64), ("64", 64.0)], |_, &v| v);
//! let run = Executor::with_threads(2).run(&sweep, |sc| {
//!     let span = sink.span(Level::Info, "point", vec![field("key", sc.key.to_string())]);
//!     let value = sc.params * 2.0; // the "measurement"
//!     points.inc();
//!     span.finish(); // writes the span's one JSONL line, with dur_us
//!     vec![metric("double", value)]
//! });
//! assert_eq!(run.records.len(), 2);
//!
//! // The span log: one line per point, each a JSON object with the
//! // monotonic timestamp, level, name, fields, span id and duration.
//! let lines = sink.lines();
//! assert_eq!(lines.len(), 2);
//! for line in &lines {
//!     let v = hira_engine::json::parse(line).unwrap();
//!     assert_eq!(v.get("event").and_then(|e| e.as_str()), Some("point"));
//!     assert!(v.get("dur_us").and_then(|d| d.as_u64()).is_some());
//! }
//!
//! // And the metrics dump is valid Prometheus text.
//! let text = registry.render();
//! assert!(text.contains("hira_points_total 2"));
//! parse_prometheus(&text).unwrap();
//! ```

pub mod level;
pub mod metrics;
pub mod progress;
pub mod trace;

pub use level::Level;
pub use metrics::{
    parse_prometheus, Counter, Gauge, Histogram, MetricsRegistry, PromSample, HISTOGRAM_BUCKETS,
};
pub use progress::{Progress, ProgressSnapshot};
pub use trace::{field, Field, FieldValue, Span, TraceSink};
