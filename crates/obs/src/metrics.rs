//! The metrics registry: named counters, gauges and log2 histograms with
//! Prometheus text-format exposition.
//!
//! A [`MetricsRegistry`] hands out cheap, cloneable instruments keyed by
//! metric name + label set; asking twice for the same series returns the
//! same underlying cell, so library code and binaries can both say
//! `registry.counter("hira_cache_hits_total", ...)` without coordinating.
//! [`MetricsRegistry::render`] exposes everything in the Prometheus text
//! format (`# HELP`/`# TYPE` preambles, one sample line per series), and
//! [`parse_prometheus`] is the matching strict line-format checker —
//! mirroring the shape of the simulator's `parse_cmdtrace` — used by tests
//! and CI to validate a dump without a Prometheus server.
//!
//! Histograms use the same log2 bucketing as the simulator's probe
//! `LatencyHistogram`: an observation `v` (rounded up to an integer)
//! lands in bucket `64 - v.leading_zeros()` (bucket 0 holds exactly 0),
//! so bucket `b > 0` spans `[2^(b-1), 2^b - 1]` and renders as the
//! cumulative Prometheus bucket `le="2^b - 1"`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 buckets per histogram (values ≥ 2^30 share the last).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing integer series.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A set-to-latest floating-point series.
#[derive(Clone, Debug)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A log2-bucketed distribution (see module docs for the bucket layout).
#[derive(Clone, Debug)]
pub struct Histogram {
    cells: Arc<HistogramCells>,
}

impl Histogram {
    /// Records one observation. Negative and non-finite values clamp into
    /// bucket 0 / +Inf respectively rather than poisoning the counts.
    pub fn observe(&self, v: f64) {
        let as_int = if v.is_finite() && v > 0.0 {
            v.ceil() as u64
        } else if v.is_infinite() && v > 0.0 {
            u64::MAX
        } else {
            0
        };
        self.cells.buckets[Self::bucket_index(as_int)].fetch_add(1, Ordering::Relaxed);
        self.cells.count.fetch_add(1, Ordering::Relaxed);
        // f64 add via CAS: histograms are write-mostly, contention is rare.
        let mut cur = self.cells.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + if v.is_finite() { v } else { 0.0 }).to_bits();
            match self.cells.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of (finite) observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.cells.sum_bits.load(Ordering::Relaxed))
    }

    /// The bucket an integerized observation lands in — identical to the
    /// probe `LatencyHistogram` rule.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// The inclusive `[lo, hi]` integer range of bucket `b`.
    pub fn bucket_bounds(b: usize) -> (u64, u64) {
        if b == 0 {
            (0, 0)
        } else {
            (1u64 << (b - 1), (1u64 << b) - 1)
        }
    }

    fn snapshot_buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (slot, cell) in out.iter_mut().zip(self.cells.buckets.iter()) {
            *slot = cell.load(Ordering::Relaxed);
        }
        out
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Series {
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// A process-wide set of named instruments (see module docs). Cloning is
/// cheap and clones share the registry.
#[derive(Clone)]
pub struct MetricsRegistry {
    families: Arc<Mutex<Vec<Family>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            families: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Get-or-create the unlabeled counter `name`.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Get-or-create the counter `name{labels}`.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, Kind::Counter, labels, || {
            Instrument::Counter(Counter {
                cell: Arc::new(AtomicU64::new(0)),
            })
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked by series()"),
        }
    }

    /// Get-or-create the unlabeled gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Get-or-create the gauge `name{labels}`.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, Kind::Gauge, labels, || {
            Instrument::Gauge(Gauge {
                bits: Arc::new(AtomicU64::new(0f64.to_bits())),
            })
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked by series()"),
        }
    }

    /// Get-or-create the unlabeled histogram `name`.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Get-or-create the histogram `name{labels}`.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.series(name, help, Kind::Histogram, labels, || {
            Instrument::Histogram(Histogram {
                cells: Arc::new(HistogramCells {
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                    sum_bits: AtomicU64::new(0f64.to_bits()),
                    count: AtomicU64::new(0),
                }),
            })
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked by series()"),
        }
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        assert!(
            valid_metric_name(name),
            "invalid metric name `{name}` (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
        );
        for (k, _) in labels {
            assert!(
                valid_label_name(k),
                "invalid label name `{k}` (want [a-zA-Z_][a-zA-Z0-9_]*)"
            );
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        let mut families = self.families.lock().expect("metrics registry");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric `{name}` registered as {} and asked for as {}",
                    f.kind.as_str(),
                    kind.as_str()
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_owned(),
                    help: help.to_owned(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(s) = family.series.iter().find(|s| s.labels == labels) {
            return s.instrument.clone();
        }
        let instrument = make();
        family.series.push(Series {
            labels,
            instrument: instrument.clone(),
        });
        instrument
    }

    /// The Prometheus text-format exposition of every registered series,
    /// in registration order.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("metrics registry");
        let mut out = String::new();
        for f in families.iter() {
            out.push_str("# HELP ");
            out.push_str(&f.name);
            out.push(' ');
            out.push_str(&escape_help(&f.help));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&f.name);
            out.push(' ');
            out.push_str(f.kind.as_str());
            out.push('\n');
            for s in &f.series {
                match &s.instrument {
                    Instrument::Counter(c) => {
                        render_sample(&mut out, &f.name, &s.labels, &[], &c.get().to_string());
                    }
                    Instrument::Gauge(g) => {
                        render_sample(&mut out, &f.name, &s.labels, &[], &fmt_value(g.get()));
                    }
                    Instrument::Histogram(h) => {
                        render_histogram(&mut out, &f.name, &s.labels, h);
                    }
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().expect("metrics registry");
        f.debug_struct("MetricsRegistry")
            .field("families", &families.len())
            .finish()
    }
}

fn render_histogram(out: &mut String, name: &str, labels: &[(String, String)], h: &Histogram) {
    let buckets = h.snapshot_buckets();
    let highest = buckets
        .iter()
        .rposition(|&c| c > 0)
        .map(|b| b + 1)
        .unwrap_or(1);
    let bucket_name = format!("{name}_bucket");
    let mut cumulative = 0u64;
    for (b, &count) in buckets.iter().enumerate().take(highest) {
        cumulative += count;
        let (_, hi) = Histogram::bucket_bounds(b);
        render_sample(
            out,
            &bucket_name,
            labels,
            &[("le", &hi.to_string())],
            &cumulative.to_string(),
        );
    }
    render_sample(
        out,
        &bucket_name,
        labels,
        &[("le", "+Inf")],
        &h.count().to_string(),
    );
    render_sample(
        out,
        &format!("{name}_sum"),
        labels,
        &[],
        &fmt_value(h.sum()),
    );
    render_sample(
        out,
        &format!("{name}_count"),
        labels,
        &[],
        &h.count().to_string(),
    );
}

fn render_sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: &[(&str, &str)],
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Prometheus sample-value rendering: shortest round-trip decimal for
/// finite values, the format's literal spellings for the rest.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        let mut s = String::new();
        hira_engine::json::write_f64(&mut s, v);
        s
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One sample line from a Prometheus text dump.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// The full sample name (`hira_point_wall_us_bucket`, ...).
    pub name: String,
    /// Label pairs in source order (including `le` on histogram buckets).
    pub labels: Vec<(String, String)>,
    /// The parsed value (`NaN`/`+Inf`/`-Inf` spellings included).
    pub value: f64,
}

/// Strict checker for the Prometheus text format, mirroring the shape of
/// the simulator's `parse_cmdtrace`: every line must be a well-formed
/// `# HELP`, `# TYPE` or sample line, `# TYPE` must name a known kind and
/// precede its samples, and every sample must parse — anything else fails
/// with its 1-based line number.
///
/// # Errors
///
/// `Err("line N: ...")` on the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    let mut typed: Vec<String> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            return Err(format!("line {lineno}: blank line in exposition"));
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            let tail = parts.next();
            if !valid_metric_name(name) {
                return Err(format!(
                    "line {lineno}: bad metric name in comment: `{line}`"
                ));
            }
            match keyword {
                "HELP" => {
                    if tail.is_none() {
                        return Err(format!("line {lineno}: HELP without text: `{line}`"));
                    }
                }
                "TYPE" => {
                    let kind = tail.unwrap_or("");
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {lineno}: unknown TYPE `{kind}`"));
                    }
                    typed.push(name.to_owned());
                }
                other => {
                    return Err(format!("line {lineno}: unknown comment keyword `{other}`"));
                }
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {lineno}: malformed comment: `{line}`"));
        }
        let sample = parse_sample(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| sample.name.strip_suffix(suf))
            .filter(|family| typed.iter().any(|t| t == family))
            .unwrap_or(&sample.name);
        if !typed.iter().any(|t| t == family) {
            return Err(format!(
                "line {lineno}: sample `{}` before its # TYPE",
                sample.name
            ));
        }
        out.push(sample);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    let (name_labels, value_str) = match line.find('}') {
        Some(close) => {
            let (head, tail) = line.split_at(close + 1);
            (
                head,
                tail.strip_prefix(' ').ok_or("missing space after `}`")?,
            )
        }
        None => line
            .split_once(' ')
            .ok_or("expected `name value` or `name{labels} value`")?,
    };
    let (name, labels) = match name_labels.split_once('{') {
        None => (name_labels, Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').ok_or("unterminated label set")?;
            (name, parse_labels(body)?)
        }
    };
    if !valid_metric_name(name) {
        return Err(format!("bad sample name `{name}`"));
    }
    let value = match value_str {
        "NaN" => f64::NAN,
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse().map_err(|_| format!("bad sample value `{v}`"))?,
    };
    Ok(PromSample {
        name: name.to_owned(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without `=` in `{body}`"))?;
        let name = &rest[..eq];
        if !valid_label_name(name) {
            return Err(format!("bad label name `{name}`"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("label `{name}` value not quoted"))?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let after_quote = loop {
            let (idx, c) = chars
                .next()
                .ok_or_else(|| format!("unterminated value for label `{name}`"))?;
            match c {
                '"' => break idx + 1,
                '\\' => {
                    let (_, esc) = chars
                        .next()
                        .ok_or_else(|| format!("dangling escape in label `{name}`"))?;
                    match esc {
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        'n' => value.push('\n'),
                        other => return Err(format!("bad escape `\\{other}` in label `{name}`")),
                    }
                }
                other => value.push(other),
            }
        };
        labels.push((name.to_owned(), value));
        rest = &rest[after_quote..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
            if rest.is_empty() {
                return Err(format!("trailing comma in label set `{body}`"));
            }
        } else if !rest.is_empty() {
            return Err(format!("junk after label value in `{body}`"));
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_get_or_create_and_share_cells() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hira_test_total", "a test counter");
        let b = reg.counter("hira_test_total", "a test counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let labeled = reg.counter_with("hira_test_total", "a test counter", &[("kind", "x")]);
        labeled.inc();
        assert_eq!(a.get(), 3, "labeled series is a distinct cell");
        assert_eq!(labeled.get(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_conflicts_are_rejected() {
        let reg = MetricsRegistry::new();
        reg.counter("hira_conflict", "first as counter");
        reg.gauge("hira_conflict", "then as gauge");
    }

    #[test]
    fn histogram_buckets_mirror_the_probe_shape() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Histogram::bucket_bounds(3), (4, 7));
        let reg = MetricsRegistry::new();
        let h = reg.histogram("hira_lat_us", "latency");
        h.observe(0.0);
        h.observe(2.5); // ceil -> 3 -> bucket 2
        h.observe(-1.0); // clamps to bucket 0
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn render_output_round_trips_through_the_checker() {
        let reg = MetricsRegistry::new();
        reg.counter("hira_cache_hits_total", "replayed points")
            .add(5);
        reg.gauge("hira_sweep_wall_ms", "last sweep wall").set(12.5);
        let h = reg.histogram_with("hira_point_wall_us", "per-point wall", &[("bin", "pm")]);
        h.observe(3.0);
        h.observe(900.0);
        reg.counter_with("hira_points_total", "points", &[("result", "computed")])
            .inc();
        let text = reg.render();
        let samples = parse_prometheus(&text).expect(&text);
        assert!(samples
            .iter()
            .any(|s| s.name == "hira_cache_hits_total" && s.value == 5.0));
        assert!(samples
            .iter()
            .any(|s| s.name == "hira_sweep_wall_ms" && s.value == 12.5));
        let inf_bucket = samples
            .iter()
            .find(|s| {
                s.name == "hira_point_wall_us_bucket"
                    && s.labels.contains(&("le".to_owned(), "+Inf".to_owned()))
            })
            .expect("+Inf bucket present");
        assert_eq!(inf_bucket.value, 2.0);
        assert!(inf_bucket
            .labels
            .contains(&("bin".to_owned(), "pm".to_owned())));
        let count = samples
            .iter()
            .find(|s| s.name == "hira_point_wall_us_count")
            .expect("_count present");
        assert_eq!(count.value, 2.0);
        assert!(samples.iter().any(|s| s.name == "hira_points_total"
            && s.labels == vec![("result".to_owned(), "computed".to_owned())]));
        // Buckets are cumulative and non-decreasing.
        let buckets: Vec<f64> = samples
            .iter()
            .filter(|s| s.name == "hira_point_wall_us_bucket")
            .map(|s| s.value)
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
    }

    #[test]
    fn checker_rejects_malformed_lines_with_line_numbers() {
        let cases = [
            ("# TYPE hira_x counter\nhira_x{le=3} 1", "line 2"),
            ("hira_untyped 1", "before its # TYPE"),
            ("# TYPE hira_x counter\nhira_x one", "bad sample value"),
            ("# HELP hira_x\n", "HELP without text"),
            ("# TYPE hira_x widget", "unknown TYPE"),
            ("#comment", "malformed comment"),
            ("# TYPE hira_x counter\n\nhira_x 1", "line 2: blank line"),
            (
                "# TYPE hira_x counter\nhira_x{a=\"b\",} 1",
                "trailing comma",
            ),
        ];
        for (text, want) in cases {
            let err = parse_prometheus(text).expect_err(text);
            assert!(err.contains(want), "`{text}` -> `{err}` (want `{want}`)");
        }
    }

    #[test]
    fn label_values_escape_and_unescape() {
        let reg = MetricsRegistry::new();
        reg.counter_with("hira_esc_total", "escapes", &[("key", "a\"b\\c\nd")])
            .inc();
        let text = reg.render();
        let samples = parse_prometheus(&text).expect(&text);
        assert_eq!(samples[0].labels[0].1, "a\"b\\c\nd");
    }

    #[test]
    fn concurrent_updates_from_clones_land_in_one_cell() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hira_threads_total", "cross-thread");
        let h = reg.histogram("hira_threads_lat", "cross-thread");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        c.inc();
                        h.observe(i as f64);
                    }
                });
            }
        });
        assert_eq!(c.get(), 400);
        assert_eq!(h.count(), 400);
        assert!((h.sum() - 4.0 * 4950.0).abs() < 1e-6);
    }
}
