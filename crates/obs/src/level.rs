//! Log-level filtering: one shared verbosity knob for every sink.
//!
//! The level order is `Error < Warn < Info < Debug < Trace`: a sink
//! configured at level `L` records everything at or below `L`'s verbosity
//! (an `Info` sink records `error`/`warn`/`info`, drops `debug`/`trace`).
//! The process-wide default comes from the `HIRA_LOG` environment variable
//! ([`Level::from_env`]); binaries layer an explicit `--log-level=` value
//! on top ([`Level::resolve`]).

use std::fmt;
use std::str::FromStr;

/// Event severity / verbosity, least verbose first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// A failure the run could not honor.
    Error,
    /// Something off, but the run continues.
    Warn,
    /// Run milestones: sweeps, points, phases (the default).
    Info,
    /// Per-operation detail.
    Debug,
    /// Everything.
    Trace,
}

impl Level {
    /// Every level, least verbose first.
    pub const ALL: [Level; 5] = [
        Level::Error,
        Level::Warn,
        Level::Info,
        Level::Debug,
        Level::Trace,
    ];

    /// The wire/CLI rendering (`"error"`, `"warn"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// The process default from `HIRA_LOG`, falling back to [`Level::Info`]
    /// when unset or unparsable (a misspelled environment variable must not
    /// abort a run that never asked for tracing).
    pub fn from_env() -> Level {
        std::env::var("HIRA_LOG")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(Level::Info)
    }

    /// The effective level of a binary: the explicit `--log-level=` value
    /// when one was passed, else the `HIRA_LOG` default.
    ///
    /// # Panics
    ///
    /// Panics when the explicit value does not name a level — an explicitly
    /// requested verbosity that cannot work is an error, not a fallback.
    pub fn resolve(explicit: Option<&str>) -> Level {
        match explicit {
            None => Level::from_env(),
            Some(v) => v.parse().unwrap_or_else(|e: String| panic!("{e}")),
        }
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level `{other}` (expected error|warn|info|debug|trace)"
            )),
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_by_verbosity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
        // An Info sink keeps warn, drops debug.
        assert!(Level::Warn <= Level::Info);
        assert!(Level::Debug > Level::Info);
    }

    #[test]
    fn parsing_round_trips_and_rejects_garbage() {
        for l in Level::ALL {
            assert_eq!(l.as_str().parse::<Level>().unwrap(), l);
            assert_eq!(l.to_string(), l.as_str());
        }
        assert_eq!(" WARN ".parse::<Level>().unwrap(), Level::Warn);
        assert_eq!("warning".parse::<Level>().unwrap(), Level::Warn);
        assert!("loud".parse::<Level>().is_err());
    }

    #[test]
    fn resolve_prefers_the_explicit_value() {
        assert_eq!(Level::resolve(Some("debug")), Level::Debug);
    }

    #[test]
    #[should_panic(expected = "unknown log level")]
    fn resolve_rejects_bad_explicit_values() {
        Level::resolve(Some("loud"));
    }
}
