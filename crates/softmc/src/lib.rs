//! # hira-softmc — SoftMC-style testing infrastructure
//!
//! The paper drives real DDR4 modules with SoftMC \[43\] on a Xilinx Alveo U200
//! FPGA (§4.1): the host composes a *program* of precisely timed DRAM
//! commands, the FPGA issues them on a 1.5 ns grid, and a MaxWell FT200
//! temperature controller clamps the DIMM at the target temperature ±0.1 °C.
//!
//! This crate reproduces that stack in software against
//! [`hira_dram::DramModule`]:
//!
//! * [`program`] — the command-program DSL (`act`, `pre`, `write_row`,
//!   `read_row`, hammer loops, waits) with per-instruction `wait` latencies
//!   like Algorithms 1 and 2 in the paper,
//! * [`host`] — the program executor: quantizes timing to the FPGA command
//!   grid, tracks the clock, collects read-back data,
//! * [`patterns`] — the four data patterns used throughout §4
//!   (`0xFF`, `0x00`, `0xAA`, `0x55`) and their inverses,
//! * [`temperature`] — the FT200-style temperature controller model.
//!
//! ## Example: a HiRA probe as a SoftMC program
//!
//! ```rust
//! use hira_softmc::host::SoftMc;
//! use hira_softmc::program::Program;
//! use hira_dram::{ModuleSpec, addr::{BankId, RowId}};
//!
//! let mut mc = SoftMc::new(ModuleSpec::sk_hynix_4gb(7));
//! let bank = BankId(0);
//! let t = *mc.module().timing();
//! let mut p = Program::new();
//! p.act_wait(bank, RowId(10), 3.0)          // ACT RowA, wait t1
//!     .pre_wait(bank, 3.0)                  // PRE, wait t2
//!     .act_wait(bank, RowId(4096), t.t_ras) // ACT RowB, wait tRAS
//!     .pre_wait(bank, t.t_rp);              // close both rows
//! mc.run(&p);
//! ```

pub mod host;
pub mod patterns;
pub mod program;
pub mod temperature;

pub use host::{RunResult, SoftMc};
pub use patterns::DataPattern;
pub use program::{Instruction, Program};
pub use temperature::TemperatureController;
