//! Temperature-controller model (the MaxWell FT200 of §4.1).
//!
//! The real rig clamps the DIMM between heater pads and holds the chips at
//! ±0.1 °C of the target. The model exposes the same contract: after
//! `set_target`, `current_c` settles within the tolerance band, with a small
//! deterministic dither standing in for the control loop's ripple.

/// A settled heater/controller pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemperatureController {
    target_c: f64,
    dither_seed: u64,
}

impl TemperatureController {
    /// Controller tolerance in °C (±0.1 °C per the FT200 datasheet).
    pub const TOLERANCE_C: f64 = 0.1;

    /// A controller already settled at `target_c`.
    pub fn new(target_c: f64) -> Self {
        TemperatureController {
            target_c,
            dither_seed: 0,
        }
    }

    /// Retargets the controller (the model settles instantly; real settling
    /// time is irrelevant to the experiments, which wait for it).
    pub fn set_target(&mut self, target_c: f64) {
        self.target_c = target_c;
        self.dither_seed = self.dither_seed.wrapping_add(1);
    }

    /// The configured target in °C.
    pub fn target_c(&self) -> f64 {
        self.target_c
    }

    /// The settled chip temperature: target plus in-tolerance ripple.
    pub fn current_c(&self) -> f64 {
        let u = hira_dram::rng::Stream::from_words(&[self.dither_seed, self.target_c.to_bits()])
            .next_f64();
        self.target_c + (u * 2.0 - 1.0) * Self::TOLERANCE_C
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settles_within_tolerance() {
        let mut c = TemperatureController::new(45.0);
        for t in [30.0, 45.0, 60.0, 85.0] {
            c.set_target(t);
            assert!((c.current_c() - t).abs() <= TemperatureController::TOLERANCE_C);
        }
    }

    #[test]
    fn ripple_is_deterministic() {
        let c = TemperatureController::new(55.0);
        assert_eq!(c.current_c(), c.current_c());
    }
}
