//! SoftMC command programs.
//!
//! A [`Program`] is a linear sequence of [`Instruction`]s, mirroring how the
//! paper's Algorithms 1 and 2 are written: each command carries a `wait`
//! latency to the next command (e.g. `act(BankX, RowA, wait=t1)`). Host-level
//! composite instructions (`WriteRow`, `ReadRow`) stand in for the
//! ACT/WR-burst/PRE sequences the real infrastructure generates, and
//! `HammerPair` mirrors SoftMC's hardware loop support for high-rate
//! hammering.

use crate::patterns::DataPattern;
use hira_dram::addr::{BankId, RowId};

/// One SoftMC program instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instruction {
    /// `ACT bank/row`, then wait `wait_ns` before the next instruction.
    Act {
        bank: BankId,
        row: RowId,
        wait_ns: f64,
    },
    /// `PRE bank`, then wait `wait_ns`.
    Pre { bank: BankId, wait_ns: f64 },
    /// Write a full row with `pattern` (nominally timed composite).
    WriteRow {
        bank: BankId,
        row: RowId,
        pattern: DataPattern,
    },
    /// Read a full row back and record it in the run results.
    ReadRow { bank: BankId, row: RowId },
    /// Pure delay.
    Wait { ns: f64 },
    /// `count` iterations of `ACT a / PRE / ACT b / PRE` at nominal timing
    /// (the FPGA-side hammer loop; Algorithm 2 steps 2 and 4).
    HammerPair {
        bank: BankId,
        aggr_a: RowId,
        aggr_b: RowId,
        count: u32,
    },
}

/// A buildable sequence of instructions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    instructions: Vec<Instruction>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// The instructions in issue order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, inst: Instruction) -> &mut Self {
        self.instructions.push(inst);
        self
    }

    /// `ACT` then wait (`act(bank, row, wait=...)` in the paper's listings).
    pub fn act_wait(&mut self, bank: BankId, row: RowId, wait_ns: f64) -> &mut Self {
        self.push(Instruction::Act { bank, row, wait_ns })
    }

    /// `PRE` then wait (`pre(bank, wait=...)`).
    pub fn pre_wait(&mut self, bank: BankId, wait_ns: f64) -> &mut Self {
        self.push(Instruction::Pre { bank, wait_ns })
    }

    /// Initialize a row with a data pattern (`initialize(row, pattern)`).
    pub fn write_row(&mut self, bank: BankId, row: RowId, pattern: DataPattern) -> &mut Self {
        self.push(Instruction::WriteRow { bank, row, pattern })
    }

    /// Read a row back for later comparison.
    pub fn read_row(&mut self, bank: BankId, row: RowId) -> &mut Self {
        self.push(Instruction::ReadRow { bank, row })
    }

    /// Idle wait.
    pub fn wait(&mut self, ns: f64) -> &mut Self {
        self.push(Instruction::Wait { ns })
    }

    /// Double-sided hammer loop.
    pub fn hammer_pair(
        &mut self,
        bank: BankId,
        aggr_a: RowId,
        aggr_b: RowId,
        count: u32,
    ) -> &mut Self {
        self.push(Instruction::HammerPair {
            bank,
            aggr_a,
            aggr_b,
            count,
        })
    }

    /// Appends the HiRA command sequence of §3/Fig. 2:
    /// `ACT RowA —t1→ PRE —t2→ ACT RowB —tRAS→ PRE —tRP→`.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's command-sequence listing
    pub fn hira(
        &mut self,
        bank: BankId,
        row_a: RowId,
        row_b: RowId,
        t1: f64,
        t2: f64,
        t_ras: f64,
        t_rp: f64,
    ) -> &mut Self {
        self.act_wait(bank, row_a, t1)
            .pre_wait(bank, t2)
            .act_wait(bank, row_b, t_ras)
            .pre_wait(bank, t_rp)
    }
}

impl FromIterator<Instruction> for Program {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        Program {
            instructions: iter.into_iter().collect(),
        }
    }
}

impl Extend<Instruction> for Program {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        self.instructions.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_in_order() {
        let mut p = Program::new();
        p.write_row(BankId(0), RowId(1), DataPattern::Ones)
            .act_wait(BankId(0), RowId(1), 3.0)
            .pre_wait(BankId(0), 3.0)
            .read_row(BankId(0), RowId(1));
        assert_eq!(p.len(), 4);
        assert!(matches!(p.instructions()[0], Instruction::WriteRow { .. }));
        assert!(matches!(p.instructions()[3], Instruction::ReadRow { .. }));
    }

    #[test]
    fn hira_helper_emits_four_commands() {
        let mut p = Program::new();
        p.hira(BankId(1), RowId(5), RowId(600), 3.0, 3.0, 32.0, 14.25);
        assert_eq!(p.len(), 4);
        assert!(matches!(
            p.instructions()[0],
            Instruction::Act { row: RowId(5), wait_ns, .. } if wait_ns == 3.0
        ));
        assert!(matches!(
            p.instructions()[2],
            Instruction::Act {
                row: RowId(600),
                ..
            }
        ));
    }

    #[test]
    fn collect_and_extend() {
        let p: Program = [Instruction::Wait { ns: 5.0 }].into_iter().collect();
        assert_eq!(p.len(), 1);
        let mut q = Program::new();
        q.extend(p.instructions().iter().copied());
        assert_eq!(q, p);
    }
}
