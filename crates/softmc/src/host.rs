//! The SoftMC host: executes programs against a DRAM module model.
//!
//! The real infrastructure issues a DRAM command every 1.5 ns (SoftMC's
//! double-data-rate command slot on the Alveo U200, §4.1 footnote 5), so
//! every inter-command `wait` is quantized *up* to the 1.5 ns grid — which is
//! exactly why the paper sweeps `t1`/`t2` over multiples of 1.5 ns.

use crate::patterns::DataPattern;
use crate::program::{Instruction, Program};
use crate::temperature::TemperatureController;
use hira_dram::addr::{BankId, RowId};
use hira_dram::command::DramCommand;
use hira_dram::{DramModule, ModuleSpec};

/// Command-grid period of the FPGA in ns.
pub const COMMAND_GRID_NS: f64 = 1.5;

/// Data read back by `ReadRow` instructions, in program order.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    reads: Vec<(BankId, RowId, Vec<u8>)>,
}

impl RunResult {
    /// All row read-backs in program order.
    pub fn reads(&self) -> &[(BankId, RowId, Vec<u8>)] {
        &self.reads
    }

    /// The recorded data of the first read of `row`, if any.
    pub fn data_of(&self, bank: BankId, row: RowId) -> Option<&[u8]> {
        self.reads
            .iter()
            .find(|(b, r, _)| *b == bank && *r == row)
            .map(|(_, _, d)| d.as_slice())
    }

    /// Total bit flips of the first read of `row` against `pattern`.
    pub fn flips_of(&self, bank: BankId, row: RowId, pattern: DataPattern) -> Option<u64> {
        self.data_of(bank, row).map(|d| pattern.count_flips(d))
    }
}

/// SoftMC host bound to one module model.
#[derive(Debug)]
pub struct SoftMc {
    module: DramModule,
    temperature: TemperatureController,
}

impl SoftMc {
    /// Builds the infrastructure around a fresh module. DRAM self-refresh and
    /// on-die mitigations are disabled, as in all of §4's experiments.
    pub fn new(spec: ModuleSpec) -> Self {
        let mut host = SoftMc {
            module: DramModule::new(spec),
            temperature: TemperatureController::new(45.0),
        };
        host.module.set_temperature(host.temperature.current_c());
        host
    }

    /// Access to the module under test.
    pub fn module(&self) -> &DramModule {
        &self.module
    }

    /// Mutable access to the module under test.
    pub fn module_mut(&mut self) -> &mut DramModule {
        &mut self.module
    }

    /// Sets the heater target; the module sees the settled temperature.
    pub fn set_temperature(&mut self, target_c: f64) {
        self.temperature.set_target(target_c);
        self.module.set_temperature(self.temperature.current_c());
    }

    /// The temperature controller (diagnostics).
    pub fn temperature(&self) -> &TemperatureController {
        &self.temperature
    }

    /// Quantizes a wait to the FPGA command grid (rounded up).
    pub fn quantize(wait_ns: f64) -> f64 {
        (wait_ns / COMMAND_GRID_NS).ceil().max(1.0) * COMMAND_GRID_NS
    }

    /// Runs a program to completion and returns the read-back data.
    pub fn run(&mut self, program: &Program) -> RunResult {
        let mut result = RunResult::default();
        let row_bytes = self.module.geometry().row_bytes;
        for inst in program.instructions() {
            match *inst {
                Instruction::Act { bank, row, wait_ns } => {
                    let at = self.module.now();
                    self.module.execute(DramCommand::Act { bank, row }, at);
                    self.module.wait(Self::quantize(wait_ns));
                }
                Instruction::Pre { bank, wait_ns } => {
                    let at = self.module.now();
                    self.module.execute(DramCommand::Pre { bank }, at);
                    self.module.wait(Self::quantize(wait_ns));
                }
                Instruction::WriteRow { bank, row, pattern } => {
                    self.module.write_row(bank, row, &pattern.fill(row_bytes));
                }
                Instruction::ReadRow { bank, row } => {
                    let data = self.module.read_row(bank, row);
                    result.reads.push((bank, row, data));
                }
                Instruction::Wait { ns } => {
                    self.module.wait(ns.max(0.0));
                }
                Instruction::HammerPair {
                    bank,
                    aggr_a,
                    aggr_b,
                    count,
                } => {
                    self.module.hammer_pair(bank, aggr_a, aggr_b, count);
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> SoftMc {
        SoftMc::new(ModuleSpec::sk_hynix_4gb(0xBEEF))
    }

    #[test]
    fn quantization_rounds_up_to_grid() {
        assert_eq!(SoftMc::quantize(3.0), 3.0);
        assert_eq!(SoftMc::quantize(2.9), 3.0);
        assert_eq!(SoftMc::quantize(0.1), 1.5);
        assert_eq!(SoftMc::quantize(4.6), 6.0);
    }

    #[test]
    fn write_then_read_program_roundtrips() {
        let mut mc = host();
        let mut p = Program::new();
        p.write_row(BankId(0), RowId(9), DataPattern::Checkerboard)
            .read_row(BankId(0), RowId(9));
        let r = mc.run(&p);
        assert_eq!(
            r.flips_of(BankId(0), RowId(9), DataPattern::Checkerboard),
            Some(0)
        );
        assert_eq!(
            r.flips_of(BankId(0), RowId(9), DataPattern::InverseCheckerboard),
            Some(8 * 8192)
        );
    }

    #[test]
    fn nominal_act_pre_program_preserves_data() {
        let mut mc = host();
        let t = *mc.module().timing();
        let mut p = Program::new();
        p.write_row(BankId(0), RowId(3), DataPattern::Ones)
            .act_wait(BankId(0), RowId(3), t.t_ras)
            .pre_wait(BankId(0), t.t_rp)
            .read_row(BankId(0), RowId(3));
        let r = mc.run(&p);
        assert_eq!(r.flips_of(BankId(0), RowId(3), DataPattern::Ones), Some(0));
    }

    #[test]
    fn hira_program_with_shared_subarray_flips_bits() {
        let mut mc = host();
        let t = *mc.module().timing();
        let (a, b) = (RowId(10), RowId(512 + 10)); // adjacent subarrays
        let mut p = Program::new();
        p.write_row(BankId(0), a, DataPattern::Ones)
            .write_row(BankId(0), b, DataPattern::Zeros)
            .hira(BankId(0), a, b, 3.0, 3.0, t.t_ras, t.t_rp)
            .read_row(BankId(0), a)
            .read_row(BankId(0), b);
        let r = mc.run(&p);
        let flips = r.flips_of(BankId(0), a, DataPattern::Ones).unwrap()
            + r.flips_of(BankId(0), b, DataPattern::Zeros).unwrap();
        assert!(flips > 0, "shared-subarray HiRA should corrupt data");
    }

    #[test]
    fn temperature_reaches_module() {
        let mut mc = host();
        mc.set_temperature(85.0);
        assert!((mc.module().temperature() - 85.0).abs() < 0.2);
    }

    #[test]
    fn hammer_loop_instruction_advances_time() {
        let mut mc = host();
        let before = mc.module().now();
        let mut p = Program::new();
        p.hammer_pair(BankId(0), RowId(99), RowId(101), 1000);
        mc.run(&p);
        let elapsed = mc.module().now() - before;
        // 1000 iterations × 2 × tRC ≈ 92.5 µs.
        assert!(elapsed > 90_000.0, "elapsed {elapsed}");
    }
}
