//! Data patterns used by the paper's experiments (§4.1).

use std::fmt;

/// One of the four test data patterns: all-ones, all-zeros, checkerboard and
/// inverse checkerboard, as used by §4 and many prior characterization works.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataPattern {
    /// `0xFF` in every byte.
    Ones,
    /// `0x00` in every byte.
    Zeros,
    /// `0xAA` (alternating ones and zeros).
    Checkerboard,
    /// `0x55` (inverse checkerboard).
    InverseCheckerboard,
}

impl DataPattern {
    /// The four patterns in the order the paper lists them.
    pub const ALL: [DataPattern; 4] = [
        DataPattern::Ones,
        DataPattern::Zeros,
        DataPattern::Checkerboard,
        DataPattern::InverseCheckerboard,
    ];

    /// The repeated byte of this pattern.
    pub fn byte(self) -> u8 {
        match self {
            DataPattern::Ones => 0xFF,
            DataPattern::Zeros => 0x00,
            DataPattern::Checkerboard => 0xAA,
            DataPattern::InverseCheckerboard => 0x55,
        }
    }

    /// The bitwise-inverse pattern (`!datapattern` in Algorithms 1 and 2).
    pub fn inverse(self) -> DataPattern {
        match self {
            DataPattern::Ones => DataPattern::Zeros,
            DataPattern::Zeros => DataPattern::Ones,
            DataPattern::Checkerboard => DataPattern::InverseCheckerboard,
            DataPattern::InverseCheckerboard => DataPattern::Checkerboard,
        }
    }

    /// Fills a row-sized buffer with the pattern.
    pub fn fill(self, len: usize) -> Vec<u8> {
        vec![self.byte(); len]
    }

    /// Counts bit flips between this pattern and observed data.
    pub fn count_flips(self, observed: &[u8]) -> u64 {
        let expect = self.byte();
        observed
            .iter()
            .map(|&b| u64::from((b ^ expect).count_ones()))
            .sum()
    }

    /// True when the observed data matches the pattern exactly.
    pub fn matches(self, observed: &[u8]) -> bool {
        let expect = self.byte();
        observed.iter().all(|&b| b == expect)
    }
}

impl fmt::Display for DataPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:02X}", self.byte())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverses_pair_up() {
        for p in DataPattern::ALL {
            assert_eq!(p.inverse().inverse(), p);
            assert_eq!(p.byte() ^ p.inverse().byte(), 0xFF);
        }
    }

    #[test]
    fn fill_and_match() {
        let buf = DataPattern::Checkerboard.fill(16);
        assert!(DataPattern::Checkerboard.matches(&buf));
        assert!(!DataPattern::Ones.matches(&buf));
    }

    #[test]
    fn flip_counting() {
        let mut buf = DataPattern::Zeros.fill(8);
        assert_eq!(DataPattern::Zeros.count_flips(&buf), 0);
        buf[3] = 0b0000_0101;
        assert_eq!(DataPattern::Zeros.count_flips(&buf), 2);
    }

    #[test]
    fn display_shows_hex() {
        assert_eq!(DataPattern::InverseCheckerboard.to_string(), "0x55");
    }
}
