//! Per-channel memory controller: FR-FCFS scheduling over a detailed DDR
//! timing model, with refresh machinery driven entirely through the open
//! [`RefreshPolicy`] interface and all timing supplied by the configured
//! device ([`crate::device::DeviceModel`]) as a [`CommandTable`] on the
//! device's own command-clock grid.
//!
//! The timing model enforces, in command-clock cycles: `tRCD`, `tRAS`,
//! `tRP`, `tRC`, `tRRD_S/L`, `tFAW`, `tCCD_S/L`, `tCL/tCWL/tBL`, `tWR`,
//! `tWTR`, `tRTP`, `tRFC`/`tREFI`, the one-command-per-cycle command bus and
//! the shared data bus. HiRA operations occupy their real command slots
//! (`ACT`, `PRE`, `ACT` at `t1`/`t2` offsets) and count both activations
//! against `tFAW`/`tRRD`, as §5.2 requires.
//!
//! The controller/policy protocol: each rank owns one boxed
//! [`RefreshPolicy`]. Every memory tick the controller calls the policy's
//! `tick`, then polls `next_action` (against a fresh [`RankView`] of bank
//! readiness and demand pressure) and executes each returned
//! [`RefreshAction`] on the command/data-bus model. Demand activations
//! consult `on_demand_act` for refresh-access expansion, and *every*
//! executed activation — demand, refresh, preventive — is reported back
//! through `on_act_executed`.

use crate::clock::{MemClock, MemCycle};
use crate::config::{KernelMode, SystemConfig};
use crate::device::CommandTable;
use crate::metrics::LatencyHistogram;
use crate::plugin::{ControllerPlugin, PluginEnv, PluginStats};
use crate::policy::{
    DemandDecision, PolicyEnv, PolicyStats, RankView, RefreshAction, RefreshPolicy,
};
use crate::probe::{CmdEvent, DramCmd, ProbeHost, RefreshEvent, RefreshKind, ReqEvent};
use crate::request::MemRequest;
use hira_core::finder::McStats;
use hira_core::hira_op::HiraOperation;
use hira_dram::addr::{BankId, RowId};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

/// How far into the future a service may be committed (cycles). Loose
/// enough that a refresh-busy bank still accepts demand work behind the
/// in-flight refreshes, tight enough that the schedule stays contestable.
const COMMIT_HORIZON: MemCycle = 360;

/// Write-drain watermarks.
const WQ_HIGH: usize = 48;
const WQ_LOW: usize = 16;

/// Data bus: fixed-length burst reservations with gap filling, so a
/// far-future burst (refresh-delayed bank) does not serialize earlier-ready
/// bursts behind it.
#[derive(Debug, Default)]
struct DataBus {
    /// Burst start → end (non-overlapping; all bursts have equal length).
    bursts: std::collections::BTreeMap<MemCycle, MemCycle>,
    /// Retention horizon behind `now` (see [`DataBus::with_horizon`]).
    horizon: MemCycle,
}

impl DataBus {
    /// A bus whose prune keeps reservations for `horizon` cycles past
    /// their end. Every allocation starts at or after the current cycle,
    /// so a burst that ended before `now` can never conflict again — the
    /// horizon only needs to cover the bus's own reservation unit (one
    /// burst length, as derived from the device's [`CommandTable`]).
    fn with_horizon(horizon: MemCycle) -> Self {
        DataBus {
            bursts: std::collections::BTreeMap::new(),
            horizon,
        }
    }

    /// Reserves the first `len`-cycle gap starting at or after `earliest`.
    fn alloc(&mut self, earliest: MemCycle, len: MemCycle) -> MemCycle {
        let mut s = earliest;
        loop {
            let conflict = self
                .bursts
                .range(..s + len)
                .next_back()
                .filter(|&(_, &end)| end > s)
                .map(|(_, &end)| end);
            match conflict {
                Some(end) => s = end,
                None => {
                    self.bursts.insert(s, s + len);
                    return s;
                }
            }
        }
    }

    fn prune(&mut self, now: MemCycle) {
        while let Some((&start, &end)) = self.bursts.first_key_value() {
            if end + self.horizon < now {
                self.bursts.remove(&start);
            } else {
                break;
            }
        }
    }
}

/// One-command-per-cycle command bus with future reservations (HiRA's
/// mid-sequence commands are scheduled ahead of time).
#[derive(Debug, Default)]
struct CmdBus {
    reserved: BTreeSet<MemCycle>,
    /// Retention horizon behind `now` (see [`CmdBus::with_horizon`]).
    horizon: MemCycle,
}

impl CmdBus {
    /// A bus whose prune keeps slots for `horizon` cycles past their
    /// reservation. As with [`DataBus`], allocations never start before
    /// `now`, so the horizon only needs to cover the device's command
    /// spacing — the widest mid-sequence gap a HiRA operation schedules
    /// ahead (`t1 + t2` from the [`CommandTable`]).
    fn with_horizon(horizon: MemCycle) -> Self {
        CmdBus {
            reserved: BTreeSet::new(),
            horizon,
        }
    }

    /// Reserves the first free slot at or after `earliest`.
    fn alloc(&mut self, earliest: MemCycle) -> MemCycle {
        let mut c = earliest;
        while self.reserved.contains(&c) {
            c += 1;
        }
        self.reserved.insert(c);
        c
    }

    fn prune(&mut self, now: MemCycle) {
        while let Some(&c) = self.reserved.first() {
            if c + self.horizon < now {
                self.reserved.remove(&c);
            } else {
                break;
            }
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u32>,
    next_act: MemCycle,
    next_pre: MemCycle,
    next_cas: MemCycle,
}

#[derive(Debug)]
struct Rank {
    /// Recent ACT times (ascending) for the tFAW window.
    acts: VecDeque<MemCycle>,
    /// tRRD_S horizon (any bank in the rank).
    next_act_any: MemCycle,
    /// tRRD_L horizon per bank group.
    next_act_bg: Vec<MemCycle>,
    /// Earliest read CAS (write→read turnaround).
    next_rd: MemCycle,
    /// Last CAS bank group + end (tCCD_L/S resolution).
    last_cas_bg: Option<u16>,
    /// The rank's refresh arrangement.
    policy: Box<dyn RefreshPolicy>,
    /// The rank's controller plugins (RowHammer defenses), in
    /// [`SystemConfig::plugins`] order. Each observes every executed
    /// activation and may inject preventive refreshes.
    plugins: Vec<Box<dyn ControllerPlugin>>,
}

/// Aggregate controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Demand reads completed.
    pub reads_done: u64,
    /// Demand writes issued to DRAM.
    pub writes_done: u64,
    /// Row-buffer hits among demand CAS operations.
    pub row_hits: u64,
    /// Demand activations issued.
    pub demand_acts: u64,
    /// Activations issued for refresh (HiRA hidden rows, singles, pairs,
    /// immediate preventive refreshes).
    pub refresh_acts: u64,
    /// Rank-level `REF` commands issued.
    pub ref_commands: u64,
    /// Per-bank `REFpb` commands issued.
    pub refpb_commands: u64,
    /// Demand ACTs converted into HiRA refresh-access operations.
    pub hira_access_ops: u64,
    /// Sum of read queueing latencies (cycles), for average latency.
    pub read_latency_sum: u64,
    /// Sum of write service latencies (arrival to end of write burst,
    /// cycles), for average latency.
    pub write_latency_sum: u64,
    /// Command-clock cycles the data bus spent transferring bursts.
    pub data_bus_busy: u64,
    /// Log2-bucketed distribution of the read latencies behind
    /// [`ChannelStats::read_latency_sum`]. Always on: two array writes per
    /// CAS, which is noise next to the scheduling work.
    pub read_lat_hist: LatencyHistogram,
    /// Log2-bucketed distribution of the write service latencies.
    pub write_lat_hist: LatencyHistogram,
    /// Bank-cycles spent blocked by refresh (a rank-level `REF` counts
    /// `tRFC` once per bank; bank-granular actions count their own
    /// blocking window), for refresh-occupancy rates.
    pub refresh_busy: u64,
}

/// One memory channel and its controller.
#[derive(Debug)]
pub struct Channel {
    /// This channel's index in the system (probe event addressing).
    idx: usize,
    timing: CommandTable,
    clock: MemClock,
    kernel: KernelMode,
    banks_per_rank: u16,
    bank_groups: u16,
    read_q: Vec<MemRequest>,
    write_q: Vec<MemRequest>,
    queue_depth: usize,
    /// High-water mark of `read_q.len() + write_q.len()` (run telemetry).
    peak_queue: usize,
    banks: Vec<Bank>,
    ranks: Vec<Rank>,
    bus: CmdBus,
    data_bus: DataBus,
    completions: BinaryHeap<Reverse<(MemCycle, u64)>>,
    write_mode: bool,
    stats: ChannelStats,
    /// Scratch behind the [`RankView`] handed to policies (reused across
    /// ticks to keep the refresh poll allocation-free). Demand flags cover
    /// every bank of every rank and are rebuilt once per tick (one queue
    /// scan); the bank-state slices are per-rank and refreshed per poll.
    view_next_act: Vec<MemCycle>,
    view_demand: Vec<bool>,
    view_open: Vec<bool>,
    /// Event-kernel scratch: per-rank "policy wake has arrived" flags,
    /// computed once per [`Channel::refresh_step`] (the gate and the rank
    /// loop share them).
    rank_due: Vec<bool>,
}

impl Channel {
    /// Builds the channel from the system config, instantiating one policy
    /// object per rank through the config's [`crate::policy::PolicyHandle`].
    pub fn new(cfg: &SystemConfig, channel_idx: usize) -> Self {
        let ranks: Vec<Rank> = (0..cfg.ranks)
            .map(|r| {
                let env = PolicyEnv::for_rank(cfg, channel_idx, r);
                Rank {
                    acts: VecDeque::with_capacity(8),
                    next_act_any: 0,
                    next_act_bg: vec![0; cfg.bank_groups as usize],
                    next_rd: 0,
                    last_cas_bg: None,
                    policy: cfg.refresh.build(&env),
                    plugins: cfg
                        .plugins
                        .iter()
                        .enumerate()
                        .map(|(i, h)| h.build(&PluginEnv::for_rank(cfg, channel_idx, r, i)))
                        .collect(),
                }
            })
            .collect();
        // HiRA lead timing comes from the policy when it issues HiRA
        // operations; nominal t1 = t2 = 3 ns otherwise (unused then).
        let (t1, t2) = ranks
            .iter()
            .find_map(|r| r.policy.hira_lead())
            .unwrap_or_else(|| {
                let t = HiraOperation::nominal().timings;
                (t.t1, t.t2)
            });
        // The integer table quantizes `cfg.timing` (which the device
        // supplied at build time, but may have been overridden since)
        // onto the device's command grid.
        let clock = cfg.clock();
        let timing = CommandTable::from_ns(&cfg.timing, &clock, t1, t2);
        Channel {
            idx: channel_idx,
            timing,
            clock,
            kernel: cfg.kernel,
            banks_per_rank: cfg.banks,
            bank_groups: cfg.bank_groups,
            read_q: Vec::with_capacity(cfg.queue_depth),
            write_q: Vec::with_capacity(cfg.queue_depth),
            queue_depth: cfg.queue_depth,
            peak_queue: 0,
            banks: vec![Bank::default(); cfg.ranks * cfg.banks as usize],
            ranks,
            bus: CmdBus::with_horizon(timing.t1 + timing.t2),
            data_bus: DataBus::with_horizon(timing.bl),
            completions: BinaryHeap::new(),
            write_mode: false,
            stats: ChannelStats::default(),
            view_next_act: vec![0; cfg.banks as usize],
            view_demand: vec![false; cfg.ranks * cfg.banks as usize],
            view_open: vec![false; cfg.banks as usize],
            rank_due: vec![false; cfg.ranks],
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Current read/write queue occupancy (epoch sampling).
    pub fn queue_depths(&self) -> (usize, usize) {
        (self.read_q.len(), self.write_q.len())
    }

    /// High-water mark of the combined queue occupancy (run telemetry).
    pub fn peak_queue(&self) -> usize {
        self.peak_queue
    }

    /// Per-rank HiRA-MC statistics, where a HiRA-MC-backed policy is
    /// configured.
    pub fn mc_stats(&self) -> Vec<McStats> {
        self.ranks
            .iter()
            .flat_map(|r| r.policy.mc_stats())
            .collect()
    }

    /// Per-rank policy service counters.
    pub fn policy_stats(&self) -> Vec<PolicyStats> {
        self.ranks.iter().map(|r| r.policy.stats()).collect()
    }

    /// Per-rank plugin counters, rank-major in plugin-ordinal order.
    pub fn plugin_stats(&self) -> Vec<PluginStats> {
        self.ranks
            .iter()
            .flat_map(|r| r.plugins.iter().map(|p| p.stats()))
            .collect()
    }

    /// True when the read queue can accept another request.
    pub fn can_accept_read(&self) -> bool {
        self.read_q.len() < self.queue_depth
    }

    /// True when the write queue can accept another request.
    pub fn can_accept_write(&self) -> bool {
        self.write_q.len() < self.queue_depth
    }

    /// Enqueues a request (caller must have checked acceptance).
    pub fn enqueue(&mut self, req: MemRequest) {
        if req.is_write {
            debug_assert!(self.can_accept_write());
            self.write_q.push(req);
        } else {
            debug_assert!(self.can_accept_read());
            self.read_q.push(req);
        }
        self.peak_queue = self.peak_queue.max(self.read_q.len() + self.write_q.len());
    }

    fn bank_index(&self, rank: usize, bank: u16) -> usize {
        rank * self.banks_per_rank as usize + bank as usize
    }

    /// Earliest cycle an ACT can start in `rank` at or after `earliest`,
    /// honouring tRRD and tFAW.
    fn act_constraint(&self, rank: usize, bg: u16, earliest: MemCycle) -> MemCycle {
        let r = &self.ranks[rank];
        let mut a = earliest.max(r.next_act_any).max(r.next_act_bg[bg as usize]);
        // tFAW: the 4th-most-recent ACT before `a` must be faw-old.
        loop {
            let recent: Vec<MemCycle> = r.acts.iter().copied().filter(|&t| t <= a).collect();
            if recent.len() < 4 {
                break;
            }
            let fourth = recent[recent.len() - 4];
            if fourth + self.timing.faw <= a {
                break;
            }
            a = fourth + self.timing.faw;
        }
        a
    }

    fn record_act(&mut self, rank: usize, bg: u16, at: MemCycle) {
        let t = self.timing;
        let r = &mut self.ranks[rank];
        let pos = r.acts.iter().position(|&x| x > at).unwrap_or(r.acts.len());
        r.acts.insert(pos, at);
        while r.acts.len() > 8 {
            r.acts.pop_front();
        }
        r.next_act_any = r.next_act_any.max(at + t.rrd_s);
        r.next_act_bg[bg as usize] = r.next_act_bg[bg as usize].max(at + t.rrd_l);
    }

    /// Reports an executed activation to the rank's policy (PARA sampling,
    /// HiRA-MC bookkeeping) and to every plugin (aggressor tracking) —
    /// demand rows, refresh singles, pair halves and injected victims
    /// alike, never filtered.
    fn notify_act(&mut self, rank: usize, at: MemCycle, bank: u16, row: u32) {
        let now_ns = self.clock.cycles_to_ns(at);
        let r = &mut self.ranks[rank];
        r.policy.on_act_executed(now_ns, BankId(bank), RowId(row));
        for p in &mut r.plugins {
            p.on_act(now_ns, BankId(bank), RowId(row));
        }
    }

    /// Closes `bi`'s open row if any (PRE on the command bus) and returns
    /// the earliest cycle the bank can start a new row operation at or
    /// after `now` — the common prologue of every bank-granular refresh.
    fn close_open_row(
        &mut self,
        now: MemCycle,
        bi: usize,
        rank: usize,
        bank: u16,
        probes: &mut ProbeHost,
    ) -> MemCycle {
        let mut start = now.max(self.banks[bi].next_act);
        if self.banks[bi].open_row.is_some() {
            let pre_at = self.bus.alloc(now.max(self.banks[bi].next_pre));
            self.banks[bi].open_row = None;
            start = start.max(pre_at + self.timing.rp);
            let channel = self.idx;
            probes.on_cmd(|| CmdEvent {
                at: pre_at,
                channel,
                rank,
                bank: Some(bank),
                row: None,
                cmd: DramCmd::Pre,
            });
        }
        start
    }

    /// Issues a standalone single-row refresh (ACT + PRE) on `bank`.
    fn issue_single_refresh(
        &mut self,
        now: MemCycle,
        rank: usize,
        bank: u16,
        row: u32,
        probes: &mut ProbeHost,
    ) {
        let t = self.timing;
        let bg = bank / (self.banks_per_rank / self.bank_groups);
        let bi = self.bank_index(rank, bank);
        let start = self.close_open_row(now, bi, rank, bank, probes);
        let start = self.act_constraint(rank, bg, start);
        let act_at = self.bus.alloc(start);
        let pre_at = self.bus.alloc(act_at + t.ras);
        self.record_act(rank, bg, act_at);
        let b = &mut self.banks[bi];
        b.next_act = act_at + t.ras + t.rp;
        b.next_pre = act_at + t.ras;
        b.open_row = None;
        self.stats.refresh_acts += 1;
        self.stats.refresh_busy += t.ras + t.rp;
        let channel = self.idx;
        probes.on_cmd(|| CmdEvent {
            at: act_at,
            channel,
            rank,
            bank: Some(bank),
            row: Some(row),
            cmd: DramCmd::Act,
        });
        probes.on_cmd(|| CmdEvent {
            at: pre_at,
            channel,
            rank,
            bank: Some(bank),
            row: None,
            cmd: DramCmd::Pre,
        });
        probes.on_refresh(|| RefreshEvent {
            at: act_at,
            channel,
            rank,
            bank: Some(bank),
            kind: RefreshKind::Single,
            duration: t.ras + t.rp,
        });
        self.notify_act(rank, act_at, bank, row);
    }

    /// Issues a HiRA refresh-refresh pair on `bank`.
    #[allow(clippy::too_many_arguments)]
    fn issue_pair_refresh(
        &mut self,
        now: MemCycle,
        rank: usize,
        bank: u16,
        first: u32,
        second: u32,
        probes: &mut ProbeHost,
    ) {
        let t = self.timing;
        let bg = bank / (self.banks_per_rank / self.bank_groups);
        let bi = self.bank_index(rank, bank);
        let start = self.close_open_row(now, bi, rank, bank, probes);
        // Both activations must clear tRRD/tFAW.
        let lead = t.t1 + t.t2;
        let mut a1 = self.act_constraint(rank, bg, start);
        loop {
            let a2 = self.act_constraint(rank, bg, a1 + lead);
            if a2 == a1 + lead {
                break;
            }
            a1 = a2 - lead;
        }
        let a1 = self.bus.alloc(a1);
        let pre1 = self.bus.alloc(a1 + t.t1);
        let a2 = self.bus.alloc(a1 + lead);
        let pre2 = self.bus.alloc(a2 + t.ras);
        self.record_act(rank, bg, a1);
        self.record_act(rank, bg, a2);
        let b = &mut self.banks[bi];
        b.next_act = a2 + t.ras + t.rp;
        b.next_pre = a2 + t.ras;
        b.open_row = None;
        self.stats.refresh_acts += 2;
        self.stats.refresh_busy += lead + t.ras + t.rp;
        let channel = self.idx;
        for (at, row) in [
            (a1, Some(first)),
            (pre1, None),
            (a2, Some(second)),
            (pre2, None),
        ] {
            probes.on_cmd(|| CmdEvent {
                at,
                channel,
                rank,
                bank: Some(bank),
                row,
                cmd: if row.is_some() {
                    DramCmd::Act
                } else {
                    DramCmd::Pre
                },
            });
        }
        probes.on_refresh(|| RefreshEvent {
            at: a1,
            channel,
            rank,
            bank: Some(bank),
            kind: RefreshKind::Pair,
            duration: lead + t.ras + t.rp,
        });
        self.notify_act(rank, a1, bank, first);
        self.notify_act(rank, a2, bank, second);
    }

    /// Rank-level REF: close every bank, issue REF, block `tRFC`.
    fn issue_rank_ref(&mut self, now: MemCycle, rank: usize, probes: &mut ProbeHost) {
        let t = self.timing;
        // Precharge-all once every bank may be precharged.
        let mut ready = now;
        for b in 0..self.banks_per_rank {
            let bi = self.bank_index(rank, b);
            if self.banks[bi].open_row.is_some() {
                ready = ready.max(self.banks[bi].next_pre);
            }
        }
        let prea_at = self.bus.alloc(ready);
        let ref_at = self.bus.alloc(prea_at + t.rp);
        for b in 0..self.banks_per_rank {
            let bi = self.bank_index(rank, b);
            self.banks[bi].open_row = None;
            self.banks[bi].next_act = self.banks[bi].next_act.max(ref_at + t.rfc);
        }
        self.stats.ref_commands += 1;
        self.stats.refresh_busy += t.rfc * self.banks_per_rank as u64;
        let channel = self.idx;
        probes.on_cmd(|| CmdEvent {
            at: prea_at,
            channel,
            rank,
            bank: None,
            row: None,
            cmd: DramCmd::PreA,
        });
        probes.on_cmd(|| CmdEvent {
            at: ref_at,
            channel,
            rank,
            bank: None,
            row: None,
            cmd: DramCmd::Ref,
        });
        probes.on_refresh(|| RefreshEvent {
            at: ref_at,
            channel,
            rank,
            bank: None,
            kind: RefreshKind::RankRef,
            duration: t.rfc,
        });
    }

    /// Per-bank REFpb: close `bank`, issue the refresh once the bank has
    /// finished its in-flight row cycle, block it for the policy-supplied
    /// `tRFCpb` while the rest of the rank keeps working.
    fn issue_bank_ref(
        &mut self,
        now: MemCycle,
        rank: usize,
        bank: u16,
        t_rfc_pb_ns: f64,
        probes: &mut ProbeHost,
    ) {
        let bi = self.bank_index(rank, bank);
        let ready = self.close_open_row(now, bi, rank, bank, probes);
        let ref_at = self.bus.alloc(ready);
        let blocked = self.clock.ns_to_cycles(t_rfc_pb_ns);
        let b = &mut self.banks[bi];
        b.next_act = b.next_act.max(ref_at + blocked);
        self.stats.refpb_commands += 1;
        self.stats.refresh_busy += blocked;
        let channel = self.idx;
        probes.on_cmd(|| CmdEvent {
            at: ref_at,
            channel,
            rank,
            bank: Some(bank),
            row: None,
            cmd: DramCmd::RefPb,
        });
        probes.on_refresh(|| RefreshEvent {
            at: ref_at,
            channel,
            rank,
            bank: Some(bank),
            kind: RefreshKind::BankRef,
            duration: blocked,
        });
    }

    /// Executes one policy-requested refresh action.
    fn execute_action(
        &mut self,
        now: MemCycle,
        rank: usize,
        action: RefreshAction,
        probes: &mut ProbeHost,
    ) {
        match action {
            RefreshAction::RankRef => self.issue_rank_ref(now, rank, probes),
            RefreshAction::BankRef { bank, t_rfc_pb_ns } => {
                self.issue_bank_ref(now, rank, bank.0, t_rfc_pb_ns, probes);
            }
            RefreshAction::Single { bank, row } => {
                self.issue_single_refresh(now, rank, bank.0, row.0, probes);
            }
            RefreshAction::Pair {
                bank,
                first,
                second,
            } => self.issue_pair_refresh(now, rank, bank.0, first.0, second.0, probes),
        }
    }

    /// Rebuilds the all-rank demand flags (one pass over both queues).
    /// Refresh actions never touch the queues, so once per tick suffices.
    fn fill_demand(&mut self) {
        self.view_demand.fill(false);
        for r in self.read_q.iter().chain(self.write_q.iter()) {
            self.view_demand[r.addr.rank * self.banks_per_rank as usize + r.addr.bank as usize] =
                true;
        }
    }

    /// Refills the per-rank bank-state slices behind the [`RankView`]
    /// (these *do* change as the tick's earlier actions execute).
    fn fill_bank_view(&mut self, rank: usize) {
        for b in 0..self.banks_per_rank as usize {
            let bank = &self.banks[rank * self.banks_per_rank as usize + b];
            self.view_next_act[b] = bank.next_act;
            self.view_open[b] = bank.open_row.is_some();
        }
    }

    /// The next memory cycle strictly after `now` at which ticking this
    /// channel could do anything — the channel's contribution to the event
    /// kernel's time skip. Ticks in `(now, next_event)` are provably
    /// no-ops: with both queues empty and the write-drain hysteresis
    /// settled, [`Channel::tick`] only pops due completions and polls
    /// policies, and the policies' [`RefreshPolicy::next_wake`] contract
    /// covers the latter. Returns [`MemCycle::MAX`] for a fully idle
    /// channel. Bank/bus timestamps need no ticking — they are lazy.
    pub fn next_event(&self, now: MemCycle) -> MemCycle {
        if !self.read_q.is_empty() || !self.write_q.is_empty() {
            // Demand scheduling commits (at most) one request per cycle:
            // every cycle matters while work is queued.
            return now + 1;
        }
        if self.write_mode {
            // One more cycle for the write-drain hysteresis to observe the
            // drained queue and flip back to read mode.
            return now + 1;
        }
        let mut next = MemCycle::MAX;
        if let Some(&Reverse((t, _))) = self.completions.peek() {
            next = next.min(t.max(now + 1));
        }
        let now_ns = self.clock.cycles_to_ns(now);
        for r in &self.ranks {
            if !r.policy.inert() {
                let wake = self.clock.wake_cycle(r.policy.next_wake(now_ns));
                next = next.min(wake.max(now + 1));
            }
            for p in &r.plugins {
                let wake = self.clock.wake_cycle(p.next_wake(now_ns));
                next = next.min(wake.max(now + 1));
            }
        }
        next
    }

    /// Advances the controller by one command-clock cycle. Returns request
    /// ids whose data returned this cycle. Probe-free convenience over
    /// [`Channel::tick_probed`].
    pub fn tick(&mut self, now: MemCycle) -> Vec<u64> {
        self.tick_probed(now, &mut ProbeHost::disabled())
    }

    /// [`Channel::tick`] with an observer attached. Probes are read-only:
    /// the schedule is identical whether `probes` is active or not.
    pub fn tick_probed(&mut self, now: MemCycle, probes: &mut ProbeHost) -> Vec<u64> {
        self.bus.prune(now);
        self.data_bus.prune(now);
        self.refresh_step(now, probes);
        // One demand commitment per cycle keeps scheduling near-cycle-accurate.
        self.demand_step(now, probes);

        let mut done = Vec::new();
        while let Some(&Reverse((t, id))) = self.completions.peek() {
            if t > now {
                break;
            }
            self.completions.pop();
            done.push(id);
        }
        done
    }

    fn refresh_step(&mut self, now: MemCycle, probes: &mut ProbeHost) {
        let now_ns = self.clock.cycles_to_ns(now);
        if self
            .ranks
            .iter()
            .all(|r| r.policy.inert() && r.plugins.is_empty())
        {
            return;
        }
        // Event kernel: skip the tick/poll machinery for every rank whose
        // policy and plugins all declared a future wake (the `next_wake`
        // contracts make those calls no-ops). The dense kernel runs the
        // legacy path. Each rank's due flag is computed once and shared by
        // this gate and the poll loop below.
        if self.kernel == KernelMode::Event {
            let mut any_due = false;
            for (rank, due) in self.rank_due.iter_mut().enumerate() {
                let r = &self.ranks[rank];
                *due = (!r.policy.inert()
                    && self.clock.wake_cycle(r.policy.next_wake(now_ns)) <= now)
                    || r.plugins
                        .iter()
                        .any(|p| self.clock.wake_cycle(p.next_wake(now_ns)) <= now);
                any_due |= *due;
            }
            if !any_due {
                return;
            }
        }
        self.fill_demand();
        for rank in 0..self.ranks.len() {
            if self.kernel == KernelMode::Event && !self.rank_due[rank] {
                continue;
            }
            self.ranks[rank].policy.tick(now_ns);
            // Safety bound: a policy or plugin may issue a burst (deadline
            // pile-up, drained preventive queue) but never an unbounded
            // stream in one tick.
            let budget = 3 * self.banks_per_rank as usize + 16;
            if !self.ranks[rank].policy.inert() {
                let demand_base = rank * self.banks_per_rank as usize;
                for _ in 0..budget {
                    self.fill_bank_view(rank);
                    let action = {
                        let view = RankView {
                            now,
                            t_rc: self.timing.rc,
                            bank_next_act: &self.view_next_act,
                            bank_has_demand: &self.view_demand
                                [demand_base..demand_base + self.banks_per_rank as usize],
                            bank_open: &self.view_open,
                        };
                        self.ranks[rank].policy.next_action(now_ns, &view)
                    };
                    match action {
                        Some(a) => self.execute_action(now, rank, a, probes),
                        None => break,
                    }
                }
            }
            // Plugin injections, after the policy's own work: victims the
            // defenses queued (including ones triggered by refresh ACTs
            // executed moments ago in this very step) go out under the
            // same per-tick budget.
            for pi in 0..self.ranks[rank].plugins.len() {
                for _ in 0..budget {
                    let action = self.ranks[rank].plugins[pi].next_action(now_ns);
                    match action {
                        Some(a) => self.execute_action(now, rank, a, probes),
                        None => break,
                    }
                }
            }
        }
    }

    fn demand_step(&mut self, now: MemCycle, probes: &mut ProbeHost) {
        // Write-drain policy.
        if self.write_mode {
            if self.write_q.len() <= WQ_LOW {
                self.write_mode = false;
            }
        } else if self.write_q.len() >= WQ_HIGH
            || (self.read_q.is_empty() && !self.write_q.is_empty())
        {
            self.write_mode = true;
        }

        let from_writes = self.write_mode || self.read_q.is_empty();
        let Some(idx) = self.pick_frfcfs(now, from_writes) else {
            return;
        };
        let req = if from_writes {
            self.write_q[idx]
        } else {
            self.read_q[idx]
        };
        if self.commit(now, &req, probes) {
            if from_writes {
                self.write_q.swap_remove(idx);
            } else {
                self.read_q.swap_remove(idx);
            }
        }
    }

    /// FR-FCFS over *ready* requests: oldest row-hit first, then the oldest
    /// request whose bank can start its service within the commit horizon.
    /// Requests to refresh- or REF-blocked banks do not stall the channel.
    fn pick_frfcfs(&self, now: MemCycle, from_writes: bool) -> Option<usize> {
        let q = if from_writes {
            &self.write_q
        } else {
            &self.read_q
        };
        if q.is_empty() {
            return None;
        }
        let horizon = now + COMMIT_HORIZON;
        let mut best_hit: Option<(u64, usize)> = None;
        let mut best_ready: Option<(u64, usize)> = None;
        for (i, r) in q.iter().enumerate() {
            let bi = self.bank_index(r.addr.rank, r.addr.bank);
            let b = &self.banks[bi];
            let hit = b.open_row == Some(r.addr.row.0);
            if hit && b.next_cas <= horizon {
                if best_hit.is_none_or(|(a, _)| r.arrived < a) {
                    best_hit = Some((r.arrived, i));
                }
                continue;
            }
            let startable = if b.open_row.is_some() {
                b.next_pre <= horizon
            } else {
                b.next_act <= horizon
            };
            if startable && best_ready.is_none_or(|(a, _)| r.arrived < a) {
                best_ready = Some((r.arrived, i));
            }
        }
        best_hit.or(best_ready).map(|(_, i)| i)
    }

    /// Commits the full service schedule for `req`. Returns false when the
    /// earliest possible start is beyond the commit horizon.
    fn commit(&mut self, now: MemCycle, req: &MemRequest, probes: &mut ProbeHost) -> bool {
        let t = self.timing;
        let rank = req.addr.rank;
        let bank = req.addr.bank;
        let bg = req.addr.bank_group;
        let bi = self.bank_index(rank, bank);

        let hit = self.banks[bi].open_row == Some(req.addr.row.0);
        // Feasibility first: no side effects on a refused commit.
        if !hit {
            let b = &self.banks[bi];
            let start = if b.open_row.is_some() {
                b.next_pre
            } else {
                b.next_act
            };
            if start.max(now) > now + COMMIT_HORIZON {
                return false;
            }
        } else if self.banks[bi].next_cas > now + COMMIT_HORIZON {
            return false;
        }
        let cas_earliest = if hit {
            self.banks[bi].next_cas
        } else {
            // PRE (if open) + ACT (+ possible HiRA expansion).
            let channel = self.idx;
            let mut act_earliest = self.banks[bi].next_act.max(now);
            if self.banks[bi].open_row.is_some() {
                let pre_at = self.bus.alloc(self.banks[bi].next_pre.max(now));
                self.banks[bi].open_row = None;
                act_earliest = act_earliest.max(pre_at + t.rp);
                probes.on_cmd(|| CmdEvent {
                    at: pre_at,
                    channel,
                    rank,
                    bank: Some(bank),
                    row: None,
                    cmd: DramCmd::Pre,
                });
            }
            let act_at = self.act_constraint(rank, bg, act_earliest);

            // HiRA Case-1 consultation (refresh-access parallelization).
            let decision = self.ranks[rank].policy.on_demand_act(
                self.clock.cycles_to_ns(act_at),
                BankId(bank),
                req.addr.row,
            );
            let demand_act = match decision {
                DemandDecision::Plain => {
                    let a = self.bus.alloc(act_at);
                    self.record_act(rank, bg, a);
                    self.stats.demand_acts += 1;
                    probes.on_cmd(|| CmdEvent {
                        at: a,
                        channel,
                        rank,
                        bank: Some(bank),
                        row: Some(req.addr.row.0),
                        cmd: DramCmd::Act,
                    });
                    self.notify_act(rank, a, bank, req.addr.row.0);
                    a
                }
                DemandDecision::Hira { refresh_row } => {
                    let lead = t.t1 + t.t2;
                    let mut a1 = act_at;
                    loop {
                        let a2 = self.act_constraint(rank, bg, a1 + lead);
                        if a2 == a1 + lead {
                            break;
                        }
                        a1 = a2 - lead;
                    }
                    let a1 = self.bus.alloc(a1);
                    let pre = self.bus.alloc(a1 + t.t1);
                    let a2 = self.bus.alloc(a1 + lead);
                    self.record_act(rank, bg, a1);
                    self.record_act(rank, bg, a2);
                    self.stats.demand_acts += 1;
                    self.stats.refresh_acts += 1;
                    self.stats.hira_access_ops += 1;
                    for (at, row) in [
                        (a1, Some(refresh_row.0)),
                        (pre, None),
                        (a2, Some(req.addr.row.0)),
                    ] {
                        probes.on_cmd(|| CmdEvent {
                            at,
                            channel,
                            rank,
                            bank: Some(bank),
                            row,
                            cmd: if row.is_some() {
                                DramCmd::Act
                            } else {
                                DramCmd::Pre
                            },
                        });
                    }
                    self.notify_act(rank, a1, bank, refresh_row.0);
                    self.notify_act(rank, a2, bank, req.addr.row.0);
                    a2
                }
            };
            let b = &mut self.banks[bi];
            b.open_row = Some(req.addr.row.0);
            b.next_act = demand_act + t.rc;
            b.next_pre = demand_act + t.ras;
            b.next_cas = demand_act + t.rcd;
            self.banks[bi].next_cas
        };

        // Column access + data bus.
        let ccd = match self.ranks[rank].last_cas_bg {
            Some(last_bg) if last_bg == bg => t.ccd_l,
            Some(_) => t.ccd_s,
            None => 0,
        };
        let mut cas = cas_earliest.max(now).max(self.banks[bi].next_cas);
        if !req.is_write {
            cas = cas.max(self.ranks[rank].next_rd);
        }
        cas = cas.max(self.banks[bi].next_cas);
        let _ = ccd; // tCCD folded into next_cas below
        let data_lat = if req.is_write { t.cwl } else { t.cl };
        let burst_start = self.data_bus.alloc(cas + data_lat, t.bl);
        self.stats.data_bus_busy += t.bl;
        cas = burst_start - data_lat;
        let cas = self.bus.alloc(cas);
        let b = &mut self.banks[bi];
        b.next_cas = cas
            + if self.ranks[rank].last_cas_bg == Some(bg) {
                t.ccd_l
            } else {
                t.ccd_s
            };
        self.ranks[rank].last_cas_bg = Some(bg);
        if hit {
            self.stats.row_hits += 1;
        }
        let channel = self.idx;
        probes.on_cmd(|| CmdEvent {
            at: cas,
            channel,
            rank,
            bank: Some(bank),
            row: Some(req.addr.row.0),
            cmd: if req.is_write {
                DramCmd::Wr
            } else {
                DramCmd::Rd
            },
        });
        if req.is_write {
            b.next_pre = b.next_pre.max(cas + t.cwl + t.bl + t.wr);
            self.ranks[rank].next_rd = self.ranks[rank].next_rd.max(cas + t.cwl + t.bl + t.wtr);
            self.stats.writes_done += 1;
            let latency = cas + t.cwl + t.bl - req.arrived;
            self.stats.write_latency_sum += latency;
            self.stats.write_lat_hist.record(latency);
            probes.on_req_complete(|| ReqEvent {
                at: cas + t.cwl + t.bl,
                channel,
                is_write: true,
                latency,
            });
        } else {
            b.next_pre = b.next_pre.max(cas + t.rtp);
            let done_at = cas + t.cl + t.bl;
            self.completions.push(Reverse((done_at, req.id)));
            self.stats.reads_done += 1;
            let latency = done_at - req.arrived;
            self.stats.read_latency_sum += latency;
            self.stats.read_lat_hist.record(latency);
            probes.on_req_complete(|| ReqEvent {
                at: done_at,
                channel,
                is_write: false,
                latency,
            });
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::mapping::decode;
    use crate::policy::{self, PolicyHandle};

    fn config(refresh: PolicyHandle) -> SystemConfig {
        SystemConfig::table3(8.0, refresh)
    }

    fn read_at(cfg: &SystemConfig, id: u64, addr: u64, now: MemCycle) -> MemRequest {
        MemRequest {
            id,
            addr: decode(cfg, addr),
            is_write: false,
            arrived: now,
        }
    }

    fn run_until_done(
        ch: &mut Channel,
        mut now: MemCycle,
        ids: &[u64],
        limit: MemCycle,
    ) -> Vec<(u64, MemCycle)> {
        let mut done = Vec::new();
        while done.len() < ids.len() && now < limit {
            for id in ch.tick(now) {
                done.push((id, now));
            }
            now += 1;
        }
        done
    }

    #[test]
    fn data_bus_prune_horizon_derives_from_the_burst_length() {
        let cfg = config(policy::noref());
        let ch = Channel::new(&cfg, 0);
        // The horizon is the device's burst length, not a magic constant.
        assert_eq!(ch.data_bus.horizon, ch.timing.bl);
        let mut bus = DataBus::with_horizon(ch.timing.bl);
        let len = ch.timing.bl;
        let first = bus.alloc(0, len);
        assert_eq!(first, 0);
        bus.alloc(1000, len);
        // Within the horizon the old burst survives; past it, it is
        // dropped — and allocation behaviour is unaffected either way,
        // because new bursts never start before `now`.
        bus.prune(len + ch.timing.bl);
        assert!(bus.bursts.contains_key(&0), "pruned inside the horizon");
        bus.prune(len + ch.timing.bl + 1);
        assert!(!bus.bursts.contains_key(&0), "kept past the horizon");
        assert!(bus.bursts.contains_key(&1000), "future burst dropped");
        let now = len + ch.timing.bl + 1;
        assert_eq!(bus.alloc(now, len), now, "prune changed allocation");
    }

    #[test]
    fn cmd_bus_prune_horizon_derives_from_the_command_spacing() {
        let cfg = config(policy::hira(4));
        let ch = Channel::new(&cfg, 0);
        // The widest ahead-of-time command spacing is a HiRA operation's
        // mid-sequence window: t1 + t2 on the device's command grid.
        assert_eq!(ch.bus.horizon, ch.timing.t1 + ch.timing.t2);
        let horizon = ch.bus.horizon;
        let mut bus = CmdBus::with_horizon(horizon);
        assert_eq!(bus.alloc(0), 0);
        bus.alloc(500);
        bus.prune(horizon);
        assert!(bus.reserved.contains(&0), "pruned inside the horizon");
        bus.prune(horizon + 1);
        assert!(!bus.reserved.contains(&0), "kept past the horizon");
        assert!(bus.reserved.contains(&500), "future reservation dropped");
        // A slot freed by pruning is never re-issued to the past: new
        // commands allocate at or after `now`.
        assert_eq!(bus.alloc(horizon + 1), horizon + 1);
    }

    #[test]
    fn single_read_completes_with_act_plus_cas_latency() {
        let cfg = config(policy::noref());
        let mut ch = Channel::new(&cfg, 0);
        ch.enqueue(read_at(&cfg, 1, 0x10000, 0));
        let done = run_until_done(&mut ch, 0, &[1], 500);
        assert_eq!(done.len(), 1);
        let t = ch.timing;
        // ACT at ~0, CAS at tRCD, data at +tCL+tBL.
        let expect = t.rcd + t.cl + t.bl;
        assert!(
            (done[0].1 as i64 - expect as i64).abs() <= 3,
            "latency {} expected ~{}",
            done[0].1,
            expect
        );
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let cfg = config(policy::noref());
        let mut ch = Channel::new(&cfg, 0);
        ch.enqueue(read_at(&cfg, 1, 0x10000, 0));
        let first = run_until_done(&mut ch, 0, &[1], 500)[0].1;
        // Same row, next line: hit.
        let now = first + 1;
        ch.enqueue(read_at(&cfg, 2, 0x10040, now));
        let second = run_until_done(&mut ch, now, &[2], now + 500)[0].1 - now;
        assert!(second < first, "hit {second} vs miss {first}");
    }

    #[test]
    fn same_bank_misses_pay_trc() {
        let cfg = config(policy::noref());
        let mut ch = Channel::new(&cfg, 0);
        // Two different rows in the same bank: row stride of the mapping.
        let d0 = decode(&cfg, 0);
        let mut other = 0u64;
        for i in 1..1_000_000u64 {
            let d = decode(&cfg, i * 64);
            if d.bank == d0.bank && d.rank == d0.rank && d.row != d0.row {
                other = i * 64;
                break;
            }
        }
        assert!(other != 0);
        ch.enqueue(read_at(&cfg, 1, 0, 0));
        ch.enqueue(read_at(&cfg, 2, other, 0));
        let done = run_until_done(&mut ch, 0, &[1, 2], 1000);
        assert_eq!(done.len(), 2);
        let gap = done[1].1 - done[0].1;
        assert!(gap >= ch.timing.ras, "conflict gap {gap} below tRAS");
    }

    #[test]
    fn tfaw_limits_activation_bursts() {
        let cfg = config(policy::noref());
        let mut ch = Channel::new(&cfg, 0);
        // 6 misses to 6 different banks: the 5th+ ACT must wait for tFAW.
        let mut addrs = Vec::new();
        let mut banks_seen = std::collections::HashSet::new();
        for i in 0..1_000_000u64 {
            let d = decode(&cfg, i * 64);
            if banks_seen.insert(d.bank) {
                addrs.push(i * 64);
                if addrs.len() == 6 {
                    break;
                }
            }
        }
        for (k, a) in addrs.iter().enumerate() {
            ch.enqueue(read_at(&cfg, k as u64, *a, 0));
        }
        let ids: Vec<u64> = (0..6).collect();
        let done = run_until_done(&mut ch, 0, &ids, 2000);
        assert_eq!(done.len(), 6);
        let last = done.iter().map(|&(_, t)| t).max().unwrap();
        let first = done.iter().map(|&(_, t)| t).min().unwrap();
        // 6 ACTs with tFAW=16ns(20cyc): the 5th starts ≥ tFAW after the 1st.
        assert!(last - first >= ch.timing.faw / 2, "spread {}", last - first);
    }

    #[test]
    fn baseline_refresh_blocks_the_rank_for_trfc() {
        let mut cfg = config(policy::baseline());
        cfg.timing.t_refi = 1000.0; // dense refresh for the test
        let mut ch = Channel::new(&cfg, 0);
        let t_refi_c = ch.timing.refi;
        // Let a REF go out, then observe a read stalls ~tRFC.
        let mut now = 0;
        while now < t_refi_c + 2 {
            ch.tick(now);
            now += 1;
        }
        assert!(ch.stats().ref_commands >= 1);
        ch.enqueue(read_at(&cfg, 7, 0x40000, now));
        let done = run_until_done(&mut ch, now, &[7], now + 4000);
        let latency = done[0].1 - now;
        assert!(
            latency >= ch.timing.rfc / 2,
            "read latency {latency} vs tRFC {}",
            ch.timing.rfc
        );
    }

    #[test]
    fn refpb_blocks_one_bank_not_the_rank() {
        let mut cfg = config(policy::refpb());
        cfg.timing.t_refi = 1600.0; // dense refresh for the test
        let mut ch = Channel::new(&cfg, 0);
        // A tREFI of ticks drives one REFpb per bank.
        let mut now = 0;
        while now < ch.timing.refi + 2 {
            ch.tick(now);
            now += 1;
        }
        let s = ch.stats();
        assert!(s.refpb_commands >= 8, "refpb commands {}", s.refpb_commands);
        assert_eq!(s.ref_commands, 0, "REFpb must not issue rank-level REF");
        // Banks later in the rotation are still unblocked right now.
        let free = (0..16).filter(|&b| ch.banks[b].next_act <= now).count();
        assert!(free >= 4, "only {free} banks free after staggered REFpb");
    }

    #[test]
    fn raidr_refreshes_rows_without_ref_commands() {
        let cfg = config(policy::raidr());
        let mut ch = Channel::new(&cfg, 0);
        for now in 0..3600 {
            ch.tick(now);
        }
        let s = ch.stats();
        assert!(s.refresh_acts > 10, "refresh acts {}", s.refresh_acts);
        assert_eq!(s.ref_commands + s.refpb_commands, 0);
        // The binned schedule skips nothing in window 0 but still tracks
        // per-policy counters.
        let ps = &ch.policy_stats()[0];
        assert_eq!(ps.rows_refreshed, s.refresh_acts);
    }

    #[test]
    fn hira_scheme_issues_refresh_acts() {
        let cfg = config(policy::hira(2));
        let mut ch = Channel::new(&cfg, 0);
        // Run 3 µs of idle time: periodic requests must be served as
        // singles/pairs by their deadlines.
        for now in 0..3600 {
            ch.tick(now);
        }
        let s = ch.stats();
        assert!(s.refresh_acts > 10, "refresh acts {}", s.refresh_acts);
        assert_eq!(s.ref_commands, 0);
    }

    #[test]
    fn hira_refresh_access_rides_demand_activations() {
        let cfg = config(policy::hira(8));
        let mut ch = Channel::new(&cfg, 0);
        let mut now = 0;
        let mut id = 0u64;
        let mut done = 0;
        // A stream of row misses in many banks for 60 µs.
        while now < 72_000 {
            if now % 24 == 0 && ch.can_accept_read() {
                ch.enqueue(read_at(&cfg, id, (id * 8 * 64) << 8, now));
                id += 1;
            }
            done += ch.tick(now).len();
            now += 1;
        }
        let s = ch.stats();
        assert!(done > 0);
        assert!(s.hira_access_ops > 0, "no refresh-access pairings: {s:?}");
    }

    #[test]
    fn immediate_para_amplifies_activations() {
        let cfg = config(policy::noref().with_para_immediate(0.5));
        let mut ch = Channel::new(&cfg, 0);
        let mut now = 0;
        let mut id = 0;
        while now < 48_000 {
            if now % 60 == 0 && ch.can_accept_read() {
                ch.enqueue(read_at(&cfg, id, (id << 20) * 64, now));
                id += 1;
            }
            ch.tick(now);
            now += 1;
        }
        let s = ch.stats();
        // pth=0.5 with recursion: ~1 preventive ACT per demand ACT.
        let ratio = s.refresh_acts as f64 / s.demand_acts as f64;
        assert!(
            (0.6..=1.6).contains(&ratio),
            "preventive/demand ratio {ratio} ({s:?})"
        );
    }
}
