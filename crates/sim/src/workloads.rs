//! Synthetic SPEC CPU2006-like workloads (§7).
//!
//! The paper runs 125 8-core multiprogrammed mixes of SPEC CPU2006. The
//! traces themselves are not redistributable, so each benchmark is modelled
//! by its published first-order memory behaviour — LLC misses per
//! kilo-instruction, row-buffer locality, store fraction, stream count and
//! footprint — and a deterministic generator reproduces an instruction
//! stream with those properties. Relative weighted-speedup trends (which is
//! what every figure plots) depend on exactly these properties.

use hira_dram::rng::Stream;

/// One benchmark's memory-behaviour profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Benchmark {
    /// SPEC-like name.
    pub name: &'static str,
    /// Memory operations (LLC-level accesses) per kilo-instruction.
    pub mem_per_kinst: f64,
    /// Probability that an access continues its stream sequentially
    /// (row-buffer locality).
    pub locality: f64,
    /// Fraction of memory operations that are stores.
    pub store_frac: f64,
    /// Concurrent access streams (bank-level parallelism).
    pub streams: usize,
    /// Footprint in 64 B lines.
    pub footprint_lines: u64,
}

/// The benchmark roster (SPEC CPU2006-inspired; higher rows are more
/// memory-intensive).
pub const BENCHMARKS: &[Benchmark] = &[
    Benchmark {
        name: "mcf",
        mem_per_kinst: 33.0,
        locality: 0.25,
        store_frac: 0.18,
        streams: 6,
        footprint_lines: 1 << 22,
    },
    Benchmark {
        name: "lbm",
        mem_per_kinst: 31.0,
        locality: 0.80,
        store_frac: 0.45,
        streams: 4,
        footprint_lines: 1 << 22,
    },
    Benchmark {
        name: "soplex",
        mem_per_kinst: 27.0,
        locality: 0.60,
        store_frac: 0.20,
        streams: 5,
        footprint_lines: 1 << 21,
    },
    Benchmark {
        name: "milc",
        mem_per_kinst: 25.0,
        locality: 0.50,
        store_frac: 0.30,
        streams: 4,
        footprint_lines: 1 << 21,
    },
    Benchmark {
        name: "libquantum",
        mem_per_kinst: 25.0,
        locality: 0.90,
        store_frac: 0.25,
        streams: 2,
        footprint_lines: 1 << 20,
    },
    Benchmark {
        name: "omnetpp",
        mem_per_kinst: 20.0,
        locality: 0.30,
        store_frac: 0.30,
        streams: 8,
        footprint_lines: 1 << 21,
    },
    Benchmark {
        name: "gemsfdtd",
        mem_per_kinst: 18.0,
        locality: 0.60,
        store_frac: 0.35,
        streams: 6,
        footprint_lines: 1 << 21,
    },
    Benchmark {
        name: "leslie3d",
        mem_per_kinst: 15.0,
        locality: 0.70,
        store_frac: 0.35,
        streams: 6,
        footprint_lines: 1 << 20,
    },
    Benchmark {
        name: "bwaves",
        mem_per_kinst: 15.0,
        locality: 0.75,
        store_frac: 0.30,
        streams: 4,
        footprint_lines: 1 << 21,
    },
    Benchmark {
        name: "sphinx3",
        mem_per_kinst: 12.0,
        locality: 0.60,
        store_frac: 0.10,
        streams: 4,
        footprint_lines: 1 << 19,
    },
    Benchmark {
        name: "astar",
        mem_per_kinst: 8.0,
        locality: 0.35,
        store_frac: 0.25,
        streams: 4,
        footprint_lines: 1 << 20,
    },
    Benchmark {
        name: "zeusmp",
        mem_per_kinst: 6.0,
        locality: 0.55,
        store_frac: 0.30,
        streams: 4,
        footprint_lines: 1 << 19,
    },
    Benchmark {
        name: "cactusadm",
        mem_per_kinst: 5.0,
        locality: 0.50,
        store_frac: 0.35,
        streams: 4,
        footprint_lines: 1 << 19,
    },
    Benchmark {
        name: "wrf",
        mem_per_kinst: 5.0,
        locality: 0.60,
        store_frac: 0.30,
        streams: 4,
        footprint_lines: 1 << 18,
    },
    Benchmark {
        name: "bzip2",
        mem_per_kinst: 3.0,
        locality: 0.50,
        store_frac: 0.30,
        streams: 2,
        footprint_lines: 1 << 18,
    },
    Benchmark {
        name: "gcc",
        mem_per_kinst: 2.0,
        locality: 0.50,
        store_frac: 0.30,
        streams: 3,
        footprint_lines: 1 << 17,
    },
    Benchmark {
        name: "hmmer",
        mem_per_kinst: 1.0,
        locality: 0.60,
        store_frac: 0.25,
        streams: 2,
        footprint_lines: 1 << 15,
    },
    Benchmark {
        name: "gobmk",
        mem_per_kinst: 0.8,
        locality: 0.40,
        store_frac: 0.25,
        streams: 2,
        footprint_lines: 1 << 15,
    },
    Benchmark {
        name: "perlbench",
        mem_per_kinst: 0.8,
        locality: 0.40,
        store_frac: 0.30,
        streams: 2,
        footprint_lines: 1 << 15,
    },
    Benchmark {
        name: "h264ref",
        mem_per_kinst: 0.7,
        locality: 0.60,
        store_frac: 0.25,
        streams: 2,
        footprint_lines: 1 << 14,
    },
    Benchmark {
        name: "gromacs",
        mem_per_kinst: 0.6,
        locality: 0.50,
        store_frac: 0.30,
        streams: 2,
        footprint_lines: 1 << 14,
    },
    Benchmark {
        name: "sjeng",
        mem_per_kinst: 0.5,
        locality: 0.40,
        store_frac: 0.25,
        streams: 2,
        footprint_lines: 1 << 14,
    },
    Benchmark {
        name: "calculix",
        mem_per_kinst: 0.5,
        locality: 0.60,
        store_frac: 0.25,
        streams: 2,
        footprint_lines: 1 << 14,
    },
    Benchmark {
        name: "tonto",
        mem_per_kinst: 0.3,
        locality: 0.50,
        store_frac: 0.25,
        streams: 2,
        footprint_lines: 1 << 13,
    },
    Benchmark {
        name: "namd",
        mem_per_kinst: 0.2,
        locality: 0.50,
        store_frac: 0.25,
        streams: 2,
        footprint_lines: 1 << 13,
    },
    Benchmark {
        name: "povray",
        mem_per_kinst: 0.05,
        locality: 0.50,
        store_frac: 0.25,
        streams: 1,
        footprint_lines: 1 << 12,
    },
];

/// Looks a benchmark up by name.
pub fn benchmark(name: &str) -> Option<&'static Benchmark> {
    BENCHMARKS.iter().find(|b| b.name == name)
}

/// An 8-core multiprogrammed mix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mix {
    /// Mix index (0-124 for the paper's 125 mixes).
    pub id: usize,
    /// One benchmark per core.
    pub benchmarks: Vec<&'static Benchmark>,
}

/// Generates the `n`-mix suite: benchmarks drawn uniformly at random from
/// the roster, as the paper draws its 125 mixes from SPEC CPU2006 (§7).
pub fn mixes(n: usize, cores: usize, seed: u64) -> Vec<Mix> {
    (0..n)
        .map(|id| {
            let mut s = Stream::from_words(&[seed, 0x004D_4958, id as u64]);
            let benchmarks = (0..cores)
                .map(|_| &BENCHMARKS[s.next_below(BENCHMARKS.len() as u64) as usize])
                .collect();
            Mix { id, benchmarks }
        })
        .collect()
}

/// One instruction-stream event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `n` non-memory instructions.
    Compute(u32),
    /// A load of the 64 B line at this byte address.
    Load(u64),
    /// A store to the 64 B line at this byte address.
    Store(u64),
}

/// Deterministic instruction-stream generator for one core.
#[derive(Debug, Clone)]
pub struct TraceGen {
    bench: &'static Benchmark,
    rng: Stream,
    /// Current line index per stream.
    streams: Vec<u64>,
    /// Byte offset isolating this core's address space.
    base: u64,
    /// Set once the compute gap has been emitted and a memory op is owed.
    mem_pending: bool,
}

impl TraceGen {
    /// Builds the generator for `bench` on core `core`.
    pub fn new(bench: &'static Benchmark, core: usize, seed: u64) -> Self {
        let mut rng = Stream::from_words(&[seed, 0x0054_5243, core as u64]);
        let streams = (0..bench.streams)
            .map(|_| rng.next_below(bench.footprint_lines))
            .collect();
        TraceGen {
            bench,
            rng,
            streams,
            // 1 GiB per core keeps multiprogrammed address spaces disjoint.
            base: (core as u64) << 30,
            mem_pending: false,
        }
    }

    /// The benchmark this generator replays.
    pub fn benchmark(&self) -> &'static Benchmark {
        self.bench
    }

    /// Next event. Memory events are separated by geometric compute gaps
    /// whose mean matches `mem_per_kinst` (gap then access, so the
    /// inter-arrival expectation is exactly `1000 / mem_per_kinst`).
    pub fn next_op(&mut self) -> Op {
        if !self.mem_pending {
            self.mem_pending = true;
            let per_inst = self.bench.mem_per_kinst / 1000.0;
            let u = self.rng.next_f64().max(1e-12);
            let gap = ((u.ln() / (1.0 - per_inst.min(0.99)).ln()).floor() as u32).min(60_000);
            if gap > 0 {
                return Op::Compute(gap);
            }
        }
        self.mem_pending = false;
        // A memory access: pick a stream, continue or jump.
        let s = self.rng.next_below(self.streams.len() as u64) as usize;
        if self.rng.next_bool(self.bench.locality) {
            self.streams[s] = (self.streams[s] + 1) % self.bench.footprint_lines;
        } else {
            self.streams[s] = self.rng.next_below(self.bench.footprint_lines);
        }
        let addr = self.base + self.streams[s] * 64;
        if self.rng.next_bool(self.bench.store_frac) {
            Op::Store(addr)
        } else {
            Op::Load(addr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_is_sorted_by_intensity_and_named_uniquely() {
        assert!(BENCHMARKS
            .windows(2)
            .all(|w| w[0].mem_per_kinst >= w[1].mem_per_kinst));
        let names: std::collections::HashSet<_> = BENCHMARKS.iter().map(|b| b.name).collect();
        assert_eq!(names.len(), BENCHMARKS.len());
        assert!(benchmark("mcf").is_some());
        assert!(benchmark("nonesuch").is_none());
    }

    #[test]
    fn mixes_are_deterministic_and_sized() {
        let a = mixes(125, 8, 42);
        let b = mixes(125, 8, 42);
        assert_eq!(a.len(), 125);
        assert_eq!(a, b);
        assert!(a.iter().all(|m| m.benchmarks.len() == 8));
        // Different seeds give different suites.
        assert_ne!(a, mixes(125, 8, 43));
    }

    #[test]
    fn trace_memory_rate_matches_profile() {
        let bench = benchmark("milc").unwrap();
        let mut gen = TraceGen::new(bench, 0, 7);
        let mut insts = 0u64;
        let mut mems = 0u64;
        while insts < 2_000_000 {
            match gen.next_op() {
                Op::Compute(n) => insts += u64::from(n),
                Op::Load(_) | Op::Store(_) => {
                    insts += 1;
                    mems += 1;
                }
            }
        }
        let per_kinst = mems as f64 * 1000.0 / insts as f64;
        assert!(
            (per_kinst - bench.mem_per_kinst).abs() < bench.mem_per_kinst * 0.15,
            "measured {per_kinst} vs profile {}",
            bench.mem_per_kinst
        );
    }

    #[test]
    fn store_fraction_tracks_profile() {
        let bench = benchmark("lbm").unwrap();
        let mut gen = TraceGen::new(bench, 1, 7);
        let (mut loads, mut stores) = (0u64, 0u64);
        for _ in 0..200_000 {
            match gen.next_op() {
                Op::Load(_) => loads += 1,
                Op::Store(_) => stores += 1,
                Op::Compute(_) => {}
            }
        }
        let frac = stores as f64 / (loads + stores) as f64;
        assert!((frac - bench.store_frac).abs() < 0.05, "store frac {frac}");
    }

    #[test]
    fn cores_use_disjoint_address_spaces() {
        let bench = benchmark("mcf").unwrap();
        let mut g0 = TraceGen::new(bench, 0, 7);
        let mut g1 = TraceGen::new(bench, 1, 7);
        for _ in 0..1000 {
            if let Op::Load(a) | Op::Store(a) = g0.next_op() {
                assert!(a < 1 << 30);
            }
            if let Op::Load(a) | Op::Store(a) = g1.next_op() {
                assert!((1 << 30..2 << 30).contains(&a));
            }
        }
    }

    #[test]
    fn locality_produces_sequential_runs() {
        let streaming = benchmark("libquantum").unwrap();
        let scattered = benchmark("mcf").unwrap();
        let seq_frac = |b: &'static Benchmark| {
            let mut gen = TraceGen::new(b, 0, 9);
            let mut last: Option<u64> = None;
            let (mut seq, mut total) = (0u64, 0u64);
            for _ in 0..400_000 {
                if let Op::Load(a) | Op::Store(a) = gen.next_op() {
                    if let Some(l) = last {
                        total += 1;
                        if a == l + 64 {
                            seq += 1;
                        }
                    }
                    last = Some(a);
                }
            }
            seq as f64 / total as f64
        };
        assert!(seq_frac(streaming) > seq_frac(scattered) + 0.2);
    }
}
