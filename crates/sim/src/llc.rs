//! Shared last-level cache (Table 3: 8 MB, 8-way, 64 B lines) with MSHR
//! merging and dirty writebacks.

use std::collections::HashMap;

/// Identifies a waiting instruction: `(core, window entry id)`.
pub type Waiter = (usize, u64);

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Data present; completes after the hit latency.
    Hit,
    /// Fetch issued (or merged onto an outstanding fetch).
    Miss,
    /// The miss path is saturated; retry next cycle.
    Busy,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    /// LRU stamp.
    used: u64,
    valid: bool,
}

#[derive(Debug)]
struct Mshr {
    waiters: Vec<Waiter>,
    mark_dirty: bool,
}

/// The shared LLC.
#[derive(Debug)]
pub struct Llc {
    sets: Vec<Vec<Line>>,
    set_mask: u64,
    stamp: u64,
    mshrs: HashMap<u64, Mshr>,
    mshr_capacity: usize,
    /// Line addresses whose fetch must be sent to the memory system.
    pub fetch_queue: Vec<u64>,
    /// Line addresses to write back (dirty evictions).
    pub writeback_queue: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl Llc {
    /// LLC hit latency in CPU cycles.
    pub const HIT_LATENCY: u64 = 22;

    /// Builds a cache of `bytes` capacity and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics unless the set count works out to a power of two.
    pub fn new(bytes: usize, ways: usize) -> Self {
        let sets = bytes / 64 / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Llc {
            sets: vec![
                vec![
                    Line {
                        tag: 0,
                        dirty: false,
                        used: 0,
                        valid: false
                    };
                    ways
                ];
                sets
            ],
            set_mask: sets as u64 - 1,
            stamp: 0,
            mshrs: HashMap::new(),
            mshr_capacity: 64,
            fetch_queue: Vec::new(),
            writeback_queue: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Accesses `line` (a byte address divided by 64). On a miss the fetch
    /// is queued and `waiter` is notified through [`Llc::fill`].
    pub fn access(&mut self, line: u64, is_store: bool, waiter: Option<Waiter>) -> Access {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(line);
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == line) {
            l.used = stamp;
            l.dirty |= is_store;
            self.hits += 1;
            return Access::Hit;
        }
        // Merge onto an outstanding fetch if one exists.
        if let Some(m) = self.mshrs.get_mut(&line) {
            if let Some(w) = waiter {
                m.waiters.push(w);
            }
            m.mark_dirty |= is_store;
            self.misses += 1;
            return Access::Miss;
        }
        if self.mshrs.len() >= self.mshr_capacity {
            return Access::Busy;
        }
        self.misses += 1;
        let mut m = Mshr {
            waiters: Vec::new(),
            mark_dirty: is_store,
        };
        if let Some(w) = waiter {
            m.waiters.push(w);
        }
        self.mshrs.insert(line, m);
        self.fetch_queue.push(line);
        Access::Miss
    }

    /// Completes an outstanding fetch: installs the line (possibly evicting
    /// a dirty victim onto `writeback_queue`) and returns the waiters.
    pub fn fill(&mut self, line: u64) -> Vec<Waiter> {
        self.stamp += 1;
        let stamp = self.stamp;
        let Some(m) = self.mshrs.remove(&line) else {
            return Vec::new();
        };
        let set = self.set_of(line);
        let victim = self.sets[set]
            .iter_mut()
            .min_by_key(|l| if l.valid { l.used } else { 0 })
            .expect("non-zero associativity");
        if victim.valid && victim.dirty {
            self.writeback_queue.push(victim.tag);
        }
        *victim = Line {
            tag: line,
            dirty: m.mark_dirty,
            used: stamp,
            valid: true,
        };
        m.waiters
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Llc {
        Llc::new(64 * 64 * 2, 2) // 64 sets × 2 ways
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert_eq!(c.access(5, false, Some((0, 1))), Access::Miss);
        assert_eq!(c.fetch_queue, vec![5]);
        let waiters = c.fill(5);
        assert_eq!(waiters, vec![(0, 1)]);
        assert_eq!(c.access(5, false, None), Access::Hit);
    }

    #[test]
    fn merged_misses_share_one_fetch() {
        let mut c = small();
        assert_eq!(c.access(9, false, Some((0, 1))), Access::Miss);
        assert_eq!(c.access(9, false, Some((1, 2))), Access::Miss);
        assert_eq!(c.fetch_queue.len(), 1);
        let waiters = c.fill(9);
        assert_eq!(waiters.len(), 2);
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = small();
        // Three lines mapping to set 1 in a 2-way cache.
        let lines = [1u64, 1 + 64, 1 + 128];
        assert_eq!(c.access(lines[0], true, None), Access::Miss);
        c.fill(lines[0]);
        assert_eq!(c.access(lines[1], false, None), Access::Miss);
        c.fill(lines[1]);
        assert_eq!(c.access(lines[2], false, None), Access::Miss);
        c.fill(lines[2]); // evicts lines[0], which is dirty
        assert_eq!(c.writeback_queue, vec![lines[0]]);
    }

    #[test]
    fn store_miss_marks_line_dirty_on_fill() {
        let mut c = small();
        c.access(7, true, None);
        c.fill(7);
        // Evict it cleanly? Fill two more into the same set; the dirty line
        // must produce a writeback.
        c.access(7 + 64, false, None);
        c.fill(7 + 64);
        c.access(7 + 128, false, None);
        c.fill(7 + 128);
        assert!(c.writeback_queue.contains(&7));
    }

    #[test]
    fn mshr_saturation_reports_busy() {
        let mut c = small();
        c.mshr_capacity = 2;
        assert_eq!(c.access(1, false, None), Access::Miss);
        assert_eq!(c.access(2, false, None), Access::Miss);
        assert_eq!(c.access(3, false, None), Access::Busy);
    }

    #[test]
    fn lru_keeps_recently_used_lines() {
        let mut c = small();
        let (a, b, x) = (11u64, 11 + 64, 11 + 128);
        c.access(a, false, None);
        c.fill(a);
        c.access(b, false, None);
        c.fill(b);
        // Touch `a` so `b` is LRU.
        assert_eq!(c.access(a, false, None), Access::Hit);
        c.access(x, false, None);
        c.fill(x);
        assert_eq!(
            c.access(a, false, None),
            Access::Hit,
            "recently used line evicted"
        );
        assert_eq!(c.access(b, false, None), Access::Miss, "LRU line survived");
    }
}
