//! Simulated system configuration (Table 3).
//!
//! The refresh arrangement is an open [`PolicyHandle`] (see
//! [`crate::policy`]) rather than a closed enum: any registered policy —
//! the paper's three arrangements or a third-party one — slots into the
//! same configuration. Preventive (PARA) layers are part of the handle,
//! composed with [`PolicyHandle::with_para_immediate`] /
//! [`PolicyHandle::with_para_hira`].
//!
//! Demand traffic is equally open: `workload` is a
//! [`hira_workload::WorkloadHandle`] resolved from the
//! [`hira_workload::WorkloadRegistry`] — the SPEC-like roster mixes, any
//! parametric generator, or a `.trace` replay all slot into the same
//! field. The default is the standard suite's `mix0`.
//!
//! The DRAM part itself is the third open axis: `device` is a
//! [`DeviceHandle`] resolved from the [`crate::device::DeviceRegistry`].
//! The device supplies the command clock (and thereby the CPU↔memory
//! tick ratio), the default bank geometry, the capacity-scaled timing
//! table `timing` is seeded from, and the capability flags (HiRA
//! `t1`/`t2` support, native `REFpb`).

use crate::builder::SystemBuilder;
use crate::clock::MemClock;
use crate::device::DeviceHandle;
use crate::plugin::PluginHandle;
use crate::policy::PolicyHandle;
use crate::probe::ProbeHandle;
use hira_dram::timing::TimingParams;
use hira_workload::WorkloadHandle;
use std::fmt;
use std::str::FromStr;

/// Which simulation kernel [`crate::system::System::run`] uses. Both
/// produce bit-identical [`crate::metrics::SimResult`]s — the event kernel
/// is the fast path, the dense kernel the reference the A/B equality
/// harness (`perf_kernel`, `tests/kernel_equivalence.rs`) checks it
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelMode {
    /// The legacy reference loop: every core ticks every CPU cycle, every
    /// channel and policy ticks every memory cycle.
    Dense,
    /// Event-driven time skipping: the clock advances to the minimum of
    /// the cores' and channels' next interesting instants (blocked cores
    /// sleep until their fill, compute bubbles batch arithmetically,
    /// policies sleep until their declared
    /// [`crate::policy::RefreshPolicy::next_wake`]).
    #[default]
    Event,
}

impl fmt::Display for KernelMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KernelMode::Dense => "dense",
            KernelMode::Event => "event",
        })
    }
}

impl FromStr for KernelMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(KernelMode::Dense),
            "event" => Ok(KernelMode::Event),
            other => Err(format!("unknown kernel mode `{other}` (dense|event)")),
        }
    }
}

/// Full system configuration. Hand-assembly is possible (all fields are
/// public) but [`SystemBuilder`] is the supported construction path — it
/// cross-checks geometry and timing and returns typed errors.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of cores (Table 3: 8).
    pub cores: usize,
    /// Memory channels (Table 3: 1; §10 sweeps 1-8).
    pub channels: usize,
    /// Ranks per channel (Table 3: 1; §10 sweeps 1-8).
    pub ranks: usize,
    /// Banks per rank (DDR4: 16 in 4 bank groups).
    pub banks: u16,
    /// Bank groups per rank.
    pub bank_groups: u16,
    /// Chip capacity in Gb (drives rows/bank and `tRFC`).
    pub chip_gbit: f64,
    /// The DRAM part: clock ratio, geometry defaults, capacity-scaled
    /// timing, capability flags (see [`crate::device`]).
    pub device: DeviceHandle,
    /// DDR timing parameters (seeded from `device` at build time; may be
    /// overridden afterwards for targeted experiments).
    pub timing: TimingParams,
    /// Periodic refresh policy (plus any composed preventive layer).
    pub refresh: PolicyHandle,
    /// Controller plugins (RowHammer defenses), instantiated per rank in
    /// order (see [`crate::plugin`]). Unlike probes, plugins *perturb*
    /// the run — their injected refreshes cost real command slots — so
    /// the list is part of the cache identity.
    pub plugins: Vec<PluginHandle>,
    /// Demand-traffic frontend: one per-core instance is built from this
    /// handle (see [`hira_workload::Workload`]).
    pub workload: WorkloadHandle,
    /// LLC capacity in bytes (Table 3: 8 MB).
    pub llc_bytes: usize,
    /// LLC associativity.
    pub llc_ways: usize,
    /// Read/write queue capacity per channel.
    pub queue_depth: usize,
    /// Instructions each core must retire (after warmup) for the measurement.
    pub insts_per_core: u64,
    /// Warmup instructions per core.
    pub warmup_insts: u64,
    /// Fraction of row pairs HiRA can pair (§7: 0.32).
    pub spt_fraction: f64,
    /// Deterministic seed.
    pub seed: u64,
    /// Which simulation kernel drives the run (results are identical;
    /// wall-clock is not).
    pub kernel: KernelMode,
    /// Explicit safety-cap override in CPU cycles. `None` uses the legacy
    /// formula (`120 × (warmup + insts) + 4 M`). Both kernels stop the
    /// moment the cycle counter reaches the cap — the event kernel clamps
    /// its time skips to it, never overshooting — so a capped run reports
    /// exactly the cap in [`crate::metrics::SimResult::cycles`].
    pub cycle_cap: Option<u64>,
    /// Optional run observer (see [`crate::probe`]). Probes are read-only:
    /// the [`crate::metrics::SimResult`] is bit-identical with or without
    /// one, and `None` costs a single branch per notification site.
    pub probe: Option<ProbeHandle>,
}

impl SystemConfig {
    /// The Table 3 configuration for a given chip capacity and refresh
    /// policy, at a scaled-down default instruction budget.
    pub fn table3(chip_gbit: f64, refresh: PolicyHandle) -> Self {
        SystemBuilder::table3(chip_gbit)
            .policy(refresh)
            .build()
            .expect("Table 3 presets are valid")
    }

    /// Rows per bank. Table 3 fixes this at 64 K for every simulated
    /// capacity: the paper models density growth through wider rows and a
    /// larger `tRFC` (Expression 1), not through more rows — which is what
    /// makes per-row HiRA refresh scale gracefully while the baseline's
    /// rank-blocking time balloons (§8).
    pub fn rows_per_bank(&self) -> u32 {
        64 * 1024
    }

    /// The CPU/command-clock pairing of the configured device.
    pub fn clock(&self) -> MemClock {
        self.device.profile().clock()
    }

    /// Replaces the refresh policy.
    pub fn with_policy(mut self, refresh: PolicyHandle) -> Self {
        self.refresh = refresh;
        self
    }

    /// Replaces the demand workload.
    pub fn with_workload(mut self, workload: WorkloadHandle) -> Self {
        self.workload = workload;
        self
    }

    /// Layers immediately-served PARA onto the current policy (§9's plain
    /// "PARA" baseline).
    pub fn with_para(mut self, pth: f64) -> Self {
        self.refresh = self.refresh.with_para_immediate(pth);
        self
    }

    /// Layers HiRA-N-queued PARA onto the current policy.
    pub fn with_para_hira(mut self, pth: f64, slack_acts: u32) -> Self {
        self.refresh = self.refresh.with_para_hira(pth, slack_acts);
        self
    }

    /// Overrides channel/rank geometry (§10 sweeps).
    pub fn with_geometry(mut self, channels: usize, ranks: usize) -> Self {
        assert!(channels >= 1 && ranks >= 1);
        self.channels = channels;
        self.ranks = ranks;
        self
    }

    /// Overrides the instruction budget (scaled experiments).
    pub fn with_insts(mut self, insts: u64, warmup: u64) -> Self {
        self.insts_per_core = insts;
        self.warmup_insts = warmup;
        self
    }

    /// Selects the simulation kernel (`--kernel=` axes; A/B harnesses).
    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// Overrides the safety cycle cap (bounded runs, cap-semantics tests).
    pub fn with_cycle_cap(mut self, cap: u64) -> Self {
        self.cycle_cap = Some(cap);
        self
    }

    /// Attaches a probe (`--probe=` axes; see [`crate::probe`]).
    pub fn with_probe(mut self, probe: ProbeHandle) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Appends a controller plugin (`--plugin=` axes; see
    /// [`crate::plugin`]).
    pub fn with_plugin(mut self, plugin: PluginHandle) -> Self {
        self.plugins.push(plugin);
        self
    }

    /// A canonical rendering of every **result-affecting** field — the
    /// configuration portion of a simulation's content-addressed cache
    /// identity (see `hira-store`). Two configs with equal descriptors
    /// produce bit-identical [`crate::metrics::SimResult`]s; two configs
    /// differing in any simulated parameter render differently.
    ///
    /// Deliberately excluded, because both are documented result-neutral:
    ///
    /// * `kernel` — dense and event kernels are bit-identical by contract
    ///   (enforced by `tests/kernel_equivalence.rs`), so a cached event
    ///   result legitimately answers a dense query and vice versa,
    /// * `probe` — probes are read-only observers.
    ///
    /// Policy / workload / device handles contribute their registry
    /// **names**, which is exactly the identity the rest of the system
    /// uses (`PolicyHandle` equality is name equality; parametric handles
    /// like `hira4`, `baseline+para(p=…)` or `ddr4-2400@32` encode their
    /// parameters in the name). If that naming contract ever weakens,
    /// bump `hira_store::CACHE_SCHEMA_VERSION`.
    pub fn cache_descriptor(&self) -> String {
        let cap = match self.cycle_cap {
            Some(c) => c.to_string(),
            None => "default".to_string(),
        };
        let plugins = if self.plugins.is_empty() {
            "none".to_string()
        } else {
            self.plugins
                .iter()
                .map(|p| p.name())
                .collect::<Vec<_>>()
                .join("+")
        };
        format!(
            "cores={};channels={};ranks={};banks={};bank_groups={};chip_gbit={};\
             device={};timing={};policy={};plugins={plugins};workload={};llc_bytes={};llc_ways={};\
             queue_depth={};insts={};warmup={};spt={};seed={};cycle_cap={}",
            self.cores,
            self.channels,
            self.ranks,
            self.banks,
            self.bank_groups,
            self.chip_gbit,
            self.device.name(),
            self.timing.cache_descriptor(),
            self.refresh.name(),
            self.workload.name(),
            self.llc_bytes,
            self.llc_ways,
            self.queue_depth,
            self.insts_per_core,
            self.warmup_insts,
            self.spt_fraction,
            self.seed,
            cap,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{baseline, noref};
    use hira_dram::timing::trfc_for_capacity;

    #[test]
    fn rows_per_bank_is_table3_fixed() {
        // Table 3: 64 K rows/bank at every capacity (density = wider rows).
        let c8 = SystemConfig::table3(8.0, baseline());
        assert_eq!(c8.rows_per_bank(), 64 * 1024);
        let c128 = SystemConfig::table3(128.0, baseline());
        assert_eq!(c128.rows_per_bank(), 64 * 1024);
    }

    #[test]
    fn trfc_follows_expression_1() {
        let c = SystemConfig::table3(32.0, baseline());
        assert!((c.timing.t_rfc - trfc_for_capacity(32.0)).abs() < 1e-9);
    }

    #[test]
    fn builders_compose() {
        let c = SystemConfig::table3(8.0, noref())
            .with_geometry(4, 2)
            .with_para(0.5)
            .with_insts(1000, 100);
        assert_eq!(c.channels, 4);
        assert_eq!(c.ranks, 2);
        assert_eq!(c.refresh.name(), "noref+para(p=0.5000)");
        assert_eq!(c.insts_per_core, 1000);
    }

    #[test]
    fn configs_compare_by_policy_identity() {
        let a = SystemConfig::table3(8.0, baseline());
        let b = SystemConfig::table3(8.0, baseline());
        assert_eq!(a, b);
        assert_ne!(a, SystemConfig::table3(8.0, noref()));
    }

    #[test]
    fn configs_compare_by_device_identity() {
        let a = SystemConfig::table3(8.0, baseline());
        assert_eq!(a.device.name(), "ddr4-2400");
        assert_eq!(a.clock().mem_ticks_per_cpu_cycle(), (3, 8));
        let mut b = a.clone();
        b.device = crate::device::ddr4_3200();
        assert_ne!(a, b);
    }

    #[test]
    fn cache_descriptor_tracks_results_not_observers() {
        let a = SystemConfig::table3(8.0, baseline());
        assert_eq!(a.cache_descriptor(), a.clone().cache_descriptor());
        // Every simulated axis moves the descriptor…
        assert_ne!(
            a.cache_descriptor(),
            SystemConfig::table3(64.0, baseline()).cache_descriptor()
        );
        assert_ne!(
            a.cache_descriptor(),
            SystemConfig::table3(8.0, noref()).cache_descriptor()
        );
        assert_ne!(
            a.cache_descriptor(),
            a.clone().with_geometry(2, 1).cache_descriptor()
        );
        assert_ne!(
            a.cache_descriptor(),
            a.clone().with_insts(999, 99).cache_descriptor()
        );
        assert_ne!(
            a.cache_descriptor(),
            a.clone()
                .with_workload(hira_workload::stream())
                .cache_descriptor()
        );
        assert_ne!(
            a.cache_descriptor(),
            a.clone().with_cycle_cap(1_000_000).cache_descriptor()
        );
        let mut dev = a.clone();
        dev.device = crate::device::ddr4_3200();
        assert_ne!(a.cache_descriptor(), dev.cache_descriptor());
        let mut timing = a.clone();
        timing.timing.t_rfc += 1.0;
        assert_ne!(a.cache_descriptor(), timing.cache_descriptor());
        // Plugins perturb the run (injected refreshes cost command slots),
        // so the plugin axis moves the descriptor — by name, and by order.
        let defended = a.clone().with_plugin(crate::plugin::oracle(1024));
        assert_ne!(a.cache_descriptor(), defended.cache_descriptor());
        assert_ne!(
            defended.cache_descriptor(),
            a.clone()
                .with_plugin(crate::plugin::oracle(2048))
                .cache_descriptor()
        );
        let ab = a
            .clone()
            .with_plugin(crate::plugin::oracle(1024))
            .with_plugin(crate::plugin::para(0.01));
        let ba = a
            .clone()
            .with_plugin(crate::plugin::para(0.01))
            .with_plugin(crate::plugin::oracle(1024));
        assert_ne!(ab.cache_descriptor(), ba.cache_descriptor());
        // …while the documented result-neutral fields do not.
        let event = a.clone().with_kernel(KernelMode::Event);
        let dense = a.clone().with_kernel(KernelMode::Dense);
        assert_eq!(event.cache_descriptor(), dense.cache_descriptor());
        let probed = a.clone().with_probe(crate::probe::probe("epochs:50000"));
        assert_eq!(a.cache_descriptor(), probed.cache_descriptor());
    }

    #[test]
    fn configs_compare_by_workload_identity() {
        let a = SystemConfig::table3(8.0, baseline());
        assert_eq!(a.workload.name(), "mix0");
        let b = a.clone().with_workload(hira_workload::stream());
        assert_ne!(a, b);
        assert_eq!(b.workload.name(), "stream");
    }
}
