//! Simulated system configuration (Table 3).

use hira_core::config::HiraConfig;
use hira_dram::timing::{trfc_for_capacity, TimingParams};

/// How periodic refresh is performed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefreshScheme {
    /// No periodic refresh at all (the ideal bound of Fig. 9a).
    NoRefresh,
    /// Conventional all-bank `REF` every `tREFI`, blocking the rank for
    /// `tRFC` (scaled with chip capacity by Expression 1).
    Baseline,
    /// Per-row refresh through HiRA-MC with the given HiRA-N configuration.
    Hira(HiraConfig),
}

/// How PARA's preventive refreshes are served (§9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PreventiveMode {
    /// Refresh the victim immediately after the triggering activation
    /// ("PARA" in Fig. 12 — no HiRA).
    Immediate,
    /// Queue with `tRefSlack` and let HiRA-MC parallelize (HiRA-N).
    Hira(HiraConfig),
}

/// Preventive-refresh configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreventiveConfig {
    /// PARA's probability threshold (from the §9.1 security analysis).
    pub pth: f64,
    /// Service mode.
    pub mode: PreventiveMode,
}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of cores (Table 3: 8).
    pub cores: usize,
    /// Memory channels (Table 3: 1; §10 sweeps 1-8).
    pub channels: usize,
    /// Ranks per channel (Table 3: 1; §10 sweeps 1-8).
    pub ranks: usize,
    /// Banks per rank (DDR4: 16 in 4 bank groups).
    pub banks: u16,
    /// Bank groups per rank.
    pub bank_groups: u16,
    /// Chip capacity in Gb (drives rows/bank and `tRFC`).
    pub chip_gbit: f64,
    /// DDR timing parameters.
    pub timing: TimingParams,
    /// Periodic refresh scheme.
    pub refresh: RefreshScheme,
    /// Optional PARA layer.
    pub preventive: Option<PreventiveConfig>,
    /// LLC capacity in bytes (Table 3: 8 MB).
    pub llc_bytes: usize,
    /// LLC associativity.
    pub llc_ways: usize,
    /// Read/write queue capacity per channel.
    pub queue_depth: usize,
    /// Instructions each core must retire (after warmup) for the measurement.
    pub insts_per_core: u64,
    /// Warmup instructions per core.
    pub warmup_insts: u64,
    /// Fraction of row pairs HiRA can pair (§7: 0.32).
    pub spt_fraction: f64,
    /// Deterministic seed.
    pub seed: u64,
}

impl SystemConfig {
    /// The Table 3 configuration for a given chip capacity and refresh
    /// scheme, at a scaled-down default instruction budget.
    pub fn table3(chip_gbit: f64, refresh: RefreshScheme) -> Self {
        let mut timing = TimingParams::ddr4_2400();
        timing.t_rfc = trfc_for_capacity(chip_gbit);
        SystemConfig {
            cores: 8,
            channels: 1,
            ranks: 1,
            banks: 16,
            bank_groups: 4,
            chip_gbit,
            timing,
            refresh,
            preventive: None,
            llc_bytes: 8 << 20,
            llc_ways: 8,
            queue_depth: 64,
            insts_per_core: 100_000,
            warmup_insts: 20_000,
            spt_fraction: 0.32,
            seed: 0x5157,
        }
    }

    /// Rows per bank. Table 3 fixes this at 64 K for every simulated
    /// capacity: the paper models density growth through wider rows and a
    /// larger `tRFC` (Expression 1), not through more rows — which is what
    /// makes per-row HiRA refresh scale gracefully while the baseline's
    /// rank-blocking time balloons (§8).
    pub fn rows_per_bank(&self) -> u32 {
        64 * 1024
    }

    /// Adds a PARA layer.
    pub fn with_preventive(mut self, pth: f64, mode: PreventiveMode) -> Self {
        self.preventive = Some(PreventiveConfig { pth, mode });
        self
    }

    /// Overrides channel/rank geometry (§10 sweeps).
    pub fn with_geometry(mut self, channels: usize, ranks: usize) -> Self {
        assert!(channels >= 1 && ranks >= 1);
        self.channels = channels;
        self.ranks = ranks;
        self
    }

    /// Overrides the instruction budget (scaled experiments).
    pub fn with_insts(mut self, insts: u64, warmup: u64) -> Self {
        self.insts_per_core = insts;
        self.warmup_insts = warmup;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_per_bank_is_table3_fixed() {
        // Table 3: 64 K rows/bank at every capacity (density = wider rows).
        let c8 = SystemConfig::table3(8.0, RefreshScheme::Baseline);
        assert_eq!(c8.rows_per_bank(), 64 * 1024);
        let c128 = SystemConfig::table3(128.0, RefreshScheme::Baseline);
        assert_eq!(c128.rows_per_bank(), 64 * 1024);
    }

    #[test]
    fn trfc_follows_expression_1() {
        let c = SystemConfig::table3(32.0, RefreshScheme::Baseline);
        assert!((c.timing.t_rfc - trfc_for_capacity(32.0)).abs() < 1e-9);
    }

    #[test]
    fn builders_compose() {
        let c = SystemConfig::table3(8.0, RefreshScheme::NoRefresh)
            .with_geometry(4, 2)
            .with_preventive(0.5, PreventiveMode::Immediate)
            .with_insts(1000, 100);
        assert_eq!(c.channels, 4);
        assert_eq!(c.ranks, 2);
        assert!(c.preventive.is_some());
        assert_eq!(c.insts_per_core, 1000);
    }
}
