//! Memory requests and decoded addresses.

use hira_dram::addr::RowId;

/// A physical cache-line address decoded into DRAM coordinates.
///
/// ## The flat-bank / bank-group invariant
///
/// `bank` is the **flat** bank index within the rank (`0..banks`), laid
/// out group-major: `bank = bank_group * banks_per_group + bank_in_group`,
/// where `banks_per_group = banks / bank_groups`. `bank_group` is therefore
/// fully redundant with `bank` — it is carried separately only so
/// `tCCD_S`/`tRRD_S` same-group checks need no division on the scheduling
/// hot path. Every producer must uphold
/// `bank_group == bank / banks_per_group`; [`crate::mapping::decode`]
/// asserts it (debug builds) and the mapping round-trip test enforces it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decoded {
    /// Channel index.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Flat bank index within the rank (group-major; see the invariant
    /// above).
    pub bank: u16,
    /// Bank group of `bank` — always `bank / (banks / bank_groups)`.
    pub bank_group: u16,
    /// Row within the bank.
    pub row: RowId,
    /// Column (cache-line) within the row.
    pub col: u16,
}

/// A memory request queued at a channel controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemRequest {
    /// Unique id (used by the LLC to match completions).
    pub id: u64,
    /// Decoded DRAM coordinates.
    pub addr: Decoded,
    /// True for writes (writebacks); writes complete fire-and-forget.
    pub is_write: bool,
    /// Memory cycle at which the request entered the queue.
    pub arrived: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_are_plain_data() {
        let d = Decoded {
            channel: 0,
            rank: 0,
            bank: 3,
            bank_group: 1,
            row: RowId(9),
            col: 17,
        };
        let r = MemRequest {
            id: 1,
            addr: d,
            is_write: false,
            arrived: 0,
        };
        let r2 = r;
        assert_eq!(r, r2);
    }
}
