//! The shipped device presets, sourced from `hira_dram`'s timing tables
//! and vendor profiles — the dram crate is the single source of truth for
//! ns values and HiRA capability; this module only packages them behind
//! the [`DeviceModel`] API.

use super::{DeviceHandle, DeviceModel, DeviceProfile};
use hira_dram::timing::{trfc_for_capacity, TimingParams};
use hira_dram::vendor::Manufacturer;

/// How a device projects `tRFC` from chip capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrfcScaling {
    /// The paper's Expression (1): `tRFC = 110 · C^0.6` ns.
    Expression1,
    /// Scale the base table's own `tRFC` by `(C / base_gbit)^0.6` — for
    /// standards whose quoted `tRFC` sits below the Expression 1
    /// regression (LPDDR4's 280 ns at 8 Gb).
    ScaledFromBase {
        /// Capacity (Gb) the base table's `tRFC` was quoted at.
        base_gbit: f64,
    },
    /// Ignore the requested capacity: the table is a specific part whose
    /// `tRFC` is pinned at `gbit` (the `ddr4-2400@<Gb>` dynamic form).
    Pinned {
        /// The part's fixed capacity in Gb.
        gbit: f64,
    },
}

/// A table-driven [`DeviceModel`]: a profile, a base ns timing table, and
/// a `tRFC` capacity-scaling rule. All shipped presets are instances;
/// downstream devices can either construct one or implement the trait
/// directly.
#[derive(Debug, Clone)]
pub struct StandardDevice {
    name: String,
    profile: DeviceProfile,
    base: TimingParams,
    trfc: TrfcScaling,
}

impl StandardDevice {
    /// Builds a table-driven device.
    pub fn new(
        name: impl Into<String>,
        profile: DeviceProfile,
        base: TimingParams,
        trfc: TrfcScaling,
    ) -> Self {
        StandardDevice {
            name: name.into(),
            profile,
            base,
            trfc,
        }
    }
}

impl DeviceModel for StandardDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    fn timing(&self, chip_gbit: f64) -> TimingParams {
        let mut t = self.base;
        t.t_rfc = match self.trfc {
            TrfcScaling::Expression1 => trfc_for_capacity(chip_gbit),
            TrfcScaling::ScaledFromBase { base_gbit } => {
                self.base.t_rfc * (chip_gbit / base_gbit).powf(0.6)
            }
            TrfcScaling::Pinned { gbit } => trfc_for_capacity(gbit),
        };
        t
    }
}

fn ddr4_profile(manufacturer: Manufacturer) -> DeviceProfile {
    DeviceProfile {
        standard: "DDR4-2400".to_owned(),
        cpu_ghz: 3.2,
        mem_ghz: 1.2,
        mem_ticks_per_cpu_cycle: (3, 8),
        banks: 16,
        bank_groups: 4,
        default_chip_gbit: 8.0,
        manufacturer,
        supports_hira: manufacturer.hira_capable(),
        native_refpb: false,
        t_rfc_pb_frac: 0.5,
        supports_vrr: manufacturer.hira_capable(),
    }
}

/// The Table 3 part: DDR4-2400 on SK Hynix dies, `tRFC` projected from
/// capacity by Expression (1). Bit-identical to the pre-API simulator —
/// the tracked `BENCH_policy_matrix.json` / `BENCH_workload_matrix.json`
/// baselines are produced on this device.
pub fn ddr4_2400() -> DeviceHandle {
    DeviceHandle::new(
        "ddr4-2400",
        StandardDevice::new(
            "ddr4-2400",
            ddr4_profile(Manufacturer::SkHynix),
            TimingParams::ddr4_2400(),
            TrfcScaling::Expression1,
        ),
    )
    .with_summary("Table 3 DDR4-2400 (1.2 GHz, 16 banks/4 groups), tRFC = 110*C^0.6")
}

/// DDR4-3200: the same analog core on a 1.6 GHz command grid (1 memory
/// tick per 2 CPU cycles).
pub fn ddr4_3200() -> DeviceHandle {
    let profile = DeviceProfile {
        standard: "DDR4-3200".to_owned(),
        mem_ghz: 1.6,
        mem_ticks_per_cpu_cycle: (1, 2),
        ..ddr4_profile(Manufacturer::SkHynix)
    };
    DeviceHandle::new(
        "ddr4-3200",
        StandardDevice::new(
            "ddr4-3200",
            profile,
            TimingParams::ddr4_3200(),
            TrfcScaling::Expression1,
        ),
    )
    .with_summary("DDR4-3200 speed bin (1.6 GHz, 16 banks/4 groups), same analog core")
}

/// LPDDR4-3200: 8 banks, no bank groups, native per-bank `REFpb` at
/// `tRFCpb = tRFC/2`, and a 32 ms refresh window (double DDR4's periodic
/// rate) — the standard whose native refresh-access parallelism the
/// `refpb` policy models.
pub fn lpddr4_3200() -> DeviceHandle {
    let profile = DeviceProfile {
        standard: "LPDDR4-3200".to_owned(),
        cpu_ghz: 3.2,
        mem_ghz: 1.6,
        mem_ticks_per_cpu_cycle: (1, 2),
        banks: 8,
        bank_groups: 1,
        default_chip_gbit: 8.0,
        manufacturer: Manufacturer::SkHynix,
        supports_hira: true,
        native_refpb: true,
        t_rfc_pb_frac: 0.5,
        supports_vrr: true,
    };
    DeviceHandle::new(
        "lpddr4-3200",
        StandardDevice::new(
            "lpddr4-3200",
            profile,
            TimingParams::lpddr4_3200(),
            TrfcScaling::ScaledFromBase { base_gbit: 8.0 },
        ),
    )
    .with_summary("LPDDR4-3200 (1.6 GHz, 8 banks/no groups), native REFpb, 32 ms window")
}

/// A Samsung DDR4-2400 part: identical JEDEC timings, but the command
/// decoder drops HiRA's timing-violating sequences (§12), so HiRA-backed
/// policies are rejected at build time with a typed error.
pub fn samsung_ddr4_2400() -> DeviceHandle {
    DeviceHandle::new(
        "samsung-ddr4-2400",
        StandardDevice::new(
            "samsung-ddr4-2400",
            ddr4_profile(Manufacturer::Samsung),
            TimingParams::ddr4_2400(),
            TrfcScaling::Expression1,
        ),
    )
    .with_summary("HiRA-inert DDR4-2400 (Samsung decoder drops violating commands)")
}

/// The dynamic `ddr4-2400@<Gb>` form: a specific DDR4-2400 part whose
/// `tRFC` is pinned at `gbit` regardless of the configuration's
/// `chip_gbit` — the capacity-sweep axis as concrete parts.
pub fn ddr4_2400_at(gbit: u32) -> DeviceHandle {
    let name = format!("ddr4-2400@{gbit}");
    let mut profile = ddr4_profile(Manufacturer::SkHynix);
    profile.default_chip_gbit = f64::from(gbit);
    DeviceHandle::new(
        &name,
        StandardDevice::new(
            &name,
            profile,
            TimingParams::ddr4_2400(),
            TrfcScaling::Pinned {
                gbit: f64::from(gbit),
            },
        ),
    )
    .with_summary(format!(
        "DDR4-2400 part pinned at {gbit} Gb (tRFC = {:.1} ns)",
        trfc_for_capacity(f64::from(gbit))
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression1_presets_track_the_requested_capacity() {
        for d in [ddr4_2400(), ddr4_3200(), samsung_ddr4_2400()] {
            for cap in [4.0, 8.0, 64.0, 128.0] {
                assert!(
                    (d.timing(cap).t_rfc - trfc_for_capacity(cap)).abs() < 1e-9,
                    "{} at {cap} Gb",
                    d.name()
                );
            }
        }
    }

    #[test]
    fn lpddr4_scales_its_own_quoted_trfc() {
        let d = lpddr4_3200();
        assert!((d.timing(8.0).t_rfc - 280.0).abs() < 1e-9);
        // Same ^0.6 exponent, lower base than Expression 1.
        assert!((d.timing(64.0).t_rfc - 280.0 * 8f64.powf(0.6)).abs() < 1e-9);
        assert!(d.timing(64.0).t_rfc < trfc_for_capacity(64.0));
    }

    #[test]
    fn pinned_parts_ignore_the_requested_capacity() {
        let d = ddr4_2400_at(32);
        assert_eq!(d.timing(8.0).t_rfc, d.timing(128.0).t_rfc);
        assert!((d.timing(8.0).t_rfc - trfc_for_capacity(32.0)).abs() < 1e-9);
        assert_eq!(d.profile().default_chip_gbit, 32.0);
    }
}
