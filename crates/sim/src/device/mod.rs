//! The open DRAM-device API: the third configuration axis, alongside
//! refresh policies ([`crate::policy`]) and workloads ([`hira_workload`]).
//!
//! HiRA's gains depend directly on the device: `tRFC = 110·C^0.6` scales
//! with chip capacity, `t1`/`t2` only work on chips whose command decoder
//! executes timing-violating commands (§12 — SK Hynix yes, Samsung/Micron
//! no), and refresh-parallelism arrangements like `REFpb` are *native* on
//! LPDDR4 but emulated on DDR4. This module turns the previously
//! hard-coded DDR4-2400 part into an open interface:
//!
//! * [`DeviceModel`] — a self-describing device: a [`DeviceProfile`]
//!   (standard name, clock ratio, geometry, HiRA/REFpb capability) plus a
//!   capacity-scaled timing table,
//! * [`DeviceHandle`] — the cloneable, name-keyed selection
//!   [`crate::config::SystemConfig`] stores (identity by name, like
//!   policy and workload handles),
//! * [`DeviceRegistry`] — the ordered, string-keyed registry behind
//!   `--device=` axes, with the dynamic `ddr4-2400@<Gb>` capacity form,
//! * [`CommandTable`] — the integer command-clock timing table the
//!   channel controller schedules against, produced *by the device* (the
//!   open-API replacement for the controller's old closed `TimingC`).
//!
//! ## Shipped presets
//!
//! | registry key | standard | clock | geometry | notes |
//! |---|---|---|---|---|
//! | `ddr4-2400` | DDR4-2400 | 1.2 GHz (3:8) | 16 banks / 4 groups | the Table 3 part; bit-identical to the pre-API simulator |
//! | `ddr4-3200` | DDR4-3200 | 1.6 GHz (1:2) | 16 banks / 4 groups | faster grid, same analog core |
//! | `lpddr4-3200` | LPDDR4-3200 | 1.6 GHz (1:2) | 8 banks / 1 group | native per-bank `REFpb`, 32 ms window |
//! | `samsung-ddr4-2400` | DDR4-2400 | 1.2 GHz (3:8) | 16 banks / 4 groups | HiRA-inert decoder (§12): HiRA policies are a typed [`crate::builder::BuildError`] |
//! | `ddr4-2400@<Gb>` | DDR4-2400 | 1.2 GHz (3:8) | 16 banks / 4 groups | dynamic: `tRFC` pinned at `<Gb>` (a specific part, not a projection) |

mod presets;
mod registry;

pub use presets::{
    ddr4_2400, ddr4_2400_at, ddr4_3200, lpddr4_3200, samsung_ddr4_2400, StandardDevice, TrfcScaling,
};
pub use registry::{device, DeviceRegistry};

use crate::clock::{MemClock, MemCycle};
use hira_dram::timing::TimingParams;
use hira_dram::vendor::Manufacturer;
use std::fmt;
use std::sync::Arc;

/// Static, self-describing facts about a device: everything the system
/// needs *besides* the ns timing table — the clock pairing, the bank
/// geometry the mapper should default to, and the capability flags that
/// gate refresh arrangements.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Standard name (e.g. `"DDR4-2400"`), for display.
    pub standard: String,
    /// CPU clock in GHz (the simulated host, Table 3: 3.2).
    pub cpu_ghz: f64,
    /// Command clock in GHz (DDR4-2400: 1.2; DDR4/LPDDR4-3200: 1.6).
    pub mem_ghz: f64,
    /// Exact `(numerator, denominator)` of memory ticks per CPU cycle —
    /// the inverse of the headline `cpu_cycles_per_mem_tick` ratio, as a
    /// rational so the outer loop's tick accumulator is exact.
    pub mem_ticks_per_cpu_cycle: (u64, u64),
    /// Banks per rank the device exposes.
    pub banks: u16,
    /// Bank groups per rank (1 when the standard has none, e.g. LPDDR4).
    pub bank_groups: u16,
    /// Chip capacity in Gb a bare configuration of this device defaults
    /// to (pinned parts fix it; projected parts suggest the Table 3 8 Gb).
    pub default_chip_gbit: f64,
    /// Chip manufacturer — the source of the HiRA capability flag (§12).
    pub manufacturer: Manufacturer,
    /// Whether the command decoder executes HiRA's timing-violating
    /// `ACT`-`PRE`-`ACT` sequences (`t1`/`t2` support). Derived from the
    /// manufacturer for the shipped presets; a policy that needs HiRA
    /// operations on a device without this flag is a typed
    /// [`crate::builder::BuildError::DeviceLacksHira`].
    pub supports_hira: bool,
    /// Whether per-bank refresh (`REFpb`) is a native command of the
    /// standard (LPDDR4/DDR5) rather than an emulation.
    pub native_refpb: bool,
    /// `tRFCpb / tRFC`: the per-bank refresh latency fraction the device
    /// quotes (LPDDR4 8 Gb: 140 ns / 280 ns = 0.5; emulating DDR4 parts
    /// inherit the same conservative 0.5).
    pub t_rfc_pb_frac: f64,
    /// Whether the device honors vendor directed-refresh (VRR-style
    /// victim-row refresh) commands. A controller plugin that injects
    /// directed victim refreshes ([`crate::plugin::ControllerPlugin::
    /// requires_vrr`]) on a device without this flag is a typed
    /// [`crate::builder::BuildError::DeviceLacksVrr`]. The conservative
    /// Samsung decoder that drops HiRA's timing-violating sequences (§12)
    /// also drops these, so the shipped presets derive the flag from the
    /// manufacturer alongside `supports_hira`.
    pub supports_vrr: bool,
}

impl DeviceProfile {
    /// The clock pairing this profile describes.
    pub fn clock(&self) -> MemClock {
        MemClock::new(self.cpu_ghz, self.mem_ghz, self.mem_ticks_per_cpu_cycle)
    }

    /// CPU cycles per memory tick, as a float (display/diagnostics).
    pub fn cpu_cycles_per_mem_tick(&self) -> f64 {
        self.cpu_ghz / self.mem_ghz
    }
}

/// A DRAM device: a profile plus a capacity-scaled timing table.
///
/// ## Timing contract
///
/// [`timing`](Self::timing) must be a pure function of `chip_gbit`
/// returning a table that is internally consistent (`tRC ≥ tRAS + tRP`,
/// `tRFC < tREFI`, `tFAW ≥ 4·tRRD_S`) at every capacity the device
/// admits — the registry-wide property tests enforce exactly these
/// invariants over `{4, 8, 32, 64, 128}` Gb for every registered device.
/// Capacity scaling conventionally follows the paper's Expression (1)
/// (`tRFC = 110·C^0.6` ns) but a device may substitute its own model
/// (see [`TrfcScaling`]); everything *except* `tRFC` is normally
/// capacity-independent because Table 3 models density growth through
/// wider rows, not more rows.
pub trait DeviceModel: fmt::Debug + Send + Sync {
    /// Registry name (identity; e.g. `"ddr4-2400"`).
    fn name(&self) -> &str;

    /// The device's static self-description.
    fn profile(&self) -> &DeviceProfile;

    /// The ns timing table at `chip_gbit` chip capacity. See the trait
    /// docs for the consistency contract.
    fn timing(&self, chip_gbit: f64) -> TimingParams;

    /// The integer command-clock table the controller schedules against:
    /// [`timing`](Self::timing) quantized onto this device's command
    /// grid, with the HiRA `t1`/`t2` lead pair appended.
    fn command_table(&self, chip_gbit: f64, t1_ns: f64, t2_ns: f64) -> CommandTable {
        CommandTable::from_ns(
            &self.timing(chip_gbit),
            &self.profile().clock(),
            t1_ns,
            t2_ns,
        )
    }
}

/// A cloneable, comparable *selection* of a device: the registry key plus
/// the shared model. This is what [`crate::config::SystemConfig`] stores
/// and sweeps pass around — equality and hashing go by name, mirroring
/// [`crate::policy::PolicyHandle`] / [`hira_workload::WorkloadHandle`].
/// (Devices are immutable descriptions, so the handle shares one model
/// rather than wrapping a per-instance factory.)
#[derive(Clone)]
pub struct DeviceHandle {
    name: Arc<str>,
    summary: Arc<str>,
    model: Arc<dyn DeviceModel>,
}

impl DeviceHandle {
    /// Wraps a model under a registry name. Parameterized devices must
    /// encode their parameters in the name (e.g. `ddr4-2400@32`): the
    /// name is the identity.
    pub fn new(name: impl Into<String>, model: impl DeviceModel + 'static) -> Self {
        DeviceHandle {
            name: Arc::from(name.into()),
            summary: Arc::from(""),
            model: Arc::new(model),
        }
    }

    /// Attaches a one-line description (registry `--list` output). Not
    /// part of the identity: equality stays by name.
    pub fn with_summary(mut self, summary: impl Into<String>) -> Self {
        self.summary = Arc::from(summary.into());
        self
    }

    /// The device's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line description (empty when the registrant set none).
    pub fn summary(&self) -> &str {
        &self.summary
    }

    /// The device's static self-description.
    pub fn profile(&self) -> &DeviceProfile {
        self.model.profile()
    }

    /// The ns timing table at `chip_gbit` (see [`DeviceModel::timing`]).
    pub fn timing(&self, chip_gbit: f64) -> TimingParams {
        self.model.timing(chip_gbit)
    }

    /// The controller's integer command table (see
    /// [`DeviceModel::command_table`]).
    pub fn command_table(&self, chip_gbit: f64, t1_ns: f64, t2_ns: f64) -> CommandTable {
        self.model.command_table(chip_gbit, t1_ns, t2_ns)
    }
}

impl fmt::Debug for DeviceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("DeviceHandle").field(&self.name).finish()
    }
}

impl PartialEq for DeviceHandle {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for DeviceHandle {}

impl std::hash::Hash for DeviceHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
    }
}

/// DDR timing in integer command-clock cycles: the table the channel
/// controller schedules against, produced by the configured device
/// ([`DeviceModel::command_table`]). Quantization rounds *up* — an `x` ns
/// constraint cannot be satisfied before the covering command slot.
#[derive(Debug, Clone, Copy)]
pub struct CommandTable {
    pub rcd: MemCycle,
    pub ras: MemCycle,
    pub rp: MemCycle,
    pub rc: MemCycle,
    pub rrd_l: MemCycle,
    pub rrd_s: MemCycle,
    pub faw: MemCycle,
    pub ccd_l: MemCycle,
    pub ccd_s: MemCycle,
    pub cl: MemCycle,
    pub cwl: MemCycle,
    pub bl: MemCycle,
    pub wr: MemCycle,
    pub wtr: MemCycle,
    pub rtp: MemCycle,
    pub rfc: MemCycle,
    pub refi: MemCycle,
    /// HiRA `t1` and `t2` in command cycles.
    pub t1: MemCycle,
    pub t2: MemCycle,
}

impl CommandTable {
    /// Converts the ns-denominated parameters onto `clock`'s command
    /// grid. `t1`/`t2` are the HiRA lead timings in ns (policies that
    /// issue HiRA operations supply their own; anything else gets the
    /// nominal pair).
    pub fn from_ns(t: &TimingParams, clock: &MemClock, t1_ns: f64, t2_ns: f64) -> Self {
        let c = |ns| clock.ns_to_cycles(ns);
        CommandTable {
            rcd: c(t.t_rcd),
            ras: c(t.t_ras),
            rp: c(t.t_rp),
            rc: c(t.t_rc),
            rrd_l: c(t.t_rrd_l),
            rrd_s: c(t.t_rrd_s),
            faw: c(t.t_faw),
            ccd_l: c(t.t_ccd_l),
            ccd_s: c(t.t_ccd_s),
            cl: c(t.t_cl),
            cwl: c(t.t_cwl),
            bl: c(t.t_bl),
            wr: c(t.t_wr),
            wtr: c(t.t_wtr),
            rtp: c(t.t_rtp),
            rfc: c(t.t_rfc),
            refi: c(t.t_refi),
            t1: c(t1_ns),
            t2: c(t2_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_compare_by_name() {
        assert_eq!(ddr4_2400(), ddr4_2400());
        assert_ne!(ddr4_2400(), ddr4_3200());
        assert_ne!(ddr4_2400_at(32), ddr4_2400_at(64));
        assert_eq!(ddr4_2400_at(32).name(), "ddr4-2400@32");
    }

    #[test]
    fn command_table_reproduces_the_legacy_ddr4_2400_quantization() {
        // The exact integer table the pre-API controller used: the tracked
        // BENCH baselines depend on these values.
        let d = ddr4_2400();
        let t = d.command_table(8.0, 3.0, 3.0);
        assert_eq!(t.rc, 56);
        assert_eq!(t.ras, 39);
        assert_eq!(t.rp, 18);
        assert_eq!(t.rcd, 18);
        assert_eq!(t.faw, 20);
        assert_eq!(t.refi, 9360);
        assert_eq!(t.t1, 4);
        assert_eq!(t.t2, 4);
        // tRFC follows Expression 1 at the requested capacity.
        let clock = d.profile().clock();
        assert_eq!(
            t.rfc,
            clock.ns_to_cycles(hira_dram::timing::trfc_for_capacity(8.0))
        );
    }

    #[test]
    fn profiles_expose_clock_geometry_and_capability() {
        let d = ddr4_2400().profile().clone();
        assert_eq!(d.mem_ticks_per_cpu_cycle, (3, 8));
        assert!((d.cpu_cycles_per_mem_tick() - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!((d.banks, d.bank_groups), (16, 4));
        assert!(d.supports_hira && !d.native_refpb);

        let l = lpddr4_3200().profile().clone();
        assert_eq!(l.mem_ticks_per_cpu_cycle, (1, 2));
        assert_eq!((l.banks, l.bank_groups), (8, 1));
        assert!(l.native_refpb);

        let s = samsung_ddr4_2400().profile().clone();
        assert!(!s.supports_hira, "Samsung decoders drop violating commands");
        assert_eq!(s.manufacturer, Manufacturer::Samsung);

        // VRR capability tracks the decoder: the conservative part drops
        // directed-refresh commands too, every other preset honors them.
        assert!(!s.supports_vrr);
        assert!(d.supports_vrr && l.supports_vrr);
        assert!(ddr4_3200().profile().supports_vrr);
    }
}
