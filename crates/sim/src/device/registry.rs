//! The string-keyed device registry: the bridge between CLI/sweep axes
//! (`--device=lpddr4-3200`) and [`DeviceHandle`]s.

use super::{ddr4_2400, ddr4_2400_at, ddr4_3200, lpddr4_3200, samsung_ddr4_2400, DeviceHandle};

/// An ordered, string-keyed collection of devices. Order is preserved so
/// sweeps and the `device_matrix` grid present devices in registration
/// order, not alphabetically.
#[derive(Debug, Clone, Default)]
pub struct DeviceRegistry {
    entries: Vec<DeviceHandle>,
}

impl DeviceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DeviceRegistry::default()
    }

    /// The registry every binary starts from: the Table 3 part, the two
    /// 3200 MT/s standards, and the HiRA-inert comparison part.
    pub fn standard() -> Self {
        let mut r = DeviceRegistry::new();
        r.register(ddr4_2400());
        r.register(ddr4_3200());
        r.register(lpddr4_3200());
        r.register(samsung_ddr4_2400());
        r
    }

    /// Registers (or replaces, by name) a device.
    pub fn register(&mut self, handle: DeviceHandle) {
        if let Some(existing) = self.entries.iter_mut().find(|h| h.name() == handle.name()) {
            *existing = handle;
        } else {
            self.entries.push(handle);
        }
    }

    /// Resolves a name. Exact registered names win; the parametric
    /// `ddr4-2400@<Gb>` form resolves dynamically for any canonical
    /// positive integer capacity (like `hira<N>` / `mix<N>` on the other
    /// axes).
    pub fn lookup(&self, name: &str) -> Option<DeviceHandle> {
        if let Some(h) = self.entries.iter().find(|h| h.name() == name) {
            return Some(h.clone());
        }
        let gbit: u32 = name.strip_prefix("ddr4-2400@")?.parse().ok()?;
        // Canonical spellings only (`@32`, not `@032`): the handle's name
        // must render back identical to the requested key, or name-keyed
        // caches would silently disagree with the axis label.
        (gbit > 0 && name == format!("ddr4-2400@{gbit}")).then(|| ddr4_2400_at(gbit))
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(DeviceHandle::name).collect()
    }

    /// Registered handles, in registration order.
    pub fn handles(&self) -> impl Iterator<Item = &DeviceHandle> {
        self.entries.iter()
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Resolves `name` against the standard registry.
///
/// # Panics
///
/// Panics with the list of known names when `name` does not resolve — a
/// typo'd `--device=` axis is a usage error, not a recoverable state.
pub fn device(name: &str) -> DeviceHandle {
    let registry = DeviceRegistry::standard();
    registry.lookup(name).unwrap_or_else(|| {
        panic!(
            "unknown device `{name}`; registered: {} (plus ddr4-2400@<Gb> for any capacity)",
            registry.names().join(", ")
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_ships_at_least_four_presets() {
        let r = DeviceRegistry::standard();
        assert!(r.len() >= 4, "need >= 4 presets, have {}", r.len());
        for name in ["ddr4-2400", "ddr4-3200", "lpddr4-3200", "samsung-ddr4-2400"] {
            assert!(r.lookup(name).is_some(), "{name} missing");
        }
        // Registration order is preserved (the Table 3 part leads).
        assert_eq!(r.names()[0], "ddr4-2400");
    }

    #[test]
    fn capacity_form_resolves_dynamically_and_canonically() {
        let r = DeviceRegistry::standard();
        assert_eq!(r.lookup("ddr4-2400@32").unwrap().name(), "ddr4-2400@32");
        assert_eq!(r.lookup("ddr4-2400@7").unwrap().name(), "ddr4-2400@7");
        assert!(
            r.lookup("ddr4-2400@032").is_none(),
            "non-canonical spelling"
        );
        assert!(r.lookup("ddr4-2400@0").is_none());
        assert!(r.lookup("ddr4-2400@x").is_none());
        assert!(r.lookup("nope").is_none());
    }

    #[test]
    fn register_replaces_by_name() {
        let mut r = DeviceRegistry::new();
        r.register(super::ddr4_2400());
        r.register(super::ddr4_2400());
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown device")]
    fn unknown_device_panics_with_the_known_list() {
        let _ = device("definitely-not-a-device");
    }
}
