//! # hira-sim — cycle-level system simulation (paper §7-§10)
//!
//! A from-scratch Ramulator-style simulator: workload-driven out-of-order
//! cores (4-wide, 128-entry instruction window), a shared 8 MB LLC, and a
//! detailed DDR4 memory system (FR-FCFS scheduling, open-row policy, MOP
//! address mapping, per-bank/rank/channel timing including `tFAW`,
//! command-bus and data-bus contention, and `tRFC`-scaled rank-level
//! refresh).
//!
//! Demand traffic comes from the **open workload frontend**
//! ([`hira_workload`]): `SystemConfig.workload` is a
//! [`hira_workload::WorkloadHandle`], and each core runs its own
//! [`hira_workload::Workload`] instance — the SPEC-like roster mixes,
//! parametric generators, or `.trace` replays, all selected by registry
//! name.
//!
//! Refresh arrangements are **open**: any type implementing
//! [`policy::RefreshPolicy`] plugs into the controller, and the standard
//! [`policy::PolicyRegistry`] ships the paper's three arrangements plus the
//! related-work policies the open API enables:
//!
//! * **`noref`** — the ideal upper bound of Fig. 9a,
//! * **`baseline`** — conventional all-bank `REF` every `tREFI` with
//!   `tRFC = 110·C^0.6` ns (Expression 1),
//! * **`refpb`** — staggered per-bank `REFpb` (refresh-access parallelism à
//!   la Chang et al.),
//! * **`raidr`** — RAIDR-style retention-binned per-row refresh over the
//!   `hira-dram` retention model,
//! * **`hira<N>`** — per-row refresh through [`hira_core::HiraMc`], with
//!   refresh-access and refresh-refresh parallelization.
//!
//! PARA preventive refreshes (§9) can be layered on any arrangement, either
//! served immediately (the "PARA" baseline) or queued and parallelized by
//! HiRA-MC — see [`policy::PolicyHandle::with_para_immediate`] /
//! [`policy::PolicyHandle::with_para_hira`].
//!
//! System configurations are assembled through the validated
//! [`builder::SystemBuilder`].
//!
//! Time bases: CPU cycles at 3.2 GHz; the memory controller ticks at the
//! DDR4-2400 command clock (1.2 GHz), i.e. 3 memory ticks per 8 CPU cycles.

pub mod builder;
pub mod clock;
pub mod config;
pub mod controller;
pub mod core_model;
pub mod llc;
pub mod mapping;
pub mod metrics;
pub mod policy;
pub mod refresh;
pub mod request;
pub mod system;

pub use builder::{BuildError, SystemBuilder};
pub use config::SystemConfig;
pub use hira_workload::{Workload, WorkloadHandle, WorkloadRegistry};
pub use metrics::SimResult;
pub use policy::{PolicyHandle, PolicyRegistry, RefreshPolicy};
pub use system::System;
