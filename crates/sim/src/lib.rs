//! # hira-sim — cycle-level system simulation (paper §7-§10)
//!
//! A from-scratch Ramulator-style simulator: workload-driven out-of-order
//! cores (4-wide, 128-entry instruction window), a shared 8 MB LLC, and a
//! detailed DDR4 memory system (FR-FCFS scheduling, open-row policy, MOP
//! address mapping, per-bank/rank/channel timing including `tFAW`,
//! command-bus and data-bus contention, and `tRFC`-scaled rank-level
//! refresh).
//!
//! Demand traffic comes from the **open workload frontend**
//! ([`hira_workload`]): `SystemConfig.workload` is a
//! [`hira_workload::WorkloadHandle`], and each core runs its own
//! [`hira_workload::Workload`] instance — the SPEC-like roster mixes,
//! parametric generators, or `.trace` replays, all selected by registry
//! name.
//!
//! Refresh arrangements are **open**: any type implementing
//! [`policy::RefreshPolicy`] plugs into the controller, and the standard
//! [`policy::PolicyRegistry`] ships the paper's three arrangements plus the
//! related-work policies the open API enables:
//!
//! * **`noref`** — the ideal upper bound of Fig. 9a,
//! * **`baseline`** — conventional all-bank `REF` every `tREFI` with
//!   `tRFC = 110·C^0.6` ns (Expression 1),
//! * **`refpb`** — staggered per-bank `REFpb` (refresh-access parallelism à
//!   la Chang et al.),
//! * **`raidr`** — RAIDR-style retention-binned per-row refresh over the
//!   `hira-dram` retention model,
//! * **`hira<N>`** — per-row refresh through [`hira_core::HiraMc`], with
//!   refresh-access and refresh-refresh parallelization.
//!
//! PARA preventive refreshes (§9) can be layered on any arrangement, either
//! served immediately (the "PARA" baseline) or queued and parallelized by
//! HiRA-MC — see [`policy::PolicyHandle::with_para_immediate`] /
//! [`policy::PolicyHandle::with_para_hira`].
//!
//! The DRAM part itself is the **third open axis** ([`device`]): any type
//! implementing [`device::DeviceModel`] supplies the command clock (and
//! the CPU↔memory tick ratio), bank geometry, a capacity-scaled timing
//! table, and capability flags (HiRA `t1`/`t2` support, native `REFpb`).
//! The standard [`device::DeviceRegistry`] ships `ddr4-2400` (the Table 3
//! part, bit-identical to the pre-API simulator), `ddr4-3200`,
//! `lpddr4-3200` (native per-bank refresh) and the HiRA-inert
//! `samsung-ddr4-2400`, plus the dynamic `ddr4-2400@<Gb>` capacity form.
//!
//! System configurations are assembled through the validated
//! [`builder::SystemBuilder`].
//!
//! Every run can carry a **zero-cost observer** ([`probe`]): a
//! [`probe::Probe`] installed via [`builder::SystemBuilder::probe`] sees
//! every DRAM command, request completion, refresh action and periodic
//! epoch sample — without perturbing the simulation (results are
//! bit-identical with or without a probe, and the no-probe path costs one
//! branch per notification site). Built-ins cover ramulator-style command
//! traces, epoch time-series JSONL, latency histograms and per-row
//! ACT-exposure counting.
//!
//! Time bases: CPU cycles at the host clock (Table 3: 3.2 GHz); the
//! memory controller ticks at the configured device's command clock —
//! DDR4-2400: 1.2 GHz, i.e. 3 memory ticks per 8 CPU cycles; the
//! 3200 MT/s parts: 1.6 GHz, 1 per 2 (see [`clock::MemClock`]).

pub mod builder;
pub mod clock;
pub mod config;
pub mod controller;
pub mod core_model;
pub mod device;
pub mod llc;
pub mod mapping;
pub mod metrics;
pub mod plugin;
pub mod policy;
pub mod probe;
pub mod refresh;
pub mod request;
pub mod system;

pub use builder::{BuildError, SystemBuilder};
pub use config::{KernelMode, SystemConfig};
pub use device::{DeviceHandle, DeviceModel, DeviceProfile, DeviceRegistry};
pub use hira_workload::{Workload, WorkloadHandle, WorkloadRegistry};
pub use metrics::SimResult;
pub use plugin::{ControllerPlugin, PluginHandle, PluginRegistry};
pub use policy::{PolicyHandle, PolicyRegistry, RefreshPolicy};
pub use probe::{Probe, ProbeHandle, ProbeRegistry};
pub use system::System;
