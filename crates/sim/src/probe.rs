//! # hira-probe — zero-cost simulator instrumentation
//!
//! An object-safe observer interface threaded through the controller and
//! both simulation kernels: a [`Probe`] sees every issued DRAM command
//! ([`Probe::on_cmd`]), every demand completion with its enqueue→fill
//! latency ([`Probe::on_req_complete`]), every refresh action with its
//! policy kind and duration ([`Probe::on_refresh`]), and — when it asks
//! for a cadence via [`Probe::epoch_cycles`] — a periodic
//! [`EpochSample`] time-series ([`Probe::on_epoch`]).
//!
//! **Probes are read-only observers.** Attaching any probe leaves the
//! [`SimResult`] bit-identical to the probe-free run (enforced by
//! `tests/kernel_equivalence.rs` across policy × kernel), and the
//! no-probe path is a single branch on a `None` — `perf_kernel` checks it
//! stays free.
//!
//! Probes are selected like policies/workloads/devices: a cloneable,
//! name-identified [`ProbeHandle`] stored in
//! [`crate::config::SystemConfig::probe`] and installed via
//! [`crate::builder::SystemBuilder::probe`]. The dynamic registry forms
//! (`cmdtrace:<prefix>`, `epochs:<cycles>[:<path>]`, `latency:<path>`,
//! `act-exposure:<path>`) resolve through [`ProbeRegistry`] for the
//! `--probe=` axes.
//!
//! ## Writing a custom probe
//!
//! Implement [`Probe`] (every hook defaults to a no-op), wrap a factory in
//! a [`ProbeHandle`], and hand it to the builder. Shared state goes
//! through an `Arc` captured by the factory:
//!
//! ```
//! use hira_sim::builder::SystemBuilder;
//! use hira_sim::probe::{CmdEvent, DramCmd, Probe, ProbeHandle};
//! use hira_sim::system::System;
//! use std::sync::{Arc, Mutex};
//!
//! /// Counts ACT commands into a shared sink.
//! struct ActCounter(Arc<Mutex<u64>>);
//!
//! impl Probe for ActCounter {
//!     fn on_cmd(&mut self, ev: &CmdEvent) {
//!         if ev.cmd == DramCmd::Act {
//!             *self.0.lock().unwrap() += 1;
//!         }
//!     }
//! }
//!
//! let acts = Arc::new(Mutex::new(0u64));
//! let sink = acts.clone();
//! let handle = ProbeHandle::new("act-counter", move || {
//!     Box::new(ActCounter(sink.clone())) as Box<dyn Probe>
//! });
//! let cfg = SystemBuilder::new()
//!     .probe(handle)
//!     .insts(2_000, 400)
//!     .build()
//!     .unwrap();
//! let result = System::new(cfg).run();
//! // Every executed activation — demand and refresh — was observed.
//! let expected: u64 = result
//!     .channel_stats
//!     .iter()
//!     .map(|s| s.demand_acts + s.refresh_acts)
//!     .sum();
//! assert_eq!(*acts.lock().unwrap(), expected);
//! ```
//!
//! ## JSONL schemas
//!
//! The epoch sampler writes one JSON object per line:
//!
//! ```json
//! {"epoch":0,"cycle":20000,"mem_cycle":7500,"insts":1234,"ipc":0.77,
//!  "reads":96,"writes":12,"read_gbps":0.98,"write_gbps":0.12,
//!  "dbus_util":0.21,"row_hit_rate":0.63,"read_q":3,"write_q":0,
//!  "refresh_occupancy":0.04}
//! ```
//!
//! The latency probe writes two lines (`"kind":"read"` / `"write"`), each
//! with `count`, `p50`/`p90`/`p99`/`p999` (log2-bucket upper bounds, in
//! memory cycles) and the raw `buckets` array. The ACT-exposure probe
//! writes one line per row, hottest first:
//! `{"channel":0,"rank":0,"bank":3,"row":4711,"acts":17}`.

use crate::clock::MemCycle;
use crate::metrics::{LatencyHistogram, SimResult};
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A DRAM command mnemonic, as seen on the command bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCmd {
    /// Row activation.
    Act,
    /// Single-bank precharge.
    Pre,
    /// All-bank precharge.
    PreA,
    /// Read CAS.
    Rd,
    /// Write CAS.
    Wr,
    /// Rank-level refresh.
    Ref,
    /// Per-bank refresh.
    RefPb,
}

impl DramCmd {
    /// The ramulator-style trace mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            DramCmd::Act => "ACT",
            DramCmd::Pre => "PRE",
            DramCmd::PreA => "PREA",
            DramCmd::Rd => "RD",
            DramCmd::Wr => "WR",
            DramCmd::Ref => "REF",
            DramCmd::RefPb => "REFpb",
        }
    }

    /// Parses a trace mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "ACT" => DramCmd::Act,
            "PRE" => DramCmd::Pre,
            "PREA" => DramCmd::PreA,
            "RD" => DramCmd::Rd,
            "WR" => DramCmd::Wr,
            "REF" => DramCmd::Ref,
            "REFpb" => DramCmd::RefPb,
            _ => return None,
        })
    }
}

/// One issued DRAM command. Commands are reported at *commit* time with
/// their scheduled command-bus cycle (`at`), so a probe sees each
/// operation's full schedule the moment the controller reserves it —
/// cycles within one operation are ordered, across operations they may
/// interleave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmdEvent {
    /// Scheduled command-bus cycle (memory clock).
    pub at: MemCycle,
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank index; `None` for rank-wide commands (`PREA`, `REF`).
    pub bank: Option<u16>,
    /// Row address; `Some` only for `ACT`.
    pub row: Option<u32>,
    /// The command mnemonic.
    pub cmd: DramCmd,
}

/// One completed demand request (read fill or write burst end).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqEvent {
    /// Completion cycle (memory clock): data return for reads, end of the
    /// write burst for writes.
    pub at: MemCycle,
    /// Channel index.
    pub channel: usize,
    /// Write (true) or read (false).
    pub is_write: bool,
    /// Enqueue→completion latency in memory cycles.
    pub latency: MemCycle,
}

/// The shape of a refresh action, mirroring
/// [`crate::policy::RefreshAction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshKind {
    /// Rank-level `REF` (blocks the rank for `tRFC`).
    RankRef,
    /// Per-bank `REFpb`.
    BankRef,
    /// Standalone single-row refresh (`ACT` + `PRE`).
    Single,
    /// HiRA refresh-refresh pair.
    Pair,
}

/// One executed refresh action with its effective duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshEvent {
    /// Cycle the action's first command is scheduled at (memory clock).
    pub at: MemCycle,
    /// Channel index.
    pub channel: usize,
    /// Rank index.
    pub rank: usize,
    /// Bank index; `None` for rank-level `REF`.
    pub bank: Option<u16>,
    /// Action shape.
    pub kind: RefreshKind,
    /// Cycles the affected bank(s) are kept from a new row operation,
    /// measured from `at`.
    pub duration: MemCycle,
}

/// One periodic sample of the running system, taken every
/// [`Probe::epoch_cycles`] CPU cycles at exact dense-cycle boundaries —
/// identical sample-for-sample between the dense and event kernels
/// (the event kernel clamps its time skips to epoch boundaries; the
/// clamped-away cycles are provably no-ops, so results stay
/// bit-identical).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSample {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// CPU cycle of this epoch's *end* boundary.
    pub cycle: u64,
    /// Memory cycle at the boundary.
    pub mem_cycle: u64,
    /// Instructions retired across all cores during the epoch.
    pub insts: u64,
    /// Aggregate IPC over the epoch (`insts / epoch_cycles`).
    pub ipc: f64,
    /// Demand reads completed during the epoch.
    pub reads: u64,
    /// Demand writes issued during the epoch.
    pub writes: u64,
    /// Read bandwidth over the epoch in GB/s (64 B lines).
    pub read_gbps: f64,
    /// Write bandwidth over the epoch in GB/s.
    pub write_gbps: f64,
    /// Data-bus busy fraction over the epoch's memory cycles (all
    /// channels pooled).
    pub dbus_util: f64,
    /// Row-buffer hit rate over the epoch's demand CAS operations.
    pub row_hit_rate: f64,
    /// Read-queue occupancy at the boundary, summed over channels.
    pub read_q: u64,
    /// Write-queue occupancy at the boundary, summed over channels.
    pub write_q: u64,
    /// Fraction of bank-cycles the epoch spent blocked by refresh
    /// (refresh-busy bank-cycles / (memory cycles × total banks)).
    pub refresh_occupancy: f64,
}

/// An object-safe, read-only observer of one simulation run. Every hook
/// defaults to a no-op; implement only what you need. One probe instance
/// observes one [`crate::system::System`] (all channels), built fresh per
/// run by its [`ProbeHandle`] factory.
pub trait Probe: Send {
    /// Called for every DRAM command the controller schedules.
    fn on_cmd(&mut self, _ev: &CmdEvent) {}

    /// Called for every completed demand request.
    fn on_req_complete(&mut self, _ev: &ReqEvent) {}

    /// Called for every executed refresh action.
    fn on_refresh(&mut self, _ev: &RefreshEvent) {}

    /// Called at every epoch boundary, when a cadence was requested.
    fn on_epoch(&mut self, _sample: &EpochSample) {}

    /// The epoch sampling period in CPU cycles; `None` (the default)
    /// disables epoch sampling. When probes are combined via
    /// [`ProbeHandle::multi`], the system samples at the *smallest*
    /// requested period and every member sees every sample (subsample in
    /// `on_epoch` if you need your exact cadence).
    fn epoch_cycles(&self) -> Option<u64> {
        None
    }

    /// Called once when the run finishes, with the final result — the
    /// flush point for file-writing probes.
    fn on_run_end(&mut self, _result: &SimResult) {}
}

/// Factory signature behind a [`ProbeHandle`].
pub type ProbeFactory = dyn Fn() -> Box<dyn Probe> + Send + Sync;

/// A cloneable, comparable *selection* of a probe: the registry name plus
/// the factory that builds per-run instances — the same shape as
/// [`crate::policy::PolicyHandle`]. Equality and hashing go by name, so
/// two configs selecting the same probe compare (and bucket) equal.
#[derive(Clone)]
pub struct ProbeHandle {
    name: Arc<str>,
    summary: Arc<str>,
    factory: Arc<ProbeFactory>,
}

impl ProbeHandle {
    /// Wraps a factory under a registry name. Parameterized probes encode
    /// their parameters in the name (e.g. `epochs:20000:out.jsonl`): the
    /// name is the identity.
    pub fn new(
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn Probe> + Send + Sync + 'static,
    ) -> Self {
        ProbeHandle {
            name: Arc::from(name.into()),
            summary: Arc::from(""),
            factory: Arc::new(factory),
        }
    }

    /// Attaches a one-line description (`--list` output). Not part of the
    /// identity: equality stays by name.
    pub fn with_summary(mut self, summary: impl Into<String>) -> Self {
        self.summary = Arc::from(summary.into());
        self
    }

    /// The probe's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line description (empty when the registrant set none).
    pub fn summary(&self) -> &str {
        &self.summary
    }

    /// Builds one per-run instance.
    pub fn build(&self) -> Box<dyn Probe> {
        (self.factory)()
    }

    /// Fans one run out to several probes: every hook reaches every
    /// member, and the epoch cadence is the minimum of the members'
    /// requests. The combined name joins the members with `+`.
    ///
    /// # Panics
    ///
    /// Panics on an empty member list.
    pub fn multi(members: Vec<ProbeHandle>) -> ProbeHandle {
        assert!(!members.is_empty(), "ProbeHandle::multi needs members");
        let name = members
            .iter()
            .map(ProbeHandle::name)
            .collect::<Vec<_>>()
            .join("+");
        let summary = format!("fan-out to {} probes", members.len());
        ProbeHandle::new(name, move || {
            Box::new(MultiProbe {
                members: members.iter().map(ProbeHandle::build).collect(),
            })
        })
        .with_summary(summary)
    }
}

impl fmt::Debug for ProbeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ProbeHandle").field(&self.name).finish()
    }
}

impl PartialEq for ProbeHandle {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for ProbeHandle {}

impl std::hash::Hash for ProbeHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
    }
}

/// The fan-out behind [`ProbeHandle::multi`].
struct MultiProbe {
    members: Vec<Box<dyn Probe>>,
}

impl Probe for MultiProbe {
    fn on_cmd(&mut self, ev: &CmdEvent) {
        for m in &mut self.members {
            m.on_cmd(ev);
        }
    }

    fn on_req_complete(&mut self, ev: &ReqEvent) {
        for m in &mut self.members {
            m.on_req_complete(ev);
        }
    }

    fn on_refresh(&mut self, ev: &RefreshEvent) {
        for m in &mut self.members {
            m.on_refresh(ev);
        }
    }

    fn on_epoch(&mut self, sample: &EpochSample) {
        for m in &mut self.members {
            m.on_epoch(sample);
        }
    }

    fn epoch_cycles(&self) -> Option<u64> {
        self.members.iter().filter_map(|m| m.epoch_cycles()).min()
    }

    fn on_run_end(&mut self, result: &SimResult) {
        for m in &mut self.members {
            m.on_run_end(result);
        }
    }
}

/// The simulator-side holder of an optional probe. All hooks are
/// `#[inline]` closures-in: when no probe is attached the entire
/// notification — including event construction — costs one branch on a
/// `None`, which is the zero-overhead contract `perf_kernel` verifies.
pub struct ProbeHost {
    inner: Option<Box<dyn Probe>>,
    epoch_every: Option<u64>,
}

impl ProbeHost {
    /// A host with no probe attached (every hook is a dead branch).
    pub fn disabled() -> Self {
        ProbeHost {
            inner: None,
            epoch_every: None,
        }
    }

    /// Wraps a built probe instance, caching its epoch request.
    pub fn attach(probe: Box<dyn Probe>) -> Self {
        let epoch_every = probe.epoch_cycles().filter(|&e| e > 0);
        ProbeHost {
            inner: Some(probe),
            epoch_every,
        }
    }

    /// Builds the host from an optional handle
    /// ([`crate::config::SystemConfig::probe`]).
    pub fn from_handle(handle: Option<&ProbeHandle>) -> Self {
        match handle {
            None => ProbeHost::disabled(),
            Some(h) => ProbeHost::attach(h.build()),
        }
    }

    /// True when a probe is attached.
    pub fn active(&self) -> bool {
        self.inner.is_some()
    }

    /// The attached probe's epoch cadence (CPU cycles), if it asked for
    /// epoch sampling.
    pub fn epoch_every(&self) -> Option<u64> {
        self.epoch_every
    }

    /// Notifies the probe of a command; `ev` is only evaluated when a
    /// probe is attached.
    #[inline]
    pub fn on_cmd(&mut self, ev: impl FnOnce() -> CmdEvent) {
        if let Some(p) = &mut self.inner {
            p.on_cmd(&ev());
        }
    }

    /// Notifies the probe of a completed request; `ev` is only evaluated
    /// when a probe is attached.
    #[inline]
    pub fn on_req_complete(&mut self, ev: impl FnOnce() -> ReqEvent) {
        if let Some(p) = &mut self.inner {
            p.on_req_complete(&ev());
        }
    }

    /// Notifies the probe of an executed refresh action; `ev` is only
    /// evaluated when a probe is attached.
    #[inline]
    pub fn on_refresh(&mut self, ev: impl FnOnce() -> RefreshEvent) {
        if let Some(p) = &mut self.inner {
            p.on_refresh(&ev());
        }
    }

    /// Delivers an epoch sample (the system only builds samples when
    /// [`ProbeHost::epoch_every`] is set).
    pub fn on_epoch(&mut self, sample: &EpochSample) {
        if let Some(p) = &mut self.inner {
            p.on_epoch(sample);
        }
    }

    /// Delivers the final result (flush point).
    pub fn on_run_end(&mut self, result: &SimResult) {
        if let Some(p) = &mut self.inner {
            p.on_run_end(result);
        }
    }
}

impl fmt::Debug for ProbeHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.active() {
            f.write_str("ProbeHost(attached)")
        } else {
            f.write_str("ProbeHost(off)")
        }
    }
}

// ---------------------------------------------------------------------------
// Built-in probe 1: ramulator-style DRAM command trace.
// ---------------------------------------------------------------------------

/// Creates `path` for writing, first creating any missing parent
/// directories — sweep tooling points probes at per-run output trees
/// (`out/probes/cmds.ch0.cmdtrace`) that don't exist yet.
fn create_output_file(path: &Path) -> std::io::Result<File> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    File::create(path)
}

/// Writes a ramulator-style per-channel command trace: one
/// `<prefix>.ch<N>.cmdtrace` file per channel, one line per command —
/// `clk,CMD[,rank[,bank[,row]]]` with rank-wide commands (`PREA`, `REF`)
/// omitting the bank and only `ACT` carrying the row. Buffered; flushed
/// at run end. Parse it back with [`parse_cmdtrace`].
pub struct CmdTraceProbe {
    prefix: PathBuf,
    writers: Vec<Option<BufWriter<File>>>,
}

impl CmdTraceProbe {
    /// A command-trace probe writing `<prefix>.ch<N>.cmdtrace` files.
    pub fn handle(prefix: impl Into<PathBuf>) -> ProbeHandle {
        let prefix = prefix.into();
        let name = format!("cmdtrace:{}", prefix.display());
        ProbeHandle::new(name, move || {
            Box::new(CmdTraceProbe {
                prefix: prefix.clone(),
                writers: Vec::new(),
            }) as Box<dyn Probe>
        })
        .with_summary("per-channel ramulator-style DRAM command trace")
    }

    /// The trace path for channel `channel` under `prefix`.
    pub fn channel_path(prefix: &Path, channel: usize) -> PathBuf {
        let mut s = prefix.as_os_str().to_owned();
        s.push(format!(".ch{channel}.cmdtrace"));
        PathBuf::from(s)
    }

    fn writer(&mut self, channel: usize) -> &mut BufWriter<File> {
        if channel >= self.writers.len() {
            self.writers.resize_with(channel + 1, || None);
        }
        self.writers[channel].get_or_insert_with(|| {
            let path = Self::channel_path(&self.prefix, channel);
            BufWriter::new(create_output_file(&path).unwrap_or_else(|e| {
                panic!("cmdtrace probe: cannot create {}: {e}", path.display())
            }))
        })
    }
}

impl Probe for CmdTraceProbe {
    fn on_cmd(&mut self, ev: &CmdEvent) {
        let w = self.writer(ev.channel);
        // Only `ACT` carries its row in the trace format; CAS events carry
        // the row in-memory for other probes, but a trace line must have
        // exactly the fields its mnemonic declares (see `parse_cmdtrace`).
        let row = ev.row.filter(|_| ev.cmd == DramCmd::Act);
        let res = match (ev.bank, row) {
            (None, _) => writeln!(w, "{},{},{}", ev.at, ev.cmd.mnemonic(), ev.rank),
            (Some(b), None) => writeln!(w, "{},{},{},{}", ev.at, ev.cmd.mnemonic(), ev.rank, b),
            (Some(b), Some(r)) => {
                writeln!(w, "{},{},{},{},{}", ev.at, ev.cmd.mnemonic(), ev.rank, b, r)
            }
        };
        res.expect("cmdtrace probe: write failed");
    }

    fn on_run_end(&mut self, _result: &SimResult) {
        for w in self.writers.iter_mut().flatten() {
            w.flush().expect("cmdtrace probe: flush failed");
        }
    }
}

/// One parsed command-trace line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmdTraceRecord {
    /// Command-bus cycle.
    pub at: MemCycle,
    /// The command.
    pub cmd: DramCmd,
    /// Rank index.
    pub rank: usize,
    /// Bank, where the command is bank-granular.
    pub bank: Option<u16>,
    /// Row, for `ACT`.
    pub row: Option<u32>,
}

/// Parses (and validates) one channel's command-trace text: every line
/// must be `clk,CMD,rank[,bank[,row]]` with a known mnemonic and exactly
/// the fields that mnemonic carries — `ACT` a bank and row, bank-granular
/// commands (`PRE`, `RD`, `WR`, `REFpb`) a bank, rank-wide commands
/// (`PREA`, `REF`) neither.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn parse_cmdtrace(text: &str) -> Result<Vec<CmdTraceRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 3 {
            return Err(format!("line {lineno}: expected clk,CMD,rank: `{line}`"));
        }
        let at: MemCycle = fields[0]
            .parse()
            .map_err(|_| format!("line {lineno}: bad clk `{}`", fields[0]))?;
        let cmd = DramCmd::from_mnemonic(fields[1])
            .ok_or_else(|| format!("line {lineno}: unknown command `{}`", fields[1]))?;
        let rank: usize = fields[2]
            .parse()
            .map_err(|_| format!("line {lineno}: bad rank `{}`", fields[2]))?;
        let expected_fields = match cmd {
            DramCmd::Act => 5,
            DramCmd::Pre | DramCmd::Rd | DramCmd::Wr | DramCmd::RefPb => 4,
            DramCmd::PreA | DramCmd::Ref => 3,
        };
        if fields.len() != expected_fields {
            return Err(format!(
                "line {lineno}: {} carries {} fields, got {}: `{line}`",
                cmd.mnemonic(),
                expected_fields,
                fields.len()
            ));
        }
        let bank: Option<u16> = if expected_fields >= 4 {
            Some(
                fields[3]
                    .parse()
                    .map_err(|_| format!("line {lineno}: bad bank `{}`", fields[3]))?,
            )
        } else {
            None
        };
        let row: Option<u32> = if expected_fields >= 5 {
            Some(
                fields[4]
                    .parse()
                    .map_err(|_| format!("line {lineno}: bad row `{}`", fields[4]))?,
            )
        } else {
            None
        };
        out.push(CmdTraceRecord {
            at,
            cmd,
            rank,
            bank,
            row,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Built-in probe 2: epoch time-series sampler.
// ---------------------------------------------------------------------------

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serializes one [`EpochSample`] as its JSONL line (the schema in the
/// module docs).
pub fn epoch_jsonl_line(s: &EpochSample) -> String {
    format!(
        "{{\"epoch\":{},\"cycle\":{},\"mem_cycle\":{},\"insts\":{},\"ipc\":{},\
         \"reads\":{},\"writes\":{},\"read_gbps\":{},\"write_gbps\":{},\
         \"dbus_util\":{},\"row_hit_rate\":{},\"read_q\":{},\"write_q\":{},\
         \"refresh_occupancy\":{}}}",
        s.epoch,
        s.cycle,
        s.mem_cycle,
        s.insts,
        json_f64(s.ipc),
        s.reads,
        s.writes,
        json_f64(s.read_gbps),
        json_f64(s.write_gbps),
        json_f64(s.dbus_util),
        json_f64(s.row_hit_rate),
        s.read_q,
        s.write_q,
        json_f64(s.refresh_occupancy)
    )
}

/// Writes the epoch time-series as JSONL (one [`EpochSample`] object per
/// line; schema in the module docs).
pub struct EpochJsonlProbe {
    every: u64,
    path: PathBuf,
    out: Option<BufWriter<File>>,
}

impl EpochJsonlProbe {
    /// An epoch sampler with period `every` CPU cycles writing to `path`.
    ///
    /// # Panics
    ///
    /// Panics (at build time) when `every` is zero.
    pub fn handle(every: u64, path: impl Into<PathBuf>) -> ProbeHandle {
        assert!(every > 0, "epoch period must be positive");
        let path = path.into();
        let name = format!("epochs:{}:{}", every, path.display());
        ProbeHandle::new(name, move || {
            Box::new(EpochJsonlProbe {
                every,
                path: path.clone(),
                out: None,
            }) as Box<dyn Probe>
        })
        .with_summary("epoch time-series sampler (JSONL)")
    }
}

impl Probe for EpochJsonlProbe {
    fn on_epoch(&mut self, sample: &EpochSample) {
        let path = &self.path;
        let w =
            self.out.get_or_insert_with(|| {
                BufWriter::new(create_output_file(path).unwrap_or_else(|e| {
                    panic!("epoch probe: cannot create {}: {e}", path.display())
                }))
            });
        writeln!(w, "{}", epoch_jsonl_line(sample)).expect("epoch probe: write failed");
    }

    fn epoch_cycles(&self) -> Option<u64> {
        Some(self.every)
    }

    fn on_run_end(&mut self, _result: &SimResult) {
        // A run shorter than one epoch still leaves a (valid, empty) file
        // behind — predictable artifacts for sweep tooling.
        let path = &self.path;
        let w =
            self.out.get_or_insert_with(|| {
                BufWriter::new(create_output_file(path).unwrap_or_else(|e| {
                    panic!("epoch probe: cannot create {}: {e}", path.display())
                }))
            });
        w.flush().expect("epoch probe: flush failed");
    }
}

/// In-memory epoch collector for tests and library use: returns the
/// handle plus the shared vector the samples land in (in firing order).
pub fn epoch_collector(every: u64) -> (ProbeHandle, Arc<Mutex<Vec<EpochSample>>>) {
    assert!(every > 0, "epoch period must be positive");
    let sink: Arc<Mutex<Vec<EpochSample>>> = Arc::new(Mutex::new(Vec::new()));
    let captured = sink.clone();
    struct Collector {
        every: u64,
        sink: Arc<Mutex<Vec<EpochSample>>>,
    }
    impl Probe for Collector {
        fn on_epoch(&mut self, sample: &EpochSample) {
            self.sink.lock().expect("epoch sink").push(sample.clone());
        }
        fn epoch_cycles(&self) -> Option<u64> {
            Some(self.every)
        }
    }
    let handle = ProbeHandle::new(format!("epochs-mem:{every}"), move || {
        Box::new(Collector {
            every,
            sink: captured.clone(),
        }) as Box<dyn Probe>
    })
    .with_summary("in-memory epoch collector");
    (handle, sink)
}

// ---------------------------------------------------------------------------
// Built-in probe 3: latency distribution (cross-check of the always-on
// SimResult histograms, plus a JSONL summary writer).
// ---------------------------------------------------------------------------

fn latency_jsonl_lines(read: &LatencyHistogram, write: &LatencyHistogram) -> String {
    let mut out = String::new();
    for (kind, h) in [("read", read), ("write", write)] {
        let q = |p: f64| match h.quantile(p) {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        let buckets = h
            .buckets
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "{{\"kind\":\"{kind}\",\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\
             \"p999\":{},\"buckets\":[{buckets}]}}\n",
            h.count(),
            q(0.50),
            q(0.90),
            q(0.99),
            q(0.999)
        ));
    }
    out
}

/// Collects read/write latency histograms from [`Probe::on_req_complete`]
/// and writes a two-line JSONL summary (p50/p90/p99/p999 + raw buckets)
/// at run end. By construction it must agree with the controller's
/// always-on [`SimResult`] histograms — `tests/probe_outputs.rs` holds
/// the two accountable to each other.
pub struct LatencyProbe {
    read: LatencyHistogram,
    write: LatencyHistogram,
    path: PathBuf,
}

impl LatencyProbe {
    /// A latency-distribution probe writing its summary to `path`.
    pub fn handle(path: impl Into<PathBuf>) -> ProbeHandle {
        let path = path.into();
        let name = format!("latency:{}", path.display());
        ProbeHandle::new(name, move || {
            Box::new(LatencyProbe {
                read: LatencyHistogram::default(),
                write: LatencyHistogram::default(),
                path: path.clone(),
            }) as Box<dyn Probe>
        })
        .with_summary("read/write latency histograms + quantiles (JSONL)")
    }
}

impl Probe for LatencyProbe {
    fn on_req_complete(&mut self, ev: &ReqEvent) {
        if ev.is_write {
            self.write.record(ev.latency);
        } else {
            self.read.record(ev.latency);
        }
    }

    fn on_run_end(&mut self, _result: &SimResult) {
        std::fs::write(&self.path, latency_jsonl_lines(&self.read, &self.write))
            .unwrap_or_else(|e| panic!("latency probe: cannot write {}: {e}", self.path.display()));
    }
}

/// In-memory latency collector: returns the handle plus the shared
/// `(read, write)` histograms, filled at run end.
pub fn latency_collector() -> (
    ProbeHandle,
    Arc<Mutex<(LatencyHistogram, LatencyHistogram)>>,
) {
    let sink = Arc::new(Mutex::new((
        LatencyHistogram::default(),
        LatencyHistogram::default(),
    )));
    let captured = sink.clone();
    struct Collector {
        read: LatencyHistogram,
        write: LatencyHistogram,
        sink: Arc<Mutex<(LatencyHistogram, LatencyHistogram)>>,
    }
    impl Probe for Collector {
        fn on_req_complete(&mut self, ev: &ReqEvent) {
            if ev.is_write {
                self.write.record(ev.latency);
            } else {
                self.read.record(ev.latency);
            }
        }
        fn on_run_end(&mut self, _result: &SimResult) {
            *self.sink.lock().expect("latency sink") = (self.read, self.write);
        }
    }
    let handle = ProbeHandle::new("latency-mem", move || {
        Box::new(Collector {
            read: LatencyHistogram::default(),
            write: LatencyHistogram::default(),
            sink: captured.clone(),
        }) as Box<dyn Probe>
    })
    .with_summary("in-memory latency collector");
    (handle, sink)
}

// ---------------------------------------------------------------------------
// Built-in probe 4: per-row ACT exposure (the RowHammer hook).
// ---------------------------------------------------------------------------

/// A fully-qualified row address, the ACT-exposure counting key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowAddr {
    /// Channel index.
    pub channel: usize,
    /// Rank index.
    pub rank: usize,
    /// Bank index.
    pub bank: u16,
    /// Row address.
    pub row: u32,
}

/// How many hottest rows the file-writing ACT-exposure probe reports.
pub const ACT_EXPOSURE_TOP: usize = 64;

/// Counts activations per row — demand, refresh and preventive alike —
/// the exposure stream RowHammer defense studies consume, plus the
/// *neighbor* (victim-row) exposure each activation induces on the rows
/// either side. The file-writing form emits the [`ACT_EXPOSURE_TOP`]
/// hottest rows as JSONL at run end (hottest first, ties broken by
/// address for determinism), each with its neighbor count alongside.
pub struct ActExposureProbe {
    counts: HashMap<RowAddr, u64>,
    neighbors: HashMap<RowAddr, u64>,
    path: PathBuf,
}

impl ActExposureProbe {
    /// An ACT-exposure probe writing its top-row summary to `path`.
    pub fn handle(path: impl Into<PathBuf>) -> ProbeHandle {
        let path = path.into();
        let name = format!("act-exposure:{}", path.display());
        ProbeHandle::new(name, move || {
            Box::new(ActExposureProbe {
                counts: HashMap::new(),
                neighbors: HashMap::new(),
                path: path.clone(),
            }) as Box<dyn Probe>
        })
        .with_summary("per-row ACT-exposure counter (JSONL top rows)")
    }

    fn count(counts: &mut HashMap<RowAddr, u64>, ev: &CmdEvent) {
        if ev.cmd != DramCmd::Act {
            return;
        }
        let (Some(bank), Some(row)) = (ev.bank, ev.row) else {
            return;
        };
        *counts
            .entry(RowAddr {
                channel: ev.channel,
                rank: ev.rank,
                bank,
                row,
            })
            .or_insert(0) += 1;
    }

    /// Neighbor (victim-row) counting: every activation on row `r` bumps
    /// `r - 1` (when it exists) and `r + 1`. Deliberately geometry-free —
    /// `r + 1` is counted even past the top of a bank — so the totals are
    /// exactly comparable with [`crate::plugin::ExposureTracker`]'s
    /// `neighbor_increments` (the probe-vs-plugin consistency check).
    fn count_neighbors(neighbors: &mut HashMap<RowAddr, u64>, ev: &CmdEvent) {
        if ev.cmd != DramCmd::Act {
            return;
        }
        let (Some(bank), Some(row)) = (ev.bank, ev.row) else {
            return;
        };
        let mut bump = |row: u32| {
            *neighbors
                .entry(RowAddr {
                    channel: ev.channel,
                    rank: ev.rank,
                    bank,
                    row,
                })
                .or_insert(0) += 1;
        };
        if row > 0 {
            bump(row - 1);
        }
        bump(row + 1);
    }
}

impl Probe for ActExposureProbe {
    fn on_cmd(&mut self, ev: &CmdEvent) {
        Self::count(&mut self.counts, ev);
        Self::count_neighbors(&mut self.neighbors, ev);
    }

    fn on_run_end(&mut self, _result: &SimResult) {
        let mut rows: Vec<(&RowAddr, &u64)> = self.counts.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        let mut out = String::new();
        for (addr, acts) in rows.into_iter().take(ACT_EXPOSURE_TOP) {
            let neighbor_acts = self.neighbors.get(addr).copied().unwrap_or(0);
            out.push_str(&format!(
                "{{\"channel\":{},\"rank\":{},\"bank\":{},\"row\":{},\"acts\":{acts},\
                 \"neighbor_acts\":{neighbor_acts}}}\n",
                addr.channel, addr.rank, addr.bank, addr.row
            ));
        }
        std::fs::write(&self.path, out).unwrap_or_else(|e| {
            panic!(
                "act-exposure probe: cannot write {}: {e}",
                self.path.display()
            )
        });
    }
}

/// In-memory ACT-exposure collector: returns the handle plus the shared
/// per-row count map (live — updated as the run executes).
pub fn act_exposure_collector() -> (ProbeHandle, Arc<Mutex<HashMap<RowAddr, u64>>>) {
    let sink: Arc<Mutex<HashMap<RowAddr, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let captured = sink.clone();
    struct Collector {
        sink: Arc<Mutex<HashMap<RowAddr, u64>>>,
    }
    impl Probe for Collector {
        fn on_cmd(&mut self, ev: &CmdEvent) {
            ActExposureProbe::count(&mut self.sink.lock().expect("exposure sink"), ev);
        }
    }
    let handle = ProbeHandle::new("act-exposure-mem", move || {
        Box::new(Collector {
            sink: captured.clone(),
        }) as Box<dyn Probe>
    })
    .with_summary("in-memory ACT-exposure collector");
    (handle, sink)
}

/// In-memory ACT-exposure collector that also tracks neighbor (victim-row)
/// exposure: returns the handle plus the direct-count and neighbor-count
/// maps (both live). The neighbor map uses the same geometry-free guards
/// as [`crate::plugin::ExposureTracker`], so its total equals a plugin's
/// `neighbor_increments` over the same run.
#[allow(clippy::type_complexity)]
pub fn act_exposure_neighbor_collector() -> (
    ProbeHandle,
    Arc<Mutex<HashMap<RowAddr, u64>>>,
    Arc<Mutex<HashMap<RowAddr, u64>>>,
) {
    let direct: Arc<Mutex<HashMap<RowAddr, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let neighbors: Arc<Mutex<HashMap<RowAddr, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let (direct_cap, neighbors_cap) = (direct.clone(), neighbors.clone());
    struct Collector {
        direct: Arc<Mutex<HashMap<RowAddr, u64>>>,
        neighbors: Arc<Mutex<HashMap<RowAddr, u64>>>,
    }
    impl Probe for Collector {
        fn on_cmd(&mut self, ev: &CmdEvent) {
            ActExposureProbe::count(&mut self.direct.lock().expect("direct sink"), ev);
            ActExposureProbe::count_neighbors(
                &mut self.neighbors.lock().expect("neighbor sink"),
                ev,
            );
        }
    }
    let handle = ProbeHandle::new("act-exposure-neighbors-mem", move || {
        Box::new(Collector {
            direct: direct_cap.clone(),
            neighbors: neighbors_cap.clone(),
        }) as Box<dyn Probe>
    })
    .with_summary("in-memory ACT-exposure collector with neighbor counts");
    (handle, direct, neighbors)
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

/// The probe registry: all built-in forms are dynamic (parameterized), so
/// unlike the policy/workload/device registries it carries no fixed
/// handle roster — [`ProbeRegistry::lookup`] parses the form and
/// [`ProbeRegistry::forms`] documents the grammar for `--list`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbeRegistry;

impl ProbeRegistry {
    /// The standard registry.
    pub fn standard() -> Self {
        ProbeRegistry
    }

    /// The accepted `--probe=` forms with one-line descriptions.
    pub fn forms(&self) -> Vec<(&'static str, &'static str)> {
        vec![
            (
                "cmdtrace:<prefix>",
                "ramulator-style command trace, one <prefix>.ch<N>.cmdtrace per channel",
            ),
            (
                "epochs:<cycles>[:<path>]",
                "epoch time-series sampler, JSONL (default path epochs.jsonl)",
            ),
            (
                "latency:<path>",
                "read/write latency histograms + p50/p90/p99/p999, JSONL",
            ),
            (
                "act-exposure:<path>",
                "per-row ACT-exposure counts, JSONL top rows",
            ),
        ]
    }

    /// Resolves a probe spec (`cmdtrace:out`, `epochs:20000:ts.jsonl`,
    /// `latency:lat.jsonl`, `act-exposure:acts.jsonl`). `None` when the
    /// form is unknown or malformed.
    pub fn lookup(&self, spec: &str) -> Option<ProbeHandle> {
        let (kind, rest) = spec.split_once(':')?;
        match kind {
            "cmdtrace" if !rest.is_empty() => Some(CmdTraceProbe::handle(rest)),
            "epochs" => {
                let (every, path) = match rest.split_once(':') {
                    Some((e, p)) if !p.is_empty() => (e, p.to_string()),
                    Some((e, _)) => (e, "epochs.jsonl".to_string()),
                    None => (rest, "epochs.jsonl".to_string()),
                };
                let every: u64 = every.parse().ok().filter(|&e| e > 0)?;
                Some(EpochJsonlProbe::handle(every, path))
            }
            "latency" if !rest.is_empty() => Some(LatencyProbe::handle(rest)),
            "act-exposure" if !rest.is_empty() => Some(ActExposureProbe::handle(rest)),
            _ => None,
        }
    }
}

/// CLI shortcut: resolves a probe spec through the standard registry,
/// panicking with the accepted grammar on failure (the typed-error path
/// is [`crate::builder::SystemBuilder::probe_name`]).
///
/// # Panics
///
/// Panics when the spec does not resolve.
pub fn probe(spec: &str) -> ProbeHandle {
    ProbeRegistry::standard().lookup(spec).unwrap_or_else(|| {
        let forms = ProbeRegistry::standard()
            .forms()
            .iter()
            .map(|(f, _)| *f)
            .collect::<Vec<_>>()
            .join(", ");
        panic!("unknown probe spec `{spec}` (accepted forms: {forms})")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_compare_by_name() {
        let a = CmdTraceProbe::handle("x");
        let b = CmdTraceProbe::handle("x");
        let c = CmdTraceProbe::handle("y");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.name(), "cmdtrace:x");
        assert!(!a.summary().is_empty());
    }

    #[test]
    fn registry_resolves_every_documented_form() {
        let reg = ProbeRegistry::standard();
        assert_eq!(reg.lookup("cmdtrace:out").unwrap().name(), "cmdtrace:out");
        assert_eq!(
            reg.lookup("epochs:5000:ts.jsonl").unwrap().name(),
            "epochs:5000:ts.jsonl"
        );
        assert_eq!(
            reg.lookup("epochs:5000").unwrap().name(),
            "epochs:5000:epochs.jsonl",
            "path defaults"
        );
        assert_eq!(
            reg.lookup("latency:lat.jsonl").unwrap().name(),
            "latency:lat.jsonl"
        );
        assert_eq!(
            reg.lookup("act-exposure:acts.jsonl").unwrap().name(),
            "act-exposure:acts.jsonl"
        );
        for bad in [
            "nope",
            "nope:x",
            "cmdtrace:",
            "epochs:0:x",
            "epochs:abc",
            "latency:",
        ] {
            assert!(reg.lookup(bad).is_none(), "`{bad}` resolved");
        }
        assert_eq!(reg.forms().len(), 4);
    }

    #[test]
    #[should_panic(expected = "unknown probe spec")]
    fn probe_shortcut_panics_with_the_grammar() {
        probe("not-a-probe");
    }

    #[test]
    fn cmdtrace_lines_roundtrip_through_the_parser() {
        let text = "12,ACT,0,3,4711\n15,PRE,0,3\n20,RD,1,2\n30,PREA,0\n35,REF,0\n40,REFpb,1,7\n";
        let recs = parse_cmdtrace(text).unwrap();
        assert_eq!(recs.len(), 6);
        assert_eq!(
            recs[0],
            CmdTraceRecord {
                at: 12,
                cmd: DramCmd::Act,
                rank: 0,
                bank: Some(3),
                row: Some(4711),
            }
        );
        assert_eq!(recs[3].bank, None, "PREA is rank-wide");
        assert_eq!(recs[5].cmd, DramCmd::RefPb);
        // Field-count validation per mnemonic.
        assert!(parse_cmdtrace("12,ACT,0,3").is_err(), "ACT without row");
        assert!(parse_cmdtrace("12,REF,0,3").is_err(), "REF with bank");
        assert!(parse_cmdtrace("12,NOP,0").is_err(), "unknown mnemonic");
        assert!(parse_cmdtrace("x,ACT,0,3,1").is_err(), "bad clk");
    }

    #[test]
    fn multi_fans_out_and_takes_the_minimum_epoch() {
        let (fine, fine_sink) = epoch_collector(100);
        let (coarse, coarse_sink) = epoch_collector(300);
        let multi = ProbeHandle::multi(vec![fine, coarse]);
        assert_eq!(multi.name(), "epochs-mem:100+epochs-mem:300");
        let mut built = multi.build();
        assert_eq!(built.epoch_cycles(), Some(100));
        let sample = EpochSample {
            epoch: 0,
            cycle: 100,
            mem_cycle: 37,
            insts: 10,
            ipc: 0.1,
            reads: 1,
            writes: 0,
            read_gbps: 0.5,
            write_gbps: 0.0,
            dbus_util: 0.1,
            row_hit_rate: 0.0,
            read_q: 0,
            write_q: 0,
            refresh_occupancy: 0.0,
        };
        built.on_epoch(&sample);
        assert_eq!(fine_sink.lock().unwrap().len(), 1);
        assert_eq!(coarse_sink.lock().unwrap().len(), 1, "members see all");
        assert_eq!(fine_sink.lock().unwrap()[0], sample);
    }

    #[test]
    fn epoch_jsonl_line_matches_the_documented_schema() {
        let s = EpochSample {
            epoch: 2,
            cycle: 60000,
            mem_cycle: 22500,
            insts: 5000,
            ipc: 0.25,
            reads: 40,
            writes: 8,
            read_gbps: 1.5,
            write_gbps: 0.25,
            dbus_util: 0.5,
            row_hit_rate: 0.75,
            read_q: 2,
            write_q: 1,
            refresh_occupancy: 0.125,
        };
        let line = epoch_jsonl_line(&s);
        assert!(line.starts_with("{\"epoch\":2,\"cycle\":60000,"));
        assert!(line.contains("\"ipc\":0.25"));
        assert!(line.contains("\"refresh_occupancy\":0.125"));
        assert!(line.ends_with('}'));
        for key in [
            "mem_cycle",
            "insts",
            "reads",
            "writes",
            "read_gbps",
            "write_gbps",
            "dbus_util",
            "row_hit_rate",
            "read_q",
            "write_q",
        ] {
            assert!(line.contains(&format!("\"{key}\":")), "missing {key}");
        }
    }

    #[test]
    fn latency_jsonl_carries_quantiles_and_buckets() {
        let mut read = LatencyHistogram::default();
        for _ in 0..99 {
            read.record(40);
        }
        read.record(2000);
        let lines = latency_jsonl_lines(&read, &LatencyHistogram::default());
        let mut it = lines.lines();
        let r = it.next().unwrap();
        let w = it.next().unwrap();
        assert!(r.contains("\"kind\":\"read\"") && r.contains("\"count\":100"));
        assert!(
            r.contains("\"p50\":63") && r.contains("\"p999\":2047"),
            "{r}"
        );
        assert!(w.contains("\"kind\":\"write\"") && w.contains("\"p50\":null"));
    }

    #[test]
    fn act_exposure_counts_only_activations() {
        let (handle, sink) = act_exposure_collector();
        let mut p = handle.build();
        let act = CmdEvent {
            at: 10,
            channel: 0,
            rank: 0,
            bank: Some(3),
            row: Some(99),
            cmd: DramCmd::Act,
        };
        p.on_cmd(&act);
        p.on_cmd(&act);
        p.on_cmd(&CmdEvent {
            cmd: DramCmd::Pre,
            row: None,
            ..act
        });
        let counts = sink.lock().unwrap();
        assert_eq!(counts.len(), 1);
        assert_eq!(
            counts[&RowAddr {
                channel: 0,
                rank: 0,
                bank: 3,
                row: 99
            }],
            2
        );
    }

    #[test]
    fn act_exposure_neighbor_counts_use_geometry_free_guards() {
        let (handle, direct, neighbors) = act_exposure_neighbor_collector();
        let mut p = handle.build();
        let at = |row| CmdEvent {
            at: 0,
            channel: 0,
            rank: 0,
            bank: Some(1),
            row: Some(row),
            cmd: DramCmd::Act,
        };
        p.on_cmd(&at(0)); // row 0: only the upper neighbor exists
        p.on_cmd(&at(5));
        p.on_cmd(&at(5));
        assert_eq!(direct.lock().unwrap().len(), 2);
        let n = neighbors.lock().unwrap();
        let row = |r| RowAddr {
            channel: 0,
            rank: 0,
            bank: 1,
            row: r,
        };
        assert_eq!(n.get(&row(1)), Some(&1));
        assert_eq!(n.get(&row(4)), Some(&2));
        assert_eq!(n.get(&row(6)), Some(&2));
        assert_eq!(n.values().sum::<u64>(), 5, "row 0 has no lower neighbor");
    }

    #[test]
    fn act_exposure_probe_agrees_with_the_oracle_plugin() {
        // Satellite consistency check: over an identical run, the
        // act-exposure probe's direct and neighbor totals must equal the
        // oracle plugin's internal counters exactly — the probe observes
        // the command stream, the plugin is notified per executed ACT,
        // and both use the same geometry-free neighbor guards. The oracle
        // threshold is set beyond reach so the plugin never injects (an
        // injection would add ACTs the *other* accounting also sees, but
        // zero keeps the expectation exact and obvious).
        let (handle, direct, neighbors) = act_exposure_neighbor_collector();
        let cfg = crate::builder::SystemBuilder::new()
            .insts(4_000, 500)
            .plugin(crate::plugin::oracle(1 << 40))
            .probe(handle)
            .build()
            .unwrap();
        let result = crate::system::System::new(cfg).run();
        assert_eq!(result.plugin_stats.len(), 1, "one channel, one rank");
        let s = result.plugin_stats[0];
        assert_eq!(s.injected, 0, "threshold is unreachable");
        assert!(s.acts_observed > 0);
        assert_eq!(
            s.acts_observed,
            direct.lock().unwrap().values().sum::<u64>()
        );
        assert_eq!(
            s.neighbor_increments,
            neighbors.lock().unwrap().values().sum::<u64>()
        );
    }

    #[test]
    fn probe_host_inactive_is_inert() {
        let mut host = ProbeHost::disabled();
        assert!(!host.active());
        assert_eq!(host.epoch_every(), None);
        // The event closure must not run without a probe.
        host.on_cmd(|| unreachable!("no probe attached"));
        host.on_req_complete(|| unreachable!());
        host.on_refresh(|| unreachable!());
    }
}
