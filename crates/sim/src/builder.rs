//! Validated construction of [`SystemConfig`]: fluent setters, geometry and
//! timing cross-checks, typed errors.
//!
//! The builder replaces the hand-assembled struct literals the harness used
//! to carry: every field has a Table 3 default, every setter is chainable,
//! and [`SystemBuilder::build`] refuses configurations a real controller
//! could not operate (zero banks, `tRFC ≥ tREFI`, bank groups that do not
//! divide the bank count, …) with a [`BuildError`] naming the violation.
//!
//! The DRAM part is selected like the policy and workload axes:
//! [`SystemBuilder::device`] / [`SystemBuilder::device_name`] pick a
//! [`crate::device::DeviceHandle`], which then supplies the bank
//! geometry, chip capacity and timing-table defaults (each individually
//! overridable).
//!
//! ```rust
//! use hira_sim::builder::SystemBuilder;
//! use hira_sim::policy;
//!
//! let cfg = SystemBuilder::new()
//!     .device_name("ddr4-3200")
//!     .chip_gbit(64.0)
//!     .policy(policy::hira(4))
//!     .geometry(2, 2)
//!     .insts(40_000, 8_000)
//!     .build()
//!     .unwrap();
//! assert_eq!(cfg.channels, 2);
//! assert_eq!(cfg.refresh.name(), "hira4");
//! assert_eq!(cfg.clock().mem_ticks_per_cpu_cycle(), (1, 2));
//! ```

use crate::config::{KernelMode, SystemConfig};
use crate::device::{ddr4_2400, DeviceHandle};
use crate::plugin::{PluginHandle, PluginRegistry};
use crate::policy::{baseline, PolicyHandle};
use crate::probe::ProbeHandle;
use hira_dram::timing::TimingParams;
use hira_workload::WorkloadHandle;
use std::fmt;

/// A validation failure from [`SystemBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// A structural count (cores, channels, ranks, banks, bank groups,
    /// queue depth) was zero.
    ZeroCount {
        /// Which count was zero.
        what: &'static str,
    },
    /// `banks` is not a multiple of `bank_groups`.
    BankGroupMismatch {
        /// Banks per rank.
        banks: u16,
        /// Bank groups per rank.
        bank_groups: u16,
    },
    /// Chip capacity must be positive and finite.
    InvalidCapacity {
        /// The offending capacity in Gb.
        chip_gbit: f64,
    },
    /// `tRFC` must leave room inside `tREFI` — a refresh that outlasts its
    /// own interval can never complete the window.
    RefreshWindowTooTight {
        /// All-bank refresh latency, ns.
        t_rfc: f64,
        /// Refresh interval, ns.
        t_refi: f64,
    },
    /// `tRC` must cover `tRAS + tRP` — the row cycle is their sum.
    RowCycleInconsistent {
        /// Row cycle, ns.
        t_rc: f64,
        /// Charge restoration, ns.
        t_ras: f64,
        /// Precharge, ns.
        t_rp: f64,
    },
    /// The warmup budget must be strictly below the measured budget.
    WarmupExceedsBudget {
        /// Warmup instructions per core.
        warmup: u64,
        /// Total measured instructions per core.
        insts: u64,
    },
    /// The SPT compatibility fraction must be a probability.
    SptFractionOutOfRange {
        /// The offending fraction.
        spt_fraction: f64,
    },
    /// The LLC must hold at least one set of the configured associativity.
    LlcTooSmall {
        /// LLC capacity in bytes.
        bytes: usize,
        /// Associativity.
        ways: usize,
    },
    /// A [`SystemBuilder::policy_name`] lookup did not resolve against the
    /// standard registry.
    UnknownPolicy {
        /// The name that failed to resolve.
        name: String,
    },
    /// A [`SystemBuilder::workload_name`] lookup did not resolve against
    /// the standard workload registry.
    UnknownWorkload {
        /// The name that failed to resolve.
        name: String,
    },
    /// A [`SystemBuilder::device_name`] lookup did not resolve against
    /// the standard device registry.
    UnknownDevice {
        /// The name that failed to resolve.
        name: String,
    },
    /// A [`SystemBuilder::probe_name`] spec did not resolve against the
    /// probe registry's accepted forms.
    UnknownProbe {
        /// The spec that failed to resolve.
        name: String,
    },
    /// A [`SystemBuilder::plugin_name`] spec did not resolve against the
    /// plugin registry's accepted forms.
    UnknownPlugin {
        /// The spec that failed to resolve.
        name: String,
    },
    /// The selected plugin injects directed victim-row refreshes
    /// (VRR-style), but the selected device's decoder drops vendor
    /// directed-refresh commands (the same conservative decoder that is
    /// HiRA-inert, §12).
    DeviceLacksVrr {
        /// The VRR-less device.
        device: String,
        /// The plugin that needs directed refreshes.
        plugin: String,
    },
    /// The policy's HiRA lead timings are inconsistent with the device's
    /// timing table: `t1` and `t2` must be positive, `t1` must not exceed
    /// `t2` (§4.2 finds reliable hidden activation only there), and `t2`
    /// must stay *below* `tRAS` — at `t2 ≥ tRAS` the "violating"
    /// precharge is no longer violating and the operation degenerates to
    /// a nominal two-row refresh.
    HiraLeadInvalid {
        /// First-`ACT` → `PRE` gap, ns.
        t1: f64,
        /// `PRE` → second-`ACT` gap, ns.
        t2: f64,
        /// The device's charge-restoration latency, ns.
        t_ras: f64,
    },
    /// The selected policy issues HiRA operations, but the selected
    /// device's command decoder drops timing-violating commands (§12:
    /// Samsung/Micron parts are HiRA-inert).
    DeviceLacksHira {
        /// The HiRA-inert device.
        device: String,
        /// The policy that needs HiRA operations.
        policy: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ZeroCount { what } => write!(f, "{what} must be at least 1"),
            BuildError::BankGroupMismatch { banks, bank_groups } => write!(
                f,
                "{bank_groups} bank groups do not evenly divide {banks} banks"
            ),
            BuildError::InvalidCapacity { chip_gbit } => {
                write!(f, "chip capacity {chip_gbit} Gb is not positive and finite")
            }
            BuildError::RefreshWindowTooTight { t_rfc, t_refi } => {
                write!(f, "tRFC {t_rfc} ns does not fit inside tREFI {t_refi} ns")
            }
            BuildError::RowCycleInconsistent { t_rc, t_ras, t_rp } => {
                write!(f, "tRC {t_rc} ns is below tRAS {t_ras} + tRP {t_rp} ns")
            }
            BuildError::WarmupExceedsBudget { warmup, insts } => write!(
                f,
                "warmup {warmup} insts must be below the measured budget {insts}"
            ),
            BuildError::SptFractionOutOfRange { spt_fraction } => {
                write!(f, "SPT fraction {spt_fraction} is not in [0, 1]")
            }
            BuildError::LlcTooSmall { bytes, ways } => write!(
                f,
                "LLC of {bytes} B cannot hold one {ways}-way set of 64 B lines"
            ),
            BuildError::UnknownPolicy { name } => write!(
                f,
                "no refresh policy named `{name}` in the standard registry"
            ),
            BuildError::UnknownWorkload { name } => write!(
                f,
                "no workload named `{name}` in the standard registry \
                 (nor a resolvable mix<N>/zipf<N>/rw<N>/open<N>/trace:<path> form)"
            ),
            BuildError::UnknownDevice { name } => write!(
                f,
                "no device named `{name}` in the standard registry \
                 (nor a resolvable ddr4-2400@<Gb> form)"
            ),
            BuildError::UnknownProbe { name } => write!(
                f,
                "no probe form matches `{name}` (accepted: cmdtrace:<prefix>, \
                 epochs:<cycles>[:<path>], latency:<path>, act-exposure:<path>)"
            ),
            BuildError::UnknownPlugin { name } => write!(
                f,
                "no plugin form matches `{name}` (accepted: oracle:<tRH>, \
                 para:<p>, graphene:<tRH>:<k>)"
            ),
            BuildError::DeviceLacksVrr { device, plugin } => write!(
                f,
                "plugin `{plugin}` injects directed victim-row refreshes but \
                 device `{device}` drops vendor directed-refresh commands"
            ),
            BuildError::HiraLeadInvalid { t1, t2, t_ras } => write!(
                f,
                "HiRA lead timings t1 = {t1} ns, t2 = {t2} ns are invalid: \
                 need 0 < t1 <= t2 < tRAS ({t_ras} ns)"
            ),
            BuildError::DeviceLacksHira { device, policy } => write!(
                f,
                "policy `{policy}` issues HiRA operations but device `{device}` \
                 drops timing-violating commands (HiRA-inert decoder)"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Fluent, validated constructor for [`SystemConfig`]. Defaults are the
/// paper's Table 3 system at 8 Gb chips with Baseline refresh.
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    cores: usize,
    channels: usize,
    ranks: usize,
    /// Explicit `(banks, bank_groups)` override; the device profile's
    /// geometry otherwise.
    banks: Option<(u16, u16)>,
    /// Explicit chip capacity; the device profile's default otherwise.
    chip_gbit: Option<f64>,
    device: DeviceHandle,
    /// A pending by-name device selection, resolved (and validated) at
    /// [`SystemBuilder::build`]; overrides `device` when set.
    device_by_name: Option<String>,
    timing: Option<TimingParams>,
    refresh: PolicyHandle,
    /// A pending by-name policy selection, resolved (and validated) at
    /// [`SystemBuilder::build`]; overrides `refresh` when set.
    refresh_by_name: Option<String>,
    workload: WorkloadHandle,
    /// A pending by-name workload selection, resolved at
    /// [`SystemBuilder::build`]; overrides `workload` when set.
    workload_by_name: Option<String>,
    para: Option<ParaLayer>,
    llc_bytes: usize,
    llc_ways: usize,
    queue_depth: usize,
    insts_per_core: u64,
    warmup_insts: u64,
    spt_fraction: f64,
    seed: u64,
    kernel: KernelMode,
    probe: Option<ProbeHandle>,
    /// A pending by-spec probe selection, resolved (and validated) at
    /// [`SystemBuilder::build`]; overrides `probe` when set.
    probe_by_name: Option<String>,
    /// Controller plugins, in attachment order (see [`crate::plugin`]).
    plugins: Vec<PluginHandle>,
    /// Pending by-spec plugin selections, resolved (and validated) at
    /// [`SystemBuilder::build`] and appended after `plugins`.
    plugins_by_name: Vec<String>,
}

/// The preventive layer a builder composes onto the policy at build time.
#[derive(Debug, Clone, Copy)]
struct ParaLayer {
    pth: f64,
    /// `None`: serve victims immediately; `Some(n)`: queue with HiRA-N.
    slack_acts: Option<u32>,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemBuilder {
    /// The Table 3 defaults: 8 cores, one channel/rank, 16 banks in 4
    /// groups, 8 Gb chips, DDR4-2400, Baseline refresh, 8 MB LLC.
    pub fn new() -> Self {
        SystemBuilder {
            cores: 8,
            channels: 1,
            ranks: 1,
            banks: None,
            chip_gbit: None,
            device: ddr4_2400(),
            device_by_name: None,
            timing: None,
            refresh: baseline(),
            refresh_by_name: None,
            workload: hira_workload::mix(0),
            workload_by_name: None,
            para: None,
            llc_bytes: 8 << 20,
            llc_ways: 8,
            queue_depth: 64,
            insts_per_core: 100_000,
            warmup_insts: 20_000,
            spt_fraction: 0.32,
            seed: 0x5157,
            kernel: KernelMode::default(),
            probe: None,
            probe_by_name: None,
            plugins: Vec::new(),
            plugins_by_name: Vec::new(),
        }
    }

    /// [`SystemBuilder::new`] at a given chip capacity.
    pub fn table3(chip_gbit: f64) -> Self {
        Self::new().chip_gbit(chip_gbit)
    }

    /// Number of cores.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Channel and rank geometry (§10 sweeps).
    pub fn geometry(mut self, channels: usize, ranks: usize) -> Self {
        self.channels = channels;
        self.ranks = ranks;
        self
    }

    /// Banks per rank and bank groups per rank (overrides the device
    /// profile's geometry).
    pub fn banks(mut self, banks: u16, bank_groups: u16) -> Self {
        self.banks = Some((banks, bank_groups));
        self
    }

    /// Chip capacity in Gb. Unless [`SystemBuilder::timing`] overrides
    /// it, the device projects its capacity-scaled timing table (for the
    /// DDR4 presets: `tRFC` by Expression 1) from this value.
    pub fn chip_gbit(mut self, chip_gbit: f64) -> Self {
        self.chip_gbit = Some(chip_gbit);
        self
    }

    /// The DRAM device (clock, geometry defaults, timing table,
    /// capability flags). Default: the Table 3 `ddr4-2400` part.
    pub fn device(mut self, device: DeviceHandle) -> Self {
        self.device = device;
        self.device_by_name = None;
        self
    }

    /// Selects the device by standard-registry name (`--device=` axes),
    /// including the dynamic `ddr4-2400@<Gb>` form. The lookup happens in
    /// [`SystemBuilder::build`], so an unknown name surfaces as
    /// [`BuildError::UnknownDevice`]; the panicking shortcut for CLI use
    /// is [`crate::device::device`].
    pub fn device_name(mut self, name: &str) -> Self {
        self.device_by_name = Some(name.to_owned());
        self
    }

    /// Explicit DDR timing parameters (replaces the device's
    /// capacity-scaled table).
    pub fn timing(mut self, timing: TimingParams) -> Self {
        self.timing = Some(timing);
        self
    }

    /// The periodic refresh policy.
    pub fn policy(mut self, refresh: PolicyHandle) -> Self {
        self.refresh = refresh;
        self.refresh_by_name = None;
        self
    }

    /// Selects the policy by standard-registry name (`--policy=` axes).
    /// The lookup happens in [`SystemBuilder::build`], so an unknown name
    /// surfaces as [`BuildError::UnknownPolicy`] like every other invalid
    /// input — the panicking shortcut for CLI use is
    /// [`crate::policy::policy`].
    pub fn policy_name(mut self, name: &str) -> Self {
        self.refresh_by_name = Some(name.to_owned());
        self
    }

    /// The demand workload frontend.
    pub fn workload(mut self, workload: WorkloadHandle) -> Self {
        self.workload = workload;
        self.workload_by_name = None;
        self
    }

    /// Selects the workload by standard-registry name (`--workload=`
    /// axes), including the dynamic `mix<N>`/`zipf<N>`/`rw<N>`/`open<N>`/
    /// `trace:<path>` forms. The lookup happens in
    /// [`SystemBuilder::build`], so an unknown name surfaces as
    /// [`BuildError::UnknownWorkload`]; the panicking shortcut for CLI use
    /// is [`hira_workload::workload`].
    pub fn workload_name(mut self, name: &str) -> Self {
        self.workload_by_name = Some(name.to_owned());
        self
    }

    /// Layers immediately-served PARA (plain "PARA") onto the policy.
    pub fn preventive_immediate(mut self, pth: f64) -> Self {
        self.para = Some(ParaLayer {
            pth,
            slack_acts: None,
        });
        self
    }

    /// Layers HiRA-N-queued PARA onto the policy.
    pub fn preventive_hira(mut self, pth: f64, slack_acts: u32) -> Self {
        self.para = Some(ParaLayer {
            pth,
            slack_acts: Some(slack_acts),
        });
        self
    }

    /// LLC capacity and associativity.
    pub fn llc(mut self, bytes: usize, ways: usize) -> Self {
        self.llc_bytes = bytes;
        self.llc_ways = ways;
        self
    }

    /// Per-channel read/write queue capacity.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Measured and warmup instruction budgets per core.
    pub fn insts(mut self, insts: u64, warmup: u64) -> Self {
        self.insts_per_core = insts;
        self.warmup_insts = warmup;
        self
    }

    /// SPT compatibility fraction (§7).
    pub fn spt_fraction(mut self, fraction: f64) -> Self {
        self.spt_fraction = fraction;
        self
    }

    /// Deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The simulation kernel ([`KernelMode::Event`] by default; results
    /// are bit-identical either way).
    pub fn kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// Attaches a run observer (see [`crate::probe`]). Probes never change
    /// the simulation: results are bit-identical with or without one.
    pub fn probe(mut self, probe: ProbeHandle) -> Self {
        self.probe = Some(probe);
        self.probe_by_name = None;
        self
    }

    /// Selects the probe by registry spec (`--probe=` axes):
    /// `cmdtrace:<prefix>`, `epochs:<cycles>[:<path>]`, `latency:<path>`,
    /// `act-exposure:<path>`. The lookup happens in
    /// [`SystemBuilder::build`], so a malformed spec surfaces as
    /// [`BuildError::UnknownProbe`]; the panicking shortcut for CLI use is
    /// [`crate::probe::probe`].
    pub fn probe_name(mut self, spec: &str) -> Self {
        self.probe_by_name = Some(spec.to_owned());
        self
    }

    /// Attaches a controller plugin (see [`crate::plugin`]). Repeatable;
    /// plugins run in attachment order. Unlike probes, plugins *perturb*
    /// the run — their injected refreshes cost real command slots.
    pub fn plugin(mut self, plugin: PluginHandle) -> Self {
        self.plugins.push(plugin);
        self
    }

    /// Attaches a plugin by registry spec (`--plugin=` axes):
    /// `oracle:<tRH>`, `para:<p>`, `graphene:<tRH>:<k>`. The lookup
    /// happens in [`SystemBuilder::build`], so a malformed spec surfaces
    /// as [`BuildError::UnknownPlugin`]; the panicking shortcut for CLI
    /// use is [`crate::plugin::plugin`].
    pub fn plugin_name(mut self, spec: &str) -> Self {
        self.plugins_by_name.push(spec.to_owned());
        self
    }

    /// Validates and assembles the configuration.
    pub fn build(self) -> Result<SystemConfig, BuildError> {
        // The device resolves first: it supplies the geometry, capacity
        // and timing defaults everything below validates against.
        let device = match self.device_by_name {
            None => self.device,
            Some(name) => crate::device::DeviceRegistry::standard()
                .lookup(&name)
                .ok_or(BuildError::UnknownDevice { name })?,
        };
        let (banks, bank_groups) = self
            .banks
            .unwrap_or_else(|| (device.profile().banks, device.profile().bank_groups));
        let chip_gbit = self.chip_gbit.unwrap_or(device.profile().default_chip_gbit);
        for (what, n) in [
            ("cores", self.cores),
            ("channels", self.channels),
            ("ranks", self.ranks),
            ("banks", banks as usize),
            ("bank_groups", bank_groups as usize),
            ("queue_depth", self.queue_depth),
            ("llc_ways", self.llc_ways),
            ("insts_per_core", self.insts_per_core as usize),
        ] {
            if n == 0 {
                return Err(BuildError::ZeroCount { what });
            }
        }
        if !banks.is_multiple_of(bank_groups) {
            return Err(BuildError::BankGroupMismatch { banks, bank_groups });
        }
        if !(chip_gbit.is_finite() && chip_gbit > 0.0) {
            return Err(BuildError::InvalidCapacity { chip_gbit });
        }
        let timing = self.timing.unwrap_or_else(|| device.timing(chip_gbit));
        if timing.t_rfc >= timing.t_refi {
            return Err(BuildError::RefreshWindowTooTight {
                t_rfc: timing.t_rfc,
                t_refi: timing.t_refi,
            });
        }
        if timing.t_rc + 1e-9 < timing.t_ras + timing.t_rp {
            return Err(BuildError::RowCycleInconsistent {
                t_rc: timing.t_rc,
                t_ras: timing.t_ras,
                t_rp: timing.t_rp,
            });
        }
        if self.warmup_insts >= self.insts_per_core {
            return Err(BuildError::WarmupExceedsBudget {
                warmup: self.warmup_insts,
                insts: self.insts_per_core,
            });
        }
        if !(0.0..=1.0).contains(&self.spt_fraction) {
            return Err(BuildError::SptFractionOutOfRange {
                spt_fraction: self.spt_fraction,
            });
        }
        if self.llc_bytes < 64 * self.llc_ways {
            return Err(BuildError::LlcTooSmall {
                bytes: self.llc_bytes,
                ways: self.llc_ways,
            });
        }
        let refresh = match self.refresh_by_name {
            None => self.refresh,
            Some(name) => crate::policy::PolicyRegistry::standard()
                .lookup(&name)
                .ok_or(BuildError::UnknownPolicy { name })?,
        };
        let workload = match self.workload_by_name {
            None => self.workload,
            Some(name) => hira_workload::WorkloadRegistry::standard()
                .lookup(&name)
                .ok_or(BuildError::UnknownWorkload { name })?,
        };
        let probe = match self.probe_by_name {
            None => self.probe,
            Some(name) => Some(
                crate::probe::ProbeRegistry::standard()
                    .lookup(&name)
                    .ok_or(BuildError::UnknownProbe { name })?,
            ),
        };
        let mut plugins = self.plugins;
        let plugin_registry = PluginRegistry::standard();
        for name in self.plugins_by_name {
            plugins.push(
                plugin_registry
                    .lookup(&name)
                    .ok_or(BuildError::UnknownPlugin { name })?,
            );
        }
        let refresh = match self.para {
            None => refresh,
            Some(ParaLayer {
                pth,
                slack_acts: None,
            }) => refresh.with_para_immediate(pth),
            Some(ParaLayer {
                pth,
                slack_acts: Some(n),
            }) => refresh.with_para_hira(pth, n),
        };
        let cfg = SystemConfig {
            cores: self.cores,
            channels: self.channels,
            ranks: self.ranks,
            banks,
            bank_groups,
            chip_gbit,
            device,
            timing,
            refresh,
            workload,
            llc_bytes: self.llc_bytes,
            llc_ways: self.llc_ways,
            queue_depth: self.queue_depth,
            insts_per_core: self.insts_per_core,
            warmup_insts: self.warmup_insts,
            spt_fraction: self.spt_fraction,
            seed: self.seed,
            kernel: self.kernel,
            cycle_cap: None,
            probe,
            plugins,
        };
        // HiRA capability cross-checks need a live policy instance (the
        // lead pair is the policy's choice, the decoder behaviour the
        // device's): probe one and validate the pairing.
        if let Some((t1, t2)) = crate::policy::probe(&cfg).hira_lead() {
            if !cfg.device.profile().supports_hira {
                return Err(BuildError::DeviceLacksHira {
                    device: cfg.device.name().to_owned(),
                    policy: cfg.refresh.name().to_owned(),
                });
            }
            let valid =
                t1.is_finite() && t2.is_finite() && t1 > 0.0 && t1 <= t2 && t2 < cfg.timing.t_ras;
            if !valid {
                return Err(BuildError::HiraLeadInvalid {
                    t1,
                    t2,
                    t_ras: cfg.timing.t_ras,
                });
            }
        }
        // VRR capability cross-check: a plugin that injects directed
        // victim-row refreshes needs a device whose decoder honors them.
        if !cfg.device.profile().supports_vrr {
            for p in crate::plugin::probe(&cfg) {
                if p.requires_vrr() {
                    return Err(BuildError::DeviceLacksVrr {
                        device: cfg.device.name().to_owned(),
                        plugin: p.name().to_owned(),
                    });
                }
            }
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{hira, noref};

    #[test]
    fn defaults_build_the_table3_system() {
        let cfg = SystemBuilder::new().build().unwrap();
        assert_eq!(cfg.cores, 8);
        assert_eq!(cfg.banks, 16);
        assert_eq!(cfg.refresh.name(), "baseline");
        assert_eq!(cfg, SystemConfig::table3(8.0, baseline()));
    }

    #[test]
    fn zero_counts_are_rejected_with_the_offending_field() {
        let err = SystemBuilder::new().banks(0, 4).build().unwrap_err();
        assert_eq!(err, BuildError::ZeroCount { what: "banks" });
        let err = SystemBuilder::new().cores(0).build().unwrap_err();
        assert_eq!(err, BuildError::ZeroCount { what: "cores" });
    }

    #[test]
    fn bank_groups_must_divide_banks() {
        let err = SystemBuilder::new().banks(16, 3).build().unwrap_err();
        assert_eq!(
            err,
            BuildError::BankGroupMismatch {
                banks: 16,
                bank_groups: 3
            }
        );
    }

    #[test]
    fn trfc_beyond_trefi_is_rejected() {
        let mut t = TimingParams::ddr4_2400();
        t.t_rfc = t.t_refi + 1.0;
        let err = SystemBuilder::new().timing(t).build().unwrap_err();
        assert!(matches!(err, BuildError::RefreshWindowTooTight { .. }));
        // Expression 1 crosses tREFI=7800 ns only beyond real capacities,
        // but an absurd capacity must still be caught through the timing.
        let err = SystemBuilder::new()
            .chip_gbit(f64::NAN)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::InvalidCapacity { .. }));
    }

    #[test]
    fn preventive_layers_compose_at_build_time() {
        let cfg = SystemBuilder::new()
            .policy(noref())
            .preventive_immediate(0.25)
            .build()
            .unwrap();
        assert_eq!(cfg.refresh.name(), "noref+para(p=0.2500)");
        let cfg = SystemBuilder::new()
            .policy(hira(4))
            .preventive_hira(0.5, 4)
            .build()
            .unwrap();
        assert_eq!(cfg.refresh.name(), "hira4+para@hira4(p=0.5000)");
    }

    #[test]
    fn workload_name_resolves_through_the_registry() {
        let cfg = SystemBuilder::new()
            .workload_name("zipf80")
            .build()
            .unwrap();
        assert_eq!(cfg.workload.name(), "zipf80");
        // Dynamic parameterized forms resolve too.
        let cfg = SystemBuilder::new().workload_name("mix7").build().unwrap();
        assert_eq!(cfg.workload.name(), "mix7");
        let err = SystemBuilder::new()
            .workload_name("nope")
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::UnknownWorkload {
                name: "nope".into()
            }
        );
        // A later explicit workload() overrides a pending name.
        let cfg = SystemBuilder::new()
            .workload_name("nope")
            .workload(hira_workload::stream())
            .build()
            .unwrap();
        assert_eq!(cfg.workload.name(), "stream");
    }

    #[test]
    fn policy_name_resolves_through_the_registry() {
        let cfg = SystemBuilder::new().policy_name("hira2").build().unwrap();
        assert_eq!(cfg.refresh.name(), "hira2");
        // An unknown name is a typed build error, not a panic — by-name
        // selection is the field most likely to carry unvalidated input.
        let err = SystemBuilder::new()
            .policy_name("nope")
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::UnknownPolicy {
                name: "nope".into()
            }
        );
        // A later explicit policy() overrides a pending name.
        let cfg = SystemBuilder::new()
            .policy_name("nope")
            .policy(noref())
            .build()
            .unwrap();
        assert_eq!(cfg.refresh.name(), "noref");
    }

    #[test]
    fn device_name_resolves_through_the_registry() {
        let cfg = SystemBuilder::new()
            .device_name("lpddr4-3200")
            .build()
            .unwrap();
        assert_eq!(cfg.device.name(), "lpddr4-3200");
        // The dynamic capacity form resolves too.
        let cfg = SystemBuilder::new()
            .device_name("ddr4-2400@32")
            .build()
            .unwrap();
        assert_eq!(cfg.device.name(), "ddr4-2400@32");
        assert_eq!(cfg.chip_gbit, 32.0, "pinned parts fix the capacity");
        let err = SystemBuilder::new()
            .device_name("nope")
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::UnknownDevice {
                name: "nope".into()
            }
        );
        // A later explicit device() overrides a pending name.
        let cfg = SystemBuilder::new()
            .device_name("nope")
            .device(crate::device::ddr4_3200())
            .build()
            .unwrap();
        assert_eq!(cfg.device.name(), "ddr4-3200");
    }

    #[test]
    fn probe_name_resolves_through_the_registry() {
        let cfg = SystemBuilder::new()
            .probe_name("epochs:5000:ts.jsonl")
            .build()
            .unwrap();
        assert_eq!(
            cfg.probe.as_ref().map(|p| p.name()),
            Some("epochs:5000:ts.jsonl")
        );
        let err = SystemBuilder::new().probe_name("nope").build().unwrap_err();
        assert_eq!(
            err,
            BuildError::UnknownProbe {
                name: "nope".into()
            }
        );
        // A later explicit probe() overrides a pending spec.
        let cfg = SystemBuilder::new()
            .probe_name("nope")
            .probe(crate::probe::CmdTraceProbe::handle("t"))
            .build()
            .unwrap();
        assert_eq!(cfg.probe.as_ref().map(|p| p.name()), Some("cmdtrace:t"));
        // The default carries no probe.
        assert_eq!(SystemBuilder::new().build().unwrap().probe, None);
    }

    #[test]
    fn plugin_name_resolves_through_the_registry() {
        let cfg = SystemBuilder::new()
            .plugin_name("oracle:1024")
            .plugin_name("para:0.01")
            .build()
            .unwrap();
        assert_eq!(
            cfg.plugins.iter().map(|p| p.name()).collect::<Vec<_>>(),
            vec!["oracle:1024", "para:0.01"],
            "attachment order is preserved"
        );
        let err = SystemBuilder::new()
            .plugin_name("blink:7")
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::UnknownPlugin {
                name: "blink:7".into()
            }
        );
        // Explicit handles come before pending by-name specs.
        let cfg = SystemBuilder::new()
            .plugin_name("para:0.5")
            .plugin(crate::plugin::oracle(64))
            .build()
            .unwrap();
        assert_eq!(
            cfg.plugins.iter().map(|p| p.name()).collect::<Vec<_>>(),
            vec!["oracle:64", "para:0.5"]
        );
        // The default carries no plugins.
        assert!(SystemBuilder::new().build().unwrap().plugins.is_empty());
    }

    #[test]
    fn vrr_plugins_are_rejected_on_vrr_less_devices() {
        // The conservative decoder drops directed-refresh commands, so
        // oracle and graphene are typed errors on it; para's plain
        // activations pass everywhere.
        for spec in ["oracle:1024", "graphene:1024:64"] {
            let err = SystemBuilder::new()
                .device(crate::device::samsung_ddr4_2400())
                .plugin_name(spec)
                .build()
                .unwrap_err();
            assert_eq!(
                err,
                BuildError::DeviceLacksVrr {
                    device: "samsung-ddr4-2400".into(),
                    plugin: spec.into()
                }
            );
        }
        assert!(SystemBuilder::new()
            .device(crate::device::samsung_ddr4_2400())
            .plugin_name("para:0.01")
            .build()
            .is_ok());
        // VRR-capable devices take all three.
        for spec in ["oracle:1024", "para:0.01", "graphene:1024:64"] {
            assert!(SystemBuilder::new().plugin_name(spec).build().is_ok());
        }
    }

    #[test]
    fn device_supplies_geometry_clock_and_timing_defaults() {
        let cfg = SystemBuilder::new()
            .device(crate::device::lpddr4_3200())
            .build()
            .unwrap();
        assert_eq!((cfg.banks, cfg.bank_groups), (8, 1));
        assert_eq!(cfg.clock().mem_ticks_per_cpu_cycle(), (1, 2));
        assert!((cfg.timing.t_rc - 60.0).abs() < 1e-9);
        // An explicit geometry override wins (and is still validated).
        let cfg = SystemBuilder::new()
            .device(crate::device::lpddr4_3200())
            .banks(16, 4)
            .build()
            .unwrap();
        assert_eq!((cfg.banks, cfg.bank_groups), (16, 4));
        // The default device is the Table 3 part, bit-identical defaults.
        let cfg = SystemBuilder::new().build().unwrap();
        assert_eq!(cfg.device.name(), "ddr4-2400");
        assert_eq!((cfg.banks, cfg.bank_groups), (16, 4));
        assert_eq!(cfg.chip_gbit, 8.0);
    }

    #[test]
    fn hira_policies_are_rejected_on_inert_devices() {
        let err = SystemBuilder::new()
            .device(crate::device::samsung_ddr4_2400())
            .policy(hira(4))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::DeviceLacksHira {
                device: "samsung-ddr4-2400".into(),
                policy: "hira4".into()
            }
        );
        // A PARA-over-HiRA layer needs HiRA operations just the same.
        let err = SystemBuilder::new()
            .device(crate::device::samsung_ddr4_2400())
            .policy(noref())
            .preventive_hira(0.5, 4)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::DeviceLacksHira { .. }));
        // Non-HiRA arrangements run fine on the inert part.
        for p in [baseline(), noref(), crate::policy::refpb()] {
            assert!(SystemBuilder::new()
                .device(crate::device::samsung_ddr4_2400())
                .policy(p)
                .build()
                .is_ok());
        }
    }

    #[test]
    fn invalid_hira_leads_are_rejected() {
        use hira_core::config::HiraConfig;
        use hira_core::hira_op::HiraOperation;
        use hira_dram::timing::HiraTimings;
        let with_lead = |t1, t2| {
            let mut c = HiraConfig::hira_n(4);
            c.op = HiraOperation::with_timings(HiraTimings { t1, t2 });
            SystemBuilder::new()
                .policy(crate::policy::hira_custom("hira4-custom", c))
                .build()
        };
        // Nominal and the paper's swept grid upper corner are fine.
        assert!(with_lead(3.0, 3.0).is_ok());
        assert!(with_lead(1.5, 6.0).is_ok());
        // t1 > t2, t2 beyond tRAS, and non-positive leads are typed errors.
        for (t1, t2) in [(4.5, 3.0), (3.0, 32.0), (0.0, 3.0), (-1.0, 3.0)] {
            let err = with_lead(t1, t2).unwrap_err();
            assert!(
                matches!(err, BuildError::HiraLeadInvalid { .. }),
                "({t1}, {t2}): {err:?}"
            );
        }
    }

    #[test]
    fn errors_render_readably() {
        let msg = BuildError::RefreshWindowTooTight {
            t_rfc: 9000.0,
            t_refi: 7800.0,
        }
        .to_string();
        assert!(msg.contains("9000") && msg.contains("7800"), "{msg}");
    }
}
