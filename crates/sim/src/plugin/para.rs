//! PARA as a controller plugin: probabilistic adjacent-row refresh (§9)
//! on the open plugin axis — the reimplementation that lets the
//! policy-layer `with_para_*` wrappers eventually retire.

use super::{ControllerPlugin, ExposureTracker, PluginEnv, PluginHandle, PluginStats};
use crate::policy::RefreshAction;
use hira_core::para::Para;
use hira_dram::addr::{BankId, RowId};
use std::collections::VecDeque;

/// Exposure threshold the para plugin's `rows_over_threshold` metric is
/// quoted against. PARA itself has no threshold — it samples every
/// activation — so the metric uses the paper's conservative
/// `tRH = 1024` working point to stay comparable with `oracle:1024`.
pub const PARA_EXPOSURE_THRESHOLD: u64 = 1024;

/// The PARA defense as a plugin: every observed activation triggers with
/// probability `p`, refreshing one uniformly-chosen adjacent row as a
/// plain activation (no directed-refresh command needed — PARA runs on
/// every device).
#[derive(Debug)]
pub struct ParaPlugin {
    name: String,
    para: Para,
    rows_per_bank: u32,
    tracker: ExposureTracker,
    queue: VecDeque<(BankId, RowId)>,
    injected: u64,
    acts: u64,
}

impl ParaPlugin {
    /// A PARA plugin with trigger probability `p` (its random stream is
    /// drawn from `env`'s pre-mixed seed).
    pub fn new(p: f64, env: &PluginEnv) -> Self {
        ParaPlugin {
            name: format!("para:{p}"),
            para: Para::new(p, env.seed),
            rows_per_bank: env.rows_per_bank,
            tracker: ExposureTracker::new(),
            queue: VecDeque::new(),
            injected: 0,
            acts: 0,
        }
    }
}

impl ControllerPlugin for ParaPlugin {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_act(&mut self, _now_ns: f64, bank: BankId, row: RowId) {
        self.acts += 1;
        self.tracker.on_act(bank, row);
        if let Some(side) = self.para.on_activate() {
            let victim = Para::victim(row, side, self.rows_per_bank);
            self.queue.push_back((bank, victim));
        }
    }

    fn next_action(&mut self, _now_ns: f64) -> Option<RefreshAction> {
        let (bank, row) = self.queue.pop_front()?;
        self.injected += 1;
        Some(RefreshAction::Single { bank, row })
    }

    fn next_wake(&self, now_ns: f64) -> f64 {
        if self.queue.is_empty() {
            f64::INFINITY
        } else {
            now_ns
        }
    }

    fn stats(&self) -> PluginStats {
        self.tracker.fold_into(
            PluginStats {
                acts_observed: self.acts,
                injected: self.injected,
                ..PluginStats::default()
            },
            PARA_EXPOSURE_THRESHOLD,
        )
    }
}

/// The `para:<p>` handle.
pub fn para(p: f64) -> PluginHandle {
    assert!(
        (0.0..=1.0).contains(&p),
        "para trigger probability must be in [0, 1], got {p}"
    );
    PluginHandle::new(format!("para:{p}"), move |env: &PluginEnv| {
        Box::new(ParaPlugin::new(p, env))
    })
    .with_summary(format!(
        "probabilistic adjacent-row refresh, trigger probability {p} per activation"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(seed: u64) -> PluginEnv {
        PluginEnv {
            channel: 0,
            rank: 0,
            banks: 16,
            rows_per_bank: 64,
            seed,
            ordinal: 0,
        }
    }

    #[test]
    fn para_triggers_at_roughly_the_configured_rate() {
        let mut p = ParaPlugin::new(0.25, &env(7));
        for i in 0..4000 {
            p.on_act(f64::from(i), BankId(0), RowId(32));
            while p.next_action(f64::from(i)).is_some() {}
        }
        let s = p.stats();
        assert_eq!(s.acts_observed, 4000);
        let rate = s.injected as f64 / s.acts_observed as f64;
        assert!((rate - 0.25).abs() < 0.03, "trigger rate {rate}");
    }

    #[test]
    fn para_victims_are_adjacent_rows() {
        let mut p = ParaPlugin::new(1.0, &env(11));
        p.on_act(0.0, BankId(2), RowId(10));
        match p.next_action(0.0) {
            Some(RefreshAction::Single { bank, row }) => {
                assert_eq!(bank, BankId(2));
                assert!(row == RowId(9) || row == RowId(11));
            }
            other => panic!("expected an adjacent single, got {other:?}"),
        }
    }

    #[test]
    fn para_streams_differ_across_plugin_instances() {
        let mut a = ParaPlugin::new(0.5, &env(1));
        let mut b = ParaPlugin::new(0.5, &env(2));
        let fire = |p: &mut ParaPlugin| {
            (0..64)
                .map(|i| {
                    p.on_act(f64::from(i), BankId(0), RowId(5));
                    u8::from(p.next_action(f64::from(i)).is_some())
                })
                .collect::<Vec<_>>()
        };
        assert_ne!(fire(&mut a), fire(&mut b));
    }
}
