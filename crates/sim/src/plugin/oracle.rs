//! `OracleRh` — the exact-knowledge RowHammer defense bound (ramulator2's
//! `OracleRH` counterpart): per-bank per-row victim-exposure counters with
//! no aliasing or budget, refreshing each victim the instant its exposure
//! reaches the chip's RowHammer threshold `tRH`.

use super::{ControllerPlugin, ExposureTracker, PluginEnv, PluginHandle, PluginStats};
use crate::policy::RefreshAction;
use hira_dram::addr::{BankId, RowId};
use std::collections::{HashSet, VecDeque};

/// The oracle defense: exact per-row exposure, exact `tRH` trigger. Its
/// injected-refresh count is the *minimum* any deterministic defense with
/// the same threshold must pay — the lower bound the tracked defenses
/// (PARA's probabilistic overshoot, Graphene's budget-limited counters)
/// are measured against.
#[derive(Debug)]
pub struct OracleRh {
    name: String,
    t_rh: u64,
    rows_per_bank: u32,
    tracker: ExposureTracker,
    /// Victims whose exposure crossed `t_rh`, awaiting injection.
    due: VecDeque<(BankId, RowId)>,
    /// Rows currently queued or injected-but-not-yet-executed, so one
    /// victim is never queued twice before its refresh lands.
    pending: HashSet<(BankId, RowId)>,
    injected: u64,
    acts: u64,
}

impl OracleRh {
    /// An oracle with RowHammer threshold `t_rh` on a `rows_per_bank`-row
    /// bank geometry.
    pub fn new(t_rh: u64, rows_per_bank: u32) -> Self {
        assert!(t_rh > 0, "oracle tRH must be positive");
        OracleRh {
            name: format!("oracle:{t_rh}"),
            t_rh,
            rows_per_bank,
            tracker: ExposureTracker::new(),
            due: VecDeque::new(),
            pending: HashSet::new(),
            injected: 0,
            acts: 0,
        }
    }

    /// Exposure of `row` right now (the probe-vs-plugin consistency test
    /// reads these).
    pub fn exposure(&self, bank: BankId, row: RowId) -> u64 {
        self.tracker.exposure(bank, row)
    }

    fn consider(&mut self, bank: BankId, victim: RowId) {
        if victim.0 >= self.rows_per_bank {
            return; // counted for the cross-check, but physically absent
        }
        if self.tracker.exposure(bank, victim) >= self.t_rh && self.pending.insert((bank, victim)) {
            self.due.push_back((bank, victim));
        }
    }
}

impl ControllerPlugin for OracleRh {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_act(&mut self, _now_ns: f64, bank: BankId, row: RowId) {
        self.acts += 1;
        self.tracker.on_act(bank, row);
        // The activation reset `row`'s own exposure — its refresh (if one
        // was in flight) is now moot.
        self.pending.remove(&(bank, row));
        if row.0 > 0 {
            self.consider(bank, RowId(row.0 - 1));
        }
        self.consider(bank, RowId(row.0 + 1));
    }

    fn next_action(&mut self, _now_ns: f64) -> Option<RefreshAction> {
        // `pending` keeps the row claimed until the injected refresh's own
        // `on_act` echo clears it, so a re-cross before execution cannot
        // double-queue; an entry whose victim a demand activation already
        // reset is stale and skipped.
        while let Some((bank, row)) = self.due.pop_front() {
            if !self.pending.contains(&(bank, row)) {
                continue;
            }
            self.injected += 1;
            return Some(RefreshAction::Single { bank, row });
        }
        None
    }

    fn next_wake(&self, now_ns: f64) -> f64 {
        if self.due.is_empty() {
            f64::INFINITY
        } else {
            now_ns
        }
    }

    fn requires_vrr(&self) -> bool {
        true
    }

    fn stats(&self) -> PluginStats {
        self.tracker.fold_into(
            PluginStats {
                acts_observed: self.acts,
                injected: self.injected,
                ..PluginStats::default()
            },
            self.t_rh,
        )
    }
}

/// The `oracle:<tRH>` handle.
pub fn oracle(t_rh: u64) -> PluginHandle {
    PluginHandle::new(format!("oracle:{t_rh}"), move |env: &PluginEnv| {
        Box::new(OracleRh::new(t_rh, env.rows_per_bank))
    })
    .with_summary(format!(
        "exact per-row exposure counters, victim refresh at tRH = {t_rh} (lower bound)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(p: &mut OracleRh) -> Vec<RefreshAction> {
        std::iter::from_fn(|| p.next_action(0.0)).collect()
    }

    #[test]
    fn oracle_fires_exactly_at_the_threshold() {
        let mut p = OracleRh::new(3, 64);
        let b = BankId(1);
        for i in 0..2 {
            p.on_act(f64::from(i), b, RowId(10));
            assert!(drain(&mut p).is_empty(), "below threshold after {i}");
        }
        p.on_act(2.0, b, RowId(10));
        let fired = drain(&mut p);
        assert_eq!(
            fired,
            vec![
                RefreshAction::Single {
                    bank: b,
                    row: RowId(9)
                },
                RefreshAction::Single {
                    bank: b,
                    row: RowId(11)
                },
            ]
        );
        assert_eq!(p.stats().injected, 2);
        // The refreshes execute: their ACT echoes reset the exposure.
        p.on_act(3.0, b, RowId(9));
        p.on_act(3.0, b, RowId(11));
        assert_eq!(p.exposure(b, RowId(9)), 0);
        // ... so the next two hammers stay below threshold again (the
        // echoes themselves re-exposed row 10's neighbors by one: 8/10/12).
        p.on_act(4.0, b, RowId(10));
        assert!(drain(&mut p).is_empty());
    }

    #[test]
    fn oracle_never_double_queues_a_victim() {
        let mut p = OracleRh::new(2, 64);
        let b = BankId(0);
        for i in 0..5 {
            p.on_act(f64::from(i), b, RowId(7));
        }
        // Exposure crossed 2 at the second hammer and kept growing, but
        // each victim is queued once until its refresh lands.
        assert_eq!(drain(&mut p).len(), 2);
        assert_eq!(drain(&mut p).len(), 0);
    }

    #[test]
    fn oracle_clamps_injection_at_the_bank_edge() {
        let mut p = OracleRh::new(1, 8);
        let b = BankId(0);
        p.on_act(0.0, b, RowId(7)); // top row: neighbor 8 does not exist
        let fired = drain(&mut p);
        assert_eq!(
            fired,
            vec![RefreshAction::Single {
                bank: b,
                row: RowId(6)
            }]
        );
        // The phantom neighbor is still *counted* (probe symmetry)...
        assert_eq!(p.stats().neighbor_increments, 2);
    }

    #[test]
    fn oracle_wakes_only_while_victims_are_due() {
        let mut p = OracleRh::new(1, 64);
        assert_eq!(p.next_wake(5.0), f64::INFINITY);
        p.on_act(5.0, BankId(0), RowId(3));
        assert_eq!(p.next_wake(5.0), 5.0);
        drain(&mut p);
        assert_eq!(p.next_wake(6.0), f64::INFINITY);
    }
}
