//! Graphene-style RowHammer defense: Misra-Gries frequent-item counting
//! (Park et al., MICRO 2020) with a configurable per-bank counter budget.
//! A bounded table of `k` counters per bank tracks candidate aggressors;
//! any aggressor activated more than `total_acts / (k + 1)` times is
//! guaranteed a counter, so with `k` sized to the refresh window the
//! defense is deterministic-safe like the oracle — at a fraction of the
//! state.

use super::{ControllerPlugin, ExposureTracker, PluginEnv, PluginHandle, PluginStats};
use crate::policy::RefreshAction;
use hira_dram::addr::{BankId, RowId};
use std::collections::{BTreeMap, VecDeque};

/// The Graphene defense: per-bank Misra-Gries aggressor tables with `k`
/// counters; when a tracked aggressor's estimated count reaches `tRH`,
/// both its neighbors are refreshed and the counter resets.
#[derive(Debug)]
pub struct GraphenePlugin {
    name: String,
    t_rh: u64,
    budget: usize,
    rows_per_bank: u32,
    /// Per-bank Misra-Gries tables. `BTreeMap`, not `HashMap`: the
    /// decrement sweep iterates the table, and iteration order must be
    /// deterministic for dense/event and thread-count bit-identity.
    counters: Vec<BTreeMap<u32, u64>>,
    tracker: ExposureTracker,
    queue: VecDeque<(BankId, RowId)>,
    injected: u64,
    acts: u64,
    spills: u64,
}

impl GraphenePlugin {
    /// A Graphene instance with threshold `t_rh` and `budget` counters
    /// per bank.
    pub fn new(t_rh: u64, budget: usize, env: &PluginEnv) -> Self {
        assert!(t_rh > 0, "graphene tRH must be positive");
        assert!(budget > 0, "graphene counter budget must be positive");
        GraphenePlugin {
            name: format!("graphene:{t_rh}:{budget}"),
            t_rh,
            budget,
            rows_per_bank: env.rows_per_bank,
            counters: (0..env.banks).map(|_| BTreeMap::new()).collect(),
            tracker: ExposureTracker::new(),
            queue: VecDeque::new(),
            injected: 0,
            acts: 0,
            spills: 0,
        }
    }

    fn queue_neighbors(&mut self, bank: BankId, row: RowId) {
        if row.0 > 0 {
            self.queue.push_back((bank, RowId(row.0 - 1)));
        }
        if row.0 + 1 < self.rows_per_bank {
            self.queue.push_back((bank, RowId(row.0 + 1)));
        }
    }
}

impl ControllerPlugin for GraphenePlugin {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_act(&mut self, _now_ns: f64, bank: BankId, row: RowId) {
        self.acts += 1;
        self.tracker.on_act(bank, row);
        let table = &mut self.counters[bank.index()];
        let fired = if let Some(count) = table.get_mut(&row.0) {
            *count += 1;
            *count >= self.t_rh
        } else if table.len() < self.budget {
            table.insert(row.0, 1);
            self.t_rh <= 1
        } else {
            // Misra-Gries spill: decrement every counter, evict zeros.
            self.spills += 1;
            table.retain(|_, count| {
                *count -= 1;
                *count > 0
            });
            false
        };
        if fired {
            // Neighbors refreshed: the aggressor's slate is clean.
            self.counters[bank.index()].remove(&row.0);
            self.queue_neighbors(bank, row);
        }
    }

    fn next_action(&mut self, _now_ns: f64) -> Option<RefreshAction> {
        let (bank, row) = self.queue.pop_front()?;
        self.injected += 1;
        Some(RefreshAction::Single { bank, row })
    }

    fn next_wake(&self, now_ns: f64) -> f64 {
        if self.queue.is_empty() {
            f64::INFINITY
        } else {
            now_ns
        }
    }

    fn requires_vrr(&self) -> bool {
        true
    }

    fn stats(&self) -> PluginStats {
        self.tracker.fold_into(
            PluginStats {
                acts_observed: self.acts,
                injected: self.injected,
                ..PluginStats::default()
            },
            self.t_rh,
        )
    }
}

/// The `graphene:<tRH>:<k>` handle.
pub fn graphene(t_rh: u64, budget: usize) -> PluginHandle {
    PluginHandle::new(
        format!("graphene:{t_rh}:{budget}"),
        move |env: &PluginEnv| Box::new(GraphenePlugin::new(t_rh, budget, env)),
    )
    .with_summary(format!(
        "Misra-Gries aggressor tracking, {budget} counters/bank, neighbor refresh at tRH = {t_rh}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> PluginEnv {
        PluginEnv {
            channel: 0,
            rank: 0,
            banks: 4,
            rows_per_bank: 64,
            seed: 0,
            ordinal: 0,
        }
    }

    fn drain(p: &mut GraphenePlugin) -> Vec<RefreshAction> {
        std::iter::from_fn(|| p.next_action(0.0)).collect()
    }

    #[test]
    fn tracked_aggressor_triggers_neighbor_refreshes_at_trh() {
        let mut p = GraphenePlugin::new(4, 8, &env());
        let b = BankId(0);
        for i in 0..4 {
            p.on_act(f64::from(i), b, RowId(20));
        }
        assert_eq!(
            drain(&mut p),
            vec![
                RefreshAction::Single {
                    bank: b,
                    row: RowId(19)
                },
                RefreshAction::Single {
                    bank: b,
                    row: RowId(21)
                },
            ]
        );
        // Counter reset: four more hammers are needed for the next pair.
        for i in 4..7 {
            p.on_act(f64::from(i), b, RowId(20));
        }
        assert!(drain(&mut p).is_empty());
        p.on_act(7.0, b, RowId(20));
        assert_eq!(drain(&mut p).len(), 2);
    }

    #[test]
    fn spills_decrement_every_counter_and_evict_zeros() {
        let mut p = GraphenePlugin::new(100, 2, &env());
        let b = BankId(1);
        p.on_act(0.0, b, RowId(1)); // {1: 1}
        p.on_act(1.0, b, RowId(2)); // {1: 1, 2: 1}
        p.on_act(2.0, b, RowId(2)); // {1: 1, 2: 2}
        p.on_act(3.0, b, RowId(3)); // table full: spill -> {2: 1}
        assert_eq!(p.spills, 1);
        assert_eq!(p.counters[b.index()], BTreeMap::from([(2, 1)]));
    }

    #[test]
    fn heavy_hitter_survives_interleaved_noise() {
        // 64 distinct noise rows interleaved with a hammer on row 5: the
        // Misra-Gries guarantee keeps the hammer tracked and the defense
        // still fires.
        let mut p = GraphenePlugin::new(32, 8, &env());
        let b = BankId(0);
        let mut t = 0.0;
        for round in 0..64u32 {
            p.on_act(t, b, RowId(5));
            t += 1.0;
            p.on_act(t, b, RowId(100 + round));
            t += 1.0;
        }
        assert!(
            p.injected + p.queue.len() as u64 >= 2,
            "hammer on row 5 was never caught"
        );
    }

    #[test]
    fn graphene_clamps_neighbors_at_both_bank_edges() {
        let mut p = GraphenePlugin::new(1, 4, &env());
        p.on_act(0.0, BankId(0), RowId(0));
        assert_eq!(
            drain(&mut p),
            vec![RefreshAction::Single {
                bank: BankId(0),
                row: RowId(1)
            }]
        );
        p.on_act(1.0, BankId(0), RowId(63));
        assert_eq!(
            drain(&mut p),
            vec![RefreshAction::Single {
                bank: BankId(0),
                row: RowId(62)
            }]
        );
    }
}
