//! The open controller-plugin API: the fifth configuration axis,
//! alongside refresh policies ([`crate::policy`]), workloads
//! ([`hira_workload`]), devices ([`crate::device`]) and probes
//! ([`crate::probe`]).
//!
//! A **controller plugin** is a RowHammer-defense-shaped extension of the
//! channel controller, in the style of ramulator2's `IControllerPlugin`:
//! it observes every executed activation on its rank at exact
//! command-clock timing (demand rows, refresh singles, both rows of a
//! HiRA pair, preventive victims — the controller never filters the
//! stream), maintains per-bank state, and injects preventive-refresh
//! [`RefreshAction`]s back into the controller. Unlike a probe, a plugin
//! *perturbs* the simulation — its injected refreshes cost real command
//! slots and `tRRD`/`tFAW` budget — so plugin selection is part of the
//! result-affecting configuration ([`crate::config::SystemConfig::plugins`],
//! rendered into the cache descriptor) rather than the observer set.
//!
//! ## Shipped defenses
//!
//! | `--plugin=` form | defense | mechanism |
//! |---|---|---|
//! | `oracle:<tRH>` | [`OracleRh`] | exact per-row victim-exposure counters; refresh a victim the instant its exposure reaches `tRH` |
//! | `para:<p>` | [`ParaPlugin`] | probabilistic adjacent-row refresh (§9), reimplemented on the plugin axis |
//! | `graphene:<tRH>:<k>` | [`GraphenePlugin`] | Misra-Gries frequent-item tracking with a `k`-counter budget per bank |
//!
//! `oracle` and `graphene` issue *directed* victim-row refreshes — a
//! VRR-style vendor command — and therefore refuse to build on a device
//! whose command decoder lacks it
//! ([`crate::builder::BuildError::DeviceLacksVrr`]); `para` performs
//! plain neighbor activations and runs everywhere.
//!
//! ## Victim-exposure accounting
//!
//! All three defenses share an [`ExposureTracker`]: per (bank, row)
//! *victim exposure* — activations of a physically adjacent row since the
//! row itself was last activated or refreshed. Its summary rolls up into
//! [`PluginStats`] and surfaces as [`crate::metrics::SimResult`] metrics
//! (max/mean exposure, rows over threshold), so attacker pressure has a
//! measurable outcome beyond IPC.
//!
//! ## Adding a plugin
//!
//! Implement the trait, wrap a factory in a handle, attach it:
//!
//! ```rust
//! use hira_sim::builder::SystemBuilder;
//! use hira_sim::plugin::{ControllerPlugin, PluginHandle, PluginStats};
//! use hira_sim::policy::RefreshAction;
//! use hira_dram::addr::{BankId, RowId};
//!
//! /// Refreshes row 0 of bank 0 after every 1000th observed activation.
//! /// Useless — but a complete plugin.
//! #[derive(Debug)]
//! struct Nervous {
//!     acts: u64,
//!     due: bool,
//! }
//!
//! impl ControllerPlugin for Nervous {
//!     fn name(&self) -> &str {
//!         "nervous"
//!     }
//!     fn on_act(&mut self, _now_ns: f64, _bank: BankId, _row: RowId) {
//!         self.acts += 1;
//!         if self.acts % 1000 == 0 {
//!             self.due = true;
//!         }
//!     }
//!     fn next_action(&mut self, _now_ns: f64) -> Option<RefreshAction> {
//!         std::mem::take(&mut self.due).then_some(RefreshAction::Single {
//!             bank: BankId(0),
//!             row: RowId(0),
//!         })
//!     }
//!     fn next_wake(&self, now_ns: f64) -> f64 {
//!         if self.due {
//!             now_ns
//!         } else {
//!             f64::INFINITY
//!         }
//!     }
//!     fn stats(&self) -> PluginStats {
//!         PluginStats {
//!             acts_observed: self.acts,
//!             ..PluginStats::default()
//!         }
//!     }
//! }
//!
//! let cfg = SystemBuilder::new()
//!     .insts(2_000, 400)
//!     .plugin(PluginHandle::new("nervous", |_env| {
//!         Box::new(Nervous { acts: 0, due: false })
//!     }))
//!     .build()
//!     .unwrap();
//! let result = hira_sim::System::new(cfg).run();
//! assert_eq!(result.plugin_stats.len(), 1);
//! assert!(result.plugin_stats[0].acts_observed > 0);
//! ```

mod graphene;
mod oracle;
mod para;
mod registry;

pub use graphene::{graphene, GraphenePlugin};
pub use oracle::{oracle, OracleRh};
pub use para::{para, ParaPlugin};
pub use registry::PluginRegistry;

use crate::config::SystemConfig;
use crate::policy::RefreshAction;
use hira_dram::addr::{BankId, RowId};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Construction context handed to a plugin factory: everything a per-rank
/// defense needs to size its tables and seed its randomness.
#[derive(Debug, Clone, Copy)]
pub struct PluginEnv {
    /// Channel index of the controller instantiating the plugin.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Banks in the rank.
    pub banks: u16,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Deterministic seed, already mixed with channel, rank and the
    /// plugin's position in [`SystemConfig::plugins`], so no two plugin
    /// instances anywhere in the system share a random stream — and none
    /// shares one with a policy layer (PARA-as-plugin and PARA-as-policy
    /// draw differently).
    pub seed: u64,
    /// The plugin's position in [`SystemConfig::plugins`].
    pub ordinal: usize,
}

impl PluginEnv {
    /// The environment of plugin `ordinal` on rank `rank` of channel
    /// `channel` of `cfg`.
    pub fn for_rank(cfg: &SystemConfig, channel: usize, rank: usize, ordinal: usize) -> Self {
        PluginEnv {
            channel,
            rank,
            banks: cfg.banks,
            rows_per_bank: cfg.rows_per_bank(),
            seed: cfg.seed
                ^ 0x504C_5547
                ^ ((channel as u64) << 32)
                ^ ((rank as u64) << 16)
                ^ (ordinal as u64),
            ordinal,
        }
    }
}

/// Per-plugin service and victim-exposure counters, surfaced per rank in
/// [`crate::metrics::SimResult::plugin_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PluginStats {
    /// Executed activations the plugin observed (demand, refresh and its
    /// own injected victims alike).
    pub acts_observed: u64,
    /// Preventive victim-row refreshes the plugin injected.
    pub injected: u64,
    /// Cumulative neighbor-exposure increments: one per (activation,
    /// adjacent row) pair, never reset — the quantity the `act-exposure`
    /// probe's neighbor counters cross-check.
    pub neighbor_increments: u64,
    /// Highest instantaneous victim exposure any row ever reached.
    pub max_exposure: u64,
    /// Sum over tracked victim rows of each row's peak exposure (divide
    /// by [`exposure_rows`](Self::exposure_rows) for the mean).
    pub exposure_sum: u64,
    /// Distinct victim rows that accumulated any exposure.
    pub exposure_rows: u64,
    /// Victim rows whose peak exposure reached the defense threshold.
    pub rows_over_threshold: u64,
}

impl PluginStats {
    /// Component-wise aggregation: counters add, the peak takes the max.
    /// (Summing `exposure_rows` across ranks counts each rank's rows
    /// separately, which is exact — ranks never share DRAM rows.)
    pub fn merge(self, other: PluginStats) -> PluginStats {
        PluginStats {
            acts_observed: self.acts_observed + other.acts_observed,
            injected: self.injected + other.injected,
            neighbor_increments: self.neighbor_increments + other.neighbor_increments,
            max_exposure: self.max_exposure.max(other.max_exposure),
            exposure_sum: self.exposure_sum + other.exposure_sum,
            exposure_rows: self.exposure_rows + other.exposure_rows,
            rows_over_threshold: self.rows_over_threshold + other.rows_over_threshold,
        }
    }

    /// Mean per-row peak exposure (0.0 when nothing was tracked).
    pub fn mean_exposure(&self) -> f64 {
        if self.exposure_rows == 0 {
            0.0
        } else {
            self.exposure_sum as f64 / self.exposure_rows as f64
        }
    }
}

/// Per (bank, row) victim-exposure state: `current` counts adjacent-row
/// activations since the row was last activated/refreshed, `peak` the
/// highest `current` ever reached.
#[derive(Debug, Clone, Copy, Default)]
struct Exposure {
    current: u64,
    peak: u64,
}

/// Shared victim-exposure bookkeeping: per (bank, row) counts of
/// adjacent-row activations since the row itself was last activated.
///
/// Counting is deliberately *unclamped* at the top of the bank — an
/// activation of row `r` increments `r+1` even when `r` is the last row —
/// so the guards match the `act-exposure` probe's neighbor counters
/// exactly (the probe has no geometry). Injection decisions, not
/// counting, clamp to the physical row range.
#[derive(Debug, Default)]
pub struct ExposureTracker {
    rows: HashMap<(BankId, RowId), Exposure>,
    neighbor_increments: u64,
}

impl ExposureTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        ExposureTracker::default()
    }

    /// Records an executed activation of `row`: the row's own exposure
    /// resets (an activation refreshes it), both physical neighbors gain
    /// one exposure.
    pub fn on_act(&mut self, bank: BankId, row: RowId) {
        let e = self.rows.entry((bank, row)).or_default();
        e.peak = e.peak.max(e.current);
        e.current = 0;
        if row.0 > 0 {
            self.bump(bank, RowId(row.0 - 1));
        }
        self.bump(bank, RowId(row.0 + 1));
    }

    fn bump(&mut self, bank: BankId, row: RowId) {
        let e = self.rows.entry((bank, row)).or_default();
        e.current += 1;
        e.peak = e.peak.max(e.current);
        self.neighbor_increments += 1;
    }

    /// The row's current exposure (adjacent activations since it was last
    /// activated).
    pub fn exposure(&self, bank: BankId, row: RowId) -> u64 {
        self.rows.get(&(bank, row)).map_or(0, |e| e.current)
    }

    /// Total neighbor-exposure increments ever recorded (never reset).
    pub fn neighbor_increments(&self) -> u64 {
        self.neighbor_increments
    }

    /// Folds the tracker into `stats` (exposure fields only; fold order
    /// over the map is irrelevant because max/sum/count commute).
    pub fn fold_into(&self, mut stats: PluginStats, threshold: u64) -> PluginStats {
        stats.neighbor_increments = self.neighbor_increments;
        for e in self.rows.values() {
            let peak = e.peak.max(e.current);
            if peak == 0 {
                continue;
            }
            stats.max_exposure = stats.max_exposure.max(peak);
            stats.exposure_sum += peak;
            stats.exposure_rows += 1;
            if peak >= threshold {
                stats.rows_over_threshold += 1;
            }
        }
        stats
    }
}

/// A RowHammer-defense-shaped controller extension: observes every
/// executed activation on its rank, injects preventive refreshes.
///
/// ## Timing contract
///
/// All `now_ns` arguments are nanoseconds on the memory-controller
/// command clock, monotonically non-decreasing. Per controller tick the
/// controller polls [`next_action`](Self::next_action) until it returns
/// `None` (bounded by the same per-tick safety budget as the refresh
/// policy); every returned action **is executed immediately**, so the
/// plugin must commit its bookkeeping when it returns the action.
/// [`on_act`](Self::on_act) fires *after* every executed activation on
/// the rank — demand rows, policy refresh singles, both rows of a HiRA
/// pair, and the plugin's own injected victims alike (preventive
/// refreshes disturb their own neighbors, §9) — never filtered.
///
/// Under the event kernel, ticks outside [`next_wake`](Self::next_wake)
/// are skipped exactly as for [`crate::policy::RefreshPolicy::next_wake`]:
/// by returning `w > now_ns` the plugin guarantees `next_action` would
/// return `None` on every dense tick before `w`. `on_act` is still
/// delivered whenever work executes and the wake is re-queried after, so
/// a queue-driven plugin returns `now_ns` while it holds victims and
/// `f64::INFINITY` when idle. Waking early is always safe; waking late
/// breaks dense/event bit-identity.
pub trait ControllerPlugin: fmt::Debug + Send {
    /// Display name (diagnostics and stats attribution).
    fn name(&self) -> &str;

    /// Reports an executed activation (demand, refresh or preventive).
    fn on_act(&mut self, now_ns: f64, bank: BankId, row: RowId);

    /// The next preventive refresh the controller should execute now, or
    /// `None` when the plugin has nothing (more) to inject this tick.
    fn next_action(&mut self, now_ns: f64) -> Option<RefreshAction>;

    /// The next instant (ns) this plugin may need polling — the event
    /// kernel's skip contract (see the trait docs). The default `now_ns`
    /// means "poll me every tick", which is always correct.
    fn next_wake(&self, now_ns: f64) -> f64 {
        now_ns
    }

    /// Whether the plugin's injected refreshes are *directed* victim-row
    /// refresh commands (VRR-style) rather than plain activations — a
    /// typed [`crate::builder::BuildError::DeviceLacksVrr`] on devices
    /// whose command decoder lacks the command.
    fn requires_vrr(&self) -> bool {
        false
    }

    /// Service and victim-exposure counters.
    fn stats(&self) -> PluginStats;
}

/// Factory signature behind a [`PluginHandle`].
pub type PluginFactory = dyn Fn(&PluginEnv) -> Box<dyn ControllerPlugin> + Send + Sync;

/// A cloneable, comparable *selection* of a controller plugin: the
/// registry key plus the factory that builds per-rank instances. This is
/// what [`SystemConfig::plugins`] stores — equality and hashing go by
/// name, mirroring [`crate::policy::PolicyHandle`].
#[derive(Clone)]
pub struct PluginHandle {
    name: Arc<str>,
    summary: Arc<str>,
    factory: Arc<PluginFactory>,
}

impl PluginHandle {
    /// Wraps a factory under a registry name. Parameterized plugins must
    /// encode their parameters in the name (e.g. `oracle:1024`): the name
    /// is the identity — and the cache key.
    pub fn new(
        name: impl Into<String>,
        factory: impl Fn(&PluginEnv) -> Box<dyn ControllerPlugin> + Send + Sync + 'static,
    ) -> Self {
        PluginHandle {
            name: Arc::from(name.into()),
            summary: Arc::from(""),
            factory: Arc::new(factory),
        }
    }

    /// Attaches a one-line description (registry `--list` output). Not
    /// part of the identity: equality stays by name.
    pub fn with_summary(mut self, summary: impl Into<String>) -> Self {
        self.summary = Arc::from(summary.into());
        self
    }

    /// The plugin's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line description (empty when the registrant set none).
    pub fn summary(&self) -> &str {
        &self.summary
    }

    /// Builds one per-rank instance.
    pub fn build(&self, env: &PluginEnv) -> Box<dyn ControllerPlugin> {
        (self.factory)(env)
    }
}

impl fmt::Debug for PluginHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("PluginHandle").field(&self.name).finish()
    }
}

impl PartialEq for PluginHandle {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for PluginHandle {}

impl std::hash::Hash for PluginHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
    }
}

/// Builds a throwaway instance of each of `cfg`'s plugins (channel 0,
/// rank 0) for analytic queries — the builder's device-capability
/// validation uses this so it works for any registered plugin, not just
/// the built-ins.
pub fn probe(cfg: &SystemConfig) -> Vec<Box<dyn ControllerPlugin>> {
    cfg.plugins
        .iter()
        .enumerate()
        .map(|(i, h)| h.build(&PluginEnv::for_rank(cfg, 0, 0, i)))
        .collect()
}

/// CLI shortcut: resolves a plugin spec through the standard registry,
/// panicking with the accepted grammar on failure (the typed-error path
/// is [`crate::builder::SystemBuilder::plugin_name`]).
///
/// # Panics
///
/// Panics when the spec does not resolve.
pub fn plugin(spec: &str) -> PluginHandle {
    PluginRegistry::standard().lookup(spec).unwrap_or_else(|| {
        let forms = PluginRegistry::standard()
            .forms()
            .iter()
            .map(|(f, _)| *f)
            .collect::<Vec<_>>()
            .join(", ");
        panic!("unknown plugin spec `{spec}` (accepted forms: {forms})")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_compare_by_name() {
        assert_eq!(oracle(1024), oracle(1024));
        assert_ne!(oracle(1024), oracle(2048));
        assert_ne!(para(0.01), para(0.02));
        assert_ne!(graphene(1024, 64), graphene(1024, 128));
        assert_eq!(oracle(1024).name(), "oracle:1024");
        assert_eq!(para(0.01).name(), "para:0.01");
        assert_eq!(graphene(1024, 64).name(), "graphene:1024:64");
    }

    #[test]
    fn exposure_tracker_counts_neighbors_and_resets_on_activation() {
        let mut t = ExposureTracker::new();
        let b = BankId(0);
        // Hammer row 10 three times: rows 9 and 11 each reach 3.
        for _ in 0..3 {
            t.on_act(b, RowId(10));
        }
        assert_eq!(t.exposure(b, RowId(9)), 3);
        assert_eq!(t.exposure(b, RowId(11)), 3);
        assert_eq!(t.exposure(b, RowId(10)), 0);
        assert_eq!(t.neighbor_increments(), 6);
        // Activating a victim resets its exposure (and exposes ITS
        // neighbors — self-disturbance).
        t.on_act(b, RowId(9));
        assert_eq!(t.exposure(b, RowId(9)), 0);
        assert_eq!(t.exposure(b, RowId(10)), 1);
        assert_eq!(t.exposure(b, RowId(8)), 1);
        // Peaks survive the reset.
        let s = t.fold_into(PluginStats::default(), 3);
        assert_eq!(s.max_exposure, 3);
        assert_eq!(s.rows_over_threshold, 2); // rows 9 and 11 peaked at 3
        assert_eq!(s.neighbor_increments, 8);
    }

    #[test]
    fn tracker_row_zero_has_one_neighbor() {
        let mut t = ExposureTracker::new();
        t.on_act(BankId(0), RowId(0));
        assert_eq!(t.neighbor_increments(), 1);
        assert_eq!(t.exposure(BankId(0), RowId(1)), 1);
    }

    #[test]
    fn stats_merge_sums_counters_and_maxes_the_peak() {
        let a = PluginStats {
            acts_observed: 10,
            injected: 2,
            neighbor_increments: 19,
            max_exposure: 7,
            exposure_sum: 20,
            exposure_rows: 4,
            rows_over_threshold: 1,
        };
        let b = PluginStats {
            acts_observed: 5,
            injected: 1,
            neighbor_increments: 9,
            max_exposure: 11,
            exposure_sum: 15,
            exposure_rows: 2,
            rows_over_threshold: 0,
        };
        let m = a.merge(b);
        assert_eq!(m.acts_observed, 15);
        assert_eq!(m.max_exposure, 11);
        assert_eq!(m.exposure_rows, 6);
        assert!((m.mean_exposure() - 35.0 / 6.0).abs() < 1e-12);
    }
}
