//! The string-keyed plugin registry behind `--plugin=` axes: the three
//! shipped defenses as dynamic parameterized forms, plus user-registered
//! handles (checked first, in registration order).

use super::{graphene, oracle, para, PluginHandle};

/// The ordered plugin registry. Like [`crate::probe::ProbeRegistry`], the
/// built-in roster is a grammar of dynamic forms rather than a fixed name
/// list; custom handles registered with [`register`](Self::register)
/// shadow the grammar and resolve first.
#[derive(Default)]
pub struct PluginRegistry {
    custom: Vec<PluginHandle>,
}

impl PluginRegistry {
    /// The standard registry: the three shipped defense forms.
    pub fn standard() -> Self {
        PluginRegistry::default()
    }

    /// Registers a custom handle. Later registrations shadow earlier ones
    /// of the same name; all shadow the built-in forms.
    pub fn register(&mut self, handle: PluginHandle) {
        self.custom.push(handle);
    }

    /// The accepted `--plugin=` forms with one-line descriptions.
    pub fn forms(&self) -> Vec<(&'static str, &'static str)> {
        vec![
            (
                "oracle:<tRH>",
                "exact per-row exposure counters, victim refresh at tRH (lower bound; needs VRR)",
            ),
            (
                "para:<p>",
                "probabilistic adjacent-row refresh, trigger probability p per activation",
            ),
            (
                "graphene:<tRH>:<k>",
                "Misra-Gries aggressor tracking, k counters/bank, neighbor refresh at tRH (needs VRR)",
            ),
        ]
    }

    /// Resolves a `--plugin=` spec: custom handles by exact name first,
    /// then the dynamic built-in forms. Returns the handle under its
    /// *canonical* name (`oracle:1024`, `para:0.01`, `graphene:1024:64` —
    /// parameter rendering is normalized so `oracle:01024` and
    /// `oracle:1024` key one cache entry).
    pub fn lookup(&self, spec: &str) -> Option<PluginHandle> {
        if let Some(h) = self.custom.iter().rev().find(|h| h.name() == spec) {
            return Some(h.clone());
        }
        let (kind, rest) = spec.split_once(':')?;
        match kind {
            "oracle" => {
                let t_rh: u64 = rest.parse().ok().filter(|&t| t > 0)?;
                Some(oracle(t_rh))
            }
            "para" => {
                let p: f64 = rest.parse().ok().filter(|p| (0.0..=1.0).contains(p))?;
                Some(para(p))
            }
            "graphene" => {
                let (t_rh, k) = rest.split_once(':')?;
                let t_rh: u64 = t_rh.parse().ok().filter(|&t| t > 0)?;
                let k: usize = k.parse().ok().filter(|&k| k > 0)?;
                Some(graphene(t_rh, k))
            }
            _ => None,
        }
    }

    /// One representative instance of every shipped defense — the roster
    /// the registry-wide determinism and kernel-equivalence tests sweep.
    /// Parameters are picked low enough that short test runs actually
    /// exercise the injection paths.
    pub fn samples(&self) -> Vec<PluginHandle> {
        vec![oracle(64), para(0.05), graphene(64, 16)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::PluginEnv;

    fn env() -> PluginEnv {
        PluginEnv {
            channel: 0,
            rank: 0,
            banks: 16,
            rows_per_bank: 1024,
            seed: 1,
            ordinal: 0,
        }
    }

    #[test]
    fn lookup_parses_the_dynamic_forms() {
        let r = PluginRegistry::standard();
        assert_eq!(r.lookup("oracle:1024").unwrap().name(), "oracle:1024");
        assert_eq!(r.lookup("para:0.01").unwrap().name(), "para:0.01");
        assert_eq!(
            r.lookup("graphene:1024:64").unwrap().name(),
            "graphene:1024:64"
        );
        // Canonicalization: leading zeros normalize away.
        assert_eq!(r.lookup("oracle:01024").unwrap().name(), "oracle:1024");
        assert_eq!(r.lookup("para:.5").unwrap().name(), "para:0.5");
    }

    #[test]
    fn lookup_rejects_malformed_and_out_of_range_specs() {
        let r = PluginRegistry::standard();
        for bad in [
            "oracle",
            "oracle:",
            "oracle:0",
            "oracle:-3",
            "para:1.5",
            "para:-0.1",
            "para:x",
            "graphene:1024",
            "graphene:0:64",
            "graphene:1024:0",
            "blink:7",
        ] {
            assert!(r.lookup(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn custom_handles_shadow_the_builtin_grammar() {
        let mut r = PluginRegistry::standard();
        r.register(
            PluginHandle::new("oracle:1024", |env: &PluginEnv| {
                Box::new(crate::plugin::OracleRh::new(9, env.rows_per_bank))
            })
            .with_summary("impostor"),
        );
        let h = r.lookup("oracle:1024").unwrap();
        assert_eq!(h.summary(), "impostor");
    }

    #[test]
    fn samples_build_and_carry_canonical_names() {
        let r = PluginRegistry::standard();
        for h in r.samples() {
            assert_eq!(r.lookup(h.name()).unwrap(), h, "{} round-trips", h.name());
            let p = h.build(&env());
            assert_eq!(p.name(), h.name());
        }
    }
}
