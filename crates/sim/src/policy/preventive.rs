//! PARA preventive-refresh layers (§9), composable over any periodic
//! policy through [`super::PolicyHandle::with_para_immediate`] and
//! [`super::PolicyHandle::with_para_hira`].

use super::hira::{build_mc, poll_mc};
use super::{
    DemandDecision, PolicyEnv, PolicyProfile, PolicyStats, RankView, RefreshAction, RefreshPolicy,
};
use hira_core::config::HiraConfig;
use hira_core::finder::{HiraMc, McAction, McStats};
use hira_core::para::Para;
use hira_dram::addr::{BankId, RowId};
use std::collections::VecDeque;

/// Immediately-served PARA (the plain "PARA" baseline of Fig. 12): every
/// executed activation triggers with probability `p_th`; victims are
/// refreshed as standalone singles on the next controller tick, ahead of
/// the inner policy's own work and regardless of bank pressure — exactly
/// the interference the queued variants exist to avoid.
pub struct ImmediatePara {
    name: String,
    inner: Box<dyn RefreshPolicy>,
    para: Para,
    queue: VecDeque<(BankId, RowId)>,
    rows_per_bank: u32,
    queued: u64,
    served: u64,
}

/// The composed-handle name of an immediate-PARA layer over `inner` —
/// single-sourced so [`super::PolicyHandle::with_para_immediate`] (handle
/// identity) and [`ImmediatePara::new`] (instance attribution) can never
/// disagree.
pub(super) fn immediate_name(inner: &str, pth: f64) -> String {
    format!("{inner}+para(p={pth:.4})")
}

/// The composed-handle name of a HiRA-queued PARA layer over `inner` (see
/// [`immediate_name`]). Also used for the absorb path, where the inner
/// policy hosts the layer itself.
pub(super) fn queued_name(inner: &str, pth: f64, slack_acts: u32) -> String {
    format!("{inner}+para@hira{slack_acts}(p={pth:.4})")
}

impl ImmediatePara {
    /// Wraps `inner` with an immediate PARA layer.
    pub fn new(inner: Box<dyn RefreshPolicy>, pth: f64, env: &PolicyEnv) -> Self {
        ImmediatePara {
            name: immediate_name(inner.name(), pth),
            inner,
            para: Para::new(pth, env.seed ^ 0xBEEF),
            queue: VecDeque::new(),
            rows_per_bank: env.rows_per_bank,
            queued: 0,
            served: 0,
        }
    }
}

impl std::fmt::Debug for ImmediatePara {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ImmediatePara")
            .field("name", &self.name)
            .field("queued", &self.queued)
            .field("inner", &self.inner)
            .finish()
    }
}

impl RefreshPolicy for ImmediatePara {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, now_ns: f64) {
        self.inner.tick(now_ns);
    }

    fn next_action(&mut self, now_ns: f64, view: &RankView<'_>) -> Option<RefreshAction> {
        // Victims first: "immediate" means ahead of everything queued.
        if let Some((bank, row)) = self.queue.pop_front() {
            self.served += 1;
            return Some(RefreshAction::Single { bank, row });
        }
        self.inner.next_action(now_ns, view)
    }

    fn on_demand_act(&mut self, now_ns: f64, bank: BankId, row: RowId) -> DemandDecision {
        self.inner.on_demand_act(now_ns, bank, row)
    }

    fn on_act_executed(&mut self, now_ns: f64, bank: BankId, row: RowId) {
        self.inner.on_act_executed(now_ns, bank, row);
        if let Some(side) = self.para.on_activate() {
            let victim = Para::victim(row, side, self.rows_per_bank);
            self.queue.push_back((bank, victim));
            self.queued += 1;
        }
    }

    fn next_wake(&self, now_ns: f64) -> f64 {
        // Pending victims are served on the very next poll; otherwise the
        // layer is transparent and the inner policy's schedule governs.
        if self.queue.is_empty() {
            self.inner.next_wake(now_ns)
        } else {
            now_ns
        }
    }

    fn hira_lead(&self) -> Option<(f64, f64)> {
        self.inner.hira_lead()
    }

    fn performs_refresh(&self) -> bool {
        self.inner.performs_refresh()
    }

    fn profile(&self) -> PolicyProfile {
        // Preventive load is workload-dependent; the analytic profile is
        // the periodic layer's.
        self.inner.profile()
    }

    fn mc_stats(&self) -> Vec<McStats> {
        self.inner.mc_stats()
    }

    fn stats(&self) -> PolicyStats {
        self.inner.stats().merge(PolicyStats {
            rows_refreshed: self.served,
            preventive_queued: self.queued,
            ..PolicyStats::default()
        })
    }
}

/// HiRA-queued PARA over a non-HiRA periodic policy: victims queue in a
/// dedicated HiRA-MC (PR-FIFOs + Refresh Table, `periodic_via_hira` off)
/// with `tRefSlack = N·tRC`, and are served as refresh-access ride-alongs,
/// refresh-refresh pairs or deadline singles. HiRA-backed inner policies
/// never see this wrapper — they absorb the layer natively through
/// [`RefreshPolicy::attach_para`].
pub struct QueuedPara {
    name: String,
    inner: Box<dyn RefreshPolicy>,
    mc: HiraMc,
}

impl QueuedPara {
    /// Wraps `inner` with a HiRA-N-queued PARA layer.
    pub fn new(inner: Box<dyn RefreshPolicy>, pth: f64, slack_acts: u32, env: &PolicyEnv) -> Self {
        let mut mc = build_mc(env, HiraConfig::hira_n(slack_acts), false);
        mc.enable_para(pth);
        QueuedPara {
            name: queued_name(inner.name(), pth, slack_acts),
            inner,
            mc,
        }
    }
}

impl std::fmt::Debug for QueuedPara {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueuedPara")
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

impl RefreshPolicy for QueuedPara {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, now_ns: f64) {
        self.inner.tick(now_ns);
        self.mc.tick(now_ns);
    }

    fn next_action(&mut self, now_ns: f64, view: &RankView<'_>) -> Option<RefreshAction> {
        // The periodic engine first (its REF cadence is a hard schedule),
        // then the preventive queue.
        if let Some(action) = self.inner.next_action(now_ns, view) {
            return Some(action);
        }
        poll_mc(&mut self.mc, now_ns, view)
    }

    fn on_demand_act(&mut self, now_ns: f64, bank: BankId, row: RowId) -> DemandDecision {
        match self.mc.on_demand_act(now_ns, bank, row) {
            McAction::Hira { refresh_row, .. } => DemandDecision::Hira { refresh_row },
            McAction::Plain => self.inner.on_demand_act(now_ns, bank, row),
        }
    }

    fn on_act_executed(&mut self, now_ns: f64, bank: BankId, row: RowId) {
        self.inner.on_act_executed(now_ns, bank, row);
        self.mc.on_row_activated(now_ns, bank, row);
    }

    fn next_wake(&self, now_ns: f64) -> f64 {
        self.inner.next_wake(now_ns).min(self.mc.next_wake(now_ns))
    }

    fn hira_lead(&self) -> Option<(f64, f64)> {
        let t = self.mc.config().op.timings;
        Some((t.t1, t.t2))
    }

    fn performs_refresh(&self) -> bool {
        self.inner.performs_refresh()
    }

    fn profile(&self) -> PolicyProfile {
        self.inner.profile()
    }

    fn mc_stats(&self) -> Vec<McStats> {
        let mut v = vec![self.mc.stats()];
        v.extend(self.inner.mc_stats());
        v
    }

    fn stats(&self) -> PolicyStats {
        let s = self.mc.stats();
        self.inner.stats().merge(PolicyStats {
            rows_refreshed: s.refresh_access + s.refresh_refresh + s.singles,
            preventive_queued: s.preventive_generated,
            ..PolicyStats::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::policy::{baseline, noref};

    fn env() -> PolicyEnv {
        PolicyEnv::for_rank(&SystemConfig::table3(8.0, noref()), 0, 0)
    }

    fn idle_view() -> RankView<'static> {
        RankView {
            now: 1_000_000,
            t_rc: 56,
            bank_next_act: &[0; 16],
            bank_has_demand: &[false; 16],
            bank_open: &[false; 16],
        }
    }

    #[test]
    fn immediate_para_serves_victims_next_poll() {
        let e = env();
        let mut p = ImmediatePara::new(noref().build(&e), 1.0, &e);
        p.on_act_executed(100.0, BankId(2), RowId(500));
        assert_eq!(p.stats().preventive_queued, 1);
        let act = p.next_action(101.0, &idle_view()).expect("victim served");
        match act {
            RefreshAction::Single { bank, row } => {
                assert_eq!(bank, BankId(2));
                assert_eq!(row.0.abs_diff(500), 1, "victim {row:?}");
            }
            other => panic!("expected a single, got {other:?}"),
        }
        assert_eq!(p.next_action(102.0, &idle_view()), None);
    }

    #[test]
    fn queued_para_holds_victims_for_their_slack() {
        let e = env();
        let mut p = QueuedPara::new(noref().build(&e), 1.0, 8, &e);
        p.on_act_executed(100.0, BankId(1), RowId(300));
        assert_eq!(p.stats().preventive_queued, 1);
        // Slack = 8·tRC = 370 ns: nothing due yet at t=110 on busy banks.
        let busy = RankView {
            now: 0,
            t_rc: 56,
            bank_next_act: &[u64::MAX; 16],
            bank_has_demand: &[true; 16],
            bank_open: &[false; 16],
        };
        assert_eq!(p.next_action(110.0, &busy), None);
        // By the deadline it must go out even on a loaded rank view.
        assert!(p.next_action(480.0, &idle_view()).is_some());
        assert_eq!(p.stats().rows_refreshed, 1);
    }

    #[test]
    fn queued_para_keeps_the_inner_periodic_engine_running() {
        let e = env();
        let mut p = QueuedPara::new(baseline().build(&e), 1.0, 4, &e);
        assert_eq!(
            p.next_action(0.0, &idle_view()),
            Some(RefreshAction::RankRef)
        );
        assert!(p.performs_refresh());
        assert_eq!(p.stats().rank_refs, 1);
    }
}
