//! The string-keyed policy registry: the bridge between CLI/sweep axes
//! (`--policy=hira4`) and [`PolicyHandle`]s.

use super::{baseline, hira, noref, raidr, refpb, PolicyHandle};

/// An ordered, string-keyed collection of refresh policies. Order is
/// preserved so sweeps and the `policy_matrix` figure present policies in
/// registration order, not alphabetically.
#[derive(Debug, Clone, Default)]
pub struct PolicyRegistry {
    entries: Vec<PolicyHandle>,
}

impl PolicyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PolicyRegistry::default()
    }

    /// The registry every binary starts from: the paper's three
    /// arrangements plus the related-work policies the open API enables.
    pub fn standard() -> Self {
        let mut r = PolicyRegistry::new();
        r.register(noref());
        r.register(baseline());
        r.register(refpb());
        r.register(raidr());
        for n in [0, 2, 4, 8] {
            r.register(hira(n));
        }
        r
    }

    /// Registers (or replaces, by name) a policy.
    pub fn register(&mut self, handle: PolicyHandle) {
        if let Some(existing) = self.entries.iter_mut().find(|h| h.name() == handle.name()) {
            *existing = handle;
        } else {
            self.entries.push(handle);
        }
    }

    /// Resolves a name. Exact registered names win; `hira<N>` is resolved
    /// for any `N` even when that slack point is not pre-registered.
    pub fn lookup(&self, name: &str) -> Option<PolicyHandle> {
        if let Some(h) = self.entries.iter().find(|h| h.name() == name) {
            return Some(h.clone());
        }
        name.strip_prefix("hira")
            .and_then(|n| n.parse::<u32>().ok())
            .map(hira)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(PolicyHandle::name).collect()
    }

    /// Registered handles, in registration order.
    pub fn handles(&self) -> impl Iterator<Item = &PolicyHandle> {
        self.entries.iter()
    }

    /// Number of registered policies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Resolves `name` against the standard registry.
///
/// # Panics
///
/// Panics with the list of known names when `name` does not resolve — a
/// typo'd `--policy=` axis is a usage error, not a recoverable state.
pub fn policy(name: &str) -> PolicyHandle {
    let registry = PolicyRegistry::standard();
    registry.lookup(name).unwrap_or_else(|| {
        panic!(
            "unknown refresh policy `{name}`; registered: {} (plus hira<N> for any N)",
            registry.names().join(", ")
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_covers_the_matrix_policies() {
        let r = PolicyRegistry::standard();
        for name in [
            "noref", "baseline", "refpb", "raidr", "hira0", "hira2", "hira4", "hira8",
        ] {
            assert!(r.lookup(name).is_some(), "{name} missing");
        }
        assert!(r.len() >= 5, "policy_matrix needs at least 5 policies");
        // Registration order is preserved (noref leads, as the bound).
        assert_eq!(r.names()[0], "noref");
    }

    #[test]
    fn hira_n_resolves_dynamically() {
        let r = PolicyRegistry::standard();
        assert_eq!(r.lookup("hira3").unwrap().name(), "hira3");
        assert!(r.lookup("hiraX").is_none());
        assert!(r.lookup("nope").is_none());
    }

    #[test]
    fn register_replaces_by_name() {
        let mut r = PolicyRegistry::new();
        r.register(PolicyHandle::new("x", |_| {
            Box::new(super::super::NoRefresh)
        }));
        r.register(PolicyHandle::new("x", |_| {
            Box::new(super::super::NoRefresh)
        }));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown refresh policy")]
    fn unknown_policy_panics_with_the_known_list() {
        let _ = policy("definitely-not-a-policy");
    }
}
