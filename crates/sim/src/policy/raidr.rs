//! RAIDR-style retention-binned per-row refresh (Liu et al., ISCA 2012;
//! "Retrospective: RAIDR", Mutlu 2023), driven by `hira-dram`'s retention
//! model.

use super::{
    PolicyEnv, PolicyHandle, PolicyProfile, PolicyStats, RankView, RefreshAction, RefreshPolicy,
};
use hira_dram::addr::{BankId, RowId};
use hira_dram::retention::RetentionModel;

/// Temperature the retention bins are computed at. RAIDR's profiling runs
/// at a fixed guard-banded temperature; the simulator's nominal 45 °C
/// corner matches the retention model's reference point.
pub const RAIDR_REFERENCE_TEMP_C: f64 = 45.0;

/// Rows examined per `next_action` call after a stall, bounding the
/// catch-up scan so one controller tick never does unbounded work.
const MAX_SCAN_PER_CALL: u32 = 64;

/// Parked refreshes (due rows whose bank is backlogged) held at once;
/// beyond this, refreshes are forced through despite the backlog.
const MAX_PENDING: usize = 64;

/// Retention-aware refresh binning: every row is profiled once (through the
/// deterministic [`RetentionModel`]) into a refresh-interval bin — 1×, 2×
/// or 4× `tREFW` — and a row pointer sweeps all rows once per window,
/// refreshing only the rows whose bin is due. Strong rows (the long tail of
/// the retention distribution) are touched every fourth window, cutting
/// refresh activity to a fraction of the per-row baseline.
#[derive(Debug, Clone)]
pub struct RaidrBinned {
    model: RetentionModel,
    seed: u64,
    banks: u16,
    rows_per_bank: u32,
    /// Emission slot width: one row-slot per `tREFW / total_rows`.
    interval_ns: f64,
    next_slot_ns: f64,
    /// Global row cursor, bank-interleaved (`bank = pos % banks`).
    pos: u64,
    /// Completed sweeps (the RAIDR window counter bins are tested against).
    window: u64,
    /// Due refreshes whose bank was backlogged: retried, oldest first, as
    /// their banks drain.
    pending: std::collections::VecDeque<(BankId, RowId)>,
    t_refw: f64,
    t_rc: f64,
    stats: PolicyStats,
}

impl RaidrBinned {
    /// Builds the engine for one rank.
    pub fn new(env: &PolicyEnv) -> Self {
        let total = u64::from(env.rows_per_bank) * u64::from(env.banks);
        RaidrBinned {
            model: RetentionModel::default(),
            seed: env.seed,
            banks: env.banks,
            rows_per_bank: env.rows_per_bank,
            interval_ns: env.timing.t_refw / total as f64,
            next_slot_ns: 0.0,
            pos: 0,
            window: 0,
            pending: std::collections::VecDeque::new(),
            t_refw: env.timing.t_refw,
            t_rc: env.timing.t_rc,
            stats: PolicyStats::default(),
        }
    }

    /// The refresh-interval multiple of `row` (1, 2 or 4 windows).
    fn bin_of(&self, bank: BankId, row: RowId) -> u64 {
        let retention_ms = self
            .model
            .retention_ms(self.seed, bank, row, RAIDR_REFERENCE_TEMP_C);
        let window_ms = self.t_refw / 1e6;
        if retention_ms >= 4.0 * window_ms {
            4
        } else if retention_ms >= 2.0 * window_ms {
            2
        } else {
            1
        }
    }

    /// Mean refresh probability per row-slot, estimated over a sample of
    /// rows (the bins are deterministic, so this is reproducible).
    fn mean_refresh_rate(&self) -> f64 {
        let sample = 256u32.min(self.rows_per_bank);
        let due: f64 = (0..sample)
            .map(|r| 1.0 / self.bin_of(BankId(0), RowId(r)) as f64)
            .sum();
        due / f64::from(sample)
    }
}

impl RefreshPolicy for RaidrBinned {
    fn name(&self) -> &str {
        "raidr"
    }

    fn next_action(&mut self, now_ns: f64, view: &RankView<'_>) -> Option<RefreshAction> {
        // Previously-parked refreshes first: serve the oldest one whose
        // bank has drained, so a hot bank never head-of-line blocks the
        // other banks' parked work. When the parking lot is full, force
        // the oldest through regardless of backlog — deferral is bounded,
        // a retention deadline is not negotiable.
        let ready = self
            .pending
            .iter()
            .position(|&(bank, _)| !view.backlogged(bank))
            .or((self.pending.len() >= MAX_PENDING).then_some(0));
        if let Some(idx) = ready {
            let (bank, row) = self.pending.remove(idx).expect("index from position");
            self.stats.rows_refreshed += 1;
            return Some(RefreshAction::Single { bank, row });
        }
        let total = u64::from(self.rows_per_bank) * u64::from(self.banks);
        let mut scanned = 0;
        while now_ns >= self.next_slot_ns && scanned < MAX_SCAN_PER_CALL {
            scanned += 1;
            let bank = BankId((self.pos % u64::from(self.banks)) as u16);
            let row = RowId((self.pos / u64::from(self.banks)) as u32);
            self.pos += 1;
            if self.pos == total {
                self.pos = 0;
                self.window += 1;
            }
            self.next_slot_ns += self.interval_ns;
            if !self.window.is_multiple_of(self.bin_of(bank, row)) {
                self.stats.rows_skipped += 1;
                continue;
            }
            if view.backlogged(bank) && self.pending.len() < MAX_PENDING {
                // Park the refresh (the emission schedule already advanced,
                // so later rows are not starved behind a hot bank) and keep
                // scanning for work on drained banks. Once the parking lot
                // fills, both new and parked refreshes are forced through
                // despite the backlog (see the drain above).
                self.pending.push_back((bank, row));
                continue;
            }
            self.stats.rows_refreshed += 1;
            return Some(RefreshAction::Single { bank, row });
        }
        None
    }

    fn next_wake(&self, now_ns: f64) -> f64 {
        // Parked refreshes unblock on bank state this policy cannot see:
        // keep polling every tick while any are held. Otherwise nothing
        // can happen before the emission schedule's next row-slot.
        if self.pending.is_empty() {
            self.next_slot_ns
        } else {
            now_ns
        }
    }

    fn profile(&self) -> PolicyProfile {
        let rate = self.mean_refresh_rate();
        let rows = f64::from(self.rows_per_bank);
        PolicyProfile {
            performs_refresh: true,
            rank_blocked_frac: 0.0,
            bank_busy_frac: rows * self.t_rc * rate / self.t_refw,
            // ACT + PRE per refreshed row across all banks.
            cmd_per_sec: rows * f64::from(self.banks) * 2.0 * rate / (self.t_refw * 1e-9),
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

/// Handle for the registry key `raidr`.
pub fn raidr() -> PolicyHandle {
    PolicyHandle::new("raidr", |env| Box::new(RaidrBinned::new(env)))
        .with_summary("RAIDR-style retention-binned per-row refresh")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn env() -> PolicyEnv {
        PolicyEnv::for_rank(&SystemConfig::table3(8.0, raidr()), 0, 0)
    }

    fn view() -> RankView<'static> {
        RankView {
            now: 0,
            t_rc: 56,
            bank_next_act: &[0; 16],
            bank_has_demand: &[false; 16],
            bank_open: &[false; 16],
        }
    }

    #[test]
    fn binning_skips_strong_rows() {
        let e = env();
        let mut p = RaidrBinned::new(&e);
        // Drain the first 4000 row-slots of window 0 (every row due).
        let horizon = p.interval_ns * 4000.0;
        let mut issued = 0u64;
        let mut now = 0.0;
        while now <= horizon {
            while p.next_action(now, &view()).is_some() {
                issued += 1;
            }
            now += p.interval_ns * 16.0;
        }
        // Window 0 refreshes everything (all bins due at window % bin == 0).
        assert!(issued >= 3_900, "window 0 issued {issued}");
        assert_eq!(p.stats().rows_skipped, 0);
        // In window 1 only bin-1 rows are due: the default retention model's
        // 180 ms floor puts every row in bin 2 or 4, so all rows skip.
        p.window = 1;
        p.pos = 0;
        let before = p.stats().rows_refreshed;
        p.next_slot_ns = 0.0;
        let mut now = 0.0;
        while now <= horizon {
            while p.next_action(now, &view()).is_some() {}
            now += p.interval_ns * 16.0;
        }
        assert_eq!(p.stats().rows_refreshed, before, "bin-skips must not act");
        assert!(p.stats().rows_skipped >= 3_900);
    }

    #[test]
    fn bins_are_deterministic_and_long_tailed() {
        let p = RaidrBinned::new(&env());
        let rate = p.mean_refresh_rate();
        // Mostly bin-4 with some bin-2: mean rate well below the 1.0 of
        // unconditional per-row refresh, at or above the bin-4 floor.
        assert!((0.25..0.75).contains(&rate), "mean rate {rate}");
        assert_eq!(
            p.bin_of(BankId(3), RowId(77)),
            p.bin_of(BankId(3), RowId(77))
        );
    }

    #[test]
    fn backlogged_bank_defers_but_never_drops() {
        let e = env();
        let mut p = RaidrBinned::new(&e);
        let blocked = [u64::MAX; 16];
        let v = RankView {
            now: 0,
            t_rc: 56,
            bank_next_act: &blocked,
            bank_has_demand: &[false; 16],
            bank_open: &[false; 16],
        };
        assert_eq!(p.next_action(1e6, &v), None);
        let held = *p.pending.front().expect("due refresh parked, not lost");
        // Once the banks drain, the oldest held refresh goes out first.
        let act = p.next_action(1e6, &view()).expect("pending served");
        assert_eq!(
            act,
            RefreshAction::Single {
                bank: held.0,
                row: held.1
            }
        );
    }

    #[test]
    fn one_hot_bank_does_not_starve_the_others() {
        let e = env();
        let mut p = RaidrBinned::new(&e);
        // Bank 0 permanently backlogged; the rest idle.
        let mut next_act = [0u64; 16];
        next_act[0] = u64::MAX;
        let v = RankView {
            now: 0,
            t_rc: 56,
            bank_next_act: &next_act,
            bank_has_demand: &[false; 16],
            bank_open: &[false; 16],
        };
        // Two full bank rotations of due slots: bank-0 rows park, all other
        // banks' rows still flow.
        let mut served_banks = std::collections::HashSet::new();
        let now = p.interval_ns * 33.0;
        while let Some(RefreshAction::Single { bank, .. }) = p.next_action(now, &v) {
            served_banks.insert(bank.0);
        }
        assert!(!served_banks.contains(&0), "backlogged bank was issued to");
        assert!(
            served_banks.len() >= 15,
            "only banks {served_banks:?} served while bank 0 is hot"
        );
        assert!(!p.pending.is_empty(), "bank-0 rows parked, not dropped");
    }
}
