//! The open refresh-policy API.
//!
//! The paper's evaluation compares refresh *arrangements* — NoRefresh,
//! conventional all-bank `REF`, HiRA-N — and this module turns that closed
//! three-way choice into an open interface: a refresh arrangement is any
//! type implementing [`RefreshPolicy`], selected through a [`PolicyHandle`]
//! and (for sweeps and CLI axes) the string-keyed [`PolicyRegistry`].
//!
//! The controller/policy split mirrors the paper's Fig. 7: the *policy*
//! decides **what** to refresh and **when** (request generation, deadlines,
//! pairing decisions); the channel controller in [`crate::controller`]
//! decides **how** (command scheduling, `tRRD`/`tFAW`/bus arbitration) by
//! executing the [`RefreshAction`]s the policy emits and reporting every
//! executed activation back.
//!
//! ## Shipped policies
//!
//! | registry key | type | arrangement |
//! |--------------|------|-------------|
//! | `noref` | [`noref()`] | no periodic refresh (Fig. 9a's ideal bound) |
//! | `baseline` | [`baseline()`] | all-bank `REF` every `tREFI`, rank blocked `tRFC` |
//! | `refpb` | [`refpb()`] | per-bank `REFpb`, staggered round-robin, one bank blocked `tRFCpb` |
//! | `raidr` | [`raidr()`] | RAIDR-style retention-binned per-row refresh |
//! | `hira<N>` | [`hira()`] | per-row refresh through HiRA-MC with `tRefSlack = N·tRC` |
//!
//! PARA preventive refreshes (§9) layer onto *any* policy through
//! [`PolicyHandle::with_para_immediate`] (serve victims at once — the
//! "PARA" baseline) or [`PolicyHandle::with_para_hira`] (queue with slack
//! and let HiRA-MC parallelize).
//!
//! ## Adding a policy
//!
//! Implement the trait, wrap a factory in a handle, register it:
//!
//! ```rust
//! use hira_sim::policy::{
//!     DemandDecision, PolicyHandle, PolicyProfile, PolicyRegistry, PolicyStats,
//!     RankView, RefreshAction, RefreshPolicy,
//! };
//! use hira_dram::addr::{BankId, RowId};
//!
//! /// Refreshes row 0 of bank 0 once every microsecond. Useless — but a
//! /// complete policy.
//! #[derive(Debug)]
//! struct Metronome {
//!     next_due_ns: f64,
//! }
//!
//! impl RefreshPolicy for Metronome {
//!     fn name(&self) -> &str {
//!         "metronome"
//!     }
//!     fn next_action(&mut self, now_ns: f64, _view: &RankView<'_>) -> Option<RefreshAction> {
//!         (now_ns >= self.next_due_ns).then(|| {
//!             self.next_due_ns += 1_000.0;
//!             RefreshAction::Single { bank: BankId(0), row: RowId(0) }
//!         })
//!     }
//!     fn profile(&self) -> PolicyProfile {
//!         PolicyProfile { performs_refresh: true, ..PolicyProfile::none() }
//!     }
//!     fn stats(&self) -> PolicyStats {
//!         PolicyStats::default()
//!     }
//! }
//!
//! let mut registry = PolicyRegistry::standard();
//! registry.register(PolicyHandle::new("metronome", |_env| {
//!     Box::new(Metronome { next_due_ns: 0.0 })
//! }));
//! let cfg = hira_sim::SystemConfig::table3(8.0, registry.lookup("metronome").unwrap());
//! assert!(hira_sim::refresh::refreshes(&cfg));
//! ```

mod allbank;
mod hira;
mod noref;
mod perbank;
mod preventive;
mod raidr;
mod registry;

pub use allbank::{baseline, AllBankRef};
pub use hira::{hira, hira_custom, HiraPolicy};
pub use noref::{noref, NoRefresh};
pub use perbank::{refpb, PerBankRef, REFPB_TRFC_FRACTION};
pub use preventive::{ImmediatePara, QueuedPara};
pub use raidr::{raidr, RaidrBinned, RAIDR_REFERENCE_TEMP_C};
pub use registry::{policy, PolicyRegistry};

use crate::clock::MemCycle;
use crate::config::SystemConfig;
use hira_core::finder::McStats;
use hira_dram::addr::{BankId, RowId};
use hira_dram::timing::TimingParams;
use std::fmt;
use std::sync::Arc;

/// Construction context handed to a policy factory: everything a per-rank
/// refresh engine may need to size its structures and seed its randomness.
#[derive(Debug, Clone, Copy)]
pub struct PolicyEnv {
    /// Channel index of the controller instantiating the policy.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Ranks sharing the channel (REF-phase staggering).
    pub ranks_per_channel: usize,
    /// Banks in the rank.
    pub banks: u16,
    /// Bank groups in the rank.
    pub bank_groups: u16,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Rows per subarray (HiRA-MC RefPtr granularity).
    pub rows_per_subarray: u32,
    /// Chip capacity in Gb.
    pub chip_gbit: f64,
    /// DDR timing parameters (ns).
    pub timing: TimingParams,
    /// Per-bank refresh latency `tRFCpb` in ns, quoted by the configured
    /// device (`t_rfc_pb_frac × tRFC` — LPDDR4-class parts halve `tRFC`;
    /// emulating parts inherit the same conservative fraction). The
    /// duration [`RefreshAction::BankRef`]-issuing policies should quote.
    pub t_rfc_pb_ns: f64,
    /// Fraction of row pairs the SPT reports compatible (§7).
    pub spt_fraction: f64,
    /// Deterministic seed, already mixed with channel and rank so two
    /// instances of one policy never share a random stream.
    pub seed: u64,
}

impl PolicyEnv {
    /// The environment of rank `rank` on channel `channel` of `cfg`.
    pub fn for_rank(cfg: &SystemConfig, channel: usize, rank: usize) -> Self {
        PolicyEnv {
            channel,
            rank,
            ranks_per_channel: cfg.ranks,
            banks: cfg.banks,
            bank_groups: cfg.bank_groups,
            rows_per_bank: cfg.rows_per_bank(),
            rows_per_subarray: 512,
            chip_gbit: cfg.chip_gbit,
            timing: cfg.timing,
            t_rfc_pb_ns: cfg.device.profile().t_rfc_pb_frac * cfg.timing.t_rfc,
            spt_fraction: cfg.spt_fraction,
            seed: cfg.seed ^ ((channel as u64) << 32) ^ (rank as u64),
        }
    }
}

/// Builds a throwaway instance of `cfg`'s policy (channel 0, rank 0) for
/// analytic queries — [`crate::refresh::budget`] and
/// [`crate::refresh::refreshes`] use this so accounting works for *any*
/// registered policy, not just the built-ins.
pub fn probe(cfg: &SystemConfig) -> Box<dyn RefreshPolicy> {
    cfg.refresh.build(&PolicyEnv::for_rank(cfg, 0, 0))
}

/// A scheduling request the policy asks the controller to execute. The
/// controller owns all command-level timing (`tRRD`, `tFAW`, bus slots);
/// the action names rows and banks, plus the one duration — `tRFCpb` —
/// that is a property of the policy's refresh command, not of the shared
/// DDR timing set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefreshAction {
    /// All-bank `REF`: precharge-all, then block every bank for `tRFC`.
    RankRef,
    /// Per-bank `REFpb`: precharge `bank`, then block it for `t_rfc_pb_ns`
    /// while the rest of the rank keeps serving demand. The duration is
    /// policy-supplied so arrangements with different per-bank refresh
    /// latencies (LPDDR4's 90 ns vs DDR5's scaling) coexist.
    BankRef {
        /// Target bank.
        bank: BankId,
        /// Bank-blocked duration, ns.
        t_rfc_pb_ns: f64,
    },
    /// Single-row refresh: `ACT row — tRAS — PRE` on `bank`.
    Single {
        /// Target bank.
        bank: BankId,
        /// Refreshed row.
        row: RowId,
    },
    /// HiRA refresh-refresh pair: one operation refreshing both rows in
    /// `t1 + t2 + tRAS` (§5.2) — both activations count toward
    /// `tRRD`/`tFAW`.
    Pair {
        /// Target bank.
        bank: BankId,
        /// Row refreshed by the hidden first activation.
        first: RowId,
        /// Row refreshed by the second activation.
        second: RowId,
    },
}

/// Case-1 verdict for a demand activation the scheduler is about to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandDecision {
    /// Issue a plain `ACT`.
    Plain,
    /// Expand the `ACT` into a HiRA refresh-access operation: the first
    /// activation refreshes `refresh_row`, the second (after `t1 + t2`)
    /// opens the demand row.
    Hira {
        /// Row refreshed by the hidden activation.
        refresh_row: RowId,
    },
}

/// Read-only per-rank scheduling state the controller exposes while polling
/// [`RefreshPolicy::next_action`].
#[derive(Debug, Clone, Copy)]
pub struct RankView<'a> {
    /// Current command-clock cycle.
    pub now: MemCycle,
    /// `tRC` in command-clock cycles (the backlog unit).
    pub t_rc: MemCycle,
    /// Earliest cycle each bank can start an `ACT`.
    pub bank_next_act: &'a [MemCycle],
    /// Whether demand requests are queued per bank.
    pub bank_has_demand: &'a [bool],
    /// Whether each bank holds an open row.
    pub bank_open: &'a [bool],
}

impl RankView<'_> {
    /// Banks in the rank.
    pub fn banks(&self) -> u16 {
        self.bank_next_act.len() as u16
    }

    /// True when `bank`'s schedule is already several row-cycles deep —
    /// deadline-driven policies should hold that bank's work for a later
    /// tick rather than pile further onto it.
    pub fn backlogged(&self, bank: BankId) -> bool {
        self.bank_next_act[bank.index()] > self.now + 4 * self.t_rc
    }

    /// True when `bank` is demand-free, closed and ready — the
    /// zero-interference slot opportunistic refresh targets.
    pub fn idle(&self, bank: BankId) -> bool {
        let b = bank.index();
        !self.bank_has_demand[b] && !self.bank_open[b] && self.bank_next_act[b] <= self.now
    }
}

/// Static, analytic cost facts about a policy instance (no simulation) —
/// the open-API replacement for the `RefreshScheme`-matching arithmetic the
/// refresh-budget helpers used to hardcode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyProfile {
    /// Whether the policy performs periodic refresh at all.
    pub performs_refresh: bool,
    /// Fraction of time the whole rank is refresh-blocked.
    pub rank_blocked_frac: f64,
    /// Fraction of time an individual bank is refresh-busy.
    pub bank_busy_frac: f64,
    /// Command-bus slots per second the policy's refreshes consume.
    pub cmd_per_sec: f64,
}

impl PolicyProfile {
    /// The profile of a policy that refreshes nothing.
    pub fn none() -> Self {
        PolicyProfile {
            performs_refresh: false,
            rank_blocked_frac: 0.0,
            bank_busy_frac: 0.0,
            cmd_per_sec: 0.0,
        }
    }
}

/// Per-policy service counters, aggregated across composition layers (a
/// PARA wrapper folds its own counters into its inner policy's).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// All-bank `REF` commands requested.
    pub rank_refs: u64,
    /// Per-bank `REFpb` commands requested.
    pub bank_refs: u64,
    /// Rows refreshed through row-granular actions (a pair counts two, a
    /// refresh-access ride-along counts one).
    pub rows_refreshed: u64,
    /// Rows a binned policy skipped because their retention bin was not
    /// due this window.
    pub rows_skipped: u64,
    /// Preventive (PARA) victims queued.
    pub preventive_queued: u64,
}

impl PolicyStats {
    /// Component-wise sum (composition layers aggregate with this).
    pub fn merge(self, other: PolicyStats) -> PolicyStats {
        PolicyStats {
            rank_refs: self.rank_refs + other.rank_refs,
            bank_refs: self.bank_refs + other.bank_refs,
            rows_refreshed: self.rows_refreshed + other.rows_refreshed,
            rows_skipped: self.rows_skipped + other.rows_skipped,
            preventive_queued: self.preventive_queued + other.preventive_queued,
        }
    }
}

/// A per-rank refresh arrangement: request generation, deadline tracking
/// and pairing decisions, driven by the channel controller.
///
/// ## Timing contract
///
/// All `now_ns` arguments are nanoseconds on the memory-controller command
/// clock, monotonically non-decreasing across calls. Per controller tick
/// (one command-clock cycle) the controller:
///
/// 1. calls [`tick`](Self::tick) exactly once — advance request generation
///    to `now_ns` here; the controller guarantees at least one call per
///    `tRC`, so generators may emit several requests per call after a gap;
/// 2. calls [`next_action`](Self::next_action) repeatedly until it returns
///    `None` (or a safety bound of a few actions per bank is hit). Every
///    returned action **is executed**: the policy must commit its
///    bookkeeping (deadlines met, pointers advanced, stats counted) when it
///    returns the action, and must eventually return `None` so the tick
///    terminates. The [`RankView`] is refreshed after every executed action,
///    so `bank_next_act` already reflects earlier actions of the same tick.
///
/// During demand scheduling the controller additionally calls:
///
/// * [`on_demand_act`](Self::on_demand_act) — *before* issuing a demand
///   `ACT`, at the activation's scheduled time. Returning
///   [`DemandDecision::Hira`] converts the `ACT` into a refresh-access HiRA
///   operation (§5.1.3 Case 1); the policy must treat the returned refresh
///   row as served.
/// * [`on_act_executed`](Self::on_act_executed) — *after* every executed
///   activation on the rank: demand rows, refresh singles, both rows of a
///   pair, and preventive victims alike. This is PARA's sampling point
///   (preventive refreshes disturb their own neighbours, §9), so the
///   controller never filters it.
///
/// Under the event-driven kernel ([`crate::config::KernelMode::Event`])
/// steps 1–2 are elided on ticks the policy has declared uninteresting
/// through [`next_wake`](Self::next_wake); the dense kernel
/// ([`crate::config::KernelMode::Dense`]) always performs them, and the
/// two must be observationally identical — the `next_wake` contract is
/// exactly that guarantee.
pub trait RefreshPolicy: fmt::Debug + Send {
    /// Display name (diagnostics and stats attribution).
    fn name(&self) -> &str;

    /// Advances request generation to `now_ns`. Called once per controller
    /// tick, before any [`next_action`](Self::next_action) poll.
    fn tick(&mut self, _now_ns: f64) {}

    /// The next instant (ns) at which this policy may need attention — the
    /// contract that lets the event-driven simulation kernel skip time.
    ///
    /// By returning a wake `w > now_ns` the policy **guarantees** that at
    /// every controller tick `t` with `now_ns <= t` *and* `t < w` (on the
    /// dense tick grid), [`tick`](Self::tick) would not change its state
    /// and [`next_action`](Self::next_action) would return `None` under
    /// *any* [`RankView`] — so the controller may simply not call them.
    /// The controller still delivers [`on_demand_act`](Self::on_demand_act)
    /// and [`on_act_executed`](Self::on_act_executed) whenever demand work
    /// executes, and re-queries the wake afterwards, so a policy whose
    /// next action depends on those callbacks (e.g. a PARA layer) must
    /// fold them in by returning `now_ns` while it holds serveable work.
    ///
    /// Waking *early* is always safe (the skipped calls are no-ops by the
    /// same argument the dense kernel relies on); waking *late* breaks
    /// bit-identity with the dense kernel. The default returns `now_ns` —
    /// "poll me every tick" — which preserves exact legacy behavior for
    /// out-of-tree policies that predate this hook.
    fn next_wake(&self, now_ns: f64) -> f64 {
        now_ns
    }

    /// The next refresh the controller should execute now, or `None` when
    /// the policy has nothing (more) to issue this tick.
    fn next_action(&mut self, now_ns: f64, view: &RankView<'_>) -> Option<RefreshAction>;

    /// Case-1 hook: the scheduler is about to activate `row` in `bank`.
    fn on_demand_act(&mut self, _now_ns: f64, _bank: BankId, _row: RowId) -> DemandDecision {
        DemandDecision::Plain
    }

    /// Reports an executed activation (demand, refresh or preventive).
    fn on_act_executed(&mut self, _now_ns: f64, _bank: BankId, _row: RowId) {}

    /// Asks the policy to absorb a PARA layer natively (HiRA-MC-backed
    /// policies host PARA inside their Preventive Refresh Controller).
    /// `slack_acts` is the victim queueing slack (in `tRC`) the layer's
    /// `p_th` was certified for; a policy must refuse (return `false`, so
    /// the caller wraps it instead) unless it can honour exactly that
    /// slack — absorbing under a different deadline would void the §9.1
    /// security analysis behind `pth`.
    fn attach_para(&mut self, _pth: f64, _slack_acts: u32) -> bool {
        false
    }

    /// The `(t1, t2)` ns timings the controller should use for HiRA
    /// operations issued on this policy's behalf; `None` when the policy
    /// never emits [`RefreshAction::Pair`] or [`DemandDecision::Hira`].
    fn hira_lead(&self) -> Option<(f64, f64)> {
        None
    }

    /// True when the policy never emits actions nor consumes callbacks —
    /// lets the controller skip the polling machinery entirely.
    fn inert(&self) -> bool {
        false
    }

    /// Whether the policy performs periodic refresh at all. The default
    /// answers from [`profile`](Self::profile), so there is one source of
    /// truth; override only when the profile is expensive to compute.
    fn performs_refresh(&self) -> bool {
        self.profile().performs_refresh
    }

    /// Analytic cost profile of this instance.
    fn profile(&self) -> PolicyProfile;

    /// HiRA-MC statistics, for HiRA-MC-backed policies (composition layers
    /// concatenate).
    fn mc_stats(&self) -> Vec<McStats> {
        Vec::new()
    }

    /// Service counters, aggregated across composition layers.
    fn stats(&self) -> PolicyStats;
}

/// Factory signature behind a [`PolicyHandle`].
pub type PolicyFactory = dyn Fn(&PolicyEnv) -> Box<dyn RefreshPolicy> + Send + Sync;

/// A cloneable, comparable *selection* of a refresh policy: the registry
/// key plus the factory that builds per-rank instances. This is what
/// [`crate::config::SystemConfig`] stores and what sweeps pass around —
/// equality and hashing go by name, so two configs selecting the same
/// registered policy compare (and bucket) equal.
#[derive(Clone)]
pub struct PolicyHandle {
    name: Arc<str>,
    summary: Arc<str>,
    factory: Arc<PolicyFactory>,
}

impl PolicyHandle {
    /// Wraps a factory under a registry name. Parameterized policies must
    /// encode their parameters in the name (e.g. `hira4`,
    /// `baseline+para(p=0.5157)`): the name is the identity.
    pub fn new(
        name: impl Into<String>,
        factory: impl Fn(&PolicyEnv) -> Box<dyn RefreshPolicy> + Send + Sync + 'static,
    ) -> Self {
        PolicyHandle {
            name: Arc::from(name.into()),
            summary: Arc::from(""),
            factory: Arc::new(factory),
        }
    }

    /// Attaches a one-line description (registry `--list` output). Not
    /// part of the identity: equality stays by name.
    pub fn with_summary(mut self, summary: impl Into<String>) -> Self {
        self.summary = Arc::from(summary.into());
        self
    }

    /// The policy's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line description (empty when the registrant set none).
    pub fn summary(&self) -> &str {
        &self.summary
    }

    /// Builds one per-rank instance.
    pub fn build(&self, env: &PolicyEnv) -> Box<dyn RefreshPolicy> {
        (self.factory)(env)
    }

    /// Layers immediately-served PARA preventive refreshes (§9's plain
    /// "PARA" baseline) onto this policy: every executed activation
    /// triggers with probability `pth`, and victims are refreshed as
    /// standalone singles on the very next tick.
    pub fn with_para_immediate(self, pth: f64) -> PolicyHandle {
        let name = preventive::immediate_name(&self.name, pth);
        let summary = format!("{} + immediate PARA (p_th = {pth:.4})", self.name);
        PolicyHandle::new(name, move |env| {
            Box::new(ImmediatePara::new(self.build(env), pth, env))
        })
        .with_summary(summary)
    }

    /// Layers HiRA-queued PARA preventive refreshes onto this policy:
    /// victims queue with `tRefSlack = slack_acts × tRC` and are served
    /// through HiRA-MC (refresh-access and refresh-refresh parallelized).
    /// A policy that already hosts a HiRA-MC absorbs the layer natively
    /// ([`RefreshPolicy::attach_para`]); anything else is wrapped.
    pub fn with_para_hira(self, pth: f64, slack_acts: u32) -> PolicyHandle {
        let name = preventive::queued_name(&self.name, pth, slack_acts);
        let summary = format!(
            "{} + HiRA-{slack_acts}-queued PARA (p_th = {pth:.4})",
            self.name
        );
        PolicyHandle::new(name, move |env| {
            let mut inner = self.build(env);
            if inner.attach_para(pth, slack_acts) {
                inner
            } else {
                Box::new(QueuedPara::new(inner, pth, slack_acts, env))
            }
        })
        .with_summary(summary)
    }
}

impl fmt::Debug for PolicyHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("PolicyHandle").field(&self.name).finish()
    }
}

impl PartialEq for PolicyHandle {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for PolicyHandle {}

impl std::hash::Hash for PolicyHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_compare_by_name() {
        assert_eq!(baseline(), baseline());
        assert_ne!(baseline(), noref());
        assert_ne!(hira(2), hira(4));
        // Parameters are part of the identity through the name.
        assert_ne!(
            baseline().with_para_immediate(0.25),
            baseline().with_para_immediate(0.5)
        );
    }

    #[test]
    fn probe_reflects_the_selected_policy() {
        let cfg = |h| SystemConfig::table3(8.0, h);
        assert!(!probe(&cfg(noref())).performs_refresh());
        assert!(probe(&cfg(baseline())).performs_refresh());
        assert!(probe(&cfg(refpb())).performs_refresh());
        assert!(probe(&cfg(raidr())).performs_refresh());
        assert!(probe(&cfg(hira(4))).performs_refresh());
    }

    #[test]
    fn para_composition_names_encode_parameters() {
        let h = baseline().with_para_hira(0.5, 4);
        assert_eq!(h.name(), "baseline+para@hira4(p=0.5000)");
        let h = noref().with_para_immediate(0.125);
        assert_eq!(h.name(), "noref+para(p=0.1250)");
    }

    #[test]
    fn hira_handles_absorb_a_para_layer_natively() {
        let cfg = SystemConfig::table3(8.0, hira(4).with_para_hira(0.5, 4));
        let p = probe(&cfg);
        // Absorbed: one HiraMc, not a wrapper around a second one.
        assert_eq!(p.mc_stats().len(), 1);
        // A baseline inner requires the wrapper (its own HiRA-MC).
        let cfg = SystemConfig::table3(8.0, baseline().with_para_hira(0.5, 4));
        assert_eq!(probe(&cfg).mc_stats().len(), 1);
        assert!(probe(&cfg).hira_lead().is_some());
    }
}
