//! Conventional all-bank `REF` (the paper's Baseline, §2.2).

use super::{
    PolicyEnv, PolicyHandle, PolicyProfile, PolicyStats, RankView, RefreshAction, RefreshPolicy,
};

/// Issues a rank-level `REF` every `tREFI`, blocking all banks for `tRFC`
/// (scaled with chip capacity by Expression 1). REF phases are staggered
/// across the ranks of a channel so their blocked windows interleave.
#[derive(Debug, Clone)]
pub struct AllBankRef {
    next_due_ns: f64,
    t_refi: f64,
    t_rfc: f64,
    stats: PolicyStats,
}

impl AllBankRef {
    /// Builds the engine for one rank.
    pub fn new(env: &PolicyEnv) -> Self {
        let t_refi = env.timing.t_refi;
        AllBankRef {
            // Stagger REF phases across ranks.
            next_due_ns: t_refi * env.rank as f64 / env.ranks_per_channel.max(1) as f64,
            t_refi,
            t_rfc: env.timing.t_rfc,
            stats: PolicyStats::default(),
        }
    }
}

impl RefreshPolicy for AllBankRef {
    fn name(&self) -> &str {
        "baseline"
    }

    fn next_action(&mut self, now_ns: f64, _view: &RankView<'_>) -> Option<RefreshAction> {
        (now_ns >= self.next_due_ns).then(|| {
            self.next_due_ns += self.t_refi;
            self.stats.rank_refs += 1;
            RefreshAction::RankRef
        })
    }

    fn next_wake(&self, _now_ns: f64) -> f64 {
        // Purely time-gated: nothing can happen before the next REF is due.
        self.next_due_ns
    }

    fn profile(&self) -> PolicyProfile {
        PolicyProfile {
            performs_refresh: true,
            rank_blocked_frac: self.t_rfc / self.t_refi,
            // Every bank is blocked whenever the rank is.
            bank_busy_frac: self.t_rfc / self.t_refi,
            // PREA + REF per tREFI.
            cmd_per_sec: 2.0 / (self.t_refi * 1e-9),
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

/// Handle for the registry key `baseline`.
pub fn baseline() -> PolicyHandle {
    PolicyHandle::new("baseline", |env| Box::new(AllBankRef::new(env)))
        .with_summary("all-bank REF every tREFI, rank blocked for tRFC")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::policy::PolicyEnv;

    fn env() -> PolicyEnv {
        PolicyEnv::for_rank(&SystemConfig::table3(8.0, baseline()), 0, 0)
    }

    fn view() -> RankView<'static> {
        RankView {
            now: 0,
            t_rc: 56,
            bank_next_act: &[0; 16],
            bank_has_demand: &[false; 16],
            bank_open: &[false; 16],
        }
    }

    #[test]
    fn one_ref_per_trefi() {
        let mut p = AllBankRef::new(&env());
        assert_eq!(p.next_action(0.0, &view()), Some(RefreshAction::RankRef));
        // Consumed: nothing more until the next interval.
        assert_eq!(p.next_action(0.0, &view()), None);
        assert_eq!(p.next_action(7000.0, &view()), None);
        assert_eq!(p.next_action(7800.0, &view()), Some(RefreshAction::RankRef));
        assert_eq!(p.stats().rank_refs, 2);
    }

    #[test]
    fn rank_stagger_offsets_the_first_ref() {
        let cfg = SystemConfig::table3(8.0, baseline()).with_geometry(1, 4);
        let p1 = AllBankRef::new(&PolicyEnv::for_rank(&cfg, 0, 1));
        assert!((p1.next_due_ns - cfg.timing.t_refi / 4.0).abs() < 1e-9);
    }

    #[test]
    fn profile_matches_the_trfc_over_trefi_arithmetic() {
        let p = AllBankRef::new(&env());
        let t = env().timing;
        assert!((p.profile().rank_blocked_frac - t.t_rfc / t.t_refi).abs() < 1e-12);
        assert!(p.profile().performs_refresh);
    }
}
