//! Per-row refresh through HiRA-MC (§5/§8) as a [`RefreshPolicy`].

use super::{
    DemandDecision, PolicyEnv, PolicyHandle, PolicyProfile, PolicyStats, RankView, RefreshAction,
    RefreshPolicy,
};
use hira_core::config::HiraConfig;
use hira_core::finder::{DeadlineWork, HiraMc, HiraMcParams, McAction, McStats};
use hira_dram::addr::{BankId, RowId};

/// Builds the per-rank [`HiraMc`] instance a HiRA-backed policy drives.
pub(super) fn build_mc(env: &PolicyEnv, config: HiraConfig, periodic_via_hira: bool) -> HiraMc {
    HiraMc::new(HiraMcParams {
        banks: env.banks,
        rows_per_bank: env.rows_per_bank,
        rows_per_subarray: env.rows_per_subarray,
        t_refw_ns: env.timing.t_refw,
        timing: env.timing,
        config,
        periodic_via_hira,
        para_pth: None,
        spt_fraction: env.spt_fraction,
        seed: env.seed,
    })
}

/// The shared HiRA-MC service loop: deadline-driven work first (Case 2,
/// gated on the due bank's backlog), then opportunistic service on idle
/// demand-free banks. Used by [`HiraPolicy`] and the queued-PARA wrapper.
pub(super) fn poll_mc(mc: &mut HiraMc, now_ns: f64, view: &RankView<'_>) -> Option<RefreshAction> {
    if let Some(bank) = mc.next_due_bank(now_ns) {
        if !view.backlogged(bank) {
            if let Some(work) = mc.deadline_work(now_ns) {
                return Some(work_to_action(work));
            }
        }
        // Due bank backlogged: leave the entry queued (its deadline forces
        // it later) and fall through to opportunistic service elsewhere.
    }
    for b in 0..view.banks() {
        let bank = BankId(b);
        if view.idle(bank) && mc.has_queued(bank) {
            if let Some(work) = mc.opportunistic_work(now_ns, bank) {
                return Some(work_to_action(work));
            }
        }
    }
    None
}

fn work_to_action(work: DeadlineWork) -> RefreshAction {
    match work {
        DeadlineWork::Single { bank, row } => RefreshAction::Single { bank, row },
        DeadlineWork::Pair {
            bank,
            first,
            second,
        } => RefreshAction::Pair {
            bank,
            first,
            second,
        },
    }
}

/// Per-row periodic refresh through HiRA-MC: requests generated at the
/// per-row rate, queued with `tRefSlack = N·tRC`, and served by deadline as
/// refresh-access ride-alongs (Case 1), refresh-refresh pairs or singles
/// (Case 2) — plus opportunistic zero-interference service on idle banks.
#[derive(Debug)]
pub struct HiraPolicy {
    name: String,
    mc: HiraMc,
}

impl HiraPolicy {
    /// Builds the policy for one rank.
    pub fn new(name: impl Into<String>, env: &PolicyEnv, config: HiraConfig) -> Self {
        HiraPolicy {
            name: name.into(),
            mc: build_mc(env, config, true),
        }
    }

    /// The underlying controller's configuration.
    pub fn config(&self) -> &HiraConfig {
        self.mc.config()
    }
}

impl RefreshPolicy for HiraPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, now_ns: f64) {
        self.mc.tick(now_ns);
    }

    fn next_action(&mut self, now_ns: f64, view: &RankView<'_>) -> Option<RefreshAction> {
        poll_mc(&mut self.mc, now_ns, view)
    }

    fn next_wake(&self, now_ns: f64) -> f64 {
        self.mc.next_wake(now_ns)
    }

    fn on_demand_act(&mut self, now_ns: f64, bank: BankId, row: RowId) -> DemandDecision {
        match self.mc.on_demand_act(now_ns, bank, row) {
            McAction::Plain => DemandDecision::Plain,
            McAction::Hira { refresh_row, .. } => DemandDecision::Hira { refresh_row },
        }
    }

    fn on_act_executed(&mut self, now_ns: f64, bank: BankId, row: RowId) {
        self.mc.on_row_activated(now_ns, bank, row);
    }

    fn attach_para(&mut self, pth: f64, slack_acts: u32) -> bool {
        // HiRA-MC queues preventive victims under its own tRefSlack; absorb
        // only when that matches the slack the layer's p_th was solved for,
        // otherwise the caller wraps us with a dedicated preventive MC.
        if slack_acts != self.mc.config().slack_acts {
            return false;
        }
        self.mc.enable_para(pth);
        true
    }

    fn hira_lead(&self) -> Option<(f64, f64)> {
        let t = self.mc.config().op.timings;
        Some((t.t1, t.t2))
    }

    fn profile(&self) -> PolicyProfile {
        let p = self.mc.params();
        let t = &p.timing;
        let rows = f64::from(p.rows_per_bank);
        let single = rows * t.t_rc / t.t_refw;
        let paired = rows * (self.mc.config().op.two_row_refresh_ns(t) + t.t_rp) / 2.0 / t.t_refw;
        PolicyProfile {
            performs_refresh: true,
            rank_blocked_frac: 0.0,
            bank_busy_frac: if self.mc.config().refresh_refresh {
                paired
            } else {
                single
            },
            cmd_per_sec: rows * f64::from(p.banks) * 2.0 / (t.t_refw * 1e-9),
        }
    }

    fn mc_stats(&self) -> Vec<McStats> {
        vec![self.mc.stats()]
    }

    fn stats(&self) -> PolicyStats {
        let s = self.mc.stats();
        PolicyStats {
            rank_refs: 0,
            bank_refs: 0,
            rows_refreshed: s.refresh_access + s.refresh_refresh + s.singles,
            rows_skipped: 0,
            preventive_queued: s.preventive_generated,
        }
    }
}

/// Handle for the registry keys `hira<N>` (HiRA-N: `tRefSlack = N·tRC`).
pub fn hira(n: u32) -> PolicyHandle {
    hira_custom(format!("hira{n}"), HiraConfig::hira_n(n)).with_summary(format!(
        "per-row refresh through HiRA-MC, tRefSlack = {n}*tRC"
    ))
}

/// Handle for an explicitly-configured HiRA-MC (ablations, custom `t1/t2`).
/// The name is the identity — encode the configuration in it.
pub fn hira_custom(name: impl Into<String>, config: HiraConfig) -> PolicyHandle {
    let name = name.into();
    let key = name.clone();
    PolicyHandle::new(name, move |env| {
        Box::new(HiraPolicy::new(key.clone(), env, config))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn policy(n: u32) -> HiraPolicy {
        let cfg = SystemConfig::table3(8.0, hira(n));
        HiraPolicy::new(
            format!("hira{n}"),
            &PolicyEnv::for_rank(&cfg, 0, 0),
            HiraConfig::hira_n(n),
        )
    }

    fn idle_view() -> RankView<'static> {
        RankView {
            now: 1_000_000,
            t_rc: 56,
            bank_next_act: &[0; 16],
            bank_has_demand: &[false; 16],
            bank_open: &[false; 16],
        }
    }

    #[test]
    fn serves_generated_requests_by_deadline_or_opportunistically() {
        let mut p = policy(2);
        p.tick(4_000.0);
        let mut served = 0;
        while p.next_action(4_000.0, &idle_view()).is_some() {
            served += 1;
            if served > 1_000 {
                break;
            }
        }
        assert!(served >= 16, "served {served}");
        assert!(p.stats().rows_refreshed >= 16);
    }

    #[test]
    fn backlog_defers_deadline_work_to_opportunistic_banks() {
        let mut p = policy(0); // everything immediately due
        p.tick(2_000.0);
        // All banks backlogged and non-idle: nothing can be served.
        let blocked = [u64::MAX; 16];
        let busy = RankView {
            now: 0,
            t_rc: 56,
            bank_next_act: &blocked,
            bank_has_demand: &[true; 16],
            bank_open: &[false; 16],
        };
        assert_eq!(p.next_action(2_000.0, &busy), None);
        // Queue intact: an idle view drains it.
        assert!(p.next_action(2_000.0, &idle_view()).is_some());
    }

    #[test]
    fn attach_para_is_absorbed_natively_at_matching_slack() {
        let mut p = policy(4);
        assert!(p.attach_para(1.0, 4));
        p.on_act_executed(100.0, BankId(0), RowId(500));
        assert_eq!(p.stats().preventive_queued, 1);
    }

    #[test]
    fn attach_para_refuses_a_mismatched_slack() {
        // hira8 cannot honour a 2·tRC victim deadline with its own 8·tRC
        // queue; the layer must be wrapped instead of silently loosened.
        let mut p = policy(8);
        assert!(!p.attach_para(1.0, 2));
        p.on_act_executed(100.0, BankId(0), RowId(500));
        assert_eq!(p.stats().preventive_queued, 0);
    }

    #[test]
    fn lead_timings_come_from_the_operation() {
        let p = policy(4);
        let (t1, t2) = p.hira_lead().unwrap();
        assert_eq!((t1, t2), (3.0, 3.0));
    }
}
