//! The ideal no-refresh arrangement (upper bound of Fig. 9a).

use super::{PolicyHandle, PolicyProfile, PolicyStats, RankView, RefreshAction, RefreshPolicy};

/// Performs no periodic refresh at all. The retention model in `hira-dram`
/// says what that would cost in data integrity; here it is the
/// interference-free performance bound every figure normalizes against.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRefresh;

impl RefreshPolicy for NoRefresh {
    fn name(&self) -> &str {
        "noref"
    }

    fn next_action(&mut self, _now_ns: f64, _view: &RankView<'_>) -> Option<RefreshAction> {
        None
    }

    fn next_wake(&self, _now_ns: f64) -> f64 {
        f64::INFINITY
    }

    fn inert(&self) -> bool {
        true
    }

    fn profile(&self) -> PolicyProfile {
        PolicyProfile::none()
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats::default()
    }
}

/// Handle for the registry key `noref`.
pub fn noref() -> PolicyHandle {
    PolicyHandle::new("noref", |_env| Box::new(NoRefresh))
        .with_summary("no periodic refresh — the Fig. 9a ideal upper bound")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noref_is_inert_and_refresh_free() {
        let mut p = NoRefresh;
        assert!(p.inert());
        assert!(!p.performs_refresh());
        let view = RankView {
            now: 0,
            t_rc: 56,
            bank_next_act: &[0; 4],
            bank_has_demand: &[false; 4],
            bank_open: &[false; 4],
        };
        assert_eq!(p.next_action(0.0, &view), None);
        assert_eq!(p.profile(), PolicyProfile::none());
    }
}
