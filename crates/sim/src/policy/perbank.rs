//! Per-bank staggered refresh (`REFpb`), after Chang et al.'s
//! refresh-access-parallelism work and the LPDDR/DDR5 per-bank REF command.

use super::{
    PolicyEnv, PolicyHandle, PolicyProfile, PolicyStats, RankView, RefreshAction, RefreshPolicy,
};
use hira_dram::addr::BankId;

/// The default `tRFCpb / tRFC` fraction a device quotes when it has no
/// better number: a per-bank refresh moves 1/`banks` of the row burst but
/// keeps the fixed command/charge-pump overhead, so it costs about half an
/// all-bank `tRFC` rather than 1/16 of one (LPDDR4 8 Gb: 140 ns vs 280 ns;
/// DDR5 scales similarly). The live value reaches the policy through
/// [`PolicyEnv::t_rfc_pb_ns`], so REFpb-native devices can quote their own.
pub const REFPB_TRFC_FRACTION: f64 = 0.5;

/// Round-robin per-bank `REF` at the all-bank rate: one `REFpb` every
/// `tREFI / banks`, each blocking a single bank for `tRFCpb` while the
/// other 15 keep serving demand. This trades the Baseline's rank-wide
/// `tRFC` stall for a higher command rate and per-bank interference — the
/// refresh-access-parallelism arrangement HiRA's §8 analysis compares
/// against conceptually.
#[derive(Debug, Clone)]
pub struct PerBankRef {
    next_due_ns: f64,
    interval_ns: f64,
    cursor: u16,
    banks: u16,
    t_rfc_pb: f64,
    stats: PolicyStats,
}

impl PerBankRef {
    /// Builds the engine for one rank.
    pub fn new(env: &PolicyEnv) -> Self {
        let interval_ns = env.timing.t_refi / f64::from(env.banks.max(1));
        PerBankRef {
            // Stagger across ranks like the all-bank engine.
            next_due_ns: interval_ns * env.rank as f64 / env.ranks_per_channel.max(1) as f64,
            interval_ns,
            cursor: 0,
            banks: env.banks,
            t_rfc_pb: env.t_rfc_pb_ns,
            stats: PolicyStats::default(),
        }
    }
}

impl RefreshPolicy for PerBankRef {
    fn name(&self) -> &str {
        "refpb"
    }

    fn next_action(&mut self, now_ns: f64, _view: &RankView<'_>) -> Option<RefreshAction> {
        (now_ns >= self.next_due_ns).then(|| {
            let bank = BankId(self.cursor);
            self.cursor = (self.cursor + 1) % self.banks;
            self.next_due_ns += self.interval_ns;
            self.stats.bank_refs += 1;
            RefreshAction::BankRef {
                bank,
                t_rfc_pb_ns: self.t_rfc_pb,
            }
        })
    }

    fn next_wake(&self, _now_ns: f64) -> f64 {
        // Purely time-gated: the rotation fires on its own schedule.
        self.next_due_ns
    }

    fn profile(&self) -> PolicyProfile {
        let refi = self.interval_ns * f64::from(self.banks);
        PolicyProfile {
            performs_refresh: true,
            // The rank as a whole is never blocked.
            rank_blocked_frac: 0.0,
            // Each bank takes one tRFCpb per tREFI.
            bank_busy_frac: self.t_rfc_pb / refi,
            // One REFpb (plus its precharge slot) per interval.
            cmd_per_sec: 2.0 / (self.interval_ns * 1e-9),
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

/// Handle for the registry key `refpb`.
pub fn refpb() -> PolicyHandle {
    PolicyHandle::new("refpb", |env| Box::new(PerBankRef::new(env)))
        .with_summary("staggered per-bank REFpb, one bank blocked tRFCpb = tRFC/2")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn env() -> PolicyEnv {
        PolicyEnv::for_rank(&SystemConfig::table3(8.0, refpb()), 0, 0)
    }

    fn view() -> RankView<'static> {
        RankView {
            now: 0,
            t_rc: 56,
            bank_next_act: &[0; 16],
            bank_has_demand: &[false; 16],
            bank_open: &[false; 16],
        }
    }

    #[test]
    fn rotates_through_every_bank_at_the_all_bank_rate() {
        let e = env();
        let mut p = PerBankRef::new(&e);
        let mut seen = Vec::new();
        // One full tREFI of polling covers all 16 banks exactly once.
        let mut now = 0.0;
        while now < e.timing.t_refi {
            if let Some(RefreshAction::BankRef { bank, .. }) = p.next_action(now, &view()) {
                seen.push(bank.0);
            }
            now += e.timing.t_refi / 64.0;
        }
        assert_eq!(seen.len(), 16, "banks hit: {seen:?}");
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        assert_eq!(p.stats().bank_refs, 16);
    }

    #[test]
    fn native_refpb_devices_quote_their_own_trfcpb() {
        // On LPDDR4 the device quotes tRFCpb = 140 ns at 8 Gb and the
        // rotation spans the part's 8 banks, not DDR4's 16.
        let cfg = crate::builder::SystemBuilder::new()
            .device(crate::device::lpddr4_3200())
            .policy(refpb())
            .build()
            .unwrap();
        let e = PolicyEnv::for_rank(&cfg, 0, 0);
        assert!((e.t_rfc_pb_ns - 140.0).abs() < 1e-9);
        let p = PerBankRef::new(&e);
        assert_eq!(p.banks, 8);
        assert!((p.profile().bank_busy_frac - 140.0 / e.timing.t_refi).abs() < 1e-12);
    }

    #[test]
    fn profile_blocks_banks_not_the_rank() {
        let p = PerBankRef::new(&env());
        let prof = p.profile();
        assert_eq!(prof.rank_blocked_frac, 0.0);
        assert!(prof.bank_busy_frac > 0.0);
        // Same total refresh time as baseline, spread over 16 banks at half
        // tRFC each: per-bank busy is tRFCpb/tREFI.
        let t = env().timing;
        assert!((prof.bank_busy_frac - REFPB_TRFC_FRACTION * t.t_rfc / t.t_refi).abs() < 1e-12);
    }
}
