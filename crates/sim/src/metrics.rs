//! Performance metrics (§7: weighted speedup [31, 156]).

use crate::controller::ChannelStats;
use crate::policy::PolicyStats;
use hira_core::finder::McStats;

/// Result of one simulation run.
///
/// Equality is exact (bit-level on the float fields): two runs of the same
/// configuration compare equal regardless of thread count or
/// [`crate::config::KernelMode`] — the property the dense-vs-event
/// equality harness asserts.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Per-core IPC over the measurement region.
    pub ipc: Vec<f64>,
    /// Per-core workload instance names (for a multiprogrammed mix, the
    /// member benchmark each core ran) — the keys weighted-speedup
    /// denominators resolve by.
    pub workloads: Vec<String>,
    /// CPU cycles simulated, up to the last core's finish line — or, when
    /// the safety cap triggers first, exactly the cap. Under the
    /// event-driven kernel this *includes* skipped cycles: time skipping
    /// advances the clock, it does not compress it, so `cycles` (and the
    /// per-core IPC denominators derived from it) are identical to the
    /// dense kernel's count, and a capped run never reports a cycle
    /// number past the cap however far the next wake lay.
    pub cycles: u64,
    /// Memory command-clock cycles simulated (the device's clock domain —
    /// the denominator of bus-utilization fractions).
    pub mem_cycles: u64,
    /// Aggregated channel statistics.
    pub channel_stats: Vec<ChannelStats>,
    /// HiRA-MC statistics per (channel, rank), where configured.
    pub mc_stats: Vec<McStats>,
    /// Refresh-policy service counters per (channel, rank).
    pub policy_stats: Vec<PolicyStats>,
}

impl SimResult {
    /// Weighted speedup: `Σ IPC_shared_i / IPC_alone_i`.
    ///
    /// # Panics
    ///
    /// Panics if `alone` and the per-core IPC vectors differ in length.
    pub fn weighted_speedup(&self, alone: &[f64]) -> f64 {
        assert_eq!(alone.len(), self.ipc.len(), "need one alone-IPC per core");
        self.ipc
            .iter()
            .zip(alone)
            .map(|(&shared, &alone)| shared / alone.max(1e-9))
            .sum()
    }

    /// Total demand reads served by the memory system.
    pub fn total_reads(&self) -> u64 {
        self.channel_stats.iter().map(|s| s.reads_done).sum()
    }

    /// Row-buffer hit rate over demand accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let hits: u64 = self.channel_stats.iter().map(|s| s.row_hits).sum();
        let total: u64 = self
            .channel_stats
            .iter()
            .map(|s| s.reads_done + s.writes_done)
            .sum();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Average read latency in memory cycles.
    pub fn avg_read_latency(&self) -> f64 {
        let lat: u64 = self.channel_stats.iter().map(|s| s.read_latency_sum).sum();
        let n = self.total_reads();
        if n == 0 {
            0.0
        } else {
            lat as f64 / n as f64
        }
    }

    /// Total demand writes issued to DRAM.
    pub fn total_writes(&self) -> u64 {
        self.channel_stats.iter().map(|s| s.writes_done).sum()
    }

    /// Average write service latency (arrival to end of the write burst)
    /// in memory cycles.
    pub fn avg_write_latency(&self) -> f64 {
        let lat: u64 = self.channel_stats.iter().map(|s| s.write_latency_sum).sum();
        let n = self.total_writes();
        if n == 0 {
            0.0
        } else {
            lat as f64 / n as f64
        }
    }

    /// Per-channel data-bus utilization: the fraction of simulated memory
    /// cycles each channel's data bus spent transferring bursts (demand
    /// reads and writes; refresh traffic never uses the data bus).
    pub fn data_bus_utilization(&self) -> Vec<f64> {
        self.channel_stats
            .iter()
            .map(|s| {
                if self.mem_cycles == 0 {
                    0.0
                } else {
                    s.data_bus_busy as f64 / self.mem_cycles as f64
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(ipc: Vec<f64>) -> SimResult {
        SimResult {
            workloads: vec!["x".to_owned(); ipc.len()],
            ipc,
            cycles: 1000,
            mem_cycles: 375,
            channel_stats: vec![ChannelStats::default()],
            mc_stats: vec![],
            policy_stats: vec![],
        }
    }

    #[test]
    fn weighted_speedup_sums_ratios() {
        let r = result(vec![1.0, 2.0]);
        let ws = r.weighted_speedup(&[2.0, 2.0]);
        assert!((ws - 1.5).abs() < 1e-12);
    }

    #[test]
    fn equal_performance_gives_core_count() {
        let r = result(vec![0.5; 8]);
        assert!((r.weighted_speedup(&[0.5; 8]) - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alone-IPC")]
    fn mismatched_lengths_panic() {
        result(vec![1.0]).weighted_speedup(&[1.0, 1.0]);
    }

    #[test]
    fn write_latency_averages_over_writes() {
        let mut r = result(vec![1.0]);
        assert_eq!(r.avg_write_latency(), 0.0, "no writes → 0, not NaN");
        r.channel_stats[0].writes_done = 4;
        r.channel_stats[0].write_latency_sum = 200;
        assert!((r.avg_write_latency() - 50.0).abs() < 1e-12);
        // Aggregates across channels like the read-side metric.
        r.channel_stats.push(ChannelStats {
            writes_done: 4,
            write_latency_sum: 600,
            ..ChannelStats::default()
        });
        assert!((r.avg_write_latency() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn data_bus_utilization_is_per_channel_busy_fraction() {
        let mut r = result(vec![1.0]);
        assert_eq!(r.data_bus_utilization(), vec![0.0]);
        r.channel_stats[0].data_bus_busy = 75;
        r.channel_stats.push(ChannelStats {
            data_bus_busy: 150,
            ..ChannelStats::default()
        });
        let util = r.data_bus_utilization();
        assert!((util[0] - 0.2).abs() < 1e-12, "{util:?}");
        assert!((util[1] - 0.4).abs() < 1e-12, "{util:?}");
        // A zero-length run reports zeros, never NaN.
        r.mem_cycles = 0;
        assert!(r.data_bus_utilization().iter().all(|&u| u == 0.0));
    }
}
